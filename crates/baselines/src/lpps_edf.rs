//! Low-power priority scheduling for EDF (after Shin & Choi, DAC 1999).

use stadvs_power::Speed;
use stadvs_sim::{ActiveJob, Governor, OverrunPolicy, SchedulerView, TIME_EPS};

/// The EDF variant of Shin & Choi's low-power priority scheduling: slow
/// down **only** when a single job is ready, stretching it to the earlier
/// of its deadline and the next task arrival (NTA); run at full speed when
/// several jobs compete.
///
/// Safety: while the job is alone, no other job exists; stretching so the
/// *worst-case* remainder finishes by `min(d, NTA)` leaves nothing pending
/// when the next job arrives, so the full-speed schedule's feasibility
/// argument applies unchanged afterwards.
///
/// lppsEDF is the weakest dynamic scheme in the published comparisons —
/// with several tasks the processor is rarely alone with one job — and this
/// implementation deliberately keeps that published behaviour (no static
/// scaling while contended).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LppsEdf;

impl LppsEdf {
    /// Creates the governor.
    pub fn new() -> LppsEdf {
        LppsEdf
    }
}

impl Governor for LppsEdf {
    fn name(&self) -> &str {
        "lpps-edf"
    }

    fn select_speed(&mut self, view: &SchedulerView<'_>, job: &ActiveJob) -> Speed {
        if view.ready_jobs().len() != 1 {
            return Speed::FULL;
        }
        let until = job.deadline.min(view.next_release_global());
        let window = until - view.now();
        if window <= TIME_EPS {
            return Speed::FULL;
        }
        Speed::clamped(
            job.remaining_budget() / window,
            view.processor().min_speed(),
        )
    }

    fn overrun_policy(&self) -> OverrunPolicy {
        // Stateless stretch-to-NTA: full speed until the backlog drains is
        // the only certificate-free recovery.
        OverrunPolicy::CompleteAtMax
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stadvs_power::Processor;
    use stadvs_sim::{ConstantRatio, MissPolicy, SimConfig, Simulator, Task, TaskSet, WorstCase};

    fn sim(rows: &[(f64, f64)], horizon: f64) -> Simulator {
        let tasks = TaskSet::new(
            rows.iter()
                .map(|&(c, t)| Task::new(c, t).unwrap())
                .collect(),
        )
        .unwrap();
        Simulator::new(
            tasks,
            Processor::ideal_continuous(),
            SimConfig::new(horizon)
                .unwrap()
                .with_miss_policy(MissPolicy::Fail)
                .with_trace(true),
        )
        .unwrap()
    }

    #[test]
    fn single_task_stretches_to_next_arrival() {
        // One task (1, 4): alone from each release; NTA = next period.
        let s = sim(&[(1.0, 4.0)], 16.0);
        let out = s.run(&mut LppsEdf::new(), &WorstCase).unwrap();
        assert!(out.all_deadlines_met());
        // Every job stretched to speed 1/4 over its 4-second window.
        assert!((out.busy_time - 16.0).abs() < 1e-6);
        assert!((out.total_energy() - 16.0 * 0.25_f64.powi(3)).abs() < 1e-6);
    }

    #[test]
    fn contention_forces_full_speed() {
        // Two synchronous tasks: both ready at every multiple of 4.
        let s = sim(&[(1.0, 4.0), (1.0, 4.0)], 16.0);
        let out = s.run(&mut LppsEdf::new(), &WorstCase).unwrap();
        assert!(out.all_deadlines_met());
        // First job of each pair runs at full speed (2 ready), the second
        // alone (stretched). Energy strictly between full-speed and ideal.
        let full = s.run(&mut crate::NoDvs::new(), &WorstCase).unwrap();
        assert!(out.total_energy() < full.total_energy());
    }

    #[test]
    fn worst_case_never_misses_on_mixed_sets() {
        for rows in [
            vec![(1.0, 4.0), (2.0, 8.0)],
            vec![(2.0, 4.0), (4.0, 8.0)], // U = 1
            vec![(1.0, 5.0), (1.0, 7.0), (1.0, 11.0)],
        ] {
            let out = sim(&rows, 80.0)
                .run(&mut LppsEdf::new(), &WorstCase)
                .unwrap();
            assert!(out.all_deadlines_met(), "missed on {rows:?}");
        }
    }

    #[test]
    fn early_completions_still_safe() {
        let s = sim(&[(1.0, 4.0), (2.0, 8.0)], 64.0);
        let out = s
            .run(&mut LppsEdf::new(), &ConstantRatio::new(0.3))
            .unwrap();
        assert!(out.all_deadlines_met());
    }
}
