//! The clairvoyant static oracle (a bound, not an on-line algorithm).

use stadvs_power::Speed;
use stadvs_sim::{ActiveJob, Governor, OverrunPolicy, SchedulerView};

/// Runs everything at one precomputed constant speed — by construction the
/// *clairvoyant static optimum* when that speed is
/// [`optimal_static_speed`](https://docs.rs/stadvs-analysis) of the realized
/// workload.
///
/// This is **not** an on-line algorithm: the speed is derived from the
/// actual demands of the whole run before it starts. It appears in the
/// tables as the static lower bound separating "what a constant speed could
/// ever achieve" from the YDS variable-speed optimum.
///
/// Deadline safety: conditional on the precomputation — the constant speed
/// is chosen (by search over the realized demand trace) as the lowest one
/// under which EDF replays the whole run without a miss, so replaying the
/// same trace is deadline-safe by construction. It carries no guarantee
/// for any other trace, which is why it is a bound and not a governor for
/// deployment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OracleStatic {
    speed: Speed,
}

impl OracleStatic {
    /// Creates the oracle with a precomputed speed.
    pub fn new(speed: Speed) -> OracleStatic {
        OracleStatic { speed }
    }

    /// The oracle's constant speed.
    pub fn speed(&self) -> Speed {
        self.speed
    }
}

impl Governor for OracleStatic {
    fn name(&self) -> &str {
        "oracle-static"
    }

    fn select_speed(&mut self, view: &SchedulerView<'_>, _job: &ActiveJob) -> Speed {
        view.processor().quantize_up(self.speed)
    }

    fn overrun_policy(&self) -> OverrunPolicy {
        // The clairvoyant speed was solved for the *recorded* demand; an
        // injected overrun falsifies the recording, so recover at full
        // speed like every other certificate-based scheme.
        OverrunPolicy::CompleteAtMax
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stadvs_analysis::{materialize_jobs, optimal_static_speed, WorkKind};
    use stadvs_power::Processor;
    use stadvs_sim::{ConstantRatio, MissPolicy, SimConfig, Simulator, Task, TaskSet};

    #[test]
    fn oracle_speed_from_analysis_meets_all_deadlines() {
        let tasks = TaskSet::new(vec![
            Task::new(1.0, 4.0).unwrap(),
            Task::new(2.0, 8.0).unwrap(),
        ])
        .unwrap();
        let exec = ConstantRatio::new(0.5);
        let jobs = materialize_jobs(&tasks, &exec, 64.0);
        let s = optimal_static_speed(&jobs, WorkKind::Actual);
        assert!(s > 0.0 && s <= 1.0);
        let sim = Simulator::new(
            tasks,
            Processor::ideal_continuous(),
            SimConfig::new(64.0)
                .unwrap()
                .with_miss_policy(MissPolicy::Fail),
        )
        .unwrap();
        let mut oracle = OracleStatic::new(Speed::new(s).unwrap());
        let out = sim.run(&mut oracle, &exec).unwrap();
        assert!(out.all_deadlines_met());
        assert_eq!(oracle.speed().ratio(), s);
    }

    #[test]
    fn slightly_slower_than_oracle_misses() {
        // Confirms the oracle speed is *tight*: 95 % of it fails.
        let tasks = TaskSet::new(vec![
            Task::new(2.0, 4.0).unwrap(),
            Task::new(4.0, 8.0).unwrap(),
        ])
        .unwrap();
        let exec = ConstantRatio::new(1.0);
        let jobs = materialize_jobs(&tasks, &exec, 32.0);
        let s = optimal_static_speed(&jobs, WorkKind::Actual);
        let sim = Simulator::new(
            tasks,
            Processor::ideal_continuous(),
            SimConfig::new(32.0)
                .unwrap()
                .with_miss_policy(MissPolicy::Fail),
        )
        .unwrap();
        let mut slow = OracleStatic::new(Speed::new(s * 0.95).unwrap());
        assert!(sim.run(&mut slow, &exec).is_err());
    }
}
