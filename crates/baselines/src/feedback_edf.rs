//! Feedback EDF with task splitting (after Zhu & Mueller).

use std::collections::BTreeMap;

use stadvs_power::{Processor, Speed};
use stadvs_sim::{ActiveJob, Governor, JobId, JobRecord, OverrunPolicy, SchedulerView, TaskSet};

/// Feedback-DVS EDF: predict each task's next actual demand with a PID
/// controller over past prediction errors, split every job into a
/// *predicted* part run slow and a *worst-case tail* reserved at full
/// speed, and correct the prediction after each completion.
///
/// Budgeting is canonical (each job owns `C/U` of wall time, all before its
/// deadline), so the split is deadline-safe by construction: the slow part
/// takes `allowance − (rem − predicted)` and the unpredicted tail always
/// fits at full speed. What feedback adds — and what the slack-analysis
/// paper criticizes — is the *bet*: when demands are truly erratic the
/// prediction carries no information, the tail executes at full speed, and
/// the convex power curve makes the slow/fast split cost more than a flat
/// speed would have.
#[derive(Debug, Clone)]
pub struct FeedbackEdf {
    scale: f64,
    prediction: Vec<f64>,
    integral: Vec<f64>,
    previous_error: Vec<f64>,
    granted: BTreeMap<JobId, f64>,
    /// Duration of the slow part planned by the latest `select_speed`; the
    /// simulator is asked to re-dispatch there (the B-part switch point).
    pending_review: Option<f64>,
}

/// PID gains (the conventional dominant-proportional tuning).
const KP: f64 = 0.9;
const KI: f64 = 0.05;
const KD: f64 = 0.1;

impl FeedbackEdf {
    /// Creates the governor.
    pub fn new() -> FeedbackEdf {
        FeedbackEdf {
            scale: 1.0,
            prediction: Vec::new(),
            integral: Vec::new(),
            previous_error: Vec::new(),
            granted: BTreeMap::new(),
            pending_review: None,
        }
    }

    /// The current demand prediction for `task` (work units), for tests
    /// and diagnostics.
    pub fn prediction_of(&self, task: stadvs_sim::TaskId) -> Option<f64> {
        self.prediction.get(task.0).copied()
    }
}

impl Default for FeedbackEdf {
    fn default() -> FeedbackEdf {
        FeedbackEdf::new()
    }
}

impl Governor for FeedbackEdf {
    fn name(&self) -> &str {
        "feedback-edf"
    }

    fn on_start(&mut self, tasks: &TaskSet, _processor: &Processor) {
        // Canonical stretch: inverse minimum feasible static speed (see
        // the same note on [`Dra`](crate::Dra) — plain 1/U is only correct
        // for implicit deadlines).
        self.scale = 1.0 / stadvs_analysis::minimum_static_speed(tasks).clamp(1.0e-6, 1.0);
        // Start from a mid-range guess; the controller converges within a
        // few jobs either way.
        self.prediction = tasks.iter().map(|(_, t)| 0.5 * t.wcet()).collect();
        self.integral = vec![0.0; tasks.len()];
        self.previous_error = vec![0.0; tasks.len()];
        self.granted.clear();
    }

    fn select_speed(&mut self, view: &SchedulerView<'_>, job: &ActiveJob) -> Speed {
        let now = view.now();
        self.pending_review = None;
        let entry = self.granted.entry(job.id).or_insert(job.wcet * self.scale);
        // The simulator floors the A/B review point at 1 µs to guarantee
        // progress, so a sub-µs slow window runs up to 1 µs longer than
        // planned. A floored review always pushes `executed` past the
        // prediction (at most one floor event per job), so reserving twice
        // the floor out of the allowance keeps the full-speed tail feasible.
        const REVIEW_FLOOR_GUARD: f64 = 2.0e-6;
        let allowance = (*entry - job.wall_used()).min(job.deadline - now) - REVIEW_FLOOR_GUARD;
        let rem = job.remaining_budget();
        if allowance <= rem {
            return Speed::FULL;
        }
        let predicted_rem = (self.prediction[job.id.task.0] - job.executed()).clamp(0.0, rem);
        if predicted_rem <= 0.0 {
            // The bet failed (job ran past its prediction): full-speed tail.
            return Speed::FULL;
        }
        // Slow part sized so the worst-case tail still fits at full speed.
        let slow_window = allowance - (rem - predicted_rem);
        let speed = if slow_window > 0.0 {
            Speed::clamped(predicted_rem / slow_window, view.processor().min_speed())
        } else {
            Speed::FULL
        };
        let granted = view.processor().quantize_up(speed);
        // Ask the simulator to re-dispatch at the planned A/B boundary so
        // the full-speed tail actually engages if the prediction was short.
        self.pending_review = Some(predicted_rem / granted.ratio());
        granted
    }

    fn review_after(&mut self, _view: &SchedulerView<'_>, _job: &ActiveJob) -> Option<f64> {
        self.pending_review.take()
    }

    fn on_completion(&mut self, _view: &SchedulerView<'_>, record: &JobRecord) {
        self.granted.remove(&record.id);
        let i = record.id.task.0;
        let error = record.actual - self.prediction[i];
        self.integral[i] = (self.integral[i] + error).clamp(-record.wcet, record.wcet);
        let derivative = error - self.previous_error[i];
        self.previous_error[i] = error;
        self.prediction[i] =
            (self.prediction[i] + KP * error + KI * self.integral[i] + KD * derivative)
                .clamp(1.0e-9, record.wcet);
    }

    fn overrun_policy(&self) -> OverrunPolicy {
        // Feedback control sheds load to recover: finish the offender at
        // full speed, then skip the task's next release so the controller
        // re-converges on an uncongested window.
        OverrunPolicy::SkipNext
    }

    fn on_overrun(&mut self, _view: &SchedulerView<'_>, job: &ActiveJob) {
        // The prediction for this task just failed catastrophically (actual
        // beyond even the WCET); saturate it so the controller stops
        // betting on a short A-phase until fresh completions pull it down.
        let i = job.id.task.0;
        if let Some(p) = self.prediction.get_mut(i) {
            *p = job.wcet;
        }
        if let Some(int) = self.integral.get_mut(i) {
            *int = 0.0;
        }
        self.granted.remove(&job.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stadvs_sim::{ConstantRatio, MissPolicy, SimConfig, Simulator, Task, TaskId};

    fn sim(rows: &[(f64, f64)], horizon: f64) -> Simulator {
        let tasks = TaskSet::new(
            rows.iter()
                .map(|&(c, t)| Task::new(c, t).unwrap())
                .collect(),
        )
        .unwrap();
        Simulator::new(
            tasks,
            Processor::ideal_continuous(),
            SimConfig::new(horizon)
                .unwrap()
                .with_miss_policy(MissPolicy::Fail),
        )
        .unwrap()
    }

    #[test]
    fn never_misses_for_any_demand_ratio() {
        for ratio in [0.05, 0.3, 0.7, 1.0] {
            let out = sim(&[(1.0, 4.0), (2.0, 8.0)], 96.0)
                .run(&mut FeedbackEdf::new(), &ConstantRatio::new(ratio))
                .unwrap();
            assert!(out.all_deadlines_met(), "miss at ratio {ratio}");
        }
    }

    #[test]
    fn prediction_converges_on_stationary_demand() {
        let s = sim(&[(1.0, 4.0)], 64.0);
        let mut governor = FeedbackEdf::new();
        let out = s.run(&mut governor, &ConstantRatio::new(0.3)).unwrap();
        assert!(out.all_deadlines_met());
        let p = governor.prediction_of(TaskId(0)).unwrap();
        assert!(
            (p - 0.3).abs() < 0.05,
            "prediction {p} should converge to the actual 0.3"
        );
    }

    #[test]
    fn beats_static_when_demand_is_predictable() {
        let s = sim(&[(1.0, 4.0), (2.0, 8.0)], 96.0);
        let feedback = s
            .run(&mut FeedbackEdf::new(), &ConstantRatio::new(0.3))
            .unwrap();
        let static_edf = s
            .run(&mut crate::StaticEdf::new(), &ConstantRatio::new(0.3))
            .unwrap();
        assert!(
            feedback.total_energy() < static_edf.total_energy(),
            "feedback {} vs static {}",
            feedback.total_energy(),
            static_edf.total_energy()
        );
    }

    #[test]
    fn full_worst_case_stays_within_canonical_budget() {
        // Every job at WCET: predictions converge upward, and the canonical
        // allowance keeps everything feasible (U = 1 here).
        let out = sim(&[(2.0, 4.0), (4.0, 8.0)], 64.0)
            .run(&mut FeedbackEdf::new(), &ConstantRatio::new(1.0))
            .unwrap();
        assert!(out.all_deadlines_met());
    }
}
