//! The baseline governor registry: one table, fresh boxed instances.
//!
//! Every baseline is described by a single [`BaselineEntry`] — its stable
//! name, a factory producing a *fresh* boxed instance (governors carry
//! per-run state; a multiprocessor run needs one instance per core), and
//! the `supports_jitter` capability flag. The flag is the single source of
//! truth for the laEDF jitter exclusion: laEDF's deferral argument
//! requires strictly periodic arrivals (DESIGN.md §10), so tests and
//! experiments derive "safe under release jitter" from the table instead
//! of keeping ad-hoc name lists.

use stadvs_sim::Governor;

use crate::{CcEdf, Dra, FeedbackEdf, LaEdf, LppsEdf, NoDvs, StaticEdf};

/// One row of the baseline registry.
pub struct BaselineEntry {
    /// Stable governor name (what [`make`] resolves).
    pub name: &'static str,
    /// Whether the governor's hard-real-time argument survives bounded
    /// release jitter (delayed, sporadic-separated arrivals). `false` only
    /// for laEDF, whose lookahead defers work against *future periodic*
    /// releases.
    pub supports_jitter: bool,
    factory: fn() -> Box<dyn Governor>,
}

impl BaselineEntry {
    /// Builds a fresh instance of this entry's governor (per-run,
    /// per-core: never share one instance across runs or cores).
    pub fn make(&self) -> Box<dyn Governor> {
        (self.factory)()
    }
}

/// The registry, in conventional comparison order (weakest energy saver
/// first).
static BASELINES: &[BaselineEntry] = &[
    BaselineEntry {
        name: "no-dvs",
        supports_jitter: true,
        factory: || Box::new(NoDvs::new()),
    },
    BaselineEntry {
        name: "static-edf",
        supports_jitter: true,
        factory: || Box::new(StaticEdf::new()),
    },
    BaselineEntry {
        name: "lpps-edf",
        supports_jitter: true,
        factory: || Box::new(LppsEdf::new()),
    },
    BaselineEntry {
        name: "cc-edf",
        supports_jitter: true,
        factory: || Box::new(CcEdf::new()),
    },
    BaselineEntry {
        name: "dra",
        supports_jitter: true,
        factory: || Box::new(Dra::new()),
    },
    BaselineEntry {
        name: "dra-ote",
        supports_jitter: true,
        factory: || Box::new(Dra::with_one_task_extension()),
    },
    BaselineEntry {
        name: "feedback-edf",
        supports_jitter: true,
        factory: || Box::new(FeedbackEdf::new()),
    },
    BaselineEntry {
        name: "la-edf",
        supports_jitter: false,
        factory: || Box::new(LaEdf::new()),
    },
];

/// All registry entries, in comparison order.
pub fn entries() -> &'static [BaselineEntry] {
    BASELINES
}

/// Constructs a fresh baseline governor by its stable name, or `None` for
/// an unknown name. Each call returns a new instance — safe to call once
/// per core of a multiprocessor run.
pub fn make(name: &str) -> Option<Box<dyn Governor>> {
    BASELINES.iter().find(|e| e.name == name).map(|e| e.make())
}

/// The registry entry for `name`, if any (capability lookups).
pub fn entry(name: &str) -> Option<&'static BaselineEntry> {
    BASELINES.iter().find(|e| e.name == name)
}

/// All on-line baseline governors in their conventional comparison order
/// (weakest energy saver first). Fresh instances — each run should use its
/// own state.
pub fn baseline_suite() -> Vec<Box<dyn Governor>> {
    BASELINES.iter().map(BaselineEntry::make).collect()
}

/// Constructs a fresh baseline governor by its stable name, or `None` for
/// an unknown name (alias of [`make`], kept for existing call sites).
pub fn baseline_by_name(name: &str) -> Option<Box<dyn Governor>> {
    make(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_names_are_unique_and_resolvable() {
        let suite = baseline_suite();
        let names: Vec<String> = suite.iter().map(|g| g.name().to_string()).collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
        for n in &names {
            let g = baseline_by_name(n).expect("resolvable");
            assert_eq!(g.name(), n);
        }
        assert!(baseline_by_name("unknown").is_none());
    }

    #[test]
    fn table_names_match_governor_names() {
        // The table's `name` must be the governor's own `name()` — row
        // lookups and outcome labels would silently diverge otherwise.
        for e in entries() {
            assert_eq!(e.make().name(), e.name);
        }
    }

    #[test]
    fn make_returns_fresh_instances() {
        let a = make("st-edf");
        assert!(a.is_none(), "st-edf lives in stadvs-core, not here");
        let b = make("cc-edf").expect("exists");
        let c = make("cc-edf").expect("exists");
        // Boxed instances must be distinct allocations (fresh state).
        assert!(!std::ptr::eq(b.as_ref(), c.as_ref()));
    }

    #[test]
    fn only_la_edf_lacks_jitter_support() {
        let unsafe_names: Vec<&str> = entries()
            .iter()
            .filter(|e| !e.supports_jitter)
            .map(|e| e.name)
            .collect();
        assert_eq!(unsafe_names, ["la-edf"]);
        assert!(entry("la-edf").is_some());
        assert!(entry("bogus").is_none());
    }
}
