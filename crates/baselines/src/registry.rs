//! The standard baseline suite, boxed for heterogeneous comparison runs.

use stadvs_sim::Governor;

use crate::{CcEdf, Dra, FeedbackEdf, LaEdf, LppsEdf, NoDvs, StaticEdf};

/// All on-line baseline governors in their conventional comparison order
/// (weakest energy saver first). Fresh instances — each run should use its
/// own state.
pub fn baseline_suite() -> Vec<Box<dyn Governor>> {
    vec![
        Box::new(NoDvs::new()),
        Box::new(StaticEdf::new()),
        Box::new(LppsEdf::new()),
        Box::new(CcEdf::new()),
        Box::new(Dra::new()),
        Box::new(Dra::with_one_task_extension()),
        Box::new(FeedbackEdf::new()),
        Box::new(LaEdf::new()),
    ]
}

/// Constructs a fresh baseline governor by its stable name, or `None` for
/// an unknown name.
pub fn baseline_by_name(name: &str) -> Option<Box<dyn Governor>> {
    match name {
        "no-dvs" => Some(Box::new(NoDvs::new())),
        "static-edf" => Some(Box::new(StaticEdf::new())),
        "lpps-edf" => Some(Box::new(LppsEdf::new())),
        "cc-edf" => Some(Box::new(CcEdf::new())),
        "dra" => Some(Box::new(Dra::new())),
        "dra-ote" => Some(Box::new(Dra::with_one_task_extension())),
        "feedback-edf" => Some(Box::new(FeedbackEdf::new())),
        "la-edf" => Some(Box::new(LaEdf::new())),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_names_are_unique_and_resolvable() {
        let suite = baseline_suite();
        let names: Vec<String> = suite.iter().map(|g| g.name().to_string()).collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
        for n in &names {
            let g = baseline_by_name(n).expect("resolvable");
            assert_eq!(g.name(), n);
        }
        assert!(baseline_by_name("unknown").is_none());
    }
}
