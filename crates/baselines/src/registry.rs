//! The baseline governor registry: one table, fresh boxed instances.
//!
//! Every baseline is described by a single [`BaselineEntry`] — its stable
//! name, a factory producing a *fresh* boxed instance (governors carry
//! per-run state; a multiprocessor run needs one instance per core), and
//! its [`GovernorCaps`] capability flags. The table is the single source
//! of truth for every per-regime governor exclusion — jitter, sporadic
//! arrivals, weakly-hard skips (DESIGN.md §10, §14) — so tests and
//! experiments derive "safe under regime X" from it instead of keeping
//! ad-hoc name lists.

use stadvs_sim::Governor;

use crate::{CcEdf, Dra, FeedbackEdf, LaEdf, LppsEdf, NoDvs, StaticEdf};

/// Which workload regimes a governor's hard-real-time argument survives.
///
/// Doubles as a *requirement* vector: [`GovernorCaps::default`] requires
/// nothing, and [`GovernorCaps::covers`] checks an entry's capabilities
/// against a requirement built from the workload at hand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GovernorCaps {
    /// Bounded release jitter (delayed arrivals against the periodic
    /// lattice).
    pub jitter: bool,
    /// Sporadic arrival processes (seeded inter-arrival stretches; the
    /// same delay-only safety class as jitter).
    pub sporadic: bool,
    /// Weakly-hard (m,k) skip reclamation: jobs may complete instantly at
    /// release with zero demand. Every work-conserving baseline treats a
    /// skip as an (extreme) early completion, so this is universally safe.
    pub weakly_hard: bool,
}

impl GovernorCaps {
    /// Every regime supported.
    pub const ALL: GovernorCaps = GovernorCaps {
        jitter: true,
        sporadic: true,
        weakly_hard: true,
    };

    /// Strictly periodic arrivals only: laEDF's lookahead defers work
    /// against *future periodic* releases, so every delayed-arrival
    /// regime (jitter, sporadic) is excluded. Skips only remove demand,
    /// so weakly-hard stays safe.
    pub const PERIODIC_ONLY: GovernorCaps = GovernorCaps {
        jitter: false,
        sporadic: false,
        weakly_hard: true,
    };

    /// Whether these capabilities cover `required` — every regime the
    /// requirement names is supported.
    pub fn covers(&self, required: GovernorCaps) -> bool {
        (self.jitter || !required.jitter)
            && (self.sporadic || !required.sporadic)
            && (self.weakly_hard || !required.weakly_hard)
    }
}

/// One row of the baseline registry.
pub struct BaselineEntry {
    /// Stable governor name (what [`make`] resolves).
    pub name: &'static str,
    /// The workload regimes this governor's guarantee argument survives.
    pub caps: GovernorCaps,
    factory: fn() -> Box<dyn Governor>,
}

impl BaselineEntry {
    /// Builds a fresh instance of this entry's governor (per-run,
    /// per-core: never share one instance across runs or cores).
    pub fn make(&self) -> Box<dyn Governor> {
        (self.factory)()
    }
}

/// The registry, in conventional comparison order (weakest energy saver
/// first).
static BASELINES: &[BaselineEntry] = &[
    BaselineEntry {
        name: "no-dvs",
        caps: GovernorCaps::ALL,
        factory: || Box::new(NoDvs::new()),
    },
    BaselineEntry {
        name: "static-edf",
        caps: GovernorCaps::ALL,
        factory: || Box::new(StaticEdf::new()),
    },
    BaselineEntry {
        name: "lpps-edf",
        caps: GovernorCaps::ALL,
        factory: || Box::new(LppsEdf::new()),
    },
    BaselineEntry {
        name: "cc-edf",
        caps: GovernorCaps::ALL,
        factory: || Box::new(CcEdf::new()),
    },
    BaselineEntry {
        name: "dra",
        caps: GovernorCaps::ALL,
        factory: || Box::new(Dra::new()),
    },
    BaselineEntry {
        name: "dra-ote",
        caps: GovernorCaps::ALL,
        factory: || Box::new(Dra::with_one_task_extension()),
    },
    BaselineEntry {
        name: "feedback-edf",
        caps: GovernorCaps::ALL,
        factory: || Box::new(FeedbackEdf::new()),
    },
    BaselineEntry {
        name: "la-edf",
        caps: GovernorCaps::PERIODIC_ONLY,
        factory: || Box::new(LaEdf::new()),
    },
];

/// All registry entries, in comparison order.
pub fn entries() -> &'static [BaselineEntry] {
    BASELINES
}

/// Constructs a fresh baseline governor by its stable name, or `None` for
/// an unknown name. Each call returns a new instance — safe to call once
/// per core of a multiprocessor run.
pub fn make(name: &str) -> Option<Box<dyn Governor>> {
    BASELINES.iter().find(|e| e.name == name).map(|e| e.make())
}

/// The registry entry for `name`, if any (capability lookups).
pub fn entry(name: &str) -> Option<&'static BaselineEntry> {
    BASELINES.iter().find(|e| e.name == name)
}

/// All on-line baseline governors in their conventional comparison order
/// (weakest energy saver first). Fresh instances — each run should use its
/// own state.
pub fn baseline_suite() -> Vec<Box<dyn Governor>> {
    BASELINES.iter().map(BaselineEntry::make).collect()
}

/// Constructs a fresh baseline governor by its stable name, or `None` for
/// an unknown name (alias of [`make`], kept for existing call sites).
pub fn baseline_by_name(name: &str) -> Option<Box<dyn Governor>> {
    make(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_names_are_unique_and_resolvable() {
        let suite = baseline_suite();
        let names: Vec<String> = suite.iter().map(|g| g.name().to_string()).collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
        for n in &names {
            let g = baseline_by_name(n).expect("resolvable");
            assert_eq!(g.name(), n);
        }
        assert!(baseline_by_name("unknown").is_none());
    }

    #[test]
    fn table_names_match_governor_names() {
        // The table's `name` must be the governor's own `name()` — row
        // lookups and outcome labels would silently diverge otherwise.
        for e in entries() {
            assert_eq!(e.make().name(), e.name);
        }
    }

    #[test]
    fn make_returns_fresh_instances() {
        let a = make("st-edf");
        assert!(a.is_none(), "st-edf lives in stadvs-core, not here");
        let b = make("cc-edf").expect("exists");
        let c = make("cc-edf").expect("exists");
        // Boxed instances must be distinct allocations (fresh state).
        assert!(!std::ptr::eq(b.as_ref(), c.as_ref()));
    }

    #[test]
    fn only_la_edf_lacks_jitter_support() {
        let unsafe_names: Vec<&str> = entries()
            .iter()
            .filter(|e| !e.caps.jitter)
            .map(|e| e.name)
            .collect();
        assert_eq!(unsafe_names, ["la-edf"]);
        assert!(entry("la-edf").is_some());
        assert!(entry("bogus").is_none());
    }

    #[test]
    fn sporadic_exclusions_match_jitter_exclusions() {
        // Sporadic arrivals are delay-only, the same safety class as
        // jitter — the two columns must agree for every entry.
        for e in entries() {
            assert_eq!(e.caps.jitter, e.caps.sporadic, "{}", e.name);
        }
    }

    #[test]
    fn every_baseline_supports_weakly_hard_skips() {
        // A skip is an extreme early completion; every work-conserving
        // baseline already handles those.
        for e in entries() {
            assert!(e.caps.weakly_hard, "{}", e.name);
        }
    }

    #[test]
    fn caps_cover_requirements() {
        let none = GovernorCaps::default();
        assert!(GovernorCaps::ALL.covers(none));
        assert!(GovernorCaps::ALL.covers(GovernorCaps::ALL));
        assert!(GovernorCaps::PERIODIC_ONLY.covers(none));
        assert!(GovernorCaps::PERIODIC_ONLY.covers(GovernorCaps {
            weakly_hard: true,
            ..none
        }));
        assert!(!GovernorCaps::PERIODIC_ONLY.covers(GovernorCaps {
            jitter: true,
            ..none
        }));
        assert!(!GovernorCaps::PERIODIC_ONLY.covers(GovernorCaps {
            sporadic: true,
            ..none
        }));
    }
}
