//! Look-ahead EDF (Pillai & Shin, SOSP 2001).

use stadvs_power::{Processor, Speed};
use stadvs_sim::{ActiveJob, Governor, OverrunPolicy, SchedulerView, TaskSet, TIME_EPS};

/// Look-ahead EDF: defer as much work as possible past the earliest current
/// deadline `d_n`, assuming the deferred work can run at full speed later,
/// and run just fast enough to finish the *non-deferrable* remainder by
/// `d_n`.
///
/// The published `defer()` computation, evaluated at every scheduling point:
///
/// ```text
/// U ← Σ C_i / T_i;  s ← 0
/// for τ_i in tasks, latest current deadline first:
///     U ← U − C_i / T_i
///     x ← max(0, c_left_i − (1 − U)·(d_i − d_n))
///     if d_i > d_n:  U ← U + (c_left_i − x) / (d_i − d_n)
///     s ← s + x
/// speed ← s / (d_n − now)
/// ```
///
/// `c_left_i` is the remaining worst-case budget of `τ_i`'s current job (0
/// after it completes) and `d_i` the deadline of `τ_i`'s **current** period
/// — crucially, a completed task keeps its current deadline until the next
/// release. That convention is what reserves `(1 − U)·(d_i − d_n)` of
/// capacity for the completed task's *future* jobs; replacing it with the
/// next job's deadline makes the deferral blind to arrivals inside the
/// window and breaks feasibility at full utilization.
///
/// laEDF is the most aggressive of the Pillai–Shin pair: it runs *slower
/// than the reclaimed utilization* early on, betting that early completions
/// will create the slack it deferred into — and races to catch up when the
/// bet fails, which costs it energy on near-worst-case workloads.
///
/// **Assumes implicit deadlines** (`D_i = T_i`), like the published
/// algorithm: the `(1 − U)` reservation argument does not extend to
/// constrained deadlines. Use the slack-analysis governor there.
///
/// Deadline safety: work deferred past the earliest deadline `d_n` is
/// bounded so that it still fits at *full speed* between `d_n` and its own
/// deadline alongside the `(1 − U)` reservation for future releases —
/// deferral never schedules work the processor could not catch up on.
#[derive(Debug, Clone, Default)]
pub struct LaEdf {
    /// Deadline of each task's current period (kept after completion until
    /// the next release).
    current_deadline: Vec<f64>,
    /// Scratch rows of `(deadline, c_left, utilization)`.
    rows: Vec<(f64, f64, f64)>,
}

impl LaEdf {
    /// Creates the governor.
    pub fn new() -> LaEdf {
        LaEdf::default()
    }

    fn defer(&mut self, view: &SchedulerView<'_>) -> f64 {
        let now = view.now();
        self.rows.clear();
        for (id, task) in view.tasks().iter() {
            let active = view.ready_jobs().iter().find(|j| j.id.task == id);
            let row = match active {
                Some(job) => (job.deadline, job.remaining_budget(), task.utilization()),
                None => (self.current_deadline[id.0], 0.0, task.utilization()),
            };
            self.rows.push(row);
        }
        let d_n = self.rows.iter().map(|r| r.0).fold(f64::INFINITY, f64::min);
        if !d_n.is_finite() || d_n - now <= TIME_EPS {
            return 1.0;
        }

        // Latest current deadline first.
        self.rows.sort_by(|a, b| b.0.total_cmp(&a.0));
        let mut u: f64 = self.rows.iter().map(|r| r.2).sum();
        let mut s = 0.0;
        for &(d_i, c_left, u_i) in &self.rows {
            u -= u_i;
            let window = (d_i - d_n).max(0.0);
            let x = (c_left - (1.0 - u) * window).max(0.0).min(c_left);
            if window > 0.0 {
                u += (c_left - x) / window;
            }
            s += x;
        }
        s / (d_n - now)
    }
}

impl Governor for LaEdf {
    fn name(&self) -> &str {
        "la-edf"
    }

    fn on_start(&mut self, tasks: &TaskSet, _processor: &Processor) {
        self.current_deadline = tasks
            .iter()
            .map(|(_, t)| t.phase() + t.deadline())
            .collect();
    }

    fn on_release(&mut self, _view: &SchedulerView<'_>, job: &ActiveJob) {
        self.current_deadline[job.id.task.0] = job.deadline;
    }

    fn select_speed(&mut self, view: &SchedulerView<'_>, _job: &ActiveJob) -> Speed {
        let requested = self.defer(view);
        Speed::clamped(requested, view.processor().min_speed())
    }

    fn overrun_policy(&self) -> OverrunPolicy {
        // The deferral argument is stateless (recomputed from the ready
        // set each point); finishing the offender at full speed restores
        // its premises as soon as the backlog drains.
        OverrunPolicy::CompleteAtMax
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stadvs_sim::{ConstantRatio, MissPolicy, SimConfig, Simulator, Task};

    fn sim(wcets: &[(f64, f64)]) -> Simulator {
        let tasks = TaskSet::new(
            wcets
                .iter()
                .map(|&(c, t)| Task::new(c, t).unwrap())
                .collect(),
        )
        .unwrap();
        Simulator::new(
            tasks,
            Processor::ideal_continuous(),
            SimConfig::new(96.0)
                .unwrap()
                .with_miss_policy(MissPolicy::Fail),
        )
        .unwrap()
    }

    #[test]
    fn worst_case_workload_never_misses() {
        for rows in [
            vec![(1.0, 4.0), (2.0, 8.0)],
            vec![(2.0, 4.0), (2.0, 8.0), (2.0, 8.0)], // U = 1.0
            vec![(1.0, 3.0), (1.0, 6.0), (2.0, 12.0)],
            vec![(2.0, 4.0), (4.0, 8.0)], // U = 1.0, two tasks
        ] {
            let out = sim(&rows)
                .run(&mut LaEdf::new(), &stadvs_sim::WorstCase)
                .unwrap();
            assert!(out.all_deadlines_met(), "missed on {rows:?}");
        }
    }

    #[test]
    fn light_actuals_never_miss_and_save_energy() {
        let s = sim(&[(1.0, 4.0), (2.0, 8.0), (2.0, 10.0)]);
        let base = s
            .run(&mut crate::NoDvs::new(), &ConstantRatio::new(0.4))
            .unwrap();
        let la = s.run(&mut LaEdf::new(), &ConstantRatio::new(0.4)).unwrap();
        assert!(la.all_deadlines_met());
        assert!(la.total_energy() < 0.5 * base.total_energy());
    }

    #[test]
    fn la_beats_static_on_light_workloads() {
        let s = sim(&[(1.0, 4.0), (2.0, 8.0), (2.0, 10.0)]);
        let st = s
            .run(&mut crate::StaticEdf::new(), &ConstantRatio::new(0.3))
            .unwrap();
        let la = s.run(&mut LaEdf::new(), &ConstantRatio::new(0.3)).unwrap();
        assert!(
            la.total_energy() < st.total_energy(),
            "la {} vs static {}",
            la.total_energy(),
            st.total_energy()
        );
    }

    #[test]
    fn random_workloads_never_miss() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        for trial in 0..30 {
            let n = rng.gen_range(2..5);
            let mut rows = Vec::new();
            let mut budget: f64 = 1.0;
            for _ in 0..n {
                if budget <= 0.06 {
                    break;
                }
                let period = rng.gen_range(2.0..20.0_f64);
                let u = rng.gen_range(0.05..budget.min(0.6));
                budget -= u;
                rows.push((u * period, period));
            }
            let ratio = rng.gen_range(0.1..1.0);
            let out = sim(&rows)
                .run(&mut LaEdf::new(), &ConstantRatio::new(ratio))
                .unwrap();
            assert!(out.all_deadlines_met(), "trial {trial} rows {rows:?}");
        }
    }
}
