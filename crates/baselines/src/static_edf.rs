//! Static (off-line optimal) EDF speed scaling.

use stadvs_power::{Processor, Speed};
use stadvs_sim::{ActiveJob, Governor, OverrunPolicy, SchedulerView, TaskSet};

/// Runs every job at the minimum feasible constant speed — the off-line
/// optimal *static* scaling for EDF (Pillai & Shin's "statically scaled
/// EDF"). For implicit deadlines that speed is exactly the worst-case
/// utilization `U`; for constrained deadlines it is the peak of the demand
/// bound function's intensity, `max_t dbf(t)/t` (plain `U` would miss
/// deadlines there).
///
/// For convex power no constant speed below this can be feasible in the
/// worst case. All *dynamic* algorithms improve on it by exploiting early
/// completions.
///
/// Deadline safety: at speed `s = max_t dbf(t)/t` the processing supplied
/// in any interval of length `t` is `s·t ≥ dbf(t)`, the worst-case demand
/// EDF must serve in that interval — the classical demand-bound feasibility
/// condition — so every deadline is met for both implicit and constrained
/// deadlines.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StaticEdf {
    speed: f64,
}

impl StaticEdf {
    /// Creates the governor.
    pub fn new() -> StaticEdf {
        StaticEdf { speed: 1.0 }
    }
}

impl Governor for StaticEdf {
    fn name(&self) -> &str {
        "static-edf"
    }

    fn on_start(&mut self, tasks: &TaskSet, _processor: &Processor) {
        self.speed = stadvs_analysis::minimum_static_speed(tasks).min(1.0);
    }

    fn select_speed(&mut self, view: &SchedulerView<'_>, _job: &ActiveJob) -> Speed {
        Speed::clamped(self.speed, view.processor().min_speed())
    }

    fn overrun_policy(&self) -> OverrunPolicy {
        // The static speed is certified for C_i budgets only; the overrun
        // tail runs at full speed until the backlog drains.
        OverrunPolicy::CompleteAtMax
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stadvs_power::Processor;
    use stadvs_sim::{MissPolicy, SimConfig, Simulator, Task, TaskSet, WorstCase};

    fn run(utilization_half: bool) -> stadvs_sim::SimOutcome {
        let tasks = if utilization_half {
            TaskSet::new(vec![
                Task::new(1.0, 4.0).unwrap(),
                Task::new(2.0, 8.0).unwrap(),
            ])
            .unwrap()
        } else {
            TaskSet::new(vec![
                Task::new(2.0, 4.0).unwrap(),
                Task::new(4.0, 8.0).unwrap(),
            ])
            .unwrap()
        };
        let sim = Simulator::new(
            tasks,
            Processor::ideal_continuous(),
            SimConfig::new(64.0)
                .unwrap()
                .with_miss_policy(MissPolicy::Fail),
        )
        .unwrap();
        sim.run(&mut StaticEdf::new(), &WorstCase).unwrap()
    }

    #[test]
    fn worst_case_at_speed_u_is_tight_but_feasible() {
        let out = run(true); // U = 0.5
        assert!(out.all_deadlines_met());
        // Runs at 0.5 the whole busy time: busy = work / 0.5 = 32/0.5 = 64.
        assert!((out.busy_time - 64.0).abs() < 1e-6);
        // Energy = 64 s * 0.125 W = 8 J (vs 32 J at full speed).
        assert!((out.total_energy() - 8.0).abs() < 1e-6);
    }

    #[test]
    fn full_utilization_degenerates_to_full_speed() {
        let out = run(false); // U = 1.0
        assert!(out.all_deadlines_met());
        assert!((out.busy_time - 64.0).abs() < 1e-6);
        assert!((out.total_energy() - 64.0).abs() < 1e-6);
    }
}
