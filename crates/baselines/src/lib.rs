//! # stadvs-baselines — published baseline DVS-EDF governors
//!
//! The comparator algorithms of the DVS-EDF literature, re-implemented from
//! their published rules:
//!
//! * [`NoDvs`] — full speed always (the normalization baseline),
//! * [`StaticEdf`] — the off-line optimal constant speed `U`,
//! * [`LppsEdf`] — stretch only when a single job is ready (Shin & Choi),
//! * [`CcEdf`] — cycle-conserving utilization tracking (Pillai & Shin),
//! * [`Dra`] — canonical-schedule dynamic reclaiming with an α-queue
//!   (Aydin et al.), optionally with the one-task extension,
//! * [`FeedbackEdf`] — PID-predicted task splitting (Zhu & Mueller),
//! * [`LaEdf`] — look-ahead work deferral (Pillai & Shin),
//! * [`OracleStatic`] — the clairvoyant constant-speed bound (not on-line).
//!
//! The [`registry`] module holds the single table describing every
//! baseline (name, fresh-instance factory, jitter-support flag);
//! [`baseline_suite`] returns them boxed in comparison order and
//! [`registry::make`] builds one fresh instance per call (one per core in
//! multiprocessor runs).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cc_edf;
mod dra;
mod feedback_edf;
mod la_edf;
mod lpps_edf;
mod no_dvs;
mod oracle;
pub mod registry;
mod static_edf;

pub use cc_edf::CcEdf;
pub use dra::Dra;
pub use feedback_edf::FeedbackEdf;
pub use la_edf::LaEdf;
pub use lpps_edf::LppsEdf;
pub use no_dvs::NoDvs;
pub use oracle::OracleStatic;
pub use registry::{baseline_by_name, baseline_suite, BaselineEntry, GovernorCaps};
pub use static_edf::StaticEdf;
