//! The no-DVS baseline.

use stadvs_power::Speed;
use stadvs_sim::{ActiveJob, Governor, OverrunPolicy, SchedulerView};

/// Always runs at full speed — the energy baseline every DVS algorithm is
/// normalized against ("normalized energy = 1.0" in every figure).
///
/// Deadline safety: trivial — full speed is the schedule every feasibility
/// test assumes, so any task set schedulable by EDF at all is schedulable
/// under this governor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoDvs;

impl NoDvs {
    /// Creates the baseline.
    pub fn new() -> NoDvs {
        NoDvs
    }
}

impl Governor for NoDvs {
    fn name(&self) -> &str {
        "no-dvs"
    }

    fn select_speed(&mut self, _view: &SchedulerView<'_>, _job: &ActiveJob) -> Speed {
        Speed::FULL
    }

    fn overrun_policy(&self) -> OverrunPolicy {
        // Already at full speed; an overrunning job just keeps running.
        OverrunPolicy::CompleteAtMax
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stadvs_power::Processor;
    use stadvs_sim::{ConstantRatio, MissPolicy, SimConfig, Simulator, Task, TaskSet};

    #[test]
    fn never_misses_and_never_switches() {
        let tasks = TaskSet::new(vec![
            Task::new(1.0, 4.0).unwrap(),
            Task::new(3.0, 8.0).unwrap(),
        ])
        .unwrap();
        let sim = Simulator::new(
            tasks,
            Processor::ideal_continuous(),
            SimConfig::new(64.0)
                .unwrap()
                .with_miss_policy(MissPolicy::Fail),
        )
        .unwrap();
        let out = sim
            .run(&mut NoDvs::new(), &ConstantRatio::new(0.8))
            .unwrap();
        assert!(out.all_deadlines_met());
        assert_eq!(out.switches, 0);
        assert_eq!(out.governor, "no-dvs");
    }
}
