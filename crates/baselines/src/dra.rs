//! Dynamic reclaiming (after Aydin, Melhem, Mossé & Mejía-Alvarez, RTSS
//! 2001).

use std::collections::BTreeMap;

use stadvs_power::{Processor, Speed};
use stadvs_sim::{
    ActiveJob, Governor, JobId, JobRecord, OverrunPolicy, SchedulerView, TaskSet, TIME_EPS,
};

/// Dynamic Reclaiming Algorithm (DRA): follow the *canonical* schedule —
/// EDF statically stretched to speed `U` — and reclaim the earliness of
/// completed jobs through a deadline-tagged slack queue (the α-queue).
///
/// Accounting (in wall-clock allowance):
///
/// * every job starts with allowance `C_i / U` — its occupancy in the
///   canonical schedule, all of which lies before its deadline;
/// * when the EDF-minimum job is dispatched, α-queue entries with tags no
///   later than its deadline are *transferred* into its allowance (their
///   canonical occupancy also lies before that deadline);
/// * the dispatch speed is `remaining worst-case work / remaining
///   allowance`;
/// * at completion, the unused allowance returns to the α-queue tagged with
///   the completing job's deadline; entries whose tags have passed expire.
///
/// Transfers are eager (removed from the queue when granted), so repeated
/// `select_speed` calls at one instant cannot double-book slack; leftovers
/// re-enter the queue with the consumer's (no earlier) tag, a slightly
/// conservative variant of the published bookkeeping.
///
/// With [`Dra::with_one_task_extension`] the governor additionally applies
/// the *one-task extension* (DR-OTE): when exactly one job is ready it may
/// stretch to the earlier of its deadline and the next task arrival. The
/// stretched job still worst-case-completes by that instant, so the system
/// state at the next arrival is never behind the canonical schedule.
///
/// Deadline safety: every wall-clock second of allowance a job spends —
/// its own grant or a transferred α-queue entry with a no-later tag — is
/// occupancy the canonical speed-`U` EDF schedule provably fits before the
/// same deadline, so each job worst-case-completes no later than its
/// canonical (feasible) completion.
#[derive(Debug, Clone)]
pub struct Dra {
    one_task_extension: bool,
    scale: f64,
    queue: Vec<(f64, f64)>,
    granted: BTreeMap<JobId, f64>,
}

impl Dra {
    /// Creates plain DRA.
    pub fn new() -> Dra {
        Dra {
            one_task_extension: false,
            scale: 1.0,
            queue: Vec::new(),
            granted: BTreeMap::new(),
        }
    }

    /// Creates DRA with the one-task extension (DR-OTE).
    pub fn with_one_task_extension() -> Dra {
        Dra {
            one_task_extension: true,
            ..Dra::new()
        }
    }

    /// Total slack currently banked in the α-queue (diagnostic).
    pub fn banked_slack(&self) -> f64 {
        self.queue.iter().map(|&(_, a)| a).sum()
    }

    fn expire(&mut self, now: f64) {
        self.queue.retain(|&(tag, _)| tag > now + TIME_EPS);
    }

    fn take_up_to(&mut self, deadline: f64) -> f64 {
        let mut taken = 0.0;
        self.queue.retain(|&(tag, amount)| {
            if tag <= deadline + TIME_EPS {
                taken += amount;
                false
            } else {
                true
            }
        });
        taken
    }

    fn donate(&mut self, tag: f64, amount: f64) {
        if amount <= TIME_EPS {
            return;
        }
        match self.queue.binary_search_by(|&(t, _)| t.total_cmp(&tag)) {
            Ok(i) => self.queue[i].1 += amount,
            Err(i) => self.queue.insert(i, (tag, amount)),
        }
    }
}

impl Default for Dra {
    fn default() -> Dra {
        Dra::new()
    }
}

impl Governor for Dra {
    fn name(&self) -> &str {
        if self.one_task_extension {
            "dra-ote"
        } else {
            "dra"
        }
    }

    fn on_start(&mut self, tasks: &TaskSet, _processor: &Processor) {
        self.queue.clear();
        self.granted.clear();
        // The canonical schedule runs at the minimum feasible static speed
        // (equal to U for implicit deadlines — the published DRA setting —
        // but strictly higher when constrained deadlines bind the demand
        // bound function; using plain 1/U there would be unsound).
        self.scale = 1.0 / stadvs_analysis::minimum_static_speed(tasks).clamp(1.0e-6, 1.0);
    }

    fn select_speed(&mut self, view: &SchedulerView<'_>, job: &ActiveJob) -> Speed {
        let now = view.now();
        self.expire(now);

        let initial = job.wcet * self.scale;
        let taken = self.take_up_to(job.deadline);
        let entry = self.granted.entry(job.id).or_insert(initial);
        *entry += taken;
        // The allowance must also never reach past the deadline itself
        // (guards the initial C/U grant for jobs released with phase jitter
        // close to their deadline; a pure canonical schedule never needs
        // the cap).
        let allowance = (*entry - job.wall_used()).min(job.deadline - now);
        let rem = job.remaining_budget();

        let mut speed = if allowance <= rem {
            1.0
        } else {
            rem / allowance
        };

        if self.one_task_extension && view.ready_jobs().len() == 1 {
            // Queue entries with tags beyond this job's deadline rely on
            // wall-clock time inside the stretch window; reserve it.
            let window = job.deadline.min(view.next_release_global()) - now - self.banked_slack();
            if window > rem {
                speed = speed.min(rem / window);
            }
        }
        Speed::clamped(speed, view.processor().min_speed())
    }

    fn on_completion(&mut self, _view: &SchedulerView<'_>, record: &JobRecord) {
        if let Some(total) = self.granted.remove(&record.id) {
            self.donate(record.deadline, total - record.wall_time);
        }
    }

    fn on_idle(&mut self, _view: &SchedulerView<'_>) {
        // Idle time consumes the canonical service the α-queue banks: the
        // canonical schedule keeps running while the real one idles, so
        // entries kept across an idle period would claim time that has
        // silently passed and later consumers would overdraw (observed as
        // millisecond-scale misses before this rule was added). An idle
        // instant means the real schedule is strictly ahead of the
        // canonical one; resetting to the plain canonical state is safe.
        self.queue.clear();
    }

    fn overrun_policy(&self) -> OverrunPolicy {
        // DRA's α-queue banks earliness against exact C_i budgets; an
        // overrunning job's grant is already overdrawn, so the published
        // recovery is to abandon the offender rather than let it consume
        // slack that was promised to other deadlines.
        OverrunPolicy::Abort
    }

    fn on_overrun(&mut self, _view: &SchedulerView<'_>, job: &ActiveJob) {
        // The banked canonical service priced this job at C/U; every queue
        // entry and grant derived from that price is now void.
        self.queue.clear();
        self.granted.remove(&job.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stadvs_sim::{ConstantRatio, MissPolicy, SimConfig, Simulator, Task, WorstCase};

    fn sim(rows: &[(f64, f64)], horizon: f64) -> Simulator {
        let tasks = TaskSet::new(
            rows.iter()
                .map(|&(c, t)| Task::new(c, t).unwrap())
                .collect(),
        )
        .unwrap();
        Simulator::new(
            tasks,
            Processor::ideal_continuous(),
            SimConfig::new(horizon)
                .unwrap()
                .with_miss_policy(MissPolicy::Fail),
        )
        .unwrap()
    }

    #[test]
    fn worst_case_equals_static_speed() {
        // With actual == WCET and U = 0.5, DRA follows the canonical
        // schedule exactly: always speed 0.5.
        let s = sim(&[(1.0, 4.0), (2.0, 8.0)], 64.0);
        let out = s.run(&mut Dra::new(), &WorstCase).unwrap();
        assert!(out.all_deadlines_met());
        assert!(
            (out.busy_time - 64.0).abs() < 1e-6,
            "busy {}",
            out.busy_time
        );
        assert!((out.total_energy() - 64.0 * 0.125).abs() < 1e-4);
    }

    #[test]
    fn early_completions_are_reclaimed() {
        let s = sim(&[(1.0, 4.0), (2.0, 8.0)], 64.0);
        let static_energy = s
            .run(&mut crate::StaticEdf::new(), &ConstantRatio::new(0.5))
            .unwrap()
            .total_energy();
        let dra_energy = s
            .run(&mut Dra::new(), &ConstantRatio::new(0.5))
            .unwrap()
            .total_energy();
        assert!(
            dra_energy < static_energy,
            "dra {dra_energy} vs static {static_energy}"
        );
    }

    #[test]
    fn ote_improves_on_plain_dra_for_sparse_sets() {
        // T1 = (0.2, 4) is alone whenever T0 = (2, 20) is absent. Its
        // canonical allowance is only C/U = 1.33 s, while the window to the
        // next arrival is 4 s — exactly the gap the one-task extension
        // exploits. With worst-case demands nothing enters the α-queue, so
        // plain DRA cannot close that gap.
        let s = sim(&[(2.0, 20.0), (0.2, 4.0)], 80.0);
        let plain = s.run(&mut Dra::new(), &ConstantRatio::new(1.0)).unwrap();
        let ote = s
            .run(
                &mut Dra::with_one_task_extension(),
                &ConstantRatio::new(1.0),
            )
            .unwrap();
        assert!(plain.all_deadlines_met() && ote.all_deadlines_met());
        assert!(
            ote.total_energy() < plain.total_energy(),
            "ote {} vs dra {}",
            ote.total_energy(),
            plain.total_energy()
        );
    }

    #[test]
    fn never_misses_across_utilizations_and_ratios() {
        for rows in [
            vec![(2.0, 4.0), (4.0, 8.0)], // U = 1.0
            vec![(1.0, 4.0), (1.0, 8.0)],
            vec![(1.0, 3.0), (2.0, 9.0), (1.0, 27.0)],
        ] {
            for ratio in [0.1, 0.5, 1.0] {
                for ote in [false, true] {
                    let mut g = if ote {
                        Dra::with_one_task_extension()
                    } else {
                        Dra::new()
                    };
                    let out = sim(&rows, 108.0)
                        .run(&mut g, &ConstantRatio::new(ratio))
                        .unwrap();
                    assert!(
                        out.all_deadlines_met(),
                        "miss rows={rows:?} ratio={ratio} ote={ote}"
                    );
                }
            }
        }
    }

    #[test]
    fn queue_bookkeeping() {
        let mut dra = Dra::new();
        dra.donate(5.0, 1.0);
        dra.donate(3.0, 2.0);
        dra.donate(5.0, 0.5);
        assert!((dra.banked_slack() - 3.5).abs() < 1e-12);
        // Take everything with tag <= 4: only the 2.0 at tag 3.
        assert!((dra.take_up_to(4.0) - 2.0).abs() < 1e-12);
        assert!((dra.banked_slack() - 1.5).abs() < 1e-12);
        // Expiry drops passed tags.
        dra.expire(10.0);
        assert_eq!(dra.banked_slack(), 0.0);
        // Tiny donations are ignored.
        dra.donate(20.0, 1e-15);
        assert_eq!(dra.banked_slack(), 0.0);
    }
}
