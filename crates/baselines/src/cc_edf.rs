//! Cycle-conserving EDF (Pillai & Shin, SOSP 2001).

use stadvs_power::{Processor, Speed};
use stadvs_sim::{ActiveJob, Governor, JobRecord, OverrunPolicy, SchedulerView, TaskSet};

/// Cycle-conserving EDF: maintain a per-task utilization estimate that uses
/// the *actual* execution time of the last completed job until the next
/// release, and run at the sum of the estimates.
///
/// The published rules:
///
/// * on release of a job of `τ_i`: `u_i ← C_i / T_i` (worst case must be
///   provisioned again),
/// * on completion of that job with actual demand `cc_i`:
///   `u_i ← cc_i / T_i`,
/// * at every scheduling point: speed `= Σ u_i` (clamped and quantized up).
///
/// Feasibility follows from the EDF utilization bound applied to the
/// inflated-at-release estimates (Pillai & Shin, Theorem 2).
///
/// **Assumes implicit deadlines** (`D_i = T_i`), like the published
/// algorithm: the utilization-bound argument does not extend to constrained
/// deadlines. Use the slack-analysis governor there.
///
/// Deadline safety: the selected speed never drops below `Σ u_i`, where
/// every incomplete job is provisioned at its full worst case; EDF at speed
/// `s` is feasible whenever total utilization `≤ s` (Pillai & Shin,
/// Theorem 2), so no implicit-deadline job can miss.
#[derive(Debug, Clone, Default)]
pub struct CcEdf {
    utilization: Vec<f64>,
}

impl CcEdf {
    /// Creates the governor.
    pub fn new() -> CcEdf {
        CcEdf::default()
    }

    fn total(&self) -> f64 {
        self.utilization.iter().sum()
    }
}

impl Governor for CcEdf {
    fn name(&self) -> &str {
        "cc-edf"
    }

    fn on_start(&mut self, tasks: &TaskSet, _processor: &Processor) {
        self.utilization = tasks.iter().map(|(_, t)| t.utilization()).collect();
    }

    fn on_release(&mut self, view: &SchedulerView<'_>, job: &ActiveJob) {
        let task = view.tasks().task(job.id.task);
        self.utilization[job.id.task.0] = task.utilization();
    }

    fn on_completion(&mut self, view: &SchedulerView<'_>, record: &JobRecord) {
        let task = view.tasks().task(record.id.task);
        self.utilization[record.id.task.0] = record.actual / task.period();
    }

    fn select_speed(&mut self, view: &SchedulerView<'_>, _job: &ActiveJob) -> Speed {
        Speed::clamped(self.total(), view.processor().min_speed())
    }

    fn overrun_policy(&self) -> OverrunPolicy {
        OverrunPolicy::CompleteAtMax
    }

    fn on_overrun(&mut self, view: &SchedulerView<'_>, job: &ActiveJob) {
        // The per-task utilization estimate undershot reality; pin it back
        // at the worst case until the task's completions earn it down.
        let task = view.tasks().task(job.id.task);
        if let Some(u) = self.utilization.get_mut(job.id.task.0) {
            *u = task.utilization();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stadvs_sim::{ConstantRatio, MissPolicy, SimConfig, Simulator, Task, WorstCase};

    fn sim(u: f64) -> Simulator {
        let tasks = TaskSet::new(vec![
            Task::new(2.0 * u, 4.0).unwrap(),
            Task::new(4.0 * u, 8.0).unwrap(),
        ])
        .unwrap();
        Simulator::new(
            tasks,
            Processor::ideal_continuous(),
            SimConfig::new(64.0)
                .unwrap()
                .with_miss_policy(MissPolicy::Fail),
        )
        .unwrap()
    }

    #[test]
    fn worst_case_behaviour_equals_static() {
        // With every job at WCET, cc-EDF's estimates never drop below the
        // worst case between releases... they drop only momentarily after a
        // completion until the next release of the same task, so energy is
        // at most static's.
        let out = sim(0.5).run(&mut CcEdf::new(), &WorstCase).unwrap();
        assert!(out.all_deadlines_met());
    }

    #[test]
    fn early_completions_reduce_energy_without_misses() {
        let full = sim(0.8)
            .run(&mut crate::NoDvs::new(), &ConstantRatio::new(0.5))
            .unwrap();
        let cc = sim(0.8)
            .run(&mut CcEdf::new(), &ConstantRatio::new(0.5))
            .unwrap();
        assert!(cc.all_deadlines_met());
        assert!(
            cc.total_energy() < 0.8 * full.total_energy(),
            "cc {} vs full {}",
            cc.total_energy(),
            full.total_energy()
        );
    }

    #[test]
    fn utilization_estimates_track_actuals() {
        let mut g = CcEdf::new();
        let tasks = TaskSet::new(vec![Task::new(2.0, 4.0).unwrap()]).unwrap();
        g.on_start(&tasks, &Processor::ideal_continuous());
        assert!((g.total() - 0.5).abs() < 1e-12);
    }
}
