//! The fleet engine's two determinism acceptance bars:
//!
//! 1. **Thread invariance** — the merged aggregate is bit-identical for
//!    1 worker and N workers (any schedule), pinned by comparing the
//!    rendered checkpoint text (every f64 as its IEEE bit pattern) and
//!    the rendered family CSV.
//! 2. **Resume invariance** — a sweep killed after k shards and resumed
//!    from its checkpoint finishes bit-identical to an uninterrupted
//!    run, even under a different thread count.

use std::path::PathBuf;

use proptest::prelude::*;
use stadvs_fleet::{
    fleet_table, run_fleet, Checkpoint, FleetConfig, FleetOutcome, FleetSpec, PeriodSpread,
};
use stadvs_workload::DemandPattern;

/// A one-cell fleet cheap enough to sweep repeatedly in debug builds.
fn small_spec(master: u64, governor: &str, replications: u64) -> FleetSpec {
    FleetSpec {
        master_seed: master,
        n_tasks: 4,
        horizon: 0.25,
        utilizations: vec![0.6],
        spreads: vec![PeriodSpread::new("narrow", 0.05, 0.2)],
        governors: vec![governor.to_string()],
        replications,
        pattern: DemandPattern::Uniform { min: 0.4, max: 1.0 },
    }
}

/// Every output bit of a run, as text: checkpoint render (aggregate
/// state, f64s as bit patterns) plus the family CSV.
fn fingerprint(spec: &FleetSpec, shard_size: u64, outcome: &FleetOutcome) -> String {
    let mut out = Checkpoint::render(spec, shard_size, outcome.shards_done, &outcome.aggregate);
    out.push_str(&fleet_table(spec, outcome).to_csv());
    out
}

fn sweep(spec: &FleetSpec, threads: usize) -> String {
    let config = FleetConfig {
        shard_size: 8,
        threads: Some(threads),
        ..FleetConfig::default()
    };
    let outcome = run_fleet(spec, &config).expect("fleet runs");
    assert!(outcome.complete());
    fingerprint(spec, config.shard_size, &outcome)
}

#[test]
fn threads_do_not_change_the_bits() {
    for master in [1, 2, 3] {
        // st-edf exercises the incremental slack analysis (with its
        // debug-build oracle re-check), so it gets a smaller fleet.
        for (governor, replications) in [("cc-edf", 48), ("st-edf", 16)] {
            let spec = small_spec(master, governor, replications);
            let serial = sweep(&spec, 1);
            let parallel = sweep(&spec, 4);
            assert_eq!(
                serial, parallel,
                "aggregate bits changed with thread count (master {master}, {governor})"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn any_master_seed_is_thread_invariant(master in any::<u64>()) {
        let spec = small_spec(master, "cc-edf", 24);
        prop_assert_eq!(sweep(&spec, 1), sweep(&spec, 3));
    }
}

fn temp_checkpoint(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("stadvs-fleet-{tag}-{}.json", std::process::id()))
}

#[test]
fn kill_and_resume_is_bit_identical_to_uninterrupted() {
    let spec = small_spec(9, "cc-edf", 40);
    let path = temp_checkpoint("resume");
    let _ = std::fs::remove_file(&path);

    let reference = {
        let config = FleetConfig {
            shard_size: 4,
            threads: Some(2),
            ..FleetConfig::default()
        };
        let outcome = run_fleet(&spec, &config).expect("uninterrupted run");
        fingerprint(&spec, config.shard_size, &outcome)
    };

    // "Kill" after 3 of 10 shards: the engine stops, leaving only the
    // checkpoint behind.
    let partial = run_fleet(
        &spec,
        &FleetConfig {
            shard_size: 4,
            threads: Some(2),
            checkpoint: Some(path.clone()),
            checkpoint_every: 1,
            max_shards: Some(3),
        },
    )
    .expect("partial run");
    assert!(!partial.complete());
    assert_eq!(partial.shards_done, 3);

    // Resume under a *different* thread count.
    let resumed = run_fleet(
        &spec,
        &FleetConfig {
            shard_size: 4,
            threads: Some(4),
            checkpoint: Some(path.clone()),
            ..FleetConfig::default()
        },
    )
    .expect("resumed run");
    assert_eq!(resumed.resumed_from, 3);
    assert!(resumed.complete());
    assert_eq!(
        fingerprint(&spec, 4, &resumed),
        reference,
        "resumed sweep diverged from the uninterrupted run"
    );

    // The final checkpoint on disk is complete, parseable and matches.
    let cp = Checkpoint::load(&path).expect("final checkpoint loads");
    cp.validate_against(&spec, 4).expect("matches the spec");
    assert_eq!(cp.shards_done, resumed.shards_total);

    let _ = std::fs::remove_file(&path);
}

#[test]
fn resume_refuses_a_different_spec_or_shard_size() {
    let spec = small_spec(11, "cc-edf", 16);
    let path = temp_checkpoint("mismatch");
    let _ = std::fs::remove_file(&path);

    run_fleet(
        &spec,
        &FleetConfig {
            shard_size: 4,
            threads: Some(1),
            checkpoint: Some(path.clone()),
            checkpoint_every: 1,
            max_shards: Some(2),
        },
    )
    .expect("partial run");

    let other = small_spec(12, "cc-edf", 16);
    let err = run_fleet(
        &other,
        &FleetConfig {
            shard_size: 4,
            checkpoint: Some(path.clone()),
            ..FleetConfig::default()
        },
    );
    assert!(err.is_err(), "a different master seed must be rejected");

    let err = run_fleet(
        &spec,
        &FleetConfig {
            shard_size: 8,
            checkpoint: Some(path.clone()),
            ..FleetConfig::default()
        },
    );
    assert!(err.is_err(), "a different shard size must be rejected");

    let _ = std::fs::remove_file(&path);
}
