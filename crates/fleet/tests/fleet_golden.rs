//! Golden fixture for the `fleet` experiment family.
//!
//! Pins the rendered aggregate CSV — grid values *and* the totals /
//! quantile-sketch notes — byte-for-byte for a fixed small fleet. The
//! whole pipeline is deterministic (counter-based seeds, pinned shard
//! merge, compensated sums), so any change to simulation, aggregation or
//! rendering semantics shows up here as a readable diff.
//!
//! Regenerate (after an intentional semantic change) with:
//!
//! ```text
//! STADVS_BLESS=1 cargo test -p stadvs-fleet --test fleet_golden
//! ```

use stadvs_fleet::{fleet_table, run_fleet, FleetConfig, FleetSpec};

const FIXTURE: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/fleet_family.csv");

/// The committed artifact: CSV grid first, then the notes as `# `-prefixed
/// trailer lines (CSV-comment convention, so the file still loads as CSV).
fn render() -> String {
    // 24 cells × 8 replications: every governor × utilization × spread
    // combination exercised, small enough for debug-build CI.
    let spec = FleetSpec::tiny(42).with_nodes(192);
    let config = FleetConfig {
        shard_size: 32,
        ..FleetConfig::default()
    };
    let outcome = run_fleet(&spec, &config).expect("fleet runs");
    assert!(outcome.complete());
    let table = fleet_table(&spec, &outcome);
    let mut out = table.to_csv();
    for note in &table.notes {
        out.push_str("# ");
        out.push_str(note);
        out.push('\n');
    }
    out
}

#[test]
fn fleet_family_matches_committed_csv() {
    let actual = render();
    if std::env::var("STADVS_BLESS").is_ok_and(|v| v == "1") {
        std::fs::create_dir_all(std::path::Path::new(FIXTURE).parent().expect("parent"))
            .expect("create golden dir");
        std::fs::write(FIXTURE, &actual).expect("write golden fixture");
        eprintln!("blessed {FIXTURE}");
        return;
    }
    let expected = match std::fs::read_to_string(FIXTURE) {
        Ok(text) => text,
        Err(_) => {
            // First run on a fresh checkout: create the fixture so it can
            // be reviewed and committed, instead of failing opaquely.
            std::fs::create_dir_all(std::path::Path::new(FIXTURE).parent().expect("parent"))
                .expect("create golden dir");
            std::fs::write(FIXTURE, &actual).expect("write golden fixture");
            eprintln!("created missing golden fixture {FIXTURE}; review and commit it");
            return;
        }
    };
    assert_eq!(
        expected, actual,
        "fleet family output diverged from the golden CSV"
    );
}

/// Two consecutive in-process runs must agree byte-for-byte.
#[test]
fn fleet_family_is_deterministic_across_consecutive_runs() {
    assert_eq!(render(), render());
}
