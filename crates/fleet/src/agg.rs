//! Online fleet aggregation: per-cell compensated sums, per-governor
//! quantile sketches, and fleet-wide totals — all in memory bounded by
//! the grid size, never by the node count.
//!
//! The engine builds one [`FleetAggregate`] per shard (nodes folded in
//! node-index order) and merges shards in shard-index order, so the
//! result is bit-identical for any thread count. A checkpointed
//! aggregate restores through the same public fields it exposes here.

use crate::sketch::{NeumaierSum, QuantileSketch};
use crate::spec::FleetSpec;

/// Lower edge of the normalized-energy sketch range.
pub const SKETCH_LO: f64 = 0.0;
/// Upper edge of the normalized-energy sketch range (normalized energy
/// above `no-dvs` by more than 50 % lands in the overflow counter).
pub const SKETCH_HI: f64 = 1.5;
/// Bucket count of the normalized-energy sketch: width `1/64`, so
/// quantile estimates are exact to within `0.015625`.
pub const SKETCH_BUCKETS: usize = 96;

/// Per-grid-cell statistics.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CellStats {
    /// Feasible nodes recorded into this cell.
    pub count: u64,
    /// Nodes whose generated task set was infeasible on the processor.
    pub infeasible: u64,
    /// Deadline misses across the cell's governor runs (must stay zero:
    /// every swept governor is hard-real-time).
    pub misses: u64,
    /// Compensated sum of normalized energy.
    pub norm_sum: NeumaierSum,
    /// Compensated sum of speed switches per completed job.
    pub spj_sum: NeumaierSum,
}

impl CellStats {
    /// Mean normalized energy (NaN when the cell is empty).
    pub fn mean_normalized(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.norm_sum.value() / self.count as f64
        }
    }

    /// Mean switches per job (NaN when the cell is empty).
    pub fn mean_switches_per_job(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.spj_sum.value() / self.count as f64
        }
    }

    /// Folds `other` into this cell.
    pub fn merge(&mut self, other: &CellStats) {
        self.count += other.count;
        self.infeasible += other.infeasible;
        self.misses += other.misses;
        self.norm_sum.merge(&other.norm_sum);
        self.spj_sum.merge(&other.spj_sum);
    }
}

/// Everything one node run contributes to the aggregate, as plain
/// `Copy` data (the engine's per-node loop stays allocation-free).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeOutcome {
    /// Flat cell index of the node.
    pub cell: usize,
    /// Governor axis index of the node.
    pub governor: usize,
    /// Energy normalized to `no-dvs` on the same workload.
    pub normalized: f64,
    /// Speed switches per completed job.
    pub switches_per_job: f64,
    /// Deadline misses in the governor run.
    pub misses: u64,
    /// Scheduler events processed (baseline + governor runs).
    pub events: u64,
    /// Jobs completed in the governor run.
    pub jobs: u64,
    /// Simulations executed for this node.
    pub sims: u64,
}

/// The streaming aggregate of a (partial or complete) fleet sweep.
///
/// All fields are public so the checkpoint codec can serialize and
/// restore state losslessly; the engine and the codec are the only
/// writers.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetAggregate {
    /// One entry per grid cell, indexed by flat cell index.
    pub cells: Vec<CellStats>,
    /// One normalized-energy sketch per governor axis point.
    pub sketches: Vec<QuantileSketch>,
    /// Nodes processed (feasible + infeasible).
    pub nodes: u64,
    /// Nodes whose task set was infeasible.
    pub infeasible: u64,
    /// Total deadline misses.
    pub misses: u64,
    /// Total scheduler events processed.
    pub events: u64,
    /// Total jobs completed in governor runs.
    pub jobs: u64,
    /// Total simulations executed.
    pub sims: u64,
}

impl FleetAggregate {
    /// An empty aggregate shaped for `spec`.
    pub fn new(spec: &FleetSpec) -> FleetAggregate {
        FleetAggregate {
            cells: vec![CellStats::default(); spec.cell_count()],
            sketches: (0..spec.governors.len())
                .map(|_| QuantileSketch::new(SKETCH_LO, SKETCH_HI, SKETCH_BUCKETS))
                .collect(),
            nodes: 0,
            infeasible: 0,
            misses: 0,
            events: 0,
            jobs: 0,
            sims: 0,
        }
    }

    /// Records one feasible node run.
    pub fn record(&mut self, o: &NodeOutcome) {
        let cell = &mut self.cells[o.cell];
        cell.count += 1;
        cell.misses += o.misses;
        cell.norm_sum.add(o.normalized);
        cell.spj_sum.add(o.switches_per_job);
        self.sketches[o.governor].record(o.normalized);
        self.nodes += 1;
        self.misses += o.misses;
        self.events += o.events;
        self.jobs += o.jobs;
        self.sims += o.sims;
    }

    /// Records one node whose generated task set was infeasible (density
    /// above 1 on the ideal processor) and therefore not simulated.
    pub fn record_infeasible(&mut self, cell: usize) {
        self.cells[cell].infeasible += 1;
        self.nodes += 1;
        self.infeasible += 1;
    }

    /// Folds `other` into this aggregate, cell by cell and sketch by
    /// sketch. Callers must present merges in a pinned order (the shard
    /// merge does) for bit-determinism of the f64 sums.
    ///
    /// # Panics
    ///
    /// Panics if the two aggregates have different shapes.
    pub fn merge(&mut self, other: &FleetAggregate) {
        assert_eq!(self.cells.len(), other.cells.len(), "cell count mismatch");
        assert_eq!(
            self.sketches.len(),
            other.sketches.len(),
            "sketch count mismatch"
        );
        for (a, b) in self.cells.iter_mut().zip(&other.cells) {
            a.merge(b);
        }
        for (a, b) in self.sketches.iter_mut().zip(&other.sketches) {
            a.merge(b);
        }
        self.nodes += other.nodes;
        self.infeasible += other.infeasible;
        self.misses += other.misses;
        self.events += other.events;
        self.jobs += other.jobs;
        self.sims += other.sims;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::FleetSpec;

    fn outcome(cell: usize, governor: usize, normalized: f64) -> NodeOutcome {
        NodeOutcome {
            cell,
            governor,
            normalized,
            switches_per_job: normalized * 2.0,
            misses: 0,
            events: 100,
            jobs: 10,
            sims: 2,
        }
    }

    #[test]
    fn shard_merge_equals_sequential_recording() {
        let spec = FleetSpec::tiny(1);
        let outcomes: Vec<NodeOutcome> = (0..200)
            .map(|i| {
                outcome(
                    i % spec.cell_count(),
                    i % spec.governors.len(),
                    0.4 + (i % 7) as f64 * 0.05,
                )
            })
            .collect();

        let mut whole = FleetAggregate::new(&spec);
        for o in &outcomes {
            whole.record(o);
        }

        let mut left = FleetAggregate::new(&spec);
        let mut right = FleetAggregate::new(&spec);
        for o in &outcomes[..77] {
            left.record(o);
        }
        for o in &outcomes[77..] {
            right.record(o);
        }
        left.merge(&right);

        assert_eq!(whole.nodes, left.nodes);
        assert_eq!(whole.events, left.events);
        for (a, b) in whole.cells.iter().zip(&left.cells) {
            assert_eq!(a.count, b.count);
            assert_eq!(a.norm_sum.sum.to_bits(), b.norm_sum.sum.to_bits());
        }
        for (a, b) in whole.sketches.iter().zip(&left.sketches) {
            assert_eq!(a.count(), b.count());
        }
    }

    #[test]
    fn infeasible_nodes_count_without_stats() {
        let spec = FleetSpec::tiny(1);
        let mut agg = FleetAggregate::new(&spec);
        agg.record_infeasible(3);
        assert_eq!(agg.nodes, 1);
        assert_eq!(agg.infeasible, 1);
        assert_eq!(agg.cells[3].infeasible, 1);
        assert_eq!(agg.cells[3].count, 0);
        assert!(agg.cells[3].mean_normalized().is_nan());
    }
}
