//! The versioned, self-describing resume format.
//!
//! Line-oriented JSON (one object per line, hand-rolled like the rest of
//! the repo's JSON surfaces — `serde_json` is not a dependency): a
//! header identifying the schema, spec hash and progress, a totals line,
//! one line per grid cell, and one line per governor sketch. Every f64
//! is stored as its IEEE-754 bit pattern in hex, so a loaded aggregate
//! is *bit-identical* to the saved one — the property that makes a
//! resumed sweep indistinguishable from an uninterrupted run.
//!
//! Writes are atomic (temp file + rename), so a checkpoint on disk is
//! always a complete, parseable snapshot even if the process dies
//! mid-save.

use std::fs;
use std::path::Path;

use crate::agg::{CellStats, FleetAggregate};
use crate::sketch::{NeumaierSum, QuantileSketch, SketchState};
use crate::spec::FleetSpec;
use crate::FleetError;

/// The schema tag of the current checkpoint format.
pub const SCHEMA: &str = "stadvs-fleet-checkpoint-v1";

/// A parsed checkpoint: progress metadata plus the merged aggregate of
/// the completed shard prefix.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// [`FleetSpec::spec_hash`] of the spec that produced this file.
    pub spec_hash: u64,
    /// Master seed of that spec (redundant with the hash; kept for
    /// error messages).
    pub master_seed: u64,
    /// Total nodes of that spec.
    pub nodes: u64,
    /// Shard size the run was cut with (resume must reuse it: shard
    /// boundaries define the merged prefix).
    pub shard_size: u64,
    /// Shards merged into [`Checkpoint::aggregate`].
    pub shards_done: usize,
    /// The merged aggregate over shards `0..shards_done`.
    pub aggregate: FleetAggregate,
}

fn bad(msg: String) -> FleetError {
    FleetError::Checkpoint(msg)
}

/// The raw text after `"key":` in `line`.
fn raw_value<'a>(line: &'a str, key: &str) -> Result<&'a str, FleetError> {
    let pat = format!("\"{key}\":");
    let at = line
        .find(&pat)
        .ok_or_else(|| bad(format!("missing field {key:?}")))?;
    Ok(line[at + pat.len()..].trim_start())
}

fn field_u64(line: &str, key: &str) -> Result<u64, FleetError> {
    let rest = raw_value(line, key)?;
    let end = rest.find([',', '}', ']']).unwrap_or(rest.len());
    rest[..end]
        .trim()
        .parse()
        .map_err(|_| bad(format!("field {key:?} is not an integer")))
}

fn field_str(line: &str, key: &str) -> Result<String, FleetError> {
    let rest = raw_value(line, key)?;
    let rest = rest
        .strip_prefix('"')
        .ok_or_else(|| bad(format!("field {key:?} is not a string")))?;
    let end = rest
        .find('"')
        .ok_or_else(|| bad(format!("field {key:?} is unterminated")))?;
    Ok(rest[..end].to_string())
}

fn hex_bits(text: &str, key: &str) -> Result<f64, FleetError> {
    u64::from_str_radix(text, 16)
        .map(f64::from_bits)
        .map_err(|_| bad(format!("field {key:?} is not an f64 bit pattern")))
}

fn field_bits(line: &str, key: &str) -> Result<f64, FleetError> {
    hex_bits(&field_str(line, key)?, key)
}

/// The text between `[` and `]` after `"key":` (no nested brackets in
/// this format).
fn bracket<'a>(line: &'a str, key: &str) -> Result<&'a str, FleetError> {
    let rest = raw_value(line, key)?;
    let rest = rest
        .strip_prefix('[')
        .ok_or_else(|| bad(format!("field {key:?} is not an array")))?;
    let end = rest
        .find(']')
        .ok_or_else(|| bad(format!("field {key:?} is unterminated")))?;
    Ok(&rest[..end])
}

/// A `["<sum bits>", "<compensation bits>"]` pair.
fn field_pair(line: &str, key: &str) -> Result<NeumaierSum, FleetError> {
    let inner = bracket(line, key)?;
    let mut parts = inner.split(',').map(|t| t.trim().trim_matches('"'));
    let sum = hex_bits(
        parts
            .next()
            .ok_or_else(|| bad(format!("field {key:?} pair is short")))?,
        key,
    )?;
    let compensation = hex_bits(
        parts
            .next()
            .ok_or_else(|| bad(format!("field {key:?} pair is short")))?,
        key,
    )?;
    if parts.next().is_some() {
        return Err(bad(format!("field {key:?} pair has extra entries")));
    }
    Ok(NeumaierSum { sum, compensation })
}

fn field_u64_array(line: &str, key: &str) -> Result<Vec<u64>, FleetError> {
    let inner = bracket(line, key)?;
    if inner.trim().is_empty() {
        return Ok(Vec::new());
    }
    inner
        .split(',')
        .map(|t| {
            t.trim()
                .parse()
                .map_err(|_| bad(format!("field {key:?} has a non-integer entry")))
        })
        .collect()
}

fn pair_json(s: &NeumaierSum) -> String {
    format!(
        "[\"{:016x}\", \"{:016x}\"]",
        s.sum.to_bits(),
        s.compensation.to_bits()
    )
}

impl Checkpoint {
    /// Renders a checkpoint snapshot as its canonical text. Also the
    /// bit-exact comparison form used by the determinism tests: two
    /// runs agree iff their rendered checkpoints are equal strings.
    pub fn render(
        spec: &FleetSpec,
        shard_size: u64,
        shards_done: usize,
        agg: &FleetAggregate,
    ) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"schema\": \"{SCHEMA}\", \"spec_hash\": \"{:016x}\", \"master_seed\": {}, \
             \"nodes\": {}, \"shard_size\": {}, \"shards_done\": {}, \"cells\": {}, \
             \"governors\": {}}}\n",
            spec.spec_hash(),
            spec.master_seed,
            spec.nodes(),
            shard_size,
            shards_done,
            agg.cells.len(),
            agg.sketches.len(),
        ));
        out.push_str(&format!(
            "{{\"totals\": {{\"done\": {}, \"infeasible\": {}, \"misses\": {}, \"events\": {}, \
             \"jobs\": {}, \"sims\": {}}}}}\n",
            agg.nodes, agg.infeasible, agg.misses, agg.events, agg.jobs, agg.sims,
        ));
        for (i, cell) in agg.cells.iter().enumerate() {
            out.push_str(&format!(
                "{{\"cell\": {i}, \"count\": {}, \"infeasible\": {}, \"misses\": {}, \
                 \"norm\": {}, \"spj\": {}}}\n",
                cell.count,
                cell.infeasible,
                cell.misses,
                pair_json(&cell.norm_sum),
                pair_json(&cell.spj_sum),
            ));
        }
        for (i, sketch) in agg.sketches.iter().enumerate() {
            let s = sketch.state();
            let buckets: Vec<String> = s.buckets.iter().map(|b| b.to_string()).collect();
            out.push_str(&format!(
                "{{\"sketch\": {i}, \"governor\": \"{}\", \"lo\": \"{:016x}\", \
                 \"hi\": \"{:016x}\", \"underflow\": {}, \"overflow\": {}, \
                 \"min\": \"{:016x}\", \"max\": \"{:016x}\", \"sum\": {}, \"buckets\": [{}]}}\n",
                spec.governors.get(i).map(String::as_str).unwrap_or("?"),
                s.lo.to_bits(),
                s.hi.to_bits(),
                s.underflow,
                s.overflow,
                s.min.to_bits(),
                s.max.to_bits(),
                pair_json(&s.sum),
                buckets.join(", "),
            ));
        }
        out
    }

    /// Atomically writes a checkpoint snapshot to `path` (temp file in
    /// the same directory, then rename).
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::Io`] if the write or rename fails.
    pub fn save(
        path: &Path,
        spec: &FleetSpec,
        shard_size: u64,
        shards_done: usize,
        agg: &FleetAggregate,
    ) -> Result<(), FleetError> {
        let text = Checkpoint::render(spec, shard_size, shards_done, agg);
        let mut tmp = path.as_os_str().to_os_string();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        fs::write(&tmp, text)?;
        fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Parses the checkpoint at `path`.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::Io`] if the file cannot be read and
    /// [`FleetError::Checkpoint`] if it is malformed.
    pub fn load(path: &Path) -> Result<Checkpoint, FleetError> {
        Checkpoint::parse(&fs::read_to_string(path)?)
    }

    /// Parses checkpoint text (see [`Checkpoint::render`]).
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::Checkpoint`] describing the first problem.
    pub fn parse(text: &str) -> Result<Checkpoint, FleetError> {
        let mut lines = text.lines();
        let header = lines.next().ok_or_else(|| bad("empty file".to_string()))?;
        let schema = field_str(header, "schema")?;
        if schema != SCHEMA {
            return Err(bad(format!("schema {schema:?}, expected {SCHEMA:?}")));
        }
        let spec_hash = u64::from_str_radix(&field_str(header, "spec_hash")?, 16)
            .map_err(|_| bad("spec_hash is not a hex hash".to_string()))?;
        let master_seed = field_u64(header, "master_seed")?;
        let nodes = field_u64(header, "nodes")?;
        let shard_size = field_u64(header, "shard_size")?;
        let shards_done = usize::try_from(field_u64(header, "shards_done")?)
            .map_err(|_| bad("shards_done out of range".to_string()))?;
        let n_cells = field_u64(header, "cells")? as usize;
        let n_sketches = field_u64(header, "governors")? as usize;

        let totals = lines
            .next()
            .ok_or_else(|| bad("missing totals line".to_string()))?;
        if raw_value(totals, "totals").is_err() {
            return Err(bad("second line is not the totals line".to_string()));
        }

        let mut cells = Vec::with_capacity(n_cells);
        for i in 0..n_cells {
            let line = lines
                .next()
                .ok_or_else(|| bad(format!("missing cell line {i}")))?;
            let idx = field_u64(line, "cell")? as usize;
            if idx != i {
                return Err(bad(format!("cell line {i} carries index {idx}")));
            }
            cells.push(CellStats {
                count: field_u64(line, "count")?,
                infeasible: field_u64(line, "infeasible")?,
                misses: field_u64(line, "misses")?,
                norm_sum: field_pair(line, "norm")?,
                spj_sum: field_pair(line, "spj")?,
            });
        }

        let mut sketches = Vec::with_capacity(n_sketches);
        for i in 0..n_sketches {
            let line = lines
                .next()
                .ok_or_else(|| bad(format!("missing sketch line {i}")))?;
            let idx = field_u64(line, "sketch")? as usize;
            if idx != i {
                return Err(bad(format!("sketch line {i} carries index {idx}")));
            }
            let state = SketchState {
                lo: field_bits(line, "lo")?,
                hi: field_bits(line, "hi")?,
                buckets: field_u64_array(line, "buckets")?,
                underflow: field_u64(line, "underflow")?,
                overflow: field_u64(line, "overflow")?,
                min: field_bits(line, "min")?,
                max: field_bits(line, "max")?,
                sum: field_pair(line, "sum")?,
            };
            sketches.push(QuantileSketch::from_state(state).map_err(bad)?);
        }
        if lines.next().is_some() {
            return Err(bad("trailing lines after the sketch block".to_string()));
        }

        let aggregate = FleetAggregate {
            cells,
            sketches,
            nodes: field_u64(totals, "done")?,
            infeasible: field_u64(totals, "infeasible")?,
            misses: field_u64(totals, "misses")?,
            events: field_u64(totals, "events")?,
            jobs: field_u64(totals, "jobs")?,
            sims: field_u64(totals, "sims")?,
        };
        Ok(Checkpoint {
            spec_hash,
            master_seed,
            nodes,
            shard_size,
            shards_done,
            aggregate,
        })
    }

    /// Checks that this checkpoint belongs to `spec` swept with
    /// `shard_size`, including internal consistency of the progress
    /// counters.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::Checkpoint`] naming the mismatch.
    pub fn validate_against(&self, spec: &FleetSpec, shard_size: u64) -> Result<(), FleetError> {
        if self.spec_hash != spec.spec_hash() {
            return Err(bad(format!(
                "spec hash {:016x} does not match the requested sweep ({:016x})",
                self.spec_hash,
                spec.spec_hash()
            )));
        }
        if self.master_seed != spec.master_seed {
            return Err(bad("master seed mismatch".to_string()));
        }
        if self.nodes != spec.nodes() {
            return Err(bad(format!(
                "checkpoint covers {} nodes, spec has {}",
                self.nodes,
                spec.nodes()
            )));
        }
        if self.shard_size != shard_size {
            return Err(bad(format!(
                "checkpoint used shard_size {}, run requested {shard_size} \
                 (shard boundaries define the merged prefix)",
                self.shard_size
            )));
        }
        if self.aggregate.cells.len() != spec.cell_count()
            || self.aggregate.sketches.len() != spec.governors.len()
        {
            return Err(bad("aggregate shape does not match the spec".to_string()));
        }
        let total_shards = self.nodes.div_ceil(shard_size.max(1));
        if self.shards_done as u64 > total_shards {
            return Err(bad(format!(
                "shards_done {} exceeds the fleet's {total_shards} shards",
                self.shards_done
            )));
        }
        let expected_nodes = (self.shards_done as u64 * shard_size).min(self.nodes);
        if self.aggregate.nodes != expected_nodes {
            return Err(bad(format!(
                "aggregate covers {} nodes but {} shards of {} imply {expected_nodes}",
                self.aggregate.nodes, self.shards_done, self.shard_size
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::NodeOutcome;
    use crate::spec::FleetSpec;

    fn sample() -> (FleetSpec, FleetAggregate) {
        let spec = FleetSpec::tiny(42);
        let mut agg = FleetAggregate::new(&spec);
        for i in 0..16u64 {
            agg.record(&NodeOutcome {
                cell: (i as usize) % spec.cell_count(),
                governor: (i as usize) % spec.governors.len(),
                normalized: 0.5 + (i % 5) as f64 * 0.07,
                switches_per_job: (i % 3) as f64,
                misses: 0,
                events: 250,
                jobs: 12,
                sims: 2,
            });
        }
        (spec, agg)
    }

    #[test]
    fn render_parse_round_trips_bit_exactly() {
        let (spec, agg) = sample();
        let text = Checkpoint::render(&spec, 8, 2, &agg);
        let cp = Checkpoint::parse(&text).expect("round trip parses");
        assert_eq!(cp.spec_hash, spec.spec_hash());
        assert_eq!(cp.shards_done, 2);
        assert_eq!(cp.aggregate, agg);
        // Re-rendering the parsed state reproduces the exact text.
        assert_eq!(Checkpoint::render(&spec, 8, 2, &cp.aggregate), text);
    }

    #[test]
    fn validates_matching_spec_and_rejects_mismatches() {
        let (spec, agg) = sample();
        let cp = Checkpoint::parse(&Checkpoint::render(&spec, 8, 2, &agg)).expect("parses");
        cp.validate_against(&spec, 8).expect("matches");
        assert!(cp.validate_against(&spec, 16).is_err(), "shard size");
        assert!(
            cp.validate_against(&FleetSpec::tiny(43), 8).is_err(),
            "hash"
        );
    }

    #[test]
    fn progress_counters_must_be_consistent() {
        let (spec, agg) = sample();
        // 2 shards × 8 nodes = 16 recorded nodes: consistent. 3 shards
        // would imply 24.
        let cp = Checkpoint::parse(&Checkpoint::render(&spec, 8, 3, &agg)).expect("parses");
        assert!(cp.validate_against(&spec, 8).is_err());
    }

    #[test]
    fn malformed_text_is_rejected() {
        let (spec, agg) = sample();
        let text = Checkpoint::render(&spec, 8, 2, &agg);
        assert!(Checkpoint::parse("").is_err());
        assert!(Checkpoint::parse("{\"schema\": \"bogus\"}").is_err());
        let truncated: String = text.lines().take(5).collect::<Vec<_>>().join("\n");
        assert!(Checkpoint::parse(&truncated).is_err());
        let tampered = text.replace("\"cell\": 1,", "\"cell\": 9,");
        assert!(Checkpoint::parse(&tampered).is_err());
    }

    #[test]
    fn save_and_load_round_trip_on_disk() {
        let (spec, agg) = sample();
        let dir = std::env::temp_dir();
        let path = dir.join(format!("stadvs-fleet-cp-{}.json", std::process::id()));
        Checkpoint::save(&path, &spec, 8, 2, &agg).expect("saves");
        let cp = Checkpoint::load(&path).expect("loads");
        assert_eq!(cp.aggregate, agg);
        let _ = std::fs::remove_file(&path);
    }
}
