//! Rendering of the `fleet` experiment family: the merged aggregate as
//! a `stadvs_experiments::Table` (markdown + golden-pinned CSV).

use crate::engine::FleetOutcome;
use crate::spec::FleetSpec;
use stadvs_analysis::compensated_sum;
use stadvs_experiments::Table;

/// The fleet sweep as a table: one row per utilization × period-spread
/// cell (plus a final mean row), one column per governor, values are
/// per-cell mean normalized energy. Notes carry the fleet totals and the
/// per-governor quantile-sketch summaries.
///
/// Row, column and note order are pure functions of the spec, and every
/// value's bits are pinned by the determinism contract — the CSV
/// rendering is golden-diffable.
pub fn fleet_table(spec: &FleetSpec, outcome: &FleetOutcome) -> Table {
    let agg = &outcome.aggregate;
    let governors = spec.governors.len();
    let mut table = Table::new(
        "fleet — normalized energy across the utilization × period-spread grid",
        "U/spread",
        spec.governors.clone(),
    );

    let cells_per_row = governors;
    for row in 0..agg.cells.len() / cells_per_row {
        let key = spec.cell_key(row * cells_per_row);
        let values: Vec<f64> = (0..governors)
            .map(|g| agg.cells[row * cells_per_row + g].mean_normalized())
            .collect();
        table.push_row(key, values);
    }

    // Column means over the per-cell means, in pinned (row) order via the
    // compensated-sum discipline — never a bare `.sum()` over floats.
    let mean_row: Vec<f64> = (0..governors)
        .map(|g| {
            let col: Vec<f64> = table
                .rows
                .iter()
                .map(|(_, values)| values[g])
                .filter(|v| v.is_finite())
                .collect();
            if col.is_empty() {
                f64::NAN
            } else {
                compensated_sum(&col) / col.len() as f64
            }
        })
        .collect();
    table.push_row("mean", mean_row);

    table.note(format!(
        "nodes {} / {} (shards {} / {}{})",
        agg.nodes,
        spec.nodes(),
        outcome.shards_done,
        outcome.shards_total,
        if outcome.complete() {
            ""
        } else {
            "; PARTIAL sweep"
        },
    ));
    table.note(format!(
        "infeasible {}, misses {}, sims {}, events {}, jobs {}",
        agg.infeasible, agg.misses, agg.sims, agg.events, agg.jobs,
    ));
    for (g, sketch) in agg.sketches.iter().enumerate() {
        if sketch.count() == 0 {
            table.note(format!("{}: no feasible nodes", spec.governors[g]));
            continue;
        }
        table.note(format!(
            "{}: mean {:.4}, p10 {:.4}, p50 {:.4}, p90 {:.4}, min {:.4}, max {:.4} \
             (n {}, quantile error <= {:.4})",
            spec.governors[g],
            sketch.mean(),
            sketch.quantile(0.10),
            sketch.quantile(0.50),
            sketch.quantile(0.90),
            sketch.min(),
            sketch.max(),
            sketch.count(),
            sketch.bucket_width() / 2.0,
        ));
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::{FleetAggregate, NodeOutcome};
    use crate::spec::FleetSpec;

    fn fake_outcome(spec: &FleetSpec) -> FleetOutcome {
        let mut agg = FleetAggregate::new(spec);
        for i in 0..(spec.cell_count() * 2) {
            agg.record(&NodeOutcome {
                cell: i % spec.cell_count(),
                governor: i % spec.governors.len(),
                normalized: 0.6 + (i % 4) as f64 * 0.05,
                switches_per_job: 1.0,
                misses: 0,
                events: 100,
                jobs: 10,
                sims: 2,
            });
        }
        FleetOutcome {
            aggregate: agg,
            shards_done: 3,
            shards_total: 3,
            resumed_from: 0,
        }
    }

    #[test]
    fn table_shape_follows_the_grid() {
        let spec = FleetSpec::tiny(5);
        let table = fleet_table(&spec, &fake_outcome(&spec));
        // 3 utilizations × 2 spreads rows, plus the mean row.
        assert_eq!(table.rows.len(), 7);
        assert_eq!(table.columns, spec.governors);
        assert_eq!(table.rows[0].0, "0.55/narrow");
        assert_eq!(table.rows[5].0, "0.85/wide");
        assert_eq!(table.rows[6].0, "mean");
        // Totals + one note per governor.
        assert_eq!(table.notes.len(), 2 + spec.governors.len());
    }

    #[test]
    fn partial_sweeps_are_flagged() {
        let spec = FleetSpec::tiny(5);
        let mut outcome = fake_outcome(&spec);
        outcome.shards_done = 1;
        let table = fleet_table(&spec, &outcome);
        assert!(table.notes[0].contains("PARTIAL"));
    }
}
