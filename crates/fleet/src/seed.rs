//! Splittable counter-based per-node seed derivation.
//!
//! A fleet node's seed must be a pure function of `(master_seed,
//! node_index)`: workers claim shards in nondeterministic order, resumed
//! runs start mid-fleet, and a single node must be reproducible in
//! isolation for debugging. Sequential RNG streams cannot do any of
//! that, so seeds come from the SplitMix64 output function applied to a
//! golden-ratio-spaced counter — exactly the construction SplitMix64
//! itself uses per step, evaluated at an arbitrary step index instead of
//! sequentially.

/// The golden-ratio increment of SplitMix64 (`2^64 / φ`, odd).
const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// The SplitMix64 output function: a bijective avalanche mix, so distinct
/// counters map to distinct seeds.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The workload seed of fleet node `node_index` under `master_seed`.
///
/// Equals the `node_index`-th output of a SplitMix64 generator seeded
/// with `master_seed`, computed directly (counter-based, no sequential
/// state): `mix(master_seed + (node_index + 1) · GOLDEN)`. Within one
/// master seed the map is injective in the index, so no two nodes of a
/// fleet share a workload.
pub fn node_seed(master_seed: u64, node_index: u64) -> u64 {
    mix(master_seed.wrapping_add(node_index.wrapping_add(1).wrapping_mul(GOLDEN)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn deterministic() {
        assert_eq!(node_seed(42, 0), node_seed(42, 0));
        assert_eq!(node_seed(42, 123_456), node_seed(42, 123_456));
    }

    #[test]
    fn injective_in_the_index() {
        let seeds: BTreeSet<u64> = (0..100_000).map(|i| node_seed(7, i)).collect();
        assert_eq!(seeds.len(), 100_000);
    }

    #[test]
    fn master_seeds_decorrelate() {
        let a: Vec<u64> = (0..64).map(|i| node_seed(1, i)).collect();
        let b: Vec<u64> = (0..64).map(|i| node_seed(2, i)).collect();
        assert!(a.iter().zip(&b).all(|(x, y)| x != y));
    }

    #[test]
    fn mix_avalanches_low_bits() {
        // Consecutive indices must not produce correlated low bits (the
        // task-set generator multiplies the seed, but feeds StdRng which
        // keys on all 64 bits).
        let low: BTreeSet<u64> = (0..256).map(|i| node_seed(0, i) & 0xFFFF).collect();
        assert!(
            low.len() > 200,
            "low 16 bits collide too often: {}",
            low.len()
        );
    }
}
