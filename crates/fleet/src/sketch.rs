//! Online accumulators: Neumaier-compensated sums and a deterministic
//! fixed-bucket quantile sketch.
//!
//! Both are **mergeable with a pinned order**: the fleet engine folds
//! nodes into shard-local accumulators in node-index order, then merges
//! shard accumulators in shard-index order, so every f64 operation
//! sequence — and therefore every output bit — is independent of thread
//! count. The checkpoint format serializes both losslessly (f64 state as
//! IEEE bit patterns), which is what makes a resumed sweep bit-identical
//! to an uninterrupted one.

/// A running Neumaier-compensated sum: the incremental form of
/// `stadvs_analysis::compensated_sum`, with the `(sum, compensation)`
/// state held explicitly so it can be checkpointed and merged.
///
/// Adding the same values in the same order as `compensated_sum` yields
/// the same bits (pinned by a test below). Merging appends the other
/// state's two components to this accumulation — deterministic as long
/// as merges happen in a pinned order, which the shard merge guarantees.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct NeumaierSum {
    /// The running sum.
    pub sum: f64,
    /// The running error-compensation term.
    pub compensation: f64,
}

impl NeumaierSum {
    /// The empty sum.
    pub const ZERO: NeumaierSum = NeumaierSum {
        sum: 0.0,
        compensation: 0.0,
    };

    /// Adds one term.
    pub fn add(&mut self, v: f64) {
        let t = self.sum + v;
        if self.sum.abs() >= v.abs() {
            self.compensation += (self.sum - t) + v;
        } else {
            self.compensation += (v - t) + self.sum;
        }
        self.sum = t;
    }

    /// Folds another accumulator into this one (adds its sum, then its
    /// compensation — a fixed two-term order, so merging is deterministic
    /// whenever the merge sequence is).
    pub fn merge(&mut self, other: &NeumaierSum) {
        self.add(other.sum);
        self.add(other.compensation);
    }

    /// The compensated value. Mirrors `compensated_sum`: once the running
    /// sum leaves the finite range the compensation term is NaN and the
    /// uncompensated sum is the right answer.
    pub fn value(&self) -> f64 {
        if self.sum.is_finite() {
            self.sum + self.compensation
        } else {
            self.sum
        }
    }
}

/// The full state of a [`QuantileSketch`], for checkpointing.
#[derive(Debug, Clone, PartialEq)]
pub struct SketchState {
    /// Inclusive lower edge of the bucketed range.
    pub lo: f64,
    /// Exclusive upper edge of the bucketed range.
    pub hi: f64,
    /// Per-bucket counts over `[lo, hi)`, equal width.
    pub buckets: Vec<u64>,
    /// Count of recorded values below `lo`.
    pub underflow: u64,
    /// Count of recorded values at or above `hi`.
    pub overflow: u64,
    /// Smallest recorded value (`+∞` when empty).
    pub min: f64,
    /// Largest recorded value (`-∞` when empty).
    pub max: f64,
    /// Compensated sum of every recorded value.
    pub sum: NeumaierSum,
}

/// A deterministic fixed-bucket quantile sketch over a known range.
///
/// `B` equal-width buckets over `[lo, hi)` plus underflow/overflow
/// counters and exact min/max/sum. Memory is `O(B)` regardless of how
/// many values stream in, recording is one integer increment, and two
/// sketches merge by adding counts — all order-insensitive on the
/// integer side, with the f64 sum compensated and merge-order-pinned.
///
/// **Error bound:** a quantile estimate is the midpoint of the bucket
/// holding the target rank (clamped into `[min, max]`), so its absolute
/// error is at most half the bucket width `(hi − lo) / B`; ranks landing
/// in the underflow/overflow region return the exact observed min/max.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantileSketch {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
    min: f64,
    max: f64,
    sum: NeumaierSum,
}

impl QuantileSketch {
    /// An empty sketch with `buckets` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is degenerate or `buckets` is zero (engine
    /// constants; a misconfiguration is a bug worth crashing on).
    pub fn new(lo: f64, hi: f64, buckets: usize) -> QuantileSketch {
        assert!(
            lo.is_finite() && hi.is_finite() && hi > lo,
            "degenerate sketch range [{lo}, {hi})"
        );
        assert!(buckets > 0, "a sketch needs at least one bucket");
        QuantileSketch {
            lo,
            hi,
            buckets: vec![0; buckets],
            underflow: 0,
            overflow: 0,
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: NeumaierSum::ZERO,
        }
    }

    /// Records one value.
    pub fn record(&mut self, v: f64) {
        if v < self.lo {
            self.underflow += 1;
        } else if v >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.buckets.len() as f64;
            let idx = (((v - self.lo) / width) as usize).min(self.buckets.len() - 1);
            self.buckets[idx] += 1;
        }
        self.count += 1;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.sum.add(v);
    }

    /// Folds `other` into this sketch.
    ///
    /// # Panics
    ///
    /// Panics if the two sketches were configured over different ranges
    /// or bucket counts (they would not describe the same metric).
    pub fn merge(&mut self, other: &QuantileSketch) {
        assert_eq!(self.lo.to_bits(), other.lo.to_bits(), "sketch lo mismatch");
        assert_eq!(self.hi.to_bits(), other.hi.to_bits(), "sketch hi mismatch");
        assert_eq!(
            self.buckets.len(),
            other.buckets.len(),
            "bucket count mismatch"
        );
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.sum.merge(&other.sum);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of every recorded value (NaN when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum.value() / self.count as f64
        }
    }

    /// Smallest recorded value (`+∞` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest recorded value (`-∞` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// The bucket width — also twice the worst-case quantile error for
    /// ranks inside the bucketed range.
    pub fn bucket_width(&self) -> f64 {
        (self.hi - self.lo) / self.buckets.len() as f64
    }

    /// The `q`-quantile estimate (`q` clamped into `[0, 1]`; NaN when
    /// empty): the midpoint of the bucket containing rank `⌈q·count⌉`,
    /// clamped into `[min, max]`; underflow/overflow ranks return the
    /// exact min/max.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return f64::NAN;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = self.underflow;
        if rank <= cum {
            return self.min;
        }
        let width = self.bucket_width();
        for (i, b) in self.buckets.iter().enumerate() {
            cum += b;
            if rank <= cum {
                let mid = self.lo + (i as f64 + 0.5) * width;
                return mid.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Snapshots the full state (for checkpointing).
    pub fn state(&self) -> SketchState {
        SketchState {
            lo: self.lo,
            hi: self.hi,
            buckets: self.buckets.clone(),
            underflow: self.underflow,
            overflow: self.overflow,
            min: self.min,
            max: self.max,
            sum: self.sum,
        }
    }

    /// Rebuilds a sketch from checkpointed state. The count is re-derived
    /// from the stored counters, so state and count cannot disagree.
    ///
    /// # Errors
    ///
    /// Returns a description of the problem if the state is structurally
    /// invalid (empty buckets, degenerate range, non-finite edges).
    pub fn from_state(state: SketchState) -> Result<QuantileSketch, String> {
        if state.buckets.is_empty() {
            return Err("sketch state has no buckets".to_string());
        }
        if !(state.lo.is_finite() && state.hi.is_finite() && state.hi > state.lo) {
            return Err(format!(
                "sketch state range [{}, {}) is degenerate",
                state.lo, state.hi
            ));
        }
        let count = state.underflow + state.overflow + state.buckets.iter().sum::<u64>();
        Ok(QuantileSketch {
            lo: state.lo,
            hi: state.hi,
            buckets: state.buckets,
            underflow: state.underflow,
            overflow: state.overflow,
            count,
            min: state.min,
            max: state.max,
            sum: state.sum,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neumaier_matches_the_analysis_helper_bit_for_bit() {
        let values = [1e16, 1.0, -1e16, 0.25, 3.5, -0.125, 1e-9, 7.75];
        let mut acc = NeumaierSum::ZERO;
        for &v in &values {
            acc.add(v);
        }
        assert_eq!(
            acc.value().to_bits(),
            stadvs_analysis::compensated_sum(&values).to_bits()
        );
    }

    #[test]
    fn neumaier_split_merge_is_deterministic() {
        let values: Vec<f64> = (0..100).map(|i| (i as f64) * 0.3 - 7.0).collect();
        // One fixed split point, merged twice: bits must agree run to run.
        let build = || {
            let (mut a, mut b) = (NeumaierSum::ZERO, NeumaierSum::ZERO);
            for &v in &values[..37] {
                a.add(v);
            }
            for &v in &values[37..] {
                b.add(v);
            }
            a.merge(&b);
            a
        };
        assert_eq!(build().value().to_bits(), build().value().to_bits());
    }

    #[test]
    fn quantiles_within_bucket_width() {
        let mut s = QuantileSketch::new(0.0, 1.0, 64);
        for i in 0..1000 {
            s.record(i as f64 / 1000.0);
        }
        let width = s.bucket_width();
        for (q, truth) in [(0.1, 0.1), (0.5, 0.5), (0.9, 0.9)] {
            let est = s.quantile(q);
            assert!(
                (est - truth).abs() <= width,
                "q{q}: {est} vs {truth} (width {width})"
            );
        }
        // Extreme ranks land in the edge buckets: within a width of the
        // exact extremes (they are only *exactly* min/max when the rank
        // falls in the underflow/overflow region, as the test below pins).
        assert!((s.quantile(0.0) - s.min()).abs() <= width);
        assert!((s.max() - s.quantile(1.0)).abs() <= width);
    }

    #[test]
    fn out_of_range_values_hit_exact_extremes() {
        let mut s = QuantileSketch::new(0.0, 1.0, 8);
        s.record(-5.0);
        s.record(0.5);
        s.record(9.0);
        assert_eq!(s.count(), 3);
        assert_eq!(s.quantile(0.0), -5.0);
        assert_eq!(s.quantile(1.0), 9.0);
        assert_eq!(s.min(), -5.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn merge_equals_sequential_recording() {
        let values: Vec<f64> = (0..500).map(|i| (i % 97) as f64 / 64.0).collect();
        let mut whole = QuantileSketch::new(0.0, 1.5, 96);
        for &v in &values {
            whole.record(v);
        }
        let mut left = QuantileSketch::new(0.0, 1.5, 96);
        let mut right = QuantileSketch::new(0.0, 1.5, 96);
        for &v in &values[..200] {
            left.record(v);
        }
        for &v in &values[200..] {
            right.record(v);
        }
        left.merge(&right);
        assert_eq!(whole.count(), left.count());
        assert_eq!(whole.quantile(0.5).to_bits(), left.quantile(0.5).to_bits());
        assert_eq!(whole.state().buckets, left.state().buckets);
    }

    #[test]
    fn state_round_trips() {
        let mut s = QuantileSketch::new(0.0, 1.5, 96);
        for i in 0..123 {
            s.record(i as f64 / 100.0);
        }
        let rebuilt = QuantileSketch::from_state(s.state()).expect("valid state");
        assert_eq!(s, rebuilt);
        assert_eq!(rebuilt.count(), 123);
    }

    #[test]
    fn invalid_state_is_rejected() {
        let mut state = QuantileSketch::new(0.0, 1.0, 4).state();
        state.buckets.clear();
        assert!(QuantileSketch::from_state(state).is_err());
        let mut bad_range = QuantileSketch::new(0.0, 1.0, 4).state();
        bad_range.hi = -1.0;
        assert!(QuantileSketch::from_state(bad_range).is_err());
    }

    #[test]
    fn empty_sketch_is_nan() {
        let s = QuantileSketch::new(0.0, 1.0, 4);
        assert!(s.quantile(0.5).is_nan());
        assert!(s.mean().is_nan());
    }
}
