//! The streaming fleet engine: cut the node index space into contiguous
//! shards, simulate each shard with reusable scratch state, merge
//! shard-local aggregates in shard-index order, and checkpoint the
//! merged prefix.
//!
//! Memory is bounded by the grid size and the shard size, never by the
//! fleet size: no per-node result is ever materialized. Determinism is
//! inherited from `stadvs_experiments::shard::run_sharded_streaming`
//! (pinned merge order) plus the pure per-node seed derivation — the
//! aggregate bits do not depend on thread count, scheduling, or whether
//! the run was interrupted and resumed from a checkpoint.

use std::ops::ControlFlow;
use std::path::PathBuf;

use stadvs_experiments::make_governor;
use stadvs_experiments::shard::run_sharded_streaming;
use stadvs_power::Processor;
use stadvs_sim::{SimConfig, SimError, SimScratch, Simulator};
use stadvs_workload::{ExecutionModel, PeriodGenerator, TaskSetSpec};

use crate::agg::{FleetAggregate, NodeOutcome};
use crate::checkpoint::Checkpoint;
use crate::spec::{FleetSpec, NodeParams};
use crate::FleetError;

/// Execution knobs of a fleet run (everything that may *not* change the
/// result bits lives here; everything that may lives in [`FleetSpec`]).
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Nodes per shard. Smaller shards checkpoint at a finer grain;
    /// larger shards amortize worker hand-off. Must be positive.
    pub shard_size: u64,
    /// Worker threads (`None` = host parallelism). Any value produces
    /// the same bits.
    pub threads: Option<usize>,
    /// Checkpoint file. When the file already exists the run *resumes*
    /// from it (after validating it matches the spec); the file is
    /// rewritten atomically as the run progresses.
    pub checkpoint: Option<PathBuf>,
    /// Rewrite the checkpoint every this many merged shards (in
    /// addition to at stop and at completion).
    pub checkpoint_every: usize,
    /// Stop after merging at most this many shards in this call —
    /// the hook for testing kill/resume. `None` runs to completion.
    pub max_shards: Option<usize>,
}

impl Default for FleetConfig {
    fn default() -> FleetConfig {
        FleetConfig {
            shard_size: 256,
            threads: None,
            checkpoint: None,
            checkpoint_every: 64,
            max_shards: None,
        }
    }
}

/// The result of one [`run_fleet`] call.
#[derive(Debug, Clone)]
pub struct FleetOutcome {
    /// The merged aggregate over shards `0..shards_done`.
    pub aggregate: FleetAggregate,
    /// Shards merged so far (across resumed calls).
    pub shards_done: usize,
    /// Total shards in the fleet.
    pub shards_total: usize,
    /// The shard index this call resumed from (0 for a fresh run).
    pub resumed_from: usize,
}

impl FleetOutcome {
    /// Whether the whole fleet has been swept.
    pub fn complete(&self) -> bool {
        self.shards_done == self.shards_total
    }
}

/// The immutable per-run state shared by every worker.
struct Engine<'a> {
    spec: &'a FleetSpec,
    processor: Processor,
    sim_config: SimConfig,
}

impl Engine<'_> {
    /// Simulates one node and folds it into `agg`: generate the node's
    /// task set from its derived seed, run the `no-dvs` normalization
    /// baseline, run the node's governor (reusing the baseline when the
    /// governor *is* `no-dvs`), record normalized energy and counters.
    ///
    /// Kept out of the shard loop body on purpose: all allocation on the
    /// fleet path (task-set generation, governor boxing, simulator
    /// setup) happens here, leaving the loop itself allocation-free.
    fn run_node(&self, params: NodeParams, scratch: &mut SimScratch, agg: &mut FleetAggregate) {
        let spread = &self.spec.spreads[params.spread];
        let tasks = TaskSetSpec::new(self.spec.n_tasks, params.utilization)
            .expect("spec was validated")
            .with_periods(PeriodGenerator::LogUniform {
                min: spread.min,
                max: spread.max,
            })
            .with_seed(params.seed)
            .generate()
            .expect("validated parameters generate");
        let exec = ExecutionModel::new(self.spec.pattern.clone())
            .expect("spec was validated")
            .with_seed(params.seed ^ 0x5EED_5EED_5EED_5EED);

        let sim = match Simulator::new(tasks, self.processor.clone(), self.sim_config.clone()) {
            Ok(sim) => sim,
            Err(SimError::Infeasible { .. }) => {
                agg.record_infeasible(params.cell);
                return;
            }
            Err(e) => panic!("validated spec produced an invalid simulation: {e}"),
        };

        let mut no_dvs = make_governor("no-dvs").expect("no-dvs exists");
        let baseline = sim
            .run_with_scratch(no_dvs.as_mut(), &exec, scratch)
            .expect("no-dvs run succeeds on a feasible set");
        let baseline_energy = baseline.total_energy();
        let mut events = baseline.events;

        let name = &self.spec.governors[params.governor];
        let (outcome, sims) = if name.as_str() == "no-dvs" {
            (baseline, 1)
        } else {
            let mut governor = make_governor(name).expect("spec was validated");
            let run = sim
                .run_with_scratch(governor.as_mut(), &exec, scratch)
                .expect("governor run succeeds on a feasible set");
            events += run.events;
            (run, 2)
        };

        let jobs = outcome.completed_jobs();
        agg.record(&NodeOutcome {
            cell: params.cell,
            governor: params.governor,
            normalized: outcome.total_energy() / baseline_energy,
            switches_per_job: outcome.switches as f64 / jobs.max(1) as f64,
            misses: outcome.miss_count() as u64,
            events,
            jobs: jobs as u64,
            sims,
        });
    }
}

/// Sweeps `spec` under `config`, resuming from `config.checkpoint` if
/// that file exists.
///
/// # Errors
///
/// Returns [`FleetError::Spec`] for invalid specs or configs,
/// [`FleetError::Checkpoint`] for a checkpoint that is malformed or does
/// not match `spec`, and [`FleetError::Io`] for checkpoint file I/O
/// failures.
///
/// # Panics
///
/// Propagates panics from worker threads (a validated spec never
/// panics; a panic here is an engine bug).
pub fn run_fleet(spec: &FleetSpec, config: &FleetConfig) -> Result<FleetOutcome, FleetError> {
    spec.validate()?;
    if config.shard_size == 0 {
        return Err(FleetError::Spec("shard_size must be positive".to_string()));
    }
    let nodes = spec.nodes();
    let shards_total = usize::try_from(nodes.div_ceil(config.shard_size))
        .map_err(|_| FleetError::Spec("fleet too large for this platform".to_string()))?;

    let (start, mut aggregate) = match &config.checkpoint {
        Some(path) if path.exists() => {
            let cp = Checkpoint::load(path)?;
            cp.validate_against(spec, config.shard_size)?;
            (cp.shards_done, cp.aggregate)
        }
        _ => (0, FleetAggregate::new(spec)),
    };
    if start >= shards_total || config.max_shards.is_some_and(|m| m == 0) {
        return Ok(FleetOutcome {
            aggregate,
            shards_done: start,
            shards_total,
            resumed_from: start,
        });
    }
    let limit = config.max_shards.map(|m| start.saturating_add(m));

    let engine = Engine {
        spec,
        processor: Processor::ideal_continuous(),
        sim_config: SimConfig::new(spec.horizon)
            .map_err(|e| FleetError::Spec(format!("horizon rejected: {e}")))?,
    };

    let mut done = start;
    let mut io_error: Option<FleetError> = None;
    let every = config.checkpoint_every.max(1);
    let merged = run_sharded_streaming(
        start..shards_total,
        config.threads,
        SimScratch::new,
        |scratch, s| {
            let mut local = FleetAggregate::new(spec);
            let lo = s as u64 * config.shard_size;
            let hi = (lo + config.shard_size).min(nodes);
            for i in lo..hi {
                engine.run_node(spec.node(i), scratch, &mut local);
            }
            local
        },
        |s, local| {
            aggregate.merge(&local);
            done = s + 1;
            let at_limit = limit.is_some_and(|l| done >= l);
            let finished = done == shards_total;
            if let Some(path) = &config.checkpoint {
                if (done - start) % every == 0 || at_limit || finished {
                    if let Err(e) =
                        Checkpoint::save(path, spec, config.shard_size, done, &aggregate)
                    {
                        io_error = Some(e);
                        return ControlFlow::Break(());
                    }
                }
            }
            if at_limit {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        },
    );
    debug_assert_eq!(done, start + merged);
    if let Some(e) = io_error {
        return Err(e);
    }
    Ok(FleetOutcome {
        aggregate,
        shards_done: done,
        shards_total,
        resumed_from: start,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::PeriodSpread;
    use stadvs_workload::DemandPattern;

    /// A one-cell fleet cheap enough for debug-build unit tests.
    fn small_spec(governor: &str, replications: u64) -> FleetSpec {
        FleetSpec {
            master_seed: 7,
            n_tasks: 4,
            horizon: 0.25,
            utilizations: vec![0.6],
            spreads: vec![PeriodSpread::new("narrow", 0.05, 0.2)],
            governors: vec![governor.to_string()],
            replications,
            pattern: DemandPattern::Uniform { min: 0.4, max: 1.0 },
        }
    }

    #[test]
    fn sweeps_every_node_exactly_once() {
        let spec = small_spec("cc-edf", 13);
        let config = FleetConfig {
            shard_size: 4,
            threads: Some(2),
            ..FleetConfig::default()
        };
        let out = run_fleet(&spec, &config).expect("fleet runs");
        assert!(out.complete());
        assert_eq!(out.shards_total, 4);
        assert_eq!(out.aggregate.nodes, 13);
        assert_eq!(
            out.aggregate.cells[0].count + out.aggregate.cells[0].infeasible,
            13
        );
        assert!(out.aggregate.sims >= out.aggregate.cells[0].count);
        assert_eq!(out.aggregate.misses, 0, "cc-edf is hard real-time");
    }

    #[test]
    fn max_shards_stops_early() {
        let spec = small_spec("cc-edf", 13);
        let config = FleetConfig {
            shard_size: 4,
            threads: Some(1),
            max_shards: Some(2),
            ..FleetConfig::default()
        };
        let out = run_fleet(&spec, &config).expect("fleet runs");
        assert!(!out.complete());
        assert_eq!(out.shards_done, 2);
        assert_eq!(out.aggregate.nodes, 8);
    }

    #[test]
    fn rejects_zero_shard_size() {
        let spec = small_spec("cc-edf", 2);
        let config = FleetConfig {
            shard_size: 0,
            ..FleetConfig::default()
        };
        assert!(run_fleet(&spec, &config).is_err());
    }

    #[test]
    fn no_dvs_governor_reuses_the_baseline() {
        let spec = small_spec("no-dvs", 3);
        let out = run_fleet(&spec, &FleetConfig::default()).expect("fleet runs");
        assert_eq!(out.aggregate.sims, out.aggregate.cells[0].count);
        let cell = &out.aggregate.cells[0];
        assert_eq!(
            cell.mean_normalized().to_bits(),
            1.0_f64.to_bits(),
            "no-dvs normalizes to itself"
        );
    }
}
