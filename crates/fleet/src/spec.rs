//! The deterministic fleet specification: a parameter grid plus a master
//! seed, from which every node's full configuration — including its
//! workload seed — is a pure function of the node index.

use crate::seed::node_seed;
use crate::FleetError;
use stadvs_experiments::make_governor;
use stadvs_workload::{DemandPattern, ExecutionModel};

/// One period-spread axis point: task periods are drawn log-uniformly
/// from `[min, max]` seconds.
#[derive(Debug, Clone, PartialEq)]
pub struct PeriodSpread {
    /// Short label used in table row keys and the spec hash.
    pub label: String,
    /// Shortest period, in seconds.
    pub min: f64,
    /// Longest period, in seconds.
    pub max: f64,
}

impl PeriodSpread {
    /// A labelled spread.
    pub fn new(label: &str, min: f64, max: f64) -> PeriodSpread {
        PeriodSpread {
            label: label.to_string(),
            min,
            max,
        }
    }
}

/// The full, self-contained description of a fleet sweep.
///
/// The grid is `utilizations × spreads × governors` cells, each
/// replicated `replications` times with distinct workload seeds — node
/// `i` belongs to cell `i / replications`, with the governor axis
/// varying fastest (see [`FleetSpec::node`]). The *entire* fleet is
/// determined by this struct: two processes holding equal specs produce
/// bit-identical aggregates, which is what [`FleetSpec::spec_hash`]
/// certifies when a checkpoint is resumed.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSpec {
    /// Master seed; every node seed derives from it via
    /// [`node_seed`](crate::node_seed).
    pub master_seed: u64,
    /// Tasks per node task set.
    pub n_tasks: usize,
    /// Simulated horizon per node, in seconds.
    pub horizon: f64,
    /// Utilization axis (each in `(0, 1]`).
    pub utilizations: Vec<f64>,
    /// Period-spread axis.
    pub spreads: Vec<PeriodSpread>,
    /// Governor axis (names resolved by
    /// `stadvs_experiments::make_governor`).
    pub governors: Vec<String>,
    /// Task sets per cell.
    pub replications: u64,
    /// Per-job demand pattern shared by every node.
    pub pattern: DemandPattern,
}

/// Everything one node needs, as plain `Copy` data (no strings, no
/// heap): the engine's per-node loop builds these without allocating.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeParams {
    /// Node index in `0..spec.nodes()`.
    pub index: u64,
    /// The node's workload seed.
    pub seed: u64,
    /// Flat cell index in `0..spec.cell_count()`.
    pub cell: usize,
    /// Utilization value (resolved from the axis).
    pub utilization: f64,
    /// Index into `spec.spreads`.
    pub spread: usize,
    /// Index into `spec.governors`.
    pub governor: usize,
}

/// The default axes: utilization × period spread over the standard
/// four-governor ladder (static → cycle-conserving → aggressive → the
/// paper's slack-time analysis).
fn preset(master_seed: u64, replications: u64) -> FleetSpec {
    FleetSpec {
        master_seed,
        n_tasks: 5,
        horizon: 0.5,
        utilizations: vec![0.55, 0.70, 0.85],
        spreads: vec![
            PeriodSpread::new("narrow", 0.05, 0.2),
            PeriodSpread::new("wide", 0.01, 1.0),
        ],
        governors: vec![
            "static-edf".to_string(),
            "cc-edf".to_string(),
            "dra".to_string(),
            "st-edf".to_string(),
        ],
        replications,
        pattern: DemandPattern::Uniform { min: 0.4, max: 1.0 },
    }
}

impl FleetSpec {
    /// The standard fleet: 24 cells × 4167 replications ≈ 10⁵ nodes.
    pub fn standard(master_seed: u64) -> FleetSpec {
        preset(master_seed, 4167)
    }

    /// The quick fleet: 24 cells × 417 replications ≈ 10⁴ nodes.
    pub fn quick(master_seed: u64) -> FleetSpec {
        preset(master_seed, 417)
    }

    /// A test-scale fleet: 24 cells × 20 replications = 480 nodes.
    pub fn tiny(master_seed: u64) -> FleetSpec {
        preset(master_seed, 20)
    }

    /// Rescales the replication count so the fleet has about `nodes`
    /// nodes (at least one replication per cell).
    pub fn with_nodes(mut self, nodes: u64) -> FleetSpec {
        let cells = self.cell_count() as u64;
        self.replications = (nodes / cells.max(1)).max(1);
        self
    }

    /// Number of grid cells.
    pub fn cell_count(&self) -> usize {
        self.utilizations.len() * self.spreads.len() * self.governors.len()
    }

    /// Total nodes in the fleet.
    pub fn nodes(&self) -> u64 {
        self.cell_count() as u64 * self.replications
    }

    /// Decomposes a flat cell index into `(utilization, spread,
    /// governor)` axis indices — the governor axis varies fastest.
    pub fn cell_axes(&self, cell: usize) -> (usize, usize, usize) {
        let g = self.governors.len();
        let s = self.spreads.len();
        (cell / (g * s), (cell / g) % s, cell % g)
    }

    /// The parameters of node `index` — a pure function of the spec.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.nodes()`.
    pub fn node(&self, index: u64) -> NodeParams {
        assert!(index < self.nodes(), "node {index} out of range");
        let cell = (index / self.replications) as usize;
        let (u, s, g) = self.cell_axes(cell);
        NodeParams {
            index,
            seed: node_seed(self.master_seed, index),
            cell,
            utilization: self.utilizations[u],
            spread: s,
            governor: g,
        }
    }

    /// The row key of a cell in the family table, e.g. `0.7/narrow`.
    pub fn cell_key(&self, cell: usize) -> String {
        let (u, s, _) = self.cell_axes(cell);
        format!("{}/{}", self.utilizations[u], self.spreads[s].label)
    }

    /// A canonical, line-oriented description of the spec. Floats are
    /// rendered as IEEE bit patterns, so the description — and therefore
    /// [`FleetSpec::spec_hash`] — changes exactly when the sweep's
    /// numeric results could.
    pub fn describe(&self) -> String {
        let mut out = String::from("stadvs-fleet-spec-v1\n");
        out.push_str(&format!("master_seed={:016x}\n", self.master_seed));
        out.push_str(&format!("n_tasks={}\n", self.n_tasks));
        out.push_str(&format!("horizon={:016x}\n", self.horizon.to_bits()));
        out.push_str(&format!("replications={}\n", self.replications));
        out.push_str(&format!("pattern={:?}\n", self.pattern));
        out.push_str("processor=ideal-continuous\n");
        for u in &self.utilizations {
            out.push_str(&format!("utilization={:016x}\n", u.to_bits()));
        }
        for s in &self.spreads {
            out.push_str(&format!(
                "spread={}:{:016x}:{:016x}\n",
                s.label,
                s.min.to_bits(),
                s.max.to_bits()
            ));
        }
        for g in &self.governors {
            out.push_str(&format!("governor={g}\n"));
        }
        out
    }

    /// FNV-1a 64-bit hash of [`FleetSpec::describe`]; checkpoints store
    /// it and refuse to resume under a different spec.
    pub fn spec_hash(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.describe().bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Checks every axis and parameter.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::Spec`] naming the first problem found.
    pub fn validate(&self) -> Result<(), FleetError> {
        let fail = |msg: String| Err(FleetError::Spec(msg));
        if self.n_tasks == 0 {
            return fail("n_tasks must be positive".to_string());
        }
        if !(self.horizon.is_finite() && self.horizon > 0.0) {
            return fail(format!(
                "horizon {} must be finite and positive",
                self.horizon
            ));
        }
        if self.replications == 0 {
            return fail("replications must be positive".to_string());
        }
        if self.utilizations.is_empty() || self.spreads.is_empty() || self.governors.is_empty() {
            return fail("every axis needs at least one point".to_string());
        }
        for &u in &self.utilizations {
            if !(u.is_finite() && u > 0.0 && u <= 1.0) {
                return fail(format!("utilization {u} outside (0, 1]"));
            }
        }
        for s in &self.spreads {
            if !(s.min.is_finite() && s.max.is_finite() && s.min > 0.0 && s.max >= s.min) {
                return fail(format!(
                    "spread {} range [{}, {}] is invalid",
                    s.label, s.min, s.max
                ));
            }
            if s.label.is_empty() || s.label.contains(['/', ',', '\n']) {
                return fail(format!("spread label {:?} is not key-safe", s.label));
            }
        }
        for g in &self.governors {
            if make_governor(g).is_none() {
                return fail(format!("unknown governor {g}"));
            }
        }
        if let Err(e) = ExecutionModel::new(self.pattern.clone()) {
            return fail(format!("invalid demand pattern: {e}"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate_and_size_as_documented() {
        for (spec, nodes) in [
            (FleetSpec::standard(1), 100_008),
            (FleetSpec::quick(1), 10_008),
            (FleetSpec::tiny(1), 480),
        ] {
            spec.validate().expect("preset is valid");
            assert_eq!(spec.cell_count(), 24);
            assert_eq!(spec.nodes(), nodes);
        }
    }

    #[test]
    fn with_nodes_rescales() {
        let spec = FleetSpec::tiny(1).with_nodes(4800);
        assert_eq!(spec.replications, 200);
        assert_eq!(spec.nodes(), 4800);
        assert!(FleetSpec::tiny(1).with_nodes(1).replications >= 1);
    }

    #[test]
    fn node_decomposition_covers_the_grid() {
        let spec = FleetSpec::tiny(9);
        let mut per_cell = vec![0u64; spec.cell_count()];
        for i in 0..spec.nodes() {
            let n = spec.node(i);
            assert_eq!(n.index, i);
            per_cell[n.cell] += 1;
            let (u, s, g) = spec.cell_axes(n.cell);
            assert_eq!(spec.utilizations[u].to_bits(), n.utilization.to_bits());
            assert_eq!(s, n.spread);
            assert_eq!(g, n.governor);
        }
        assert!(per_cell.iter().all(|&c| c == spec.replications));
    }

    #[test]
    fn governor_axis_varies_fastest() {
        let spec = FleetSpec::tiny(9);
        let a = spec.node(0);
        let b = spec.node(spec.replications);
        assert_eq!(a.cell, 0);
        assert_eq!(b.cell, 1);
        assert_eq!((a.governor, b.governor), (0, 1));
        assert_eq!((a.spread, b.spread), (0, 0));
    }

    #[test]
    fn hash_tracks_numeric_content() {
        let spec = FleetSpec::tiny(42);
        assert_eq!(spec.spec_hash(), FleetSpec::tiny(42).spec_hash());
        assert_ne!(spec.spec_hash(), FleetSpec::tiny(43).spec_hash());
        let mut tweaked = FleetSpec::tiny(42);
        tweaked.horizon = 0.5 + f64::EPSILON;
        assert_ne!(spec.spec_hash(), tweaked.spec_hash());
    }

    #[test]
    fn validation_rejects_bad_specs() {
        let mut s = FleetSpec::tiny(1);
        s.governors.push("bogus".to_string());
        assert!(s.validate().is_err());
        let mut s = FleetSpec::tiny(1);
        s.utilizations = vec![1.5];
        assert!(s.validate().is_err());
        let mut s = FleetSpec::tiny(1);
        s.spreads[0].min = -1.0;
        assert!(s.validate().is_err());
        let mut s = FleetSpec::tiny(1);
        s.replications = 0;
        assert!(s.validate().is_err());
        let mut s = FleetSpec::tiny(1);
        s.spreads[0].label = "a/b".to_string();
        assert!(s.validate().is_err());
    }

    #[test]
    fn cell_keys_pair_utilization_with_spread() {
        let spec = FleetSpec::tiny(1);
        assert_eq!(spec.cell_key(0), "0.55/narrow");
        let last = spec.cell_count() - 1;
        assert_eq!(spec.cell_key(last), "0.85/wide");
    }
}
