//! # stadvs-fleet — the fleet-scale streaming sweep engine
//!
//! Sweeps 10⁴–10⁶ parameterized task-set simulations ("nodes") as a
//! streaming pipeline in memory bounded independent of fleet size:
//!
//! * [`FleetSpec`] — a deterministic parameter grid (utilization ×
//!   period spread × governor × replication). Every node's seed is
//!   derived from the master seed and the node index alone
//!   ([`node_seed`]), so any node is reproducible in isolation.
//! * [`run_fleet`] — sharded execution over
//!   `stadvs_experiments::shard::run_sharded_streaming`: workers reuse
//!   one `SimScratch` each, aggregate shard-locally, and the shard
//!   results merge in shard-index order — aggregates are bit-identical
//!   for any thread count or schedule.
//! * [`FleetAggregate`] / [`QuantileSketch`] — online aggregation in
//!   O(1) memory per metric: Neumaier-compensated per-cell sums (the
//!   `stadvs_analysis::compensated_sum` discipline, held incrementally)
//!   and fixed-bucket quantile sketches per governor. No per-node result
//!   rows exist anywhere on this path.
//! * [`Checkpoint`] — a versioned, self-describing resume format. f64
//!   state round-trips as IEEE bit patterns, so a killed sweep resumed
//!   from its checkpoint finishes bit-identical to an uninterrupted one.
//! * [`fleet_table`] — renders the merged aggregate as the golden-pinned
//!   `fleet` experiment family table.
//!
//! The crate is determinism-bound (DESIGN.md §12/§13): no wall clock, no
//! unseeded randomness, no hash-order iteration. Throughput measurement
//! lives in `stadvs-bench`/`stadvs-cli`, which time around this engine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod agg;
mod checkpoint;
mod engine;
mod family;
mod seed;
mod sketch;
mod spec;

pub use agg::{CellStats, FleetAggregate, NodeOutcome, SKETCH_BUCKETS, SKETCH_HI, SKETCH_LO};
pub use checkpoint::Checkpoint;
pub use engine::{run_fleet, FleetConfig, FleetOutcome};
pub use family::fleet_table;
pub use seed::node_seed;
pub use sketch::{NeumaierSum, QuantileSketch, SketchState};
pub use spec::{FleetSpec, NodeParams, PeriodSpread};

use std::fmt;

/// Errors of the fleet engine: invalid specs, I/O on checkpoint files,
/// and malformed or mismatched checkpoints.
#[derive(Debug)]
pub enum FleetError {
    /// The fleet spec is invalid (empty axis, unknown governor, …).
    Spec(String),
    /// Reading or writing a checkpoint file failed.
    Io(std::io::Error),
    /// A checkpoint file is malformed or does not match the spec.
    Checkpoint(String),
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::Spec(msg) => write!(f, "invalid fleet spec: {msg}"),
            FleetError::Io(e) => write!(f, "checkpoint i/o: {e}"),
            FleetError::Checkpoint(msg) => write!(f, "checkpoint: {msg}"),
        }
    }
}

impl std::error::Error for FleetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FleetError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for FleetError {
    fn from(e: std::io::Error) -> FleetError {
        FleetError::Io(e)
    }
}
