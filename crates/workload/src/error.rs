//! Workload-generation error type.

use std::error::Error;
use std::fmt;

use stadvs_sim::SimError;

/// Errors produced while constructing workload generators or task sets.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum WorkloadError {
    /// A generator parameter was out of range.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// The underlying task model rejected a generated task.
    Task(SimError),
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::InvalidParameter { name, value } => {
                write!(f, "workload parameter `{name}` has invalid value {value}")
            }
            WorkloadError::Task(e) => write!(f, "generated task rejected: {e}"),
        }
    }
}

impl Error for WorkloadError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            WorkloadError::Task(e) => Some(e),
            WorkloadError::InvalidParameter { .. } => None,
        }
    }
}

impl From<SimError> for WorkloadError {
    fn from(e: SimError) -> WorkloadError {
        WorkloadError::Task(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = WorkloadError::InvalidParameter {
            name: "ratio",
            value: 2.0,
        };
        assert!(e.to_string().contains("ratio"));
        assert!(e.source().is_none());
        let wrapped = WorkloadError::from(SimError::EmptyTaskSet);
        assert!(wrapped.source().is_some());
        assert!(wrapped.to_string().contains("rejected"));
    }
}
