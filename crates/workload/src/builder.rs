//! Convenience builder for hand-crafted task sets.

use stadvs_sim::{Task, TaskSet};

use crate::WorkloadError;

/// Builds a [`TaskSet`] incrementally and optionally rescales it to a target
/// worst-case utilization (the standard trick for sweeping utilization with
/// a fixed task structure, as the reference-set experiments do).
///
/// ```
/// use stadvs_workload::TaskSetBuilder;
///
/// # fn main() -> Result<(), stadvs_workload::WorkloadError> {
/// let ts = TaskSetBuilder::new()
///     .task(1.0e-3, 10.0e-3)?
///     .task(2.0e-3, 40.0e-3)?
///     .scaled_to_utilization(0.9)?
///     .build()?;
/// assert!((ts.utilization() - 0.9).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct TaskSetBuilder {
    tasks: Vec<Task>,
}

impl TaskSetBuilder {
    /// Creates an empty builder.
    pub fn new() -> TaskSetBuilder {
        TaskSetBuilder::default()
    }

    /// Adds an implicit-deadline task.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::Task`] for invalid `(wcet, period)`.
    pub fn task(mut self, wcet: f64, period: f64) -> Result<TaskSetBuilder, WorkloadError> {
        self.tasks.push(Task::new(wcet, period)?);
        Ok(self)
    }

    /// Adds a named implicit-deadline task.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::Task`] for invalid `(wcet, period)`.
    pub fn named_task(
        mut self,
        name: &str,
        wcet: f64,
        period: f64,
    ) -> Result<TaskSetBuilder, WorkloadError> {
        self.tasks.push(Task::new(wcet, period)?.named(name));
        Ok(self)
    }

    /// Adds an already-constructed task.
    pub fn push(mut self, task: Task) -> TaskSetBuilder {
        self.tasks.push(task);
        self
    }

    /// Rescales every WCET so the set's total worst-case utilization equals
    /// `target` (names, periods, phases, task models, and relative shares
    /// are preserved).
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidParameter`] if `target` is not in
    /// `(0, 1]` or the builder is empty, and [`WorkloadError::Task`] if a
    /// scaled WCET exceeds its period (cannot happen for `target <= 1`).
    pub fn scaled_to_utilization(mut self, target: f64) -> Result<TaskSetBuilder, WorkloadError> {
        if !target.is_finite() || target <= 0.0 || target > 1.0 {
            return Err(WorkloadError::InvalidParameter {
                name: "target_utilization",
                value: target,
            });
        }
        let current: f64 = self.tasks.iter().map(Task::utilization).sum();
        if current <= 0.0 {
            return Err(WorkloadError::InvalidParameter {
                name: "target_utilization",
                value: target,
            });
        }
        let scale = target / current;
        let mut scaled = Vec::with_capacity(self.tasks.len());
        for t in &self.tasks {
            // Scaling touches only the WCET; the period, deadline, and
            // phase carry over unchanged, so re-attaching the task model
            // revalidates against identical pins and cannot fail.
            let mut nt = Task::with_deadline(
                (t.wcet() * scale).min(t.deadline()),
                t.period(),
                t.deadline(),
            )?
            .with_phase(t.phase())?
            .with_kind(t.kind())?;
            if let Some(name) = t.name() {
                nt = nt.named(name);
            }
            scaled.push(nt);
        }
        self.tasks = scaled;
        Ok(self)
    }

    /// Finalizes the set.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::Task`] if the builder is empty.
    pub fn build(self) -> Result<TaskSet, WorkloadError> {
        Ok(TaskSet::new(self.tasks)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_scales() {
        let ts = TaskSetBuilder::new()
            .named_task("a", 1.0, 10.0)
            .unwrap()
            .named_task("b", 1.0, 5.0)
            .unwrap()
            .scaled_to_utilization(0.6)
            .unwrap()
            .build()
            .unwrap();
        assert!((ts.utilization() - 0.6).abs() < 1e-12);
        assert_eq!(ts.tasks()[0].name(), Some("a"));
        // Relative shares preserved: u_b / u_a = 2 before and after.
        let ua = ts.tasks()[0].utilization();
        let ub = ts.tasks()[1].utilization();
        assert!((ub / ua - 2.0).abs() < 1e-9);
    }

    #[test]
    fn empty_builder_fails() {
        assert!(TaskSetBuilder::new().build().is_err());
        assert!(TaskSetBuilder::new().scaled_to_utilization(0.5).is_err());
    }

    #[test]
    fn scaling_validation() {
        let b = TaskSetBuilder::new().task(1.0, 10.0).unwrap();
        assert!(b.clone().scaled_to_utilization(0.0).is_err());
        assert!(b.clone().scaled_to_utilization(1.5).is_err());
        assert!(b.scaled_to_utilization(1.0).is_ok());
    }

    #[test]
    fn scaling_preserves_task_models_and_phases() {
        use stadvs_sim::TaskKind;
        let ts = TaskSetBuilder::new()
            .push(Task::new(1.0, 10.0).unwrap().weakly_hard(2, 5).unwrap())
            .push(
                Task::new(1.0, 5.0)
                    .unwrap()
                    .with_phase(0.5)
                    .unwrap()
                    .sporadic(0.25, 7)
                    .unwrap(),
            )
            .push(Task::new(1.0, 8.0).unwrap().frame(0.4).unwrap())
            .scaled_to_utilization(0.85)
            .unwrap()
            .build()
            .unwrap();
        assert!((ts.utilization() - 0.85).abs() < 1e-12);
        assert!(matches!(
            ts.tasks()[0].kind(),
            TaskKind::WeaklyHard { m: 2, k: 5 }
        ));
        assert!(matches!(
            ts.tasks()[1].kind(),
            TaskKind::Sporadic { seed: 7, .. }
        ));
        assert_eq!(ts.tasks()[1].phase(), 0.5);
        assert!(matches!(ts.tasks()[2].kind(), TaskKind::Frame { .. }));
    }

    #[test]
    fn scaling_up_caps_at_deadline() {
        // One task with wcet == period scaled to U = 1: wcet stays == period.
        let ts = TaskSetBuilder::new()
            .task(5.0, 10.0)
            .unwrap()
            .scaled_to_utilization(1.0)
            .unwrap()
            .build()
            .unwrap();
        assert!((ts.tasks()[0].wcet() - 10.0).abs() < 1e-12);
    }
}
