//! The UUniFast utilization-splitting algorithm.

use rand::Rng;

/// Splits a total utilization into `n` per-task utilizations, uniformly
/// distributed over the simplex (Bini & Buttazzo's UUniFast).
///
/// UUniFast is the standard generator of unbiased synthetic task sets in the
/// real-time literature, including the DVS-EDF comparison studies this
/// repository reproduces.
///
/// # Panics
///
/// Panics if `n == 0` or `total` is not finite and positive. Individual
/// utilizations may exceed 1 when `total > 1`; callers simulating a single
/// processor should keep `total <= 1`.
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let parts = stadvs_workload::uunifast(5, 0.8, &mut rng);
/// assert_eq!(parts.len(), 5);
/// let sum: f64 = parts.iter().sum();
/// assert!((sum - 0.8).abs() < 1e-12);
/// ```
pub fn uunifast<R: Rng + ?Sized>(n: usize, total: f64, rng: &mut R) -> Vec<f64> {
    assert!(n > 0, "cannot split utilization over zero tasks");
    assert!(
        total.is_finite() && total > 0.0,
        "total utilization {total} must be finite and positive"
    );
    let mut parts = Vec::with_capacity(n);
    let mut sum = total;
    for i in 1..n {
        let exponent = 1.0 / (n - i) as f64;
        let next: f64 = sum * rng.gen::<f64>().powf(exponent);
        parts.push(sum - next);
        sum = next;
    }
    parts.push(sum);
    parts
}

/// Like [`uunifast`], but rejects (re-draws) any sample in which a single
/// task's utilization exceeds `cap`. Useful to avoid degenerate sets where
/// one task dominates the processor.
///
/// # Panics
///
/// Panics on the same conditions as [`uunifast`], if `cap * n < total`
/// (which would make the rejection loop unsatisfiable), or if no admissible
/// sample is found within 10 000 draws.
pub fn uunifast_capped<R: Rng + ?Sized>(n: usize, total: f64, cap: f64, rng: &mut R) -> Vec<f64> {
    assert!(
        cap * n as f64 >= total,
        "cap {cap} with {n} tasks cannot reach total {total}"
    );
    for _ in 0..10_000 {
        let parts = uunifast(n, total, rng);
        if parts.iter().all(|&u| u <= cap) {
            return parts;
        }
    }
    panic!("no admissible UUniFast sample within 10000 draws (n={n}, total={total}, cap={cap})");
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sums_to_total() {
        let mut rng = StdRng::seed_from_u64(42);
        for &total in &[0.1, 0.5, 0.9, 1.0] {
            for &n in &[1usize, 2, 5, 20] {
                let parts = uunifast(n, total, &mut rng);
                assert_eq!(parts.len(), n);
                let sum: f64 = parts.iter().sum();
                assert!((sum - total).abs() < 1e-9, "n={n}, total={total}");
                assert!(parts.iter().all(|&u| u >= 0.0));
            }
        }
    }

    #[test]
    fn is_deterministic_per_seed() {
        let a = uunifast(8, 0.7, &mut StdRng::seed_from_u64(1));
        let b = uunifast(8, 0.7, &mut StdRng::seed_from_u64(1));
        let c = uunifast(8, 0.7, &mut StdRng::seed_from_u64(2));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn capped_respects_cap() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let parts = uunifast_capped(4, 0.9, 0.5, &mut rng);
            assert!(parts.iter().all(|&u| u <= 0.5));
            let sum: f64 = parts.iter().sum();
            assert!((sum - 0.9).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "cannot reach total")]
    fn capped_rejects_unsatisfiable() {
        let mut rng = StdRng::seed_from_u64(3);
        let _ = uunifast_capped(2, 1.0, 0.4, &mut rng);
    }

    #[test]
    #[should_panic(expected = "zero tasks")]
    fn zero_tasks_rejected() {
        let mut rng = StdRng::seed_from_u64(3);
        let _ = uunifast(0, 0.5, &mut rng);
    }

    /// Statistical sanity: mean per-task utilization is total/n.
    #[test]
    fn mean_is_unbiased() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 5;
        let total = 0.8;
        let trials = 2_000;
        let mut sums = vec![0.0; n];
        for _ in 0..trials {
            for (s, u) in sums.iter_mut().zip(uunifast(n, total, &mut rng)) {
                *s += u;
            }
        }
        for s in sums {
            let mean = s / trials as f64;
            assert!(
                (mean - total / n as f64).abs() < 0.02,
                "per-slot mean {mean} deviates from {}",
                total / n as f64
            );
        }
    }
}
