//! Partitioned-EDF task assignment: bin-packing tasks onto cores.
//!
//! Partitioned multiprocessor EDF-DVS (Nélis et al.) assigns every task to
//! exactly one core off-line and then runs an independent uniprocessor
//! EDF + DVS instance per core — no migration. The assignment is a
//! bin-packing problem with the EDF feasibility bound as bin capacity;
//! this module provides the two classic decreasing-order heuristics:
//!
//! * [`FirstFitDecreasing`] — pack tightly onto the lowest-numbered core
//!   that fits (minimizes the number of non-idle cores),
//! * [`WorstFitDecreasing`] — balance load by always choosing the most
//!   lightly loaded core that fits (maximizes per-core slack, which a DVS
//!   governor converts into lower speeds; with convex power this is the
//!   energy-friendly choice).
//!
//! Both sort tasks by worst-case utilization, largest first, and admit a
//! task onto a core only if the core's utilization *and* density stay
//! within the EDF bound of 1 (for implicit deadlines the two coincide;
//! the density check keeps constrained-deadline sets hard-feasible). A
//! task that fits on no core is *rejected* — reported, never silently
//! dropped.

use stadvs_sim::{ExecutionSource, Task, TaskId, TaskSet};

use crate::error::WorkloadError;

/// EDF feasibility bound per core (utilization and density).
pub const EDF_BOUND: f64 = 1.0;

/// Tolerance on the bound check, mirroring the simulator's feasibility
/// tolerance so an admitted core is always accepted by `Simulator::new`.
const BOUND_EPS: f64 = 1.0e-9;

/// An off-line assignment policy mapping a task set onto `cores` cores.
pub trait Partitioner {
    /// Stable policy name (used in experiment row keys and reports).
    fn name(&self) -> &'static str;

    /// Partitions `tasks` onto `cores` cores.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidParameter`] if `cores` is zero.
    fn partition(&self, tasks: &TaskSet, cores: usize) -> Result<PartitionReport, WorkloadError>;
}

/// First-fit-decreasing by WCET utilization.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FirstFitDecreasing;

/// Worst-fit-decreasing by WCET utilization.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorstFitDecreasing;

/// Load state of one core during and after partitioning.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreAssignment {
    tasks: Vec<TaskId>,
    utilization: f64,
    density: f64,
}

impl CoreAssignment {
    /// Original task ids assigned to this core, in assignment order.
    pub fn tasks(&self) -> &[TaskId] {
        &self.tasks
    }

    /// Worst-case utilization of the core's tasks.
    pub fn utilization(&self) -> f64 {
        self.utilization
    }

    /// Worst-case density of the core's tasks.
    pub fn density(&self) -> f64 {
        self.density
    }

    /// Whether no task was assigned to this core.
    pub fn is_idle(&self) -> bool {
        self.tasks.is_empty()
    }

    fn fits(&self, task: &Task) -> bool {
        self.utilization + task.utilization() <= EDF_BOUND + BOUND_EPS
            && self.density + task.density() <= EDF_BOUND + BOUND_EPS
    }

    fn push(&mut self, id: TaskId, task: &Task) {
        self.tasks.push(id);
        self.utilization += task.utilization();
        self.density += task.density();
    }
}

/// The outcome of partitioning one task set: per-core assignments plus the
/// admission result.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionReport {
    partitioner: &'static str,
    cores: Vec<CoreAssignment>,
    rejected: Vec<TaskId>,
}

impl PartitionReport {
    /// Name of the policy that produced this partition.
    pub fn partitioner(&self) -> &'static str {
        self.partitioner
    }

    /// Per-core assignments, in core order (length = requested core count).
    pub fn cores(&self) -> &[CoreAssignment] {
        &self.cores
    }

    /// Tasks that fit on no core, in decreasing-utilization order.
    pub fn rejected(&self) -> &[TaskId] {
        &self.rejected
    }

    /// Whether every task was admitted onto some core.
    pub fn admitted(&self) -> bool {
        self.rejected.is_empty()
    }

    /// The core a task was assigned to, or `None` if it was rejected.
    pub fn core_of(&self, id: TaskId) -> Option<usize> {
        self.cores.iter().position(|c| c.tasks.contains(&id))
    }

    /// Materializes core `core`'s tasks as a standalone [`TaskSet`] (task
    /// ids renumbered from 0 in assignment order), or `None` when the core
    /// is idle.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range, or if an id in the report does not
    /// exist in `tasks` (i.e. `tasks` is not the set that was partitioned).
    pub fn core_task_set(&self, tasks: &TaskSet, core: usize) -> Option<TaskSet> {
        let assignment = &self.cores[core];
        if assignment.is_idle() {
            return None;
        }
        let members: Vec<Task> = assignment
            .tasks
            .iter()
            .map(|id| tasks.task(*id).clone())
            .collect();
        Some(TaskSet::new(members).expect("non-idle core has at least one task"))
    }

    /// Wraps `exec` so core `core`'s renumbered tasks draw the demand
    /// stream of their *original* ids — the same job of the same task gets
    /// the same actual demand no matter which core (or partitioner) it
    /// landed on, so energy differences between partitions are
    /// attributable to the partition alone.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn core_demand<'a, E: ExecutionSource + ?Sized>(
        &self,
        exec: &'a E,
        core: usize,
    ) -> CoreDemand<'a, E> {
        CoreDemand {
            inner: exec,
            original: self.cores[core].tasks.clone(),
        }
    }
}

/// An [`ExecutionSource`] adapter translating a core's local task ids back
/// to the original (pre-partition) ids of the underlying demand model.
#[derive(Debug, Clone)]
pub struct CoreDemand<'a, E: ?Sized> {
    inner: &'a E,
    original: Vec<TaskId>,
}

impl<E: ExecutionSource + ?Sized> ExecutionSource for CoreDemand<'_, E> {
    fn actual_work(&self, task_id: TaskId, task: &Task, job_index: u64) -> f64 {
        self.inner
            .actual_work(self.original[task_id.0], task, job_index)
    }
}

/// Task indices sorted by utilization, largest first (original order
/// breaks ties, so the result is deterministic).
fn decreasing_order(tasks: &TaskSet) -> Vec<usize> {
    let mut order: Vec<usize> = (0..tasks.len()).collect();
    order.sort_by(|a, b| {
        let ua = tasks.tasks()[*a].utilization();
        let ub = tasks.tasks()[*b].utilization();
        ub.partial_cmp(&ua)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(b))
    });
    order
}

fn validate_cores(cores: usize) -> Result<(), WorkloadError> {
    if cores == 0 {
        return Err(WorkloadError::InvalidParameter {
            name: "cores",
            value: 0.0,
        });
    }
    Ok(())
}

fn empty_bins(cores: usize) -> Vec<CoreAssignment> {
    vec![
        CoreAssignment {
            tasks: Vec::new(),
            utilization: 0.0,
            density: 0.0,
        };
        cores
    ]
}

impl Partitioner for FirstFitDecreasing {
    fn name(&self) -> &'static str {
        "ffd"
    }

    fn partition(&self, tasks: &TaskSet, cores: usize) -> Result<PartitionReport, WorkloadError> {
        validate_cores(cores)?;
        let mut bins = empty_bins(cores);
        let mut rejected = Vec::new();
        for i in decreasing_order(tasks) {
            let id = TaskId(i);
            let task = &tasks.tasks()[i];
            match bins.iter_mut().find(|b| b.fits(task)) {
                Some(bin) => bin.push(id, task),
                None => rejected.push(id),
            }
        }
        Ok(PartitionReport {
            partitioner: self.name(),
            cores: bins,
            rejected,
        })
    }
}

impl Partitioner for WorstFitDecreasing {
    fn name(&self) -> &'static str {
        "wfd"
    }

    fn partition(&self, tasks: &TaskSet, cores: usize) -> Result<PartitionReport, WorkloadError> {
        validate_cores(cores)?;
        let mut bins = empty_bins(cores);
        let mut rejected = Vec::new();
        for i in decreasing_order(tasks) {
            let id = TaskId(i);
            let task = &tasks.tasks()[i];
            // Most lightly loaded core that still fits; lowest index on
            // ties, so the assignment is deterministic.
            let target = bins
                .iter()
                .enumerate()
                .filter(|(_, b)| b.fits(task))
                .min_by(|(ai, a), (bi, b)| {
                    a.utilization
                        .partial_cmp(&b.utilization)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(ai.cmp(bi))
                })
                .map(|(i, _)| i);
            match target {
                Some(t) => bins[t].push(id, task),
                None => rejected.push(id),
            }
        }
        Ok(PartitionReport {
            partitioner: self.name(),
            cores: bins,
            rejected,
        })
    }
}

/// The partitioner with the given stable name (`ffd` / `wfd`), or `None`.
pub fn partitioner_by_name(name: &str) -> Option<Box<dyn Partitioner>> {
    match name {
        "ffd" => Some(Box::new(FirstFitDecreasing)),
        "wfd" => Some(Box::new(WorstFitDecreasing)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stadvs_sim::Task;

    fn set(utils: &[f64]) -> TaskSet {
        TaskSet::new(utils.iter().map(|u| Task::new(*u, 1.0).unwrap()).collect()).unwrap()
    }

    #[test]
    fn ffd_packs_tightly_wfd_balances() {
        let tasks = set(&[0.6, 0.5, 0.3, 0.2]);
        let ffd = FirstFitDecreasing.partition(&tasks, 2).unwrap();
        assert!(ffd.admitted());
        // FFD: 0.6+0.3 on core 0, 0.5+0.2 on core 1? Decreasing order is
        // 0.6, 0.5, 0.3, 0.2: 0.6→c0, 0.5→c0 fails (1.1), →c1, 0.3→c0,
        // 0.2→c0 fails (1.1)? 0.6+0.3+0.2 = 1.1 > 1 → c1.
        assert!((ffd.cores()[0].utilization() - 0.9).abs() < 1e-12);
        assert!((ffd.cores()[1].utilization() - 0.7).abs() < 1e-12);

        let wfd = WorstFitDecreasing.partition(&tasks, 2).unwrap();
        assert!(wfd.admitted());
        // WFD: 0.6→c0, 0.5→c1, 0.3→c1 (lighter), 0.2→c0 (now lighter).
        assert!((wfd.cores()[0].utilization() - 0.8).abs() < 1e-12);
        assert!((wfd.cores()[1].utilization() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn overload_is_rejected_not_dropped() {
        let tasks = set(&[0.9, 0.9, 0.9]);
        let r = FirstFitDecreasing.partition(&tasks, 2).unwrap();
        assert!(!r.admitted());
        assert_eq!(r.rejected().len(), 1);
        let assigned: usize = r.cores().iter().map(|c| c.tasks().len()).sum();
        assert_eq!(assigned + r.rejected().len(), tasks.len());
    }

    #[test]
    fn zero_cores_is_an_error() {
        let tasks = set(&[0.5]);
        assert!(FirstFitDecreasing.partition(&tasks, 0).is_err());
        assert!(WorstFitDecreasing.partition(&tasks, 0).is_err());
    }

    #[test]
    fn core_task_set_renumbers_and_skips_idle_cores() {
        let tasks = set(&[0.6, 0.2]);
        let r = FirstFitDecreasing.partition(&tasks, 4).unwrap();
        let c0 = r.core_task_set(&tasks, 0).unwrap();
        assert_eq!(c0.len(), 2);
        assert!(r.core_task_set(&tasks, 3).is_none());
        assert!(r.cores()[3].is_idle());
        assert_eq!(r.core_of(TaskId(0)), Some(0));
        assert_eq!(r.core_of(TaskId(1)), Some(0));
    }

    #[test]
    fn core_demand_translates_ids() {
        struct ByOriginalId;
        impl ExecutionSource for ByOriginalId {
            fn actual_work(&self, id: TaskId, _task: &Task, _j: u64) -> f64 {
                id.0 as f64
            }
        }
        // Decreasing order puts T1 (0.8) before T0 (0.1): on core 0, local
        // id 0 is original T1.
        let tasks = set(&[0.1, 0.8]);
        let r = FirstFitDecreasing.partition(&tasks, 1).unwrap();
        let demand = r.core_demand(&ByOriginalId, 0);
        let t = Task::new(0.1, 1.0).unwrap();
        assert_eq!(demand.actual_work(TaskId(0), &t, 0), 1.0);
        assert_eq!(demand.actual_work(TaskId(1), &t, 0), 0.0);
    }

    #[test]
    fn registry_resolves_names() {
        assert_eq!(partitioner_by_name("ffd").unwrap().name(), "ffd");
        assert_eq!(partitioner_by_name("wfd").unwrap().name(), "wfd");
        assert!(partitioner_by_name("round-robin").is_none());
    }

    mod proptests {
        use super::*;
        use crate::TaskSetSpec;
        use proptest::prelude::*;

        proptest! {
            /// Property: for any generated workload and core count, both
            /// partitioners (a) never load a core past the EDF bound in
            /// either utilization or density, (b) place every admitted
            /// task on exactly one core with rejected tasks accounted
            /// for (a true partition — nothing dropped, nothing
            /// duplicated), and (c) report per-core utilization equal to
            /// the sum over their assigned tasks.
            #[test]
            fn partitions_respect_bound_and_cover_all_tasks(
                n_tasks in 1usize..12,
                util_milli in 50u64..=1000,
                cores in 1usize..6,
                seed in 0u64..1000,
                wfd_coin in 0u32..2,
            ) {
                let use_wfd = wfd_coin == 1;
                let utilization = util_milli as f64 / 1000.0;
                let tasks = TaskSetSpec::new(n_tasks, utilization)
                    .expect("parameters in range")
                    .with_seed(seed)
                    .generate()
                    .expect("spec generates");
                let name = if use_wfd { "wfd" } else { "ffd" };
                let partitioner = partitioner_by_name(name).expect("registered");
                let report = partitioner.partition(&tasks, cores).expect("cores >= 1");

                prop_assert_eq!(report.cores().len(), cores);
                let mut seen = vec![0usize; tasks.len()];
                for (c, bin) in report.cores().iter().enumerate() {
                    prop_assert!(
                        bin.utilization() <= EDF_BOUND + BOUND_EPS,
                        "core {} utilization {} above the EDF bound",
                        c, bin.utilization()
                    );
                    prop_assert!(
                        bin.density() <= EDF_BOUND + BOUND_EPS,
                        "core {} density {} above the EDF bound",
                        c, bin.density()
                    );
                    let mut sum = 0.0;
                    for id in bin.tasks() {
                        seen[id.0] += 1;
                        sum += tasks.tasks()[id.0].utilization();
                        prop_assert_eq!(report.core_of(*id), Some(c));
                    }
                    prop_assert!((bin.utilization() - sum).abs() < 1e-9);
                }
                for id in report.rejected() {
                    seen[id.0] += 1;
                    prop_assert_eq!(report.core_of(*id), None);
                }
                // Exactly-once coverage: admitted ∪ rejected = all tasks.
                prop_assert!(seen.iter().all(|&n| n == 1));
                prop_assert_eq!(report.admitted(), report.rejected().is_empty());
            }

            /// Property: a workload with total utilization within the EDF
            /// bound on one core is always fully admitted on any number
            /// of cores (partitioning cannot *create* infeasibility for
            /// implicit-deadline sets).
            #[test]
            fn feasible_uniprocessor_sets_always_admit(
                n_tasks in 1usize..10,
                util_milli in 50u64..=1000,
                cores in 1usize..6,
                seed in 0u64..1000,
            ) {
                let utilization = util_milli as f64 / 1000.0;
                let tasks = TaskSetSpec::new(n_tasks, utilization)
                    .expect("parameters in range")
                    .with_seed(seed)
                    .generate()
                    .expect("spec generates");
                for name in ["ffd", "wfd"] {
                    let report = partitioner_by_name(name)
                        .expect("registered")
                        .partition(&tasks, cores)
                        .expect("cores >= 1");
                    prop_assert!(
                        report.admitted(),
                        "{}: rejected {} of a U = {} set on {} cores",
                        name, report.rejected().len(), utilization, cores
                    );
                }
            }
        }
    }
}
