//! Declarative task-set specifications (the unit of experiment replication).

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use stadvs_sim::{Task, TaskSet};

use crate::periods::PeriodGenerator;
use crate::uunifast::uunifast_capped;
use crate::WorkloadError;

/// A reproducible recipe for one random task set.
///
/// Experiments sweep parameters by generating many specs with consecutive
/// seeds; the same spec always yields the same task set, so every governor
/// is compared on identical workloads.
///
/// ```
/// use stadvs_workload::TaskSetSpec;
///
/// # fn main() -> Result<(), stadvs_workload::WorkloadError> {
/// let spec = TaskSetSpec::new(8, 0.7)?.with_seed(3);
/// let a = spec.generate()?;
/// let b = spec.generate()?;
/// assert_eq!(a, b);
/// assert!((a.utilization() - 0.7).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskSetSpec {
    n_tasks: usize,
    utilization: f64,
    periods: PeriodGenerator,
    utilization_cap: f64,
    random_phases: bool,
    seed: u64,
}

impl TaskSetSpec {
    /// Creates a spec for `n_tasks` tasks totalling `utilization`, with
    /// literature-default periods (log-uniform 10 ms – 1 s) and a per-task
    /// utilization cap of 0.95.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidParameter`] if `n_tasks == 0` or
    /// `utilization` is not in `(0, 1]`.
    pub fn new(n_tasks: usize, utilization: f64) -> Result<TaskSetSpec, WorkloadError> {
        if n_tasks == 0 {
            return Err(WorkloadError::InvalidParameter {
                name: "n_tasks",
                value: 0.0,
            });
        }
        if !utilization.is_finite() || utilization <= 0.0 || utilization > 1.0 {
            return Err(WorkloadError::InvalidParameter {
                name: "utilization",
                value: utilization,
            });
        }
        Ok(TaskSetSpec {
            n_tasks,
            utilization,
            periods: PeriodGenerator::literature_default(),
            utilization_cap: 0.95,
            random_phases: false,
            seed: 0,
        })
    }

    /// Replaces the period generator.
    pub fn with_periods(mut self, periods: PeriodGenerator) -> TaskSetSpec {
        self.periods = periods;
        self
    }

    /// Draws a random release phase in `[0, T_i)` for every task
    /// (asynchronous releases; the default is synchronous, phase 0 — the
    /// worst case for EDF).
    pub fn with_random_phases(mut self, random_phases: bool) -> TaskSetSpec {
        self.random_phases = random_phases;
        self
    }

    /// Replaces the seed.
    pub fn with_seed(mut self, seed: u64) -> TaskSetSpec {
        self.seed = seed;
        self
    }

    /// Replaces the per-task utilization cap (rejection bound for UUniFast).
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidParameter`] if the cap is not in
    /// `(0, 1]` or cannot accommodate the total utilization.
    pub fn with_utilization_cap(mut self, cap: f64) -> Result<TaskSetSpec, WorkloadError> {
        let reachable = cap * (self.n_tasks as f64) >= self.utilization;
        if !cap.is_finite() || cap <= 0.0 || cap > 1.0 || !reachable {
            return Err(WorkloadError::InvalidParameter {
                name: "utilization_cap",
                value: cap,
            });
        }
        self.utilization_cap = cap;
        Ok(self)
    }

    /// Number of tasks.
    pub fn n_tasks(&self) -> usize {
        self.n_tasks
    }

    /// Target total worst-case utilization.
    pub fn utilization(&self) -> f64 {
        self.utilization
    }

    /// The seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Generates the task set.
    ///
    /// Periods are drawn from the period generator, per-task utilizations
    /// from capped UUniFast, and each WCET is `u_i · T_i`. WCETs are floored
    /// at 1 µs so degenerate utilization splits still produce valid tasks
    /// (the floor can raise total utilization by at most `n · 1 µs / min
    /// period`, which is negligible at the literature's period scales).
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::Task`] if a generated task is structurally
    /// invalid (cannot happen for in-range parameters; kept for robustness).
    pub fn generate(&self) -> Result<TaskSet, WorkloadError> {
        let mut rng = StdRng::seed_from_u64(self.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let periods = self.periods.generate(self.n_tasks, &mut rng);
        let cap = self
            .utilization_cap
            .max(self.utilization / self.n_tasks as f64);
        let utils = uunifast_capped(self.n_tasks, self.utilization, cap, &mut rng);
        let mut wcets: Vec<f64> = periods
            .iter()
            .zip(&utils)
            .map(|(&period, &u)| (u * period).max(1.0e-6).min(period))
            .collect();
        // The 1 µs floor can nudge total utilization above the target (and,
        // at U = 1, above feasibility); rescale down to the exact target.
        let actual: f64 = wcets.iter().zip(&periods).map(|(&c, &t)| c / t).sum();
        if actual > self.utilization {
            let scale = self.utilization / actual;
            for c in &mut wcets {
                *c *= scale;
            }
        }
        let mut tasks = Vec::with_capacity(self.n_tasks);
        for (i, (period, wcet)) in periods.into_iter().zip(wcets).enumerate() {
            let mut task = Task::new(wcet, period)?.named(format!("task-{i}"));
            if self.random_phases {
                use rand::Rng;
                task = task.with_phase(rng.gen_range(0.0..period))?;
            }
            tasks.push(task);
        }
        Ok(TaskSet::new(tasks)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_hits_target_utilization() {
        for seed in 0..20 {
            let spec = TaskSetSpec::new(8, 0.7).unwrap().with_seed(seed);
            let ts = spec.generate().unwrap();
            assert_eq!(ts.len(), 8);
            assert!(
                (ts.utilization() - 0.7).abs() < 1e-3,
                "seed {seed}: U = {}",
                ts.utilization()
            );
        }
    }

    #[test]
    fn generation_is_deterministic_and_seed_sensitive() {
        let spec = TaskSetSpec::new(5, 0.5).unwrap().with_seed(1);
        assert_eq!(spec.generate().unwrap(), spec.generate().unwrap());
        let other = TaskSetSpec::new(5, 0.5).unwrap().with_seed(2);
        assert_ne!(spec.generate().unwrap(), other.generate().unwrap());
    }

    #[test]
    fn validation() {
        assert!(TaskSetSpec::new(0, 0.5).is_err());
        assert!(TaskSetSpec::new(5, 0.0).is_err());
        assert!(TaskSetSpec::new(5, 1.2).is_err());
        assert!(TaskSetSpec::new(5, 1.0).is_ok());
        assert!(TaskSetSpec::new(5, 0.9)
            .unwrap()
            .with_utilization_cap(0.1)
            .is_err());
        assert!(TaskSetSpec::new(5, 0.9)
            .unwrap()
            .with_utilization_cap(0.5)
            .is_ok());
    }

    #[test]
    fn high_utilization_sets_remain_feasible() {
        for seed in 0..10 {
            let ts = TaskSetSpec::new(10, 1.0)
                .unwrap()
                .with_seed(seed)
                .generate()
                .unwrap();
            // The 1 µs WCET floor must not push density beyond 1: the
            // simulator rejects infeasible sets outright.
            assert!(ts.utilization() <= 1.0 + 1e-9, "U = {}", ts.utilization());
        }
    }

    #[test]
    fn random_phases_are_drawn_within_periods() {
        let ts = TaskSetSpec::new(6, 0.6)
            .unwrap()
            .with_random_phases(true)
            .with_seed(4)
            .generate()
            .unwrap();
        assert!(ts.iter().any(|(_, t)| t.phase() > 0.0));
        for (_, t) in ts.iter() {
            assert!(t.phase() < t.period());
        }
        // Default stays synchronous.
        let sync = TaskSetSpec::new(6, 0.6)
            .unwrap()
            .with_seed(4)
            .generate()
            .unwrap();
        assert!(sync.iter().all(|(_, t)| t.phase() == 0.0));
    }

    #[test]
    fn custom_periods_are_used() {
        let spec = TaskSetSpec::new(4, 0.6)
            .unwrap()
            .with_periods(PeriodGenerator::Choice {
                menu: vec![5.0e-3, 20.0e-3],
            })
            .with_seed(9);
        let ts = spec.generate().unwrap();
        for (_, t) in ts.iter() {
            assert!(t.period() == 5.0e-3 || t.period() == 20.0e-3);
        }
    }
}
