//! Declarative task-set specifications (the unit of experiment replication).

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use stadvs_sim::{Task, TaskSet};

use crate::periods::PeriodGenerator;
use crate::uunifast::uunifast_capped;
use crate::WorkloadError;

/// How many generated tasks follow each non-hard task model, and with
/// which per-model parameters (see [`stadvs_sim::TaskKind`]).
///
/// The default mix is all-hard, so existing specs are unchanged. A mix
/// assigns models by position: the first [`ModelMix::weakly_hard`] tasks
/// get the (m,k) contract, the next [`ModelMix::sporadic`] become sporadic
/// (each with its own arrival seed drawn from the spec's deterministic
/// RNG), the next [`ModelMix::frame`] become frame-driven, and the rest
/// stay hard. UUniFast assigns utilizations independently of position, so
/// positional assignment does not bias any model toward heavy tasks.
///
/// ```
/// use stadvs_workload::{ModelMix, TaskSetSpec};
///
/// # fn main() -> Result<(), stadvs_workload::WorkloadError> {
/// let mix = ModelMix::new()
///     .with_weakly_hard(2, 1, 3)?
///     .with_sporadic(2, 0.5)?
///     .with_frame(1, 0.6)?;
/// let ts = TaskSetSpec::new(8, 0.7)?.with_model_mix(mix)?.generate()?;
/// assert_eq!(ts.tasks().iter().filter(|t| t.is_hard()).count(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ModelMix {
    weakly_hard: usize,
    m: u32,
    k: u32,
    sporadic: usize,
    burst: f64,
    frame: usize,
    boost: f64,
}

impl ModelMix {
    /// The all-hard mix (the default).
    pub fn new() -> ModelMix {
        ModelMix::default()
    }

    /// Gives `count` tasks an (m,k)-firm weakly-hard contract.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidParameter`] unless `1 ≤ m ≤ k ≤ 64`.
    pub fn with_weakly_hard(
        mut self,
        count: usize,
        m: u32,
        k: u32,
    ) -> Result<ModelMix, WorkloadError> {
        if m == 0 || m > k {
            return Err(WorkloadError::InvalidParameter {
                name: "weakly_hard_m",
                value: f64::from(m),
            });
        }
        if k > 64 {
            return Err(WorkloadError::InvalidParameter {
                name: "weakly_hard_k",
                value: f64::from(k),
            });
        }
        self.weakly_hard = count;
        self.m = m;
        self.k = k;
        Ok(self)
    }

    /// Makes `count` tasks sporadic with the given maximum burst stretch.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidParameter`] if `burst` is negative
    /// or not finite.
    pub fn with_sporadic(mut self, count: usize, burst: f64) -> Result<ModelMix, WorkloadError> {
        if !burst.is_finite() || burst < 0.0 {
            return Err(WorkloadError::InvalidParameter {
                name: "sporadic_burst",
                value: burst,
            });
        }
        self.sporadic = count;
        self.burst = burst;
        Ok(self)
    }

    /// Makes `count` tasks frame-driven with the given post-miss boost
    /// floor.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidParameter`] unless `boost ∈ (0, 1]`.
    pub fn with_frame(mut self, count: usize, boost: f64) -> Result<ModelMix, WorkloadError> {
        if !boost.is_finite() || boost <= 0.0 || boost > 1.0 {
            return Err(WorkloadError::InvalidParameter {
                name: "frame_boost",
                value: boost,
            });
        }
        self.frame = count;
        self.boost = boost;
        Ok(self)
    }

    /// Number of weakly-hard tasks in the mix.
    pub fn weakly_hard(&self) -> usize {
        self.weakly_hard
    }

    /// Number of sporadic tasks in the mix.
    pub fn sporadic(&self) -> usize {
        self.sporadic
    }

    /// Number of frame tasks in the mix.
    pub fn frame(&self) -> usize {
        self.frame
    }

    /// Total non-hard tasks the mix assigns.
    pub fn total(&self) -> usize {
        self.weakly_hard + self.sporadic + self.frame
    }

    /// Whether the mix leaves every task hard (the default).
    pub fn is_all_hard(&self) -> bool {
        self.total() == 0
    }
}

/// A reproducible recipe for one random task set.
///
/// Experiments sweep parameters by generating many specs with consecutive
/// seeds; the same spec always yields the same task set, so every governor
/// is compared on identical workloads.
///
/// ```
/// use stadvs_workload::TaskSetSpec;
///
/// # fn main() -> Result<(), stadvs_workload::WorkloadError> {
/// let spec = TaskSetSpec::new(8, 0.7)?.with_seed(3);
/// let a = spec.generate()?;
/// let b = spec.generate()?;
/// assert_eq!(a, b);
/// assert!((a.utilization() - 0.7).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskSetSpec {
    n_tasks: usize,
    utilization: f64,
    periods: PeriodGenerator,
    utilization_cap: f64,
    random_phases: bool,
    seed: u64,
    /// Defaulted on deserialization so pre-model specs load unchanged.
    #[serde(default)]
    models: ModelMix,
}

impl TaskSetSpec {
    /// Creates a spec for `n_tasks` tasks totalling `utilization`, with
    /// literature-default periods (log-uniform 10 ms – 1 s) and a per-task
    /// utilization cap of 0.95.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidParameter`] if `n_tasks == 0` or
    /// `utilization` is not in `(0, 1]`.
    pub fn new(n_tasks: usize, utilization: f64) -> Result<TaskSetSpec, WorkloadError> {
        if n_tasks == 0 {
            return Err(WorkloadError::InvalidParameter {
                name: "n_tasks",
                value: 0.0,
            });
        }
        if !utilization.is_finite() || utilization <= 0.0 || utilization > 1.0 {
            return Err(WorkloadError::InvalidParameter {
                name: "utilization",
                value: utilization,
            });
        }
        Ok(TaskSetSpec {
            n_tasks,
            utilization,
            periods: PeriodGenerator::literature_default(),
            utilization_cap: 0.95,
            random_phases: false,
            seed: 0,
            models: ModelMix::default(),
        })
    }

    /// Replaces the task-model mix (the default leaves every task hard).
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidParameter`] if the mix assigns more
    /// tasks than the spec generates.
    pub fn with_model_mix(mut self, models: ModelMix) -> Result<TaskSetSpec, WorkloadError> {
        if models.total() > self.n_tasks {
            return Err(WorkloadError::InvalidParameter {
                name: "model_mix_total",
                value: models.total() as f64,
            });
        }
        self.models = models;
        Ok(self)
    }

    /// Replaces the period generator.
    pub fn with_periods(mut self, periods: PeriodGenerator) -> TaskSetSpec {
        self.periods = periods;
        self
    }

    /// Draws a random release phase in `[0, T_i)` for every task
    /// (asynchronous releases; the default is synchronous, phase 0 — the
    /// worst case for EDF).
    pub fn with_random_phases(mut self, random_phases: bool) -> TaskSetSpec {
        self.random_phases = random_phases;
        self
    }

    /// Replaces the seed.
    pub fn with_seed(mut self, seed: u64) -> TaskSetSpec {
        self.seed = seed;
        self
    }

    /// Replaces the per-task utilization cap (rejection bound for UUniFast).
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidParameter`] if the cap is not in
    /// `(0, 1]` or cannot accommodate the total utilization.
    pub fn with_utilization_cap(mut self, cap: f64) -> Result<TaskSetSpec, WorkloadError> {
        let reachable = cap * (self.n_tasks as f64) >= self.utilization;
        if !cap.is_finite() || cap <= 0.0 || cap > 1.0 || !reachable {
            return Err(WorkloadError::InvalidParameter {
                name: "utilization_cap",
                value: cap,
            });
        }
        self.utilization_cap = cap;
        Ok(self)
    }

    /// Number of tasks.
    pub fn n_tasks(&self) -> usize {
        self.n_tasks
    }

    /// Target total worst-case utilization.
    pub fn utilization(&self) -> f64 {
        self.utilization
    }

    /// The seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The task-model mix.
    pub fn model_mix(&self) -> ModelMix {
        self.models
    }

    /// Generates the task set.
    ///
    /// Periods are drawn from the period generator, per-task utilizations
    /// from capped UUniFast, and each WCET is `u_i · T_i`. WCETs are floored
    /// at 1 µs so degenerate utilization splits still produce valid tasks
    /// (the floor can raise total utilization by at most `n · 1 µs / min
    /// period`, which is negligible at the literature's period scales).
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::Task`] if a generated task is structurally
    /// invalid (cannot happen for in-range parameters; kept for robustness).
    pub fn generate(&self) -> Result<TaskSet, WorkloadError> {
        let mut rng = StdRng::seed_from_u64(self.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let periods = self.periods.generate(self.n_tasks, &mut rng);
        let cap = self
            .utilization_cap
            .max(self.utilization / self.n_tasks as f64);
        let utils = uunifast_capped(self.n_tasks, self.utilization, cap, &mut rng);
        let mut wcets: Vec<f64> = periods
            .iter()
            .zip(&utils)
            .map(|(&period, &u)| (u * period).max(1.0e-6).min(period))
            .collect();
        // The 1 µs floor can nudge total utilization above the target (and,
        // at U = 1, above feasibility); rescale down to the exact target.
        let actual: f64 = wcets.iter().zip(&periods).map(|(&c, &t)| c / t).sum();
        if actual > self.utilization {
            let scale = self.utilization / actual;
            for c in &mut wcets {
                *c *= scale;
            }
        }
        let mut tasks = Vec::with_capacity(self.n_tasks);
        for (i, (period, wcet)) in periods.into_iter().zip(wcets).enumerate() {
            use rand::Rng;
            let mut task = Task::new(wcet, period)?.named(format!("task-{i}"));
            if self.random_phases {
                task = task.with_phase(rng.gen_range(0.0..period))?;
            }
            // Positional model assignment: weakly-hard first, then
            // sporadic, then frame, then hard (see [`ModelMix`]).
            let mix = self.models;
            task = if i < mix.weakly_hard {
                task.weakly_hard(mix.m, mix.k)?
            } else if i < mix.weakly_hard + mix.sporadic {
                // Each sporadic task's arrival process gets its own seed
                // from the spec's RNG stream — deterministic per spec seed.
                let arrival_seed: u64 = rng.gen();
                task.sporadic(mix.burst, arrival_seed)?
            } else if i < mix.total() {
                task.frame(mix.boost)?
            } else {
                task
            };
            tasks.push(task);
        }
        Ok(TaskSet::new(tasks)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_hits_target_utilization() {
        for seed in 0..20 {
            let spec = TaskSetSpec::new(8, 0.7).unwrap().with_seed(seed);
            let ts = spec.generate().unwrap();
            assert_eq!(ts.len(), 8);
            assert!(
                (ts.utilization() - 0.7).abs() < 1e-3,
                "seed {seed}: U = {}",
                ts.utilization()
            );
        }
    }

    #[test]
    fn generation_is_deterministic_and_seed_sensitive() {
        let spec = TaskSetSpec::new(5, 0.5).unwrap().with_seed(1);
        assert_eq!(spec.generate().unwrap(), spec.generate().unwrap());
        let other = TaskSetSpec::new(5, 0.5).unwrap().with_seed(2);
        assert_ne!(spec.generate().unwrap(), other.generate().unwrap());
    }

    #[test]
    fn validation() {
        assert!(TaskSetSpec::new(0, 0.5).is_err());
        assert!(TaskSetSpec::new(5, 0.0).is_err());
        assert!(TaskSetSpec::new(5, 1.2).is_err());
        assert!(TaskSetSpec::new(5, 1.0).is_ok());
        assert!(TaskSetSpec::new(5, 0.9)
            .unwrap()
            .with_utilization_cap(0.1)
            .is_err());
        assert!(TaskSetSpec::new(5, 0.9)
            .unwrap()
            .with_utilization_cap(0.5)
            .is_ok());
    }

    #[test]
    fn high_utilization_sets_remain_feasible() {
        for seed in 0..10 {
            let ts = TaskSetSpec::new(10, 1.0)
                .unwrap()
                .with_seed(seed)
                .generate()
                .unwrap();
            // The 1 µs WCET floor must not push density beyond 1: the
            // simulator rejects infeasible sets outright.
            assert!(ts.utilization() <= 1.0 + 1e-9, "U = {}", ts.utilization());
        }
    }

    #[test]
    fn random_phases_are_drawn_within_periods() {
        let ts = TaskSetSpec::new(6, 0.6)
            .unwrap()
            .with_random_phases(true)
            .with_seed(4)
            .generate()
            .unwrap();
        assert!(ts.iter().any(|(_, t)| t.phase() > 0.0));
        for (_, t) in ts.iter() {
            assert!(t.phase() < t.period());
        }
        // Default stays synchronous.
        let sync = TaskSetSpec::new(6, 0.6)
            .unwrap()
            .with_seed(4)
            .generate()
            .unwrap();
        assert!(sync.iter().all(|(_, t)| t.phase() == 0.0));
    }

    #[test]
    fn custom_periods_are_used() {
        let spec = TaskSetSpec::new(4, 0.6)
            .unwrap()
            .with_periods(PeriodGenerator::Choice {
                menu: vec![5.0e-3, 20.0e-3],
            })
            .with_seed(9);
        let ts = spec.generate().unwrap();
        for (_, t) in ts.iter() {
            assert!(t.period() == 5.0e-3 || t.period() == 20.0e-3);
        }
    }

    fn mix() -> ModelMix {
        ModelMix::new()
            .with_weakly_hard(2, 1, 3)
            .unwrap()
            .with_sporadic(2, 0.5)
            .unwrap()
            .with_frame(1, 0.6)
            .unwrap()
    }

    #[test]
    fn model_mix_assigns_kinds_by_position() {
        use stadvs_sim::TaskKind;
        let ts = TaskSetSpec::new(8, 0.7)
            .unwrap()
            .with_model_mix(mix())
            .unwrap()
            .with_seed(5)
            .generate()
            .unwrap();
        let kinds: Vec<TaskKind> = ts.tasks().iter().map(|t| t.kind()).collect();
        assert!(matches!(kinds[0], TaskKind::WeaklyHard { m: 1, k: 3 }));
        assert!(matches!(kinds[1], TaskKind::WeaklyHard { m: 1, k: 3 }));
        for (i, kind) in kinds.iter().enumerate().take(4).skip(2) {
            match kind {
                TaskKind::Sporadic {
                    min_interarrival,
                    burst,
                    ..
                } => {
                    // The admission pin: min separation is the period.
                    assert_eq!(*min_interarrival, ts.tasks()[i].period());
                    assert_eq!(*burst, 0.5);
                }
                other => panic!("task {i}: expected sporadic, got {other:?}"),
            }
        }
        assert!(matches!(kinds[4], TaskKind::Frame { boost, .. } if boost == 0.6));
        assert!(kinds[5..].iter().all(TaskKind::is_hard));
        assert!(!ts.all_hard());
        // Sporadic arrival seeds are per-task: the two processes differ.
        let gaps = |i: usize| -> Vec<u64> {
            (1..20u64)
                .map(|j| ts.tasks()[i].arrival_gap(j).to_bits())
                .collect()
        };
        assert_ne!(gaps(2), gaps(3));
    }

    #[test]
    fn model_mix_validation() {
        assert!(ModelMix::new().with_weakly_hard(1, 0, 3).is_err());
        assert!(ModelMix::new().with_weakly_hard(1, 4, 3).is_err());
        assert!(ModelMix::new().with_weakly_hard(1, 1, 65).is_err());
        assert!(ModelMix::new().with_sporadic(1, -0.1).is_err());
        assert!(ModelMix::new().with_sporadic(1, f64::NAN).is_err());
        assert!(ModelMix::new().with_frame(1, 0.0).is_err());
        assert!(ModelMix::new().with_frame(1, 1.1).is_err());
        // A mix larger than the task count is rejected at attach time.
        assert!(TaskSetSpec::new(3, 0.5)
            .unwrap()
            .with_model_mix(mix())
            .is_err());
        assert!(TaskSetSpec::new(5, 0.5)
            .unwrap()
            .with_model_mix(mix())
            .is_ok());
        assert!(ModelMix::new().is_all_hard());
        assert_eq!(mix().total(), 5);
        assert_eq!(
            (mix().weakly_hard(), mix().sporadic(), mix().frame()),
            (2, 2, 1)
        );
    }

    #[test]
    fn mixed_generation_is_deterministic() {
        let spec = TaskSetSpec::new(8, 0.7)
            .unwrap()
            .with_model_mix(mix())
            .unwrap()
            .with_seed(11);
        assert_eq!(spec.generate().unwrap(), spec.generate().unwrap());
        // The mix draws extra RNG values (sporadic seeds); the default
        // spec with the same seed is unaffected by that (hard prefix of
        // both sets has identical timing parameters).
        let plain = TaskSetSpec::new(8, 0.7)
            .unwrap()
            .with_seed(11)
            .generate()
            .unwrap();
        let mixed = spec.generate().unwrap();
        for i in 0..8 {
            assert_eq!(plain.tasks()[i].wcet(), mixed.tasks()[i].wcet());
            assert_eq!(plain.tasks()[i].period(), mixed.tasks()[i].period());
        }
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;
        use stadvs_sim::TaskKind;

        proptest! {
            /// Property: every generated sporadic arrival sequence
            /// respects the minimum inter-arrival separation — each gap is
            /// at least the period and at most `(1 + burst)` periods.
            #[test]
            fn sporadic_gaps_respect_min_interarrival(
                n_tasks in 1usize..10,
                n_sporadic in 1usize..10,
                burst_milli in 0u64..=2000,
                seed in 0u64..1000,
            ) {
                let n_sporadic = n_sporadic.min(n_tasks);
                let burst = burst_milli as f64 / 1000.0;
                let ts = TaskSetSpec::new(n_tasks, 0.6)
                    .expect("parameters in range")
                    .with_model_mix(
                        ModelMix::new()
                            .with_sporadic(n_sporadic, burst)
                            .expect("burst in range"),
                    )
                    .expect("mix fits")
                    .with_seed(seed)
                    .generate()
                    .expect("spec generates");
                let mut sporadic_seen = 0usize;
                for (_, t) in ts.iter() {
                    if !matches!(t.kind(), TaskKind::Sporadic { .. }) {
                        continue;
                    }
                    sporadic_seen += 1;
                    let mut release = t.phase();
                    for index in 1..100u64 {
                        let gap = t.arrival_gap(index);
                        prop_assert!(gap >= t.period(), "gap {} < period {}", gap, t.period());
                        prop_assert!(
                            gap <= t.period() * (1.0 + burst) + 1e-12,
                            "gap {} above burst ceiling", gap
                        );
                        release += gap;
                        // The arrival sequence never precedes the lattice.
                        prop_assert!(release >= t.release_of(index) - 1e-9);
                    }
                }
                prop_assert_eq!(sporadic_seen, n_sporadic);
            }

            /// Property: generation with a model mix is bit-identical
            /// across runs for a fixed seed, including every per-task
            /// arrival seed.
            #[test]
            fn mixed_generation_replays_bit_identically(
                n_tasks in 2usize..10,
                seed in 0u64..1000,
            ) {
                let mix = ModelMix::new()
                    .with_weakly_hard(1, 1, 2)
                    .expect("contract in range")
                    .with_sporadic(1, 0.75)
                    .expect("burst in range");
                let spec = TaskSetSpec::new(n_tasks, 0.7)
                    .expect("parameters in range")
                    .with_model_mix(mix)
                    .expect("mix fits")
                    .with_seed(seed);
                let a = spec.generate().expect("spec generates");
                let b = spec.generate().expect("spec generates");
                prop_assert_eq!(a, b);
            }

            /// Property: admission rejects every violating sporadic spec —
            /// a `min_interarrival` that disagrees with the period never
            /// constructs, regardless of the disagreement's direction.
            #[test]
            fn admission_rejects_min_interarrival_mismatch(
                period_milli in 1u64..1000,
                delta_milli in 1i64..100,
                sign in 0u32..2,
            ) {
                use stadvs_sim::Task;
                let period = period_milli as f64 / 1000.0;
                let delta = delta_milli as f64 / 1000.0 * if sign == 0 { -1.0 } else { 1.0 };
                let mismatched = period + delta;
                let task = Task::new(period / 2.0, period).expect("valid task");
                let result = task.with_kind(TaskKind::Sporadic {
                    min_interarrival: mismatched,
                    burst: 0.0,
                    seed: 1,
                });
                if mismatched == period {
                    prop_assert!(result.is_ok());
                } else {
                    prop_assert!(result.is_err());
                }
            }
        }
    }
}
