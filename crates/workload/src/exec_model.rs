//! Execution-demand (actual run-time) models.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use stadvs_sim::{ExecutionSource, Task, TaskId};

use crate::WorkloadError;

/// The shape of per-job actual demand, as a fraction of WCET.
///
/// All patterns are clamped into `[0, 1]` (a hard real-time job never
/// exceeds its worst case). The *dynamic workload* patterns (sinusoidal,
/// bursty) model the execution-time drift that motivates slack-analysis DVS:
/// history is a poor predictor, so the energy win must come from *measured*
/// slack, not forecasts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DemandPattern {
    /// Every job consumes exactly `ratio · wcet`.
    Constant {
        /// Fraction of WCET, in `[0, 1]`.
        ratio: f64,
    },
    /// Uniform in `[min, max] · wcet` — the standard BCET/WCET-ratio model
    /// (`min` is the BCET/WCET ratio when `max == 1`).
    Uniform {
        /// Lower fraction of WCET.
        min: f64,
        /// Upper fraction of WCET.
        max: f64,
    },
    /// A normal distribution clamped into `[floor, 1]`.
    Normal {
        /// Mean fraction of WCET.
        mean: f64,
        /// Standard deviation of the fraction.
        std_dev: f64,
        /// Lowest admissible fraction.
        floor: f64,
    },
    /// Two-point mixture: `high` with probability `high_probability`, else
    /// `low` (e.g. an MPEG decoder's I-frames vs B-frames).
    Bimodal {
        /// Fraction in the common (cheap) mode.
        low: f64,
        /// Fraction in the rare (expensive) mode.
        high: f64,
        /// Probability of the expensive mode.
        high_probability: f64,
    },
    /// Slow periodic drift: `mean + amplitude · sin(2π·(index+φ)/period_jobs)`
    /// with a per-task phase `φ`.
    Sinusoidal {
        /// Mean fraction of WCET.
        mean: f64,
        /// Oscillation amplitude.
        amplitude: f64,
        /// Jobs per full oscillation.
        period_jobs: u32,
    },
    /// Two-phase bursty workload: runs of `burst_jobs` consecutive jobs are
    /// either heavy (`high`) or light (`low`); each run's mode is an
    /// independent coin flip with heavy probability `duty`. Small uniform
    /// jitter (±5 % of WCET) is added within each run.
    Bursty {
        /// Fraction in light runs.
        low: f64,
        /// Fraction in heavy runs.
        high: f64,
        /// Length of each run, in jobs.
        burst_jobs: u32,
        /// Probability that a run is heavy.
        duty: f64,
    },
}

impl DemandPattern {
    fn validate(&self) -> Result<(), WorkloadError> {
        let check = |name: &'static str, v: f64, lo: f64, hi: f64| {
            if !v.is_finite() || v < lo || v > hi {
                Err(WorkloadError::InvalidParameter { name, value: v })
            } else {
                Ok(())
            }
        };
        match *self {
            DemandPattern::Constant { ratio } => check("ratio", ratio, 0.0, 1.0),
            DemandPattern::Uniform { min, max } => {
                check("min", min, 0.0, 1.0)?;
                check("max", max, min, 1.0)
            }
            DemandPattern::Normal {
                mean,
                std_dev,
                floor,
            } => {
                check("mean", mean, 0.0, 1.0)?;
                check("std_dev", std_dev, 0.0, 1.0)?;
                check("floor", floor, 0.0, 1.0)
            }
            DemandPattern::Bimodal {
                low,
                high,
                high_probability,
            } => {
                check("low", low, 0.0, 1.0)?;
                check("high", high, low, 1.0)?;
                check("high_probability", high_probability, 0.0, 1.0)
            }
            DemandPattern::Sinusoidal {
                mean,
                amplitude,
                period_jobs,
            } => {
                check("mean", mean, 0.0, 1.0)?;
                check("amplitude", amplitude, 0.0, 1.0)?;
                // xtask:allow(float-eq): period_jobs is an integer job count
                if period_jobs == 0 {
                    return Err(WorkloadError::InvalidParameter {
                        name: "period_jobs",
                        value: 0.0,
                    });
                }
                Ok(())
            }
            DemandPattern::Bursty {
                low,
                high,
                burst_jobs,
                duty,
            } => {
                check("low", low, 0.0, 1.0)?;
                check("high", high, low, 1.0)?;
                check("duty", duty, 0.0, 1.0)?;
                if burst_jobs == 0 {
                    return Err(WorkloadError::InvalidParameter {
                        name: "burst_jobs",
                        value: 0.0,
                    });
                }
                Ok(())
            }
        }
    }

    fn ratio(&self, seed: u64, task: TaskId, index: u64) -> f64 {
        let mut rng = job_rng(seed, task, index);
        let raw = match *self {
            DemandPattern::Constant { ratio } => ratio,
            DemandPattern::Uniform { min, max } => {
                if max > min {
                    rng.gen_range(min..=max)
                } else {
                    min
                }
            }
            DemandPattern::Normal {
                mean,
                std_dev,
                floor,
            } => (mean + std_dev * standard_normal(&mut rng)).clamp(floor, 1.0),
            DemandPattern::Bimodal {
                low,
                high,
                high_probability,
            } => {
                if rng.gen::<f64>() < high_probability {
                    high
                } else {
                    low
                }
            }
            DemandPattern::Sinusoidal {
                mean,
                amplitude,
                period_jobs,
            } => {
                let phase = (task_hash(seed, task) % u64::from(period_jobs)) as f64;
                let x = (index as f64 + phase) / f64::from(period_jobs);
                mean + amplitude * (2.0 * std::f64::consts::PI * x).sin()
            }
            DemandPattern::Bursty {
                low,
                high,
                burst_jobs,
                duty,
            } => {
                let run = index / u64::from(burst_jobs);
                // The run's mode must be identical for all jobs in the run:
                // derive it from (seed, task, run), not from the job rng.
                let coin =
                    splitmix64(task_hash(seed, task) ^ splitmix64(run)) as f64 / u64::MAX as f64;
                let base = if coin < duty { high } else { low };
                base + rng.gen_range(-0.05..=0.05)
            }
        };
        raw.clamp(0.0, 1.0)
    }
}

/// A deterministic [`ExecutionSource`] built from a [`DemandPattern`] and a
/// seed.
///
/// Determinism is *per job*: the demand of job `(task, index)` depends only
/// on `(pattern, seed, task, index)`, never on evaluation order. The same
/// workload can therefore be replayed for every governor, and clairvoyant
/// analyses (oracle bounds) see exactly the jobs the simulator ran.
///
/// ```
/// use stadvs_sim::{ExecutionSource, Task, TaskId};
/// use stadvs_workload::{DemandPattern, ExecutionModel};
///
/// # fn main() -> Result<(), stadvs_workload::WorkloadError> {
/// let model = ExecutionModel::new(DemandPattern::Uniform { min: 0.2, max: 1.0 })?
///     .with_seed(42);
/// let task = Task::new(1.0e-3, 10.0e-3).expect("valid task");
/// let a = model.actual_work(TaskId(0), &task, 7);
/// let b = model.actual_work(TaskId(0), &task, 7);
/// assert_eq!(a, b); // replayable
/// assert!(a >= 0.2e-3 && a <= 1.0e-3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutionModel {
    pattern: DemandPattern,
    seed: u64,
}

impl ExecutionModel {
    /// Creates a model with seed 0.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidParameter`] if the pattern's
    /// parameters are out of range.
    pub fn new(pattern: DemandPattern) -> Result<ExecutionModel, WorkloadError> {
        pattern.validate()?;
        Ok(ExecutionModel { pattern, seed: 0 })
    }

    /// Returns the model with a different seed (changes every random draw
    /// while keeping the distribution).
    pub fn with_seed(mut self, seed: u64) -> ExecutionModel {
        self.seed = seed;
        self
    }

    /// The demand pattern.
    pub fn pattern(&self) -> &DemandPattern {
        &self.pattern
    }

    /// The seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The standard literature model: uniform in `[bcet_ratio, 1] · wcet`.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidParameter`] if `bcet_ratio` is not in
    /// `[0, 1]`.
    pub fn uniform_bcet(bcet_ratio: f64) -> Result<ExecutionModel, WorkloadError> {
        ExecutionModel::new(DemandPattern::Uniform {
            min: bcet_ratio,
            max: 1.0,
        })
    }
}

impl ExecutionSource for ExecutionModel {
    fn actual_work(&self, task_id: TaskId, task: &Task, job_index: u64) -> f64 {
        self.pattern.ratio(self.seed, task_id, job_index) * task.wcet()
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn task_hash(seed: u64, task: TaskId) -> u64 {
    splitmix64(seed ^ splitmix64(task.0 as u64 ^ 0xA5A5_5A5A_DEAD_BEEF))
}

fn job_rng(seed: u64, task: TaskId, index: u64) -> StdRng {
    StdRng::seed_from_u64(splitmix64(task_hash(seed, task) ^ splitmix64(index)))
}

/// A standard-normal draw via Box–Muller (rand 0.8 has no normal
/// distribution without the `rand_distr` crate, which we avoid adding).
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task() -> Task {
        Task::new(1.0, 10.0).expect("valid task")
    }

    fn sample(model: &ExecutionModel, task_id: usize, count: u64) -> Vec<f64> {
        let t = task();
        (0..count)
            .map(|i| model.actual_work(TaskId(task_id), &t, i))
            .collect()
    }

    #[test]
    fn all_patterns_stay_within_wcet() {
        let patterns = vec![
            DemandPattern::Constant { ratio: 0.5 },
            DemandPattern::Uniform { min: 0.1, max: 1.0 },
            DemandPattern::Normal {
                mean: 0.5,
                std_dev: 0.2,
                floor: 0.05,
            },
            DemandPattern::Bimodal {
                low: 0.2,
                high: 0.9,
                high_probability: 0.1,
            },
            DemandPattern::Sinusoidal {
                mean: 0.5,
                amplitude: 0.4,
                period_jobs: 50,
            },
            DemandPattern::Bursty {
                low: 0.2,
                high: 0.9,
                burst_jobs: 10,
                duty: 0.3,
            },
        ];
        for p in patterns {
            let m = ExecutionModel::new(p.clone()).unwrap().with_seed(11);
            for w in sample(&m, 0, 500) {
                assert!((0.0..=1.0 + 1e-12).contains(&w), "{p:?} produced {w}");
            }
        }
    }

    #[test]
    fn determinism_is_order_independent() {
        let m = ExecutionModel::uniform_bcet(0.2).unwrap().with_seed(5);
        let t = task();
        let forward: Vec<f64> = (0..20).map(|i| m.actual_work(TaskId(1), &t, i)).collect();
        let backward: Vec<f64> = (0..20)
            .rev()
            .map(|i| m.actual_work(TaskId(1), &t, i))
            .collect();
        let reversed: Vec<f64> = backward.into_iter().rev().collect();
        assert_eq!(forward, reversed);
    }

    #[test]
    fn different_tasks_and_seeds_decorrelate() {
        let m = ExecutionModel::uniform_bcet(0.0).unwrap().with_seed(5);
        let a = sample(&m, 0, 50);
        let b = sample(&m, 1, 50);
        assert_ne!(a, b);
        let m2 = ExecutionModel::uniform_bcet(0.0).unwrap().with_seed(6);
        assert_ne!(sample(&m2, 0, 50), a);
    }

    #[test]
    fn uniform_mean_is_midpoint() {
        let m = ExecutionModel::new(DemandPattern::Uniform { min: 0.2, max: 0.8 })
            .unwrap()
            .with_seed(7);
        let xs = sample(&m, 0, 4000);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn bimodal_hits_both_modes() {
        let m = ExecutionModel::new(DemandPattern::Bimodal {
            low: 0.2,
            high: 0.9,
            high_probability: 0.3,
        })
        .unwrap()
        .with_seed(8);
        let xs = sample(&m, 0, 1000);
        let high = xs.iter().filter(|&&x| (x - 0.9).abs() < 1e-9).count();
        let low = xs.iter().filter(|&&x| (x - 0.2).abs() < 1e-9).count();
        assert_eq!(high + low, 1000);
        let frac = high as f64 / 1000.0;
        assert!((frac - 0.3).abs() < 0.05, "high fraction {frac}");
    }

    #[test]
    fn sinusoidal_oscillates() {
        let m = ExecutionModel::new(DemandPattern::Sinusoidal {
            mean: 0.5,
            amplitude: 0.4,
            period_jobs: 20,
        })
        .unwrap();
        let xs = sample(&m, 0, 100);
        let max = xs.iter().cloned().fold(0.0, f64::max);
        let min = xs.iter().cloned().fold(1.0, f64::min);
        assert!(max > 0.8 && min < 0.2, "range [{min}, {max}] too narrow");
    }

    #[test]
    fn bursty_runs_are_coherent() {
        let m = ExecutionModel::new(DemandPattern::Bursty {
            low: 0.1,
            high: 0.9,
            burst_jobs: 25,
            duty: 0.5,
        })
        .unwrap()
        .with_seed(13);
        let xs = sample(&m, 0, 200);
        // Within each run of 25 jobs, all demands share the mode (within the
        // ±0.05 jitter).
        for run in xs.chunks(25) {
            let heavy = run.iter().filter(|&&x| x > 0.5).count();
            assert!(
                heavy == 0 || heavy == run.len(),
                "run mixes modes: {heavy}/{}",
                run.len()
            );
        }
        // Both modes occur over 8 runs with high probability.
        assert!(xs.iter().any(|&x| x > 0.5));
        assert!(xs.iter().any(|&x| x < 0.5));
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        assert!(ExecutionModel::new(DemandPattern::Constant { ratio: 1.5 }).is_err());
        assert!(ExecutionModel::new(DemandPattern::Uniform { min: 0.8, max: 0.2 }).is_err());
        assert!(ExecutionModel::new(DemandPattern::Sinusoidal {
            mean: 0.5,
            amplitude: 0.1,
            period_jobs: 0
        })
        .is_err());
        assert!(ExecutionModel::uniform_bcet(-0.1).is_err());
        assert!(ExecutionModel::uniform_bcet(0.5).is_ok());
    }

    #[test]
    fn normal_is_truncated() {
        let m = ExecutionModel::new(DemandPattern::Normal {
            mean: 0.1,
            std_dev: 0.5,
            floor: 0.05,
        })
        .unwrap()
        .with_seed(3);
        let xs = sample(&m, 0, 500);
        assert!(xs
            .iter()
            .all(|&x| (0.05 - 1e-12..=1.0 + 1e-12).contains(&x)));
    }
}
