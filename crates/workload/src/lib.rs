//! # stadvs-workload — task-set and execution-time workload generation
//!
//! Generates the workloads the DVS-EDF evaluation literature uses:
//!
//! * [`uunifast`] / [`uunifast_capped`] — unbiased utilization splitting,
//! * [`PeriodGenerator`] — log-uniform / menu / harmonic period draws,
//! * [`TaskSetSpec`] — a seeded, fully reproducible task-set recipe,
//! * [`ModelMix`] — positional assignment of weakly-hard, sporadic, and
//!   frame task models within a generated set,
//! * [`ExecutionModel`] + [`DemandPattern`] — deterministic per-job actual
//!   demand (uniform BCET/WCET, clamped normal, bimodal, sinusoidal drift,
//!   bursty phases),
//! * [`RecordedDemand`] — replay of captured per-job demand traces,
//! * [`Partitioner`] ([`FirstFitDecreasing`] / [`WorstFitDecreasing`]) —
//!   partitioned-EDF task-to-core assignment with [`PartitionReport`],
//! * [`mod@reference`] — the CNC, INS, and generic-avionics task sets,
//! * [`TaskSetBuilder`] — hand-crafted sets with utilization rescaling.
//!
//! Everything is deterministic given its seed, so the same workload can be
//! replayed under every governor and inspected by clairvoyant analyses.
//!
//! ```
//! use stadvs_workload::{ExecutionModel, TaskSetSpec};
//!
//! # fn main() -> Result<(), stadvs_workload::WorkloadError> {
//! let tasks = TaskSetSpec::new(8, 0.7)?.with_seed(1).generate()?;
//! let demand = ExecutionModel::uniform_bcet(0.5)?.with_seed(1);
//! assert_eq!(tasks.len(), 8);
//! # let _ = demand;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod error;
mod exec_model;
mod faults;
mod partition;
mod periods;
mod recorded;
pub mod reference;
mod spec;
mod uunifast;

pub use builder::TaskSetBuilder;
pub use error::WorkloadError;
pub use exec_model::{DemandPattern, ExecutionModel};
pub use faults::{FaultPlanSpec, JitterSpec, OverrunSpec};
pub use partition::{
    partitioner_by_name, CoreAssignment, CoreDemand, FirstFitDecreasing, PartitionReport,
    Partitioner, WorstFitDecreasing, EDF_BOUND,
};
pub use periods::PeriodGenerator;
pub use recorded::RecordedDemand;
pub use spec::{ModelMix, TaskSetSpec};
pub use uunifast::{uunifast, uunifast_capped};
