//! Serializable fault-injection recipes.
//!
//! [`FaultPlanSpec`] is the configuration-file counterpart of
//! [`stadvs_sim::FaultPlan`]: a plain-old-data recipe that can live in an
//! experiment description (serde round-trip, diffable defaults) and is
//! validated into an executable plan with [`FaultPlanSpec::build`]. The
//! named presets are the fault regimes the `faults` experiment family
//! sweeps.

use serde::{Deserialize, Serialize};
use stadvs_sim::{FaultPlan, OverrunPolicy};

use crate::error::WorkloadError;

/// WCET-overrun channel parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OverrunSpec {
    /// Per-job overrun probability in `[0, 1]`.
    pub probability: f64,
    /// Demand multiplier applied to selected jobs (finite, positive;
    /// `> 1` violates the WCET budget).
    pub factor: f64,
}

/// Release-jitter channel parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JitterSpec {
    /// Per-release jitter probability in `[0, 1]`.
    pub probability: f64,
    /// Maximum delay as a fraction of the task period (finite, ≥ 0).
    pub max_fraction: f64,
}

/// A deterministic, seed-driven fault-injection recipe in configuration
/// form. Channels left `None` are not injected; an all-`None` spec builds
/// [`FaultPlan::NONE`].
///
/// ```
/// use stadvs_workload::FaultPlanSpec;
///
/// # fn main() -> Result<(), stadvs_workload::WorkloadError> {
/// let plan = FaultPlanSpec::overrun_storm(7).build()?;
/// assert!(!plan.is_none());
/// assert!(FaultPlanSpec::none().build()?.is_none());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlanSpec {
    /// Seed for every per-channel deterministic draw.
    pub seed: u64,
    /// WCET-overrun channel, if injected.
    #[serde(default)]
    pub overrun: Option<OverrunSpec>,
    /// Release-jitter channel, if injected.
    #[serde(default)]
    pub jitter: Option<JitterSpec>,
    /// Probability of dropping each candidate downward speed switch.
    #[serde(default)]
    pub switch_drop_probability: Option<f64>,
    /// Clamp every selected speed up to this floor (coarsened level set).
    #[serde(default)]
    pub level_floor: Option<f64>,
    /// Force this overrun policy on every governor (differential tests).
    #[serde(default)]
    pub policy: Option<OverrunPolicy>,
}

impl FaultPlanSpec {
    /// The no-fault spec.
    pub fn none() -> FaultPlanSpec {
        FaultPlanSpec::default()
    }

    /// Preset: frequent, large WCET overruns (the stress arm of the
    /// `faults` experiment family).
    pub fn overrun_storm(seed: u64) -> FaultPlanSpec {
        FaultPlanSpec {
            seed,
            overrun: Some(OverrunSpec {
                probability: 0.1,
                factor: 1.5,
            }),
            ..FaultPlanSpec::default()
        }
    }

    /// Preset: a degraded platform — lost downward switch commands plus a
    /// coarsened level set. Deadline-safe by construction (speeds only
    /// ever stay higher), so any miss under this preset is an algorithm
    /// bug.
    pub fn degraded_platform(seed: u64) -> FaultPlanSpec {
        FaultPlanSpec {
            seed,
            switch_drop_probability: Some(0.2),
            level_floor: Some(0.5),
            ..FaultPlanSpec::default()
        }
    }

    /// Preset: noisy release timing (delay-only jitter with sporadic
    /// separation). Also deadline-safe by construction.
    pub fn noisy_releases(seed: u64) -> FaultPlanSpec {
        FaultPlanSpec {
            seed,
            jitter: Some(JitterSpec {
                probability: 0.3,
                max_fraction: 0.25,
            }),
            ..FaultPlanSpec::default()
        }
    }

    /// Preset: every channel at once — the kitchen-sink degradation run.
    pub fn combined(seed: u64) -> FaultPlanSpec {
        FaultPlanSpec {
            seed,
            overrun: Some(OverrunSpec {
                probability: 0.05,
                factor: 1.25,
            }),
            jitter: Some(JitterSpec {
                probability: 0.2,
                max_fraction: 0.15,
            }),
            switch_drop_probability: Some(0.1),
            level_floor: None,
            policy: None,
        }
    }

    /// Validates the recipe into an executable [`FaultPlan`].
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::Task`] wrapping the plan builder's
    /// rejection when any channel parameter is out of range.
    pub fn build(&self) -> Result<FaultPlan, WorkloadError> {
        let mut plan = FaultPlan::new(self.seed);
        if let Some(o) = self.overrun {
            plan = plan.with_overrun(o.probability, o.factor)?;
        }
        if let Some(j) = self.jitter {
            plan = plan.with_release_jitter(j.probability, j.max_fraction)?;
        }
        if let Some(p) = self.switch_drop_probability {
            plan = plan.with_switch_drops(p)?;
        }
        if let Some(floor) = self.level_floor {
            plan = plan.with_level_floor(floor)?;
        }
        if let Some(policy) = self.policy {
            plan = plan.with_policy_override(policy);
        }
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_builds_to_none() {
        assert!(FaultPlanSpec::none().build().unwrap().is_none());
    }

    #[test]
    fn presets_build_and_carry_their_channels() {
        let storm = FaultPlanSpec::overrun_storm(7).build().unwrap();
        assert!(!storm.is_none());
        assert!(!storm.has_jitter());
        let degraded = FaultPlanSpec::degraded_platform(7).build().unwrap();
        assert_eq!(degraded.level_floor(), Some(0.5));
        let noisy = FaultPlanSpec::noisy_releases(7).build().unwrap();
        assert!(noisy.has_jitter());
        let combined = FaultPlanSpec::combined(7).build().unwrap();
        assert!(combined.has_jitter());
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        let bad = FaultPlanSpec {
            overrun: Some(OverrunSpec {
                probability: 1.5,
                factor: 1.2,
            }),
            ..FaultPlanSpec::default()
        };
        assert!(bad.build().is_err());
        let bad_floor = FaultPlanSpec {
            level_floor: Some(0.0),
            ..FaultPlanSpec::default()
        };
        assert!(bad_floor.build().is_err());
    }

    #[test]
    fn policy_override_is_threaded() {
        let spec = FaultPlanSpec {
            policy: Some(OverrunPolicy::Abort),
            overrun: Some(OverrunSpec {
                probability: 0.1,
                factor: 2.0,
            }),
            ..FaultPlanSpec::default()
        };
        let plan = spec.build().unwrap();
        assert_eq!(plan.policy_override(), Some(OverrunPolicy::Abort));
        assert_eq!(
            plan.resolve_policy(OverrunPolicy::CompleteAtMax),
            OverrunPolicy::Abort
        );
    }

    #[test]
    fn same_seed_same_plan() {
        let a = FaultPlanSpec::combined(42).build().unwrap();
        let b = FaultPlanSpec::combined(42).build().unwrap();
        assert_eq!(a, b);
    }
}
