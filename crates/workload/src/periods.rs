//! Task-period generators.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// How task periods are drawn.
///
/// The DVS-EDF literature draws periods log-uniformly over two decades
/// (e.g. 10 ms – 1 s) so that short- and long-period tasks are equally
/// represented; discrete-choice and harmonic generators are provided for
/// controlled studies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PeriodGenerator {
    /// `log10(period)` uniform over `[log10(min), log10(max)]`.
    LogUniform {
        /// Smallest period, in seconds.
        min: f64,
        /// Largest period, in seconds.
        max: f64,
    },
    /// Uniform choice (with replacement) from a fixed menu of periods.
    Choice {
        /// The period menu, in seconds.
        menu: Vec<f64>,
    },
    /// Harmonic periods: `base · 2^k` with `k` uniform in `0..octaves`.
    /// Harmonic sets have tiny hyperperiods, which makes exact
    /// hyperperiod-aligned simulation cheap.
    Harmonic {
        /// Base (smallest) period, in seconds.
        base: f64,
        /// Number of octaves (distinct powers of two).
        octaves: u32,
    },
}

impl PeriodGenerator {
    /// The conventional synthetic setting: log-uniform over 10 ms – 1 s.
    pub fn literature_default() -> PeriodGenerator {
        PeriodGenerator::LogUniform {
            min: 10.0e-3,
            max: 1.0,
        }
    }

    /// Draws `n` periods.
    ///
    /// # Panics
    ///
    /// Panics if the generator's parameters are degenerate (non-positive
    /// periods, empty menu, `min > max`, or zero octaves).
    pub fn generate<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<f64> {
        match self {
            PeriodGenerator::LogUniform { min, max } => {
                assert!(
                    *min > 0.0 && max >= min,
                    "log-uniform range [{min}, {max}] is degenerate"
                );
                let (lo, hi) = (min.log10(), max.log10());
                (0..n)
                    .map(|_| 10.0_f64.powf(rng.gen_range(lo..=hi)))
                    .collect()
            }
            PeriodGenerator::Choice { menu } => {
                assert!(!menu.is_empty(), "period menu must not be empty");
                assert!(menu.iter().all(|&p| p > 0.0), "periods must be positive");
                (0..n).map(|_| menu[rng.gen_range(0..menu.len())]).collect()
            }
            PeriodGenerator::Harmonic { base, octaves } => {
                assert!(*base > 0.0, "base period must be positive");
                assert!(*octaves > 0, "need at least one octave");
                (0..n)
                    .map(|_| base * f64::from(1u32 << rng.gen_range(0..*octaves)))
                    .collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn log_uniform_stays_in_range() {
        let g = PeriodGenerator::literature_default();
        let mut rng = StdRng::seed_from_u64(1);
        let ps = g.generate(1000, &mut rng);
        assert_eq!(ps.len(), 1000);
        assert!(ps.iter().all(|&p| (10.0e-3..=1.0).contains(&p)));
        // Both decades should actually be hit.
        assert!(ps.iter().any(|&p| p < 0.1));
        assert!(ps.iter().any(|&p| p > 0.1));
    }

    #[test]
    fn choice_draws_from_menu() {
        let menu = vec![4.0e-3, 8.0e-3, 16.0e-3];
        let g = PeriodGenerator::Choice { menu: menu.clone() };
        let mut rng = StdRng::seed_from_u64(2);
        let ps = g.generate(100, &mut rng);
        assert!(ps.iter().all(|p| menu.contains(p)));
    }

    #[test]
    fn harmonic_periods_are_powers_of_two() {
        let g = PeriodGenerator::Harmonic {
            base: 1.0e-3,
            octaves: 4,
        };
        let mut rng = StdRng::seed_from_u64(3);
        let ps = g.generate(100, &mut rng);
        for p in ps {
            let k = p / 1.0e-3;
            assert!([1.0, 2.0, 4.0, 8.0].contains(&k), "unexpected multiple {k}");
        }
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn degenerate_range_panics() {
        let g = PeriodGenerator::LogUniform { min: 1.0, max: 0.5 };
        let mut rng = StdRng::seed_from_u64(4);
        let _ = g.generate(1, &mut rng);
    }

    #[test]
    fn deterministic_per_seed() {
        let g = PeriodGenerator::literature_default();
        let a = g.generate(10, &mut StdRng::seed_from_u64(5));
        let b = g.generate(10, &mut StdRng::seed_from_u64(5));
        assert_eq!(a, b);
    }
}
