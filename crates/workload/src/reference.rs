//! Reference embedded task sets from the real-time literature.
//!
//! The DVS-EDF comparison studies evaluate on three recurring embedded
//! applications besides synthetic sets: a CNC machine controller, an
//! inertial navigation system (INS), and a generic avionics platform. The
//! tables below follow the period/WCET figures commonly cited for them
//! (periods and WCETs in the original papers are given in microseconds or
//! milliseconds; we transcribe them in seconds). Where sources differ in
//! small details, we pick the variant used by the RTAS 2002 DVS comparison
//! study and note the worst-case utilization each set is usually quoted at.

use stadvs_sim::{Task, TaskSet};

fn build(name: &str, rows: &[(f64, f64)]) -> TaskSet {
    let tasks: Vec<Task> = rows
        .iter()
        .enumerate()
        .map(|(i, &(wcet, period))| {
            Task::new(wcet, period)
                .unwrap_or_else(|e| panic!("reference set {name} row {i} invalid: {e}"))
                .named(format!("{name}-{i}"))
        })
        .collect();
    TaskSet::new(tasks).expect("reference sets are non-empty")
}

/// The CNC machine-controller task set (8 tasks, U ≈ 0.50).
///
/// Periods 2.4 ms – 9.6 ms; a tight, short-period control workload that
/// stresses scheduling overhead and leaves little static slack per job.
pub fn cnc() -> TaskSet {
    // (wcet, period) in seconds.
    build(
        "cnc",
        &[
            (35.0e-6, 2.4e-3),
            (40.0e-6, 2.4e-3),
            (165.0e-6, 2.4e-3),
            (165.0e-6, 2.4e-3),
            (570.0e-6, 4.8e-3),
            (570.0e-6, 4.8e-3),
            (570.0e-6, 9.6e-3),
            (570.0e-6, 9.6e-3),
        ],
    )
}

/// The inertial-navigation-system task set (6 tasks, U ≈ 0.73).
///
/// A mix of a fast 2.5 ms attitude loop with slow kilohertz-to-hertz
/// telemetry tasks — the classic wide-period-spread workload.
pub fn ins() -> TaskSet {
    build(
        "ins",
        &[
            (1_180.0e-6, 2_500.0e-6),
            (4_280.0e-6, 40_000.0e-6),
            (10_280.0e-6, 625_000.0e-6),
            (20_280.0e-6, 1_000_000.0e-6),
            (100_280.0e-6, 1_000_000.0e-6),
            (25_000.0e-6, 1_250_000.0e-6),
        ],
    )
}

/// A generic avionics platform task set (17 tasks, U ≈ 0.84).
///
/// Follows the structure of the Locke–Vogel–Mesler generic avionics
/// workload: many periodic functions between 1 Hz and 40 Hz (navigation,
/// radar tracking, displays, threat response), here transcribed with the
/// WCETs that put the set at its usually quoted utilization.
pub fn avionics() -> TaskSet {
    build(
        "avionics",
        &[
            (3_000.0e-6, 200_000.0e-6),     // aircraft flight data
            (1_000.0e-6, 25_000.0e-6),      // radar tracking filter
            (5_000.0e-6, 25_000.0e-6),      // RWR contact management
            (1_000.0e-6, 40_000.0e-6),      // data bus poll device
            (3_000.0e-6, 50_000.0e-6),      // weapon release
            (5_000.0e-6, 50_000.0e-6),      // radar target update
            (8_000.0e-6, 59_000.0e-6),      // navigation update
            (9_000.0e-6, 80_000.0e-6),      // display graphic
            (2_000.0e-6, 80_000.0e-6),      // display hook update
            (5_000.0e-6, 100_000.0e-6),     // tracking target update
            (1_000.0e-6, 100_000.0e-6),     // nav steering commands
            (3_000.0e-6, 200_000.0e-6),     // display stores update
            (1_000.0e-6, 200_000.0e-6),     // display keyset
            (1_000.0e-6, 200_000.0e-6),     // display status update
            (1_000.0e-6, 1_000_000.0e-6),   // BET E status update
            (1_000.0e-6, 1_000_000.0e-6),   // nav status
            (100_000.0e-6, 1_000_000.0e-6), // situation awareness
        ],
    )
}

/// All three reference sets with their conventional names.
pub fn all() -> Vec<(&'static str, TaskSet)> {
    vec![("cnc", cnc()), ("ins", ins()), ("avionics", avionics())]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cnc_shape() {
        let ts = cnc();
        assert_eq!(ts.len(), 8);
        let u = ts.utilization();
        assert!((0.45..=0.55).contains(&u), "CNC utilization {u}");
    }

    #[test]
    fn ins_shape() {
        let ts = ins();
        assert_eq!(ts.len(), 6);
        let u = ts.utilization();
        assert!((0.65..=0.80).contains(&u), "INS utilization {u}");
    }

    #[test]
    fn avionics_shape() {
        let ts = avionics();
        assert_eq!(ts.len(), 17);
        let u = ts.utilization();
        assert!((0.75..=0.95).contains(&u), "avionics utilization {u}");
    }

    #[test]
    fn all_sets_are_feasible_and_named() {
        for (name, ts) in all() {
            assert!(ts.utilization() <= 1.0, "{name} infeasible");
            for (_, t) in ts.iter() {
                assert!(t.name().is_some(), "{name} has unnamed task");
            }
        }
    }
}
