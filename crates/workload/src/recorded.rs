//! Replaying recorded per-job demands.

use serde::{Deserialize, Serialize};
use stadvs_sim::{ExecutionSource, SimOutcome, Task, TaskId};

use crate::WorkloadError;

/// An [`ExecutionSource`] that replays recorded per-task demand traces —
/// e.g. measurements from an instrumented target, or the realized demands
/// of a previous simulation ([`RecordedDemand::from_outcome`]). Jobs past
/// the end of a trace wrap around (periodic replay).
///
/// Replay decouples workload *capture* from algorithm evaluation: the same
/// measured demand sequence can be fed to every governor, to the
/// clairvoyant analyses, and to future versions of this crate, bit for bit.
///
/// ```
/// use stadvs_sim::{ExecutionSource, Task, TaskId};
/// use stadvs_workload::RecordedDemand;
///
/// # fn main() -> Result<(), stadvs_workload::WorkloadError> {
/// let trace = RecordedDemand::new(vec![vec![0.3e-3, 0.9e-3]])?;
/// let task = Task::new(1.0e-3, 10.0e-3).expect("valid task");
/// assert_eq!(trace.actual_work(TaskId(0), &task, 0), 0.3e-3);
/// assert_eq!(trace.actual_work(TaskId(0), &task, 1), 0.9e-3);
/// assert_eq!(trace.actual_work(TaskId(0), &task, 2), 0.3e-3); // wraps
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecordedDemand {
    traces: Vec<Vec<f64>>,
}

impl RecordedDemand {
    /// Creates a replay source from one demand trace per task (work units —
    /// full-speed seconds), indexed by [`TaskId`].
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidParameter`] if any trace is empty or
    /// contains a negative or non-finite demand.
    pub fn new(traces: Vec<Vec<f64>>) -> Result<RecordedDemand, WorkloadError> {
        for trace in &traces {
            if trace.is_empty() {
                return Err(WorkloadError::InvalidParameter {
                    name: "trace_len",
                    value: 0.0,
                });
            }
            if let Some(&bad) = trace.iter().find(|v| !v.is_finite() || **v < 0.0) {
                return Err(WorkloadError::InvalidParameter {
                    name: "demand",
                    value: bad,
                });
            }
        }
        Ok(RecordedDemand { traces })
    }

    /// Captures the realized demands of a finished simulation, per task in
    /// job-index order — replaying them reproduces the exact workload the
    /// run saw (for cross-governor or cross-version comparisons).
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidParameter`] if some task released no
    /// job in the outcome (its trace would be empty).
    pub fn from_outcome(
        outcome: &SimOutcome,
        n_tasks: usize,
    ) -> Result<RecordedDemand, WorkloadError> {
        let mut traces: Vec<Vec<(u64, f64)>> = vec![Vec::new(); n_tasks];
        for record in &outcome.jobs {
            if let Some(trace) = traces.get_mut(record.id.task.0) {
                trace.push((record.id.index, record.actual));
            }
        }
        let traces = traces
            .into_iter()
            .map(|mut t| {
                t.sort_by_key(|&(i, _)| i);
                t.into_iter().map(|(_, a)| a).collect::<Vec<f64>>()
            })
            .collect();
        RecordedDemand::new(traces)
    }

    /// The recorded trace of `task`, if present.
    pub fn trace_of(&self, task: TaskId) -> Option<&[f64]> {
        self.traces.get(task.0).map(Vec::as_slice)
    }
}

impl ExecutionSource for RecordedDemand {
    fn actual_work(&self, task_id: TaskId, task: &Task, job_index: u64) -> f64 {
        match self.traces.get(task_id.0) {
            Some(trace) => trace[(job_index % trace.len() as u64) as usize],
            None => task.wcet(), // unknown task: conservative worst case
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stadvs_power::Processor;
    use stadvs_sim::{ConstantRatio, Governor, SimConfig, Simulator, TaskSet};

    #[test]
    fn validation() {
        assert!(RecordedDemand::new(vec![vec![]]).is_err());
        assert!(RecordedDemand::new(vec![vec![0.1, f64::NAN]]).is_err());
        assert!(RecordedDemand::new(vec![vec![0.1, -0.2]]).is_err());
        assert!(RecordedDemand::new(vec![vec![0.1]]).is_ok());
    }

    #[test]
    fn unknown_task_falls_back_to_worst_case() {
        let trace = RecordedDemand::new(vec![vec![0.5]]).unwrap();
        let task = Task::new(2.0, 10.0).unwrap();
        assert_eq!(trace.actual_work(TaskId(7), &task, 0), 2.0);
        assert!(trace.trace_of(TaskId(7)).is_none());
        assert_eq!(trace.trace_of(TaskId(0)), Some(&[0.5][..]));
    }

    #[test]
    fn round_trip_through_a_simulation() {
        use stadvs_power::Speed;
        use stadvs_sim::{ActiveJob, SchedulerView};
        struct Full;
        impl Governor for Full {
            fn name(&self) -> &str {
                "full"
            }
            fn select_speed(&mut self, _: &SchedulerView<'_>, _: &ActiveJob) -> Speed {
                Speed::FULL
            }
        }
        let tasks = TaskSet::new(vec![
            Task::new(1.0, 4.0).unwrap(),
            Task::new(2.0, 8.0).unwrap(),
        ])
        .unwrap();
        let sim = Simulator::new(
            tasks.clone(),
            Processor::ideal_continuous(),
            SimConfig::new(16.0).unwrap(),
        )
        .unwrap();
        let original = sim.run(&mut Full, &ConstantRatio::new(0.7)).unwrap();
        let replay_src = RecordedDemand::from_outcome(&original, tasks.len()).unwrap();
        let replay = sim.run(&mut Full, &replay_src).unwrap();
        assert_eq!(original.jobs, replay.jobs);
        assert_eq!(original.total_energy(), replay.total_energy());
    }
}
