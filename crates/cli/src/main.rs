//! `stadvs` — the command-line interface of the slack-time-analysis DVS
//! reproduction.
//!
//! ```text
//! stadvs experiments list                  list the figure/table registry
//! stadvs experiments all --quick           regenerate everything (smoke scale)
//! stadvs experiments fig1_util             regenerate one experiment
//! stadvs compare --tasks 8 --util 0.7 --bcet 0.3 --bounds
//! stadvs compare --refset avionics --processor xscale
//! stadvs analyze 1e-3:10e-3 5e-3:40e-3     schedulability & speed bounds
//! stadvs refsets                           the reference embedded task sets
//! stadvs trace --governor st-edf --out trace.csv
//! stadvs fleet --quick                     10⁴-node streaming sweep
//! ```

mod args;
mod commands;

use args::Args;

const USAGE: &str = "\
stadvs — slack-time-analysis DVS for EDF hard real-time systems

USAGE:
  stadvs experiments [list | all | <id>...] [--quick] [--out DIR]
  stadvs compare  [--tasks N] [--util U] [--bcet R] [--seeds K]
                  [--horizon S] [--processor P] [--governors a,b,c]
                  [--refset cnc|ins|avionics] [--bounds]
  stadvs analyze  <wcet:period[:deadline]>...
  stadvs refsets
  stadvs trace    [--governor NAME] [--tasks N | --refset NAME] [--util U]
                  [--bcet R] [--seed K] [--horizon S] [--processor P]
                  [--out FILE] [--chart]
  stadvs fleet    [--quick] [--nodes N] [--seed K] [--threads T]
                  [--shard-size N] [--checkpoint FILE] [--out DIR]

PROCESSORS: ideal (default), xscale, strongarm, crusoe, levels:<n>
GOVERNORS:  no-dvs, static-edf, lpps-edf, cc-edf, dra, dra-ote,
            feedback-edf, la-edf, st-edf, st-edf-oa, st-edf-cs,
            st-edf-pace, st-edf[r], st-edf[a], st-edf[d]
";

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = Args::parse(raw);
    let command = args.positional().first().map(String::as_str);
    let result = match command {
        Some("experiments") => commands::experiments(&args),
        Some("compare") => commands::compare(&args),
        Some("analyze") => commands::analyze(&args),
        Some("refsets") => commands::refsets(&args),
        Some("trace") => commands::trace(&args),
        Some("fleet") => commands::fleet(&args),
        Some("help") | None => {
            print!("{USAGE}");
            Ok(())
        }
        Some(other) => {
            eprintln!("unknown command `{other}`\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    if let Err(error) = result {
        eprintln!("error: {error}");
        std::process::exit(1);
    }
}
