//! The CLI subcommands.

use std::error::Error;

use stadvs_analysis::{
    edf_schedulable, minimum_static_speed, response_profile, validate_outcome, SchedulabilityTest,
};
use stadvs_experiments::experiments::{all, by_id, RunOptions};
use stadvs_experiments::{
    make_governor, write_csv, write_markdown, Comparison, Table, WorkloadCase, ORACLE,
    STANDARD_LINEUP, YDS_BOUND,
};
use stadvs_fleet::{fleet_table, run_fleet, FleetConfig, FleetSpec};
use stadvs_power::Processor;
use stadvs_sim::{SimConfig, Simulator, Task, TaskSet};
use stadvs_workload::{reference, DemandPattern};

use crate::args::{ArgError, Args};

type CmdResult = Result<(), Box<dyn Error>>;

/// Resolves `--processor NAME` (`ideal`, `xscale`, `strongarm`, `crusoe`,
/// or `levels:<n>`).
pub fn processor_by_name(name: &str) -> Result<Processor, ArgError> {
    if let Some(n) = name.strip_prefix("levels:") {
        let levels: usize = n
            .parse()
            .map_err(|_| ArgError(format!("invalid level count `{n}`")))?;
        return Processor::uniform_discrete(levels)
            .map_err(|e| ArgError(format!("bad level count: {e}")));
    }
    match name {
        "ideal" => Ok(Processor::ideal_continuous()),
        "xscale" => Ok(Processor::xscale_class()),
        "strongarm" => Ok(Processor::strongarm_class()),
        "crusoe" => Ok(Processor::crusoe_class()),
        other => Err(ArgError(format!(
            "unknown processor `{other}` (ideal, xscale, strongarm, crusoe, levels:<n>)"
        ))),
    }
}

/// `stadvs experiments [list | all | <id>...] [--quick] [--out DIR]`
pub fn experiments(args: &Args) -> CmdResult {
    let rest = &args.positional()[1..];
    if rest.is_empty() || rest[0] == "list" {
        println!("{:<16} description", "id");
        for e in all() {
            println!("{:<16} {}", e.id, e.title);
        }
        return Ok(());
    }
    let opts = if args.flag("quick") {
        RunOptions::quick()
    } else {
        RunOptions::standard()
    };
    let out_dir = args.get("out").unwrap_or("results").to_string();
    let ids: Vec<String> = if rest[0] == "all" {
        all().into_iter().map(|e| e.id.to_string()).collect()
    } else {
        rest.to_vec()
    };
    for id in ids {
        let experiment =
            by_id(&id).ok_or_else(|| ArgError(format!("unknown experiment `{id}`")))?;
        eprintln!("running {id}...");
        let table = (experiment.run)(&opts);
        println!("{table}");
        write_markdown(&table, format!("{out_dir}/{id}.md"))?;
        write_csv(&table, format!("{out_dir}/{id}.csv"))?;
    }
    Ok(())
}

/// `stadvs compare [--tasks N] [--util U] [--bcet R] [--seeds K]
///                 [--horizon S] [--processor P] [--governors a,b,c]
///                 [--refset NAME] [--bounds]`
pub fn compare(args: &Args) -> CmdResult {
    let seeds: u64 = args.opt("seeds", 10)?;
    let bcet: f64 = args.opt("bcet", 0.5)?;
    let horizon: f64 = args.opt("horizon", 4.0)?;
    let processor = processor_by_name(args.get("processor").unwrap_or("ideal"))?;
    let pattern = DemandPattern::Uniform {
        min: bcet,
        max: 1.0,
    };

    let cases: Vec<WorkloadCase> = if let Some(set_name) = args.get("refset") {
        let tasks = refset_by_name(set_name)?;
        (0..seeds)
            .map(|seed| WorkloadCase::fixed(tasks.clone(), pattern.clone(), seed))
            .collect()
    } else {
        let n_tasks: usize = args.opt("tasks", 8)?;
        let utilization: f64 = args.opt("util", 0.7)?;
        (0..seeds)
            .map(|seed| WorkloadCase::synthetic(n_tasks, utilization, pattern.clone(), seed))
            .collect()
    };

    let mut lineup: Vec<String> = {
        let requested = args.list("governors");
        if requested.is_empty() {
            STANDARD_LINEUP.iter().map(|s| s.to_string()).collect()
        } else {
            requested
        }
    };
    if args.flag("bounds") {
        lineup.push(ORACLE.to_string());
        lineup.push(YDS_BOUND.to_string());
    }
    let comparison =
        Comparison::new(processor, horizon).with_governors(lineup.iter().map(String::as_str));
    let aggregated = comparison.run_cases(&cases);

    let mut table = Table::new(
        format!("comparison over {seeds} seeded workloads (BCET/WCET = {bcet})"),
        "governor",
        vec![
            "normalized energy".to_string(),
            "± std".to_string(),
            "switches/job".to_string(),
            "misses".to_string(),
        ],
    );
    for a in &aggregated {
        table.push_row(
            a.name.clone(),
            vec![
                a.mean_normalized,
                a.std_normalized,
                a.switches_per_job,
                a.total_misses as f64,
            ],
        );
    }
    println!("{table}");
    Ok(())
}

/// `stadvs analyze <wcet:period[:deadline]>...`
pub fn analyze(args: &Args) -> CmdResult {
    let specs = &args.positional()[1..];
    if specs.is_empty() {
        return Err(ArgError("usage: stadvs analyze <wcet:period[:deadline]>...".into()).into());
    }
    let mut tasks = Vec::new();
    for spec in specs {
        let parts: Vec<&str> = spec.split(':').collect();
        let parse = |s: &str| -> Result<f64, ArgError> {
            s.parse()
                .map_err(|_| ArgError(format!("invalid number `{s}` in `{spec}`")))
        };
        let task = match parts.as_slice() {
            [wcet, period] => Task::new(parse(wcet)?, parse(period)?)?,
            [wcet, period, deadline] => {
                Task::with_deadline(parse(wcet)?, parse(period)?, parse(deadline)?)?
            }
            _ => return Err(ArgError(format!("malformed task spec `{spec}`")).into()),
        };
        tasks.push(task);
    }
    let set = TaskSet::new(tasks)?;
    print_analysis(&set);
    Ok(())
}

fn print_analysis(set: &TaskSet) {
    println!("tasks:               {}", set.len());
    println!("utilization:         {:.4}", set.utilization());
    println!("density:             {:.4}", set.density());
    match set.hyperperiod() {
        Some(h) => println!("hyperperiod:         {h:.6} s"),
        None => println!("hyperperiod:         (periods incommensurable at 1 µs)"),
    }
    match edf_schedulable(set) {
        SchedulabilityTest::Schedulable => println!("EDF schedulable:     yes"),
        SchedulabilityTest::Unschedulable { counterexample } => {
            println!("EDF schedulable:     NO (dbf violation at t = {counterexample:.6})")
        }
    }
    let s = minimum_static_speed(set);
    println!(
        "min static speed:    {s:.4}{}",
        if s > 1.0 { "  (infeasible!)" } else { "" }
    );
}

/// `stadvs refsets`
pub fn refsets(_args: &Args) -> CmdResult {
    for (name, set) in reference::all() {
        println!("== {name} ==");
        print_analysis(&set);
        println!();
    }
    Ok(())
}

fn refset_by_name(name: &str) -> Result<TaskSet, ArgError> {
    reference::all()
        .into_iter()
        .find(|(n, _)| *n == name)
        .map(|(_, set)| set)
        .ok_or_else(|| {
            ArgError(format!(
                "unknown reference set `{name}` (cnc, ins, avionics)"
            ))
        })
}

/// `stadvs trace [--governor NAME] [--tasks N | --refset NAME] [--util U]
///               [--bcet R] [--seed K] [--horizon S] [--processor P]
///               [--out FILE]`
pub fn trace(args: &Args) -> CmdResult {
    let governor_name = args.get("governor").unwrap_or("st-edf").to_string();
    let bcet: f64 = args.opt("bcet", 0.5)?;
    let seed: u64 = args.opt("seed", 0)?;
    let horizon: f64 = args.opt("horizon", 1.0)?;
    let processor = processor_by_name(args.get("processor").unwrap_or("ideal"))?;
    let pattern = DemandPattern::Uniform {
        min: bcet,
        max: 1.0,
    };
    let case = if let Some(set_name) = args.get("refset") {
        WorkloadCase::fixed(refset_by_name(set_name)?, pattern, seed)
    } else {
        let n_tasks: usize = args.opt("tasks", 4)?;
        let utilization: f64 = args.opt("util", 0.7)?;
        WorkloadCase::synthetic(n_tasks, utilization, pattern, seed)
    };

    let sim = Simulator::new(
        case.tasks.clone(),
        processor.clone(),
        SimConfig::new(horizon)?.with_trace(true),
    )?;
    let mut governor = make_governor(&governor_name)
        .ok_or_else(|| ArgError(format!("unknown governor `{governor_name}`")))?;
    let outcome = sim.run(governor.as_mut(), &case.exec)?;
    let report = validate_outcome(&outcome, &case.tasks, &processor);

    eprintln!(
        "{governor_name}: energy {:.6} J, {} switches, {} jobs, audit: {report}",
        outcome.total_energy(),
        outcome.switches,
        outcome.jobs.len()
    );
    for r in response_profile(&outcome, &case.tasks) {
        eprintln!("  {r}");
    }
    if args.flag("chart") {
        eprintln!(
            "{}",
            stadvs_sim::render_gantt(
                outcome.trace.as_ref().expect("trace recording was enabled"),
                &case.tasks,
                100
            )
        );
    }
    let csv = outcome
        .trace
        .as_ref()
        .expect("trace recording was enabled")
        .to_csv();
    match args.get("out") {
        Some(path) => {
            std::fs::write(path, csv)?;
            eprintln!("trace written to {path}");
        }
        None => print!("{csv}"),
    }
    Ok(())
}

/// `stadvs fleet [--quick] [--nodes N] [--seed K] [--threads T]
///               [--shard-size N] [--checkpoint FILE] [--out DIR]`
///
/// The fleet-scale streaming sweep: ~10⁵ nodes by default, ~10⁴ with
/// `--quick`, or an explicit `--nodes` count. With `--checkpoint FILE`
/// an interrupted sweep resumes from the file and finishes bit-identical
/// to an uninterrupted run. Timing/throughput goes to stderr (the engine
/// itself is wall-clock-free); the aggregate table goes to stdout and
/// `OUT/fleet.{md,csv}`.
pub fn fleet(args: &Args) -> CmdResult {
    let seed: u64 = args.opt("seed", 42)?;
    let spec = if let Some(raw) = args.get("nodes") {
        let nodes: u64 = raw
            .parse()
            .map_err(|_| ArgError(format!("invalid node count `{raw}`")))?;
        FleetSpec::standard(seed).with_nodes(nodes)
    } else if args.flag("quick") {
        FleetSpec::quick(seed)
    } else {
        FleetSpec::standard(seed)
    };
    let threads = match args.get("threads") {
        Some(raw) => Some(
            raw.parse()
                .map_err(|_| ArgError(format!("invalid thread count `{raw}`")))?,
        ),
        None => None,
    };
    let config = FleetConfig {
        shard_size: args.opt("shard-size", 256)?,
        threads,
        checkpoint: args.get("checkpoint").map(std::path::PathBuf::from),
        ..FleetConfig::default()
    };
    let out_dir = args.get("out").unwrap_or("results").to_string();

    eprintln!(
        "sweeping {} nodes ({} cells x {} replications, {} shards of {})...",
        spec.nodes(),
        spec.cell_count(),
        spec.replications,
        spec.nodes().div_ceil(config.shard_size),
        config.shard_size
    );
    let started = std::time::Instant::now();
    let outcome = run_fleet(&spec, &config)?;
    let elapsed = started.elapsed().as_secs_f64().max(1e-9);

    let table = fleet_table(&spec, &outcome);
    println!("{table}");
    write_markdown(&table, format!("{out_dir}/fleet.md"))?;
    write_csv(&table, format!("{out_dir}/fleet.csv"))?;

    let agg = &outcome.aggregate;
    let swept = agg
        .nodes
        .saturating_sub((outcome.resumed_from as u64).saturating_mul(config.shard_size));
    let status = if outcome.complete() {
        String::new()
    } else {
        format!(
            "; PARTIAL: {} of {} shards",
            outcome.shards_done, outcome.shards_total
        )
    };
    if outcome.resumed_from == 0 {
        eprintln!(
            "swept {swept} nodes in {elapsed:.2} s — {:.0} nodes/s, {:.0} events/s \
             ({} sims, {} events{status})",
            swept as f64 / elapsed,
            agg.events as f64 / elapsed,
            agg.sims,
            agg.events,
        );
    } else {
        // Event counters are cumulative across resumes; only the node
        // rate of *this* call is meaningful.
        eprintln!(
            "resumed at shard {} — swept {swept} more nodes in {elapsed:.2} s \
             ({:.0} nodes/s; {} sims, {} events cumulative{status})",
            outcome.resumed_from,
            swept as f64 / elapsed,
            agg.sims,
            agg.events,
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn processor_names_resolve() {
        for name in ["ideal", "xscale", "strongarm", "crusoe", "levels:6"] {
            assert!(processor_by_name(name).is_ok(), "{name}");
        }
        assert!(processor_by_name("mystery").is_err());
        assert!(processor_by_name("levels:zero").is_err());
        assert_eq!(
            processor_by_name("levels:6")
                .unwrap()
                .frequency_model()
                .levels(),
            Some(6)
        );
    }

    #[test]
    fn refsets_resolve() {
        assert!(refset_by_name("cnc").is_ok());
        assert!(refset_by_name("ins").is_ok());
        assert!(refset_by_name("avionics").is_ok());
        assert!(refset_by_name("martian").is_err());
    }

    #[test]
    fn analyze_parses_specs() {
        let args = Args::parse(["analyze", "1:4", "2:8:6"]);
        assert!(analyze(&args).is_ok());
        let bad = Args::parse(["analyze", "nope"]);
        assert!(analyze(&bad).is_err());
        let empty = Args::parse(["analyze"]);
        assert!(analyze(&empty).is_err());
    }

    #[test]
    fn compare_smoke() {
        let args = Args::parse([
            "compare",
            "--tasks",
            "3",
            "--seeds",
            "2",
            "--horizon",
            "0.5",
            "--governors",
            "no-dvs,st-edf",
        ]);
        assert!(compare(&args).is_ok());
    }

    #[test]
    fn trace_smoke() {
        let args = Args::parse([
            "trace",
            "--tasks",
            "2",
            "--horizon",
            "0.2",
            "--governor",
            "dra",
            "--out",
            "/tmp/stadvs-cli-test-trace.csv",
        ]);
        assert!(trace(&args).is_ok());
        let csv = std::fs::read_to_string("/tmp/stadvs-cli-test-trace.csv").unwrap();
        assert!(csv.starts_with("start,end,speed,kind"));
        let _ = std::fs::remove_file("/tmp/stadvs-cli-test-trace.csv");
    }
}
