//! A tiny, dependency-free option parser: `--key value` flags, `--flag`
//! booleans, and positional arguments, with typed accessors.

use std::collections::BTreeMap;
use std::fmt;

/// A parse or lookup error, printed to the user as-is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

/// Parsed command-line arguments: positionals in order, `--key value` pairs,
/// and bare `--flags`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Args {
    positional: Vec<String>,
    options: BTreeMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parses a raw argument list (without the program name).
    ///
    /// A token starting with `--` is a flag; if the *next* token exists and
    /// does not itself start with `--`, it becomes the flag's value.
    pub fn parse<I, S>(raw: I) -> Args
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let tokens: Vec<String> = raw.into_iter().map(Into::into).collect();
        let mut args = Args::default();
        let mut i = 0;
        while i < tokens.len() {
            let token = &tokens[i];
            if let Some(name) = token.strip_prefix("--") {
                if i + 1 < tokens.len() && !tokens[i + 1].starts_with("--") {
                    args.options.insert(name.to_string(), tokens[i + 1].clone());
                    i += 2;
                } else {
                    args.flags.push(name.to_string());
                    i += 1;
                }
            } else {
                args.positional.push(token.clone());
                i += 1;
            }
        }
        args
    }

    /// The positional arguments.
    pub fn positional(&self) -> &[String] {
        &self.positional
    }

    /// Whether the bare flag `name` was given.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// The raw value of `--name`, if given.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.options.get(name).map(String::as_str)
    }

    /// A typed option with a default.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] if the value fails to parse as `T`.
    pub fn opt<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, ArgError> {
        match self.get(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| ArgError(format!("invalid value `{raw}` for --{name}"))),
        }
    }

    /// A required typed option.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] if missing or unparsable.
    #[allow(dead_code)] // part of the parser's complete API; exercised in tests
    pub fn required<T: std::str::FromStr>(&self, name: &str) -> Result<T, ArgError> {
        let raw = self
            .get(name)
            .ok_or_else(|| ArgError(format!("missing required option --{name}")))?;
        raw.parse()
            .map_err(|_| ArgError(format!("invalid value `{raw}` for --{name}")))
    }

    /// A comma-separated list option (empty when absent).
    pub fn list(&self, name: &str) -> Vec<String> {
        self.get(name)
            .map(|raw| raw.split(',').map(|s| s.trim().to_string()).collect())
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_mixture() {
        let args = Args::parse([
            "run",
            "--tasks",
            "8",
            "--quick",
            "--governors",
            "a,b , c",
            "fig1",
        ]);
        assert_eq!(args.positional(), ["run", "fig1"]);
        assert_eq!(args.opt::<usize>("tasks", 0).unwrap(), 8);
        assert!(args.flag("quick"));
        assert!(!args.flag("verbose"));
        assert_eq!(args.list("governors"), vec!["a", "b", "c"]);
        assert!(args.list("missing").is_empty());
    }

    #[test]
    fn flag_followed_by_flag() {
        let args = Args::parse(["--quick", "--out", "dir", "--dry-run"]);
        assert!(args.flag("quick"));
        assert!(args.flag("dry-run"));
        assert_eq!(args.get("out"), Some("dir"));
    }

    #[test]
    fn typed_errors() {
        let args = Args::parse(["--tasks", "eight"]);
        assert!(args.opt::<usize>("tasks", 0).is_err());
        assert!(args.required::<usize>("tasks").is_err());
        assert!(args.required::<usize>("absent").is_err());
        assert_eq!(args.opt::<usize>("absent", 7).unwrap(), 7);
    }

    #[test]
    fn negative_numbers_are_values_not_flags() {
        // A minus-prefixed value does not start with `--`, so it binds.
        let args = Args::parse(["--phase", "-1.5"]);
        assert_eq!(args.get("phase"), Some("-1.5"));
    }
}
