//! Configuration of the slack-time-analysis governor.

use serde::{Deserialize, Serialize};

/// Which slack sources and platform-awareness features
/// [`SlackEdf`](crate::SlackEdf) uses — the ablation surface of the
/// evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SlackEdfConfig {
    /// Enable deadline-tagged reclaiming of early-completion slack.
    pub reclaiming: bool,
    /// Enable stretching an alone job to the next task arrival.
    pub arrival_stretch: bool,
    /// Enable look-ahead processor-demand slack analysis.
    pub demand_analysis: bool,
    /// Look-ahead horizon of the demand analysis, in maximum periods.
    pub horizon_periods: f64,
    /// Account for speed-switch overhead: price per-task switch margins
    /// into the claims currency and skip switches whose projected energy
    /// saving does not cover the transition energy (the pessimistic
    /// judgment rule).
    pub overhead_aware: bool,
    /// Never request speeds below the platform's leakage-aware *critical
    /// speed* (the speed minimizing energy per unit of work). Running
    /// slower on a leaky processor takes longer and leaks more than the
    /// voltage drop saves; flooring is always deadline-safe.
    pub critical_speed_floor: bool,
    /// Intra-job PACE steps (0 = constant speed per dispatch). With `n`
    /// steps the job starts below its constant-speed plan and accelerates
    /// through `n` chunks whose worst case consumes exactly the same
    /// allowance; jobs that complete early skip the fast tail. Ignored in
    /// overhead-aware mode (extra switches would break the margin bound).
    pub pace_steps: u32,
}

impl SlackEdfConfig {
    /// The full algorithm as evaluated in the figures: canonical claims +
    /// ledger banking + demand analysis + arrival stretching.
    ///
    /// All three sources are needed, and they compose soundly because they
    /// share the claims currency. Banking is what makes *earliness*
    /// durable: without a ledger record, freed time is visible to the
    /// demand analysis only transiently (the worst-case tail bound rightly
    /// refuses to promise it sustainably), whereas a deadline-tagged entry
    /// is a claim the analysis protects until it is spent or expires. The
    /// demand analysis adds the slack no record can express (release
    /// phasing, alignment gaps, slack stranded behind late tags), and the
    /// arrival stretch exploits solitude. Measured on uniform 0.2–1.0
    /// demand at `U = 0.7`, the combination strictly dominates every
    /// single-source variant.
    pub fn full() -> SlackEdfConfig {
        SlackEdfConfig {
            reclaiming: true,
            arrival_stretch: true,
            demand_analysis: true,
            horizon_periods: 0.25,
            overhead_aware: false,
            critical_speed_floor: false,
            pace_steps: 0,
        }
    }

    /// Full algorithm with overhead awareness (for non-zero transition
    /// latency platforms).
    pub fn overhead_aware() -> SlackEdfConfig {
        SlackEdfConfig {
            overhead_aware: true,
            ..SlackEdfConfig::full()
        }
    }

    /// Only the reclaiming source (ablation).
    pub fn reclaiming_only() -> SlackEdfConfig {
        SlackEdfConfig {
            reclaiming: true,
            arrival_stretch: false,
            demand_analysis: false,
            horizon_periods: 0.25,
            overhead_aware: false,
            critical_speed_floor: false,
            pace_steps: 0,
        }
    }

    /// Only the demand-analysis source (ablation).
    pub fn demand_only() -> SlackEdfConfig {
        SlackEdfConfig {
            reclaiming: false,
            arrival_stretch: false,
            demand_analysis: true,
            horizon_periods: 0.25,
            overhead_aware: false,
            critical_speed_floor: false,
            pace_steps: 0,
        }
    }

    /// Full algorithm with PACE-style intra-job acceleration (the paper's
    /// "more aggressive slack reclaiming" future-work direction).
    pub fn pacing(steps: u32) -> SlackEdfConfig {
        SlackEdfConfig {
            pace_steps: steps,
            ..SlackEdfConfig::full()
        }
    }

    /// Full algorithm with the leakage-aware critical-speed floor (for
    /// platforms with non-negligible static power).
    pub fn critical_speed() -> SlackEdfConfig {
        SlackEdfConfig {
            critical_speed_floor: true,
            ..SlackEdfConfig::full()
        }
    }

    /// Only the arrival-stretch source (ablation).
    pub fn arrival_only() -> SlackEdfConfig {
        SlackEdfConfig {
            reclaiming: false,
            arrival_stretch: true,
            demand_analysis: false,
            horizon_periods: 0.25,
            overhead_aware: false,
            critical_speed_floor: false,
            pace_steps: 0,
        }
    }

    /// A short stable suffix describing the enabled sources (used in
    /// governor names for ablation tables).
    pub fn variant_name(&self) -> String {
        if self.reclaiming && self.arrival_stretch && self.demand_analysis {
            return match (
                self.overhead_aware,
                self.critical_speed_floor,
                self.pace_steps,
            ) {
                (true, _, _) => "st-edf-oa".to_string(),
                (false, true, _) => "st-edf-cs".to_string(),
                (false, false, 0) => "st-edf".to_string(),
                (false, false, _) => "st-edf-pace".to_string(),
            };
        }
        let mut parts = Vec::new();
        if self.reclaiming {
            parts.push("r");
        }
        if self.arrival_stretch {
            parts.push("a");
        }
        if self.demand_analysis {
            parts.push("d");
        }
        if parts.is_empty() {
            parts.push("none");
        }
        format!("st-edf[{}]", parts.join("+"))
    }
}

impl Default for SlackEdfConfig {
    fn default() -> SlackEdfConfig {
        SlackEdfConfig::full()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_and_names() {
        assert_eq!(SlackEdfConfig::full().variant_name(), "st-edf");
        assert_eq!(SlackEdfConfig::overhead_aware().variant_name(), "st-edf-oa");
        assert_eq!(
            SlackEdfConfig::reclaiming_only().variant_name(),
            "st-edf[r]"
        );
        assert_eq!(SlackEdfConfig::demand_only().variant_name(), "st-edf[d]");
        assert_eq!(SlackEdfConfig::arrival_only().variant_name(), "st-edf[a]");
        let none = SlackEdfConfig {
            reclaiming: false,
            arrival_stretch: false,
            demand_analysis: false,
            horizon_periods: 0.25,
            overhead_aware: false,
            critical_speed_floor: false,
            pace_steps: 0,
        };
        assert_eq!(none.variant_name(), "st-edf[none]");
        assert_eq!(SlackEdfConfig::default(), SlackEdfConfig::full());
        assert_eq!(SlackEdfConfig::critical_speed().variant_name(), "st-edf-cs");
        assert_eq!(SlackEdfConfig::pacing(8).variant_name(), "st-edf-pace");
    }
}
