//! Intra-job accelerating speed schedules (PACE-style) with online
//! demand-distribution profiling.
//!
//! A job granted wall-clock allowance `A` for worst-case work `W` can run
//! at the constant speed `W/A` — but if its actual demand is usually below
//! `W`, most of that speed is wasted caution. The PACE observation
//! (Lorch & Smith): run the *early* work slower and the *late* work faster;
//! jobs that finish early never execute the expensive fast tail, so the
//! expected energy drops while the worst case still fits in `A`.
//!
//! Split the remaining work into `n` equal chunks `w = W/n`; let `P_k` be
//! the probability the job still runs in chunk `k`. Minimizing expected
//! energy `Σ P_k · w · s_k²` (cubic power ⇒ energy per work `s²`) under the
//! worst-case constraint `Σ w/s_k = A` gives, by Lagrange multipliers,
//!
//! ```text
//! s_k = (Σ_j w · P_j^{1/3}) / (A · P_k^{1/3})   —  s_k ∝ P_k^{−1/3}.
//! ```
//!
//! The schedule is *deadline-neutral*: its worst case consumes exactly the
//! same allowance as the constant speed, so it composes with every slack
//! source unchanged.
//!
//! Where does `P_k` come from? A fixed assumption (e.g. uniform demand)
//! loses badly when wrong — under always-worst-case demand it pays the
//! convexity cost of its speed asymmetry for nothing. [`SurvivalEstimator`]
//! instead profiles each task's demand distribution *online* (the GRACE-OS
//! idea) and conditions on the job's current progress; with degenerate
//! demand the estimated survival is flat and the plan collapses to the
//! constant speed automatically. The paper lists "more aggressive slack
//! reclaiming strategies" as future work; this module is that extension,
//! implemented via the simulator's power-management-point support.

use stadvs_sim::WORK_EPS;

use crate::num::count_to_f64;

/// One step of an intra-job speed plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaceStep {
    /// Normalized speed of this step (may exceed 1 before clamping —
    /// callers clamp and re-plan at each dispatch).
    pub speed: f64,
    /// Work executed in this step (full-speed seconds).
    pub work: f64,
}

/// The energy-optimal step plan for `remaining` worst-case work in
/// `allowance` wall time, given per-chunk survival probabilities
/// `survival[k] = P(job still runs in chunk k)` and the platform's maximum
/// achievable speed `cap`.
///
/// Survival values are clamped into `[1e-3, 1]`; an empty slice yields an
/// empty plan. No step exceeds `cap`, and the plan's worst case consumes
/// exactly `allowance` when no chunk saturates (at most `allowance`
/// otherwise).
///
/// The cap is load-bearing for the hard guarantee: the unconstrained
/// Lagrange solution accelerates its tail above the platform maximum
/// whenever `remaining/allowance` is close to `cap` (tight constrained
/// deadlines). A dispatcher that clamps those speeds afterwards runs the
/// early chunks slower than the constant-safe plan while relying on
/// unachievable future speeds — the worst case then overruns the deadline
/// by the clamped deficit. Saturated chunks are therefore pinned to `cap`
/// *inside* the optimization (water-filling) and the remaining chunks are
/// re-solved under the correspondingly reduced allowance, which restores
/// the KKT conditions of the capped problem.
pub fn plan(remaining: f64, allowance: f64, cap: f64, survival: &[f64]) -> Vec<PaceStep> {
    if survival.is_empty() || remaining <= WORK_EPS || allowance <= 0.0 || cap <= 0.0 {
        return Vec::new();
    }
    let n = count_to_f64(survival.len());
    let w = remaining / n;
    let roots: Vec<f64> = survival
        .iter()
        .map(|p| p.clamp(1.0e-3, 1.0).cbrt())
        .collect();
    let mut capped = vec![false; roots.len()];
    loop {
        let free_norm: f64 = roots
            .iter()
            .zip(&capped)
            .filter(|&(_, &c)| !c)
            .map(|(r, _)| w * r)
            .sum();
        let capped_wall = count_to_f64(capped.iter().filter(|&&c| c).count()) * (w / cap);
        let avail = allowance - capped_wall;
        if free_norm <= 0.0 || avail <= 0.0 {
            // Every chunk saturates (allowance ≤ remaining/cap): the best
            // achievable schedule is flat at the cap.
            return roots
                .iter()
                .map(|_| PaceStep {
                    speed: cap,
                    work: w,
                })
                .collect();
        }
        let mut newly_capped = false;
        for (k, r) in roots.iter().enumerate() {
            if !capped[k] && free_norm / (avail * r) > cap {
                capped[k] = true;
                newly_capped = true;
            }
        }
        if !newly_capped {
            return roots
                .iter()
                .zip(&capped)
                .map(|(r, &c)| PaceStep {
                    speed: if c { cap } else { free_norm / (avail * r) },
                    work: w,
                })
                .collect();
        }
    }
}

/// The first step of [`plan`] — the only one that actually runs before the
/// governor re-plans. Returns `None` when there is nothing to plan
/// (`remaining ≈ 0`, no slowdown possible, or no chunks).
pub fn first_step(remaining: f64, allowance: f64, cap: f64, survival: &[f64]) -> Option<PaceStep> {
    if allowance <= remaining {
        return None;
    }
    plan(remaining, allowance, cap, survival).into_iter().next()
}

/// Uniform-demand survival probabilities, `P_k = 1 − (k−1)/n` — the
/// textbook PACE assumption, kept for tests and comparison.
pub fn uniform_survival(steps: u32) -> Vec<f64> {
    (0..steps)
        .map(|k| 1.0 - f64::from(k) / f64::from(steps))
        .collect()
}

/// Online per-task profile of the demand distribution: a sliding window of
/// observed `actual/wcet` ratios, queried for conditional survival.
///
/// `survival(f)` estimates `P(demand > f · wcet)` with add-one smoothing
/// (unknown distributions start at 1.0 — the conservative constant-speed
/// plan). [`SurvivalEstimator::chunk_survival`] conditions on the current
/// progress, since a running job's demand is known to exceed what it has
/// already executed.
#[derive(Debug, Clone)]
pub struct SurvivalEstimator {
    samples: Vec<f64>,
    capacity: usize,
    cursor: usize,
}

impl SurvivalEstimator {
    /// Creates an estimator keeping the last `capacity` observations.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> SurvivalEstimator {
        assert!(
            capacity > 0,
            "estimator needs capacity for at least one sample"
        );
        SurvivalEstimator {
            samples: Vec::with_capacity(capacity),
            capacity,
            cursor: 0,
        }
    }

    /// Records a completed job's `actual/wcet` ratio (clamped to `[0, 1]`).
    pub fn record(&mut self, ratio: f64) {
        let ratio = ratio.clamp(0.0, 1.0);
        if self.samples.len() < self.capacity {
            self.samples.push(ratio);
        } else {
            self.samples[self.cursor] = ratio;
            self.cursor = (self.cursor + 1) % self.capacity;
        }
    }

    /// Smoothed estimate of `P(demand > fraction · wcet)`.
    pub fn survival(&self, fraction: f64) -> f64 {
        let above = self.samples.iter().filter(|&&r| r > fraction).count();
        count_to_f64(above + 1) / count_to_f64(self.samples.len() + 1)
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no sample has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Per-chunk conditional survival for a job that has already executed
    /// `executed` of its `wcet`, about to run `steps` chunks covering the
    /// remaining work: `P_k = S(executed + k·w) / S(executed)`.
    pub fn chunk_survival(&self, executed: f64, wcet: f64, steps: u32) -> Vec<f64> {
        if steps == 0 || wcet <= 0.0 {
            return Vec::new();
        }
        let remaining = (wcet - executed).max(0.0);
        let w = remaining / f64::from(steps);
        let base = self.survival(executed / wcet).max(1.0e-9);
        (0..steps)
            .map(|k| {
                let fraction = (executed + f64::from(k) * w) / wcet;
                (self.survival(fraction) / base).clamp(0.0, 1.0)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_meets_the_worst_case_exactly() {
        for steps in [1u32, 2, 4, 8, 32] {
            let p = plan(2.0, 5.0, f64::INFINITY, &uniform_survival(steps));
            assert_eq!(p.len(), steps as usize);
            let wall: f64 = p.iter().map(|s| s.work / s.speed).sum();
            assert!(
                (wall - 5.0).abs() < 1e-9,
                "{steps} steps: worst-case wall {wall} != allowance 5"
            );
            for pair in p.windows(2) {
                assert!(pair[0].speed <= pair[1].speed + 1e-12);
            }
        }
    }

    #[test]
    fn flat_survival_collapses_to_constant_speed() {
        let p = plan(2.0, 5.0, f64::INFINITY, &[1.0, 1.0, 1.0, 1.0]);
        for step in &p {
            assert!((step.speed - 0.4).abs() < 1e-12);
        }
    }

    #[test]
    fn first_step_is_slower_than_constant_under_decaying_survival() {
        let constant = 2.0 / 5.0;
        for steps in [2u32, 4, 16] {
            let s =
                first_step(2.0, 5.0, f64::INFINITY, &uniform_survival(steps)).expect("plannable");
            assert!(
                s.speed < constant,
                "{steps} steps: first speed {} !< {constant}",
                s.speed
            );
        }
    }

    #[test]
    fn capped_plan_never_exceeds_the_cap_and_still_fits_the_allowance() {
        // Tight allowance: the unconstrained tail would need speed > 1.
        for (rem, allowance) in [(0.9, 1.0), (0.95, 1.0), (0.5, 0.52), (1.9, 2.0)] {
            for steps in [2u32, 4, 8, 32] {
                let p = plan(rem, allowance, 1.0, &uniform_survival(steps));
                assert_eq!(p.len(), steps as usize);
                let wall: f64 = p.iter().map(|s| s.work / s.speed).sum();
                assert!(
                    wall <= allowance + 1e-9,
                    "rem={rem} A={allowance} n={steps}: worst case {wall} overruns"
                );
                for s in &p {
                    assert!(
                        s.speed <= 1.0 + 1e-12,
                        "rem={rem} A={allowance} n={steps}: speed {} beyond cap",
                        s.speed
                    );
                }
                // Monotone acceleration is preserved (capped tail is flat).
                for pair in p.windows(2) {
                    assert!(pair[0].speed <= pair[1].speed + 1e-12);
                }
            }
        }
    }

    #[test]
    fn loose_allowance_is_unaffected_by_the_cap() {
        let free = plan(2.0, 5.0, f64::INFINITY, &uniform_survival(8));
        let capped = plan(2.0, 5.0, 1.0, &uniform_survival(8));
        for (a, b) in free.iter().zip(&capped) {
            assert!((a.speed - b.speed).abs() < 1e-12);
        }
    }

    #[test]
    fn infeasible_allowance_degenerates_to_flat_cap() {
        // allowance < remaining/cap: nothing better than flat-out exists.
        let p = plan(1.0, 0.5, 1.0, &uniform_survival(4));
        for s in &p {
            assert!((s.speed - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn expected_energy_beats_constant_for_matching_distribution() {
        let (w_total, allowance, steps) = (2.0_f64, 5.0_f64, 16u32);
        let survival = uniform_survival(steps);
        let p = plan(w_total, allowance, f64::INFINITY, &survival);
        let n = steps as f64;
        let expected = |speeds: &[f64]| -> f64 {
            speeds
                .iter()
                .zip(&survival)
                .map(|(s, pk)| pk * (w_total / n) * s * s)
                .sum()
        };
        let paced: Vec<f64> = p.iter().map(|s| s.speed).collect();
        let constant = vec![w_total / allowance; steps as usize];
        assert!(expected(&paced) < expected(&constant));
    }

    #[test]
    fn degenerate_inputs() {
        assert!(first_step(0.0, 1.0, 1.0, &[1.0]).is_none());
        assert!(first_step(1.0, 0.5, 1.0, &[1.0]).is_none());
        assert!(first_step(1.0, 2.0, 1.0, &[]).is_none());
        assert!(plan(1.0, -1.0, 1.0, &[1.0]).is_empty());
        assert!(plan(1.0, 1.0, 0.0, &[1.0]).is_empty());
    }

    #[test]
    fn estimator_learns_the_distribution() {
        let mut est = SurvivalEstimator::new(100);
        // No samples: conservative 1.0 everywhere.
        assert_eq!(est.survival(0.5), 1.0);
        assert!(est.is_empty());
        // Uniform demand on [0, 1]: survival(f) ≈ 1 − f.
        for i in 0..100 {
            est.record((i as f64 + 0.5) / 100.0);
        }
        assert_eq!(est.len(), 100);
        assert!((est.survival(0.5) - 0.5).abs() < 0.05);
        assert!((est.survival(0.9) - 0.1).abs() < 0.05);
    }

    #[test]
    fn worst_case_demand_yields_flat_conditional_survival() {
        let mut est = SurvivalEstimator::new(50);
        for _ in 0..50 {
            est.record(1.0);
        }
        let pk = est.chunk_survival(0.0, 1.0, 8);
        for p in &pk {
            assert!(*p > 0.95, "survival {p} should stay near 1 at worst case");
        }
        // The plan therefore collapses to (nearly) constant speed.
        let steps = plan(1.0, 2.0, f64::INFINITY, &pk);
        let spread = steps.last().expect("nonempty").speed - steps[0].speed;
        assert!(spread < 0.02, "speed spread {spread} should be negligible");
    }

    #[test]
    fn conditional_survival_accounts_for_progress() {
        let mut est = SurvivalEstimator::new(100);
        for i in 0..100 {
            est.record((i as f64 + 0.5) / 100.0);
        }
        // Having executed half the wcet, the chance of surviving to 75 %
        // is about 0.5 (uniform demand), not 0.25.
        let pk = est.chunk_survival(0.5, 1.0, 2);
        assert!((pk[0] - 1.0).abs() < 1e-9);
        assert!((pk[1] - 0.5).abs() < 0.1, "conditional survival {}", pk[1]);
    }

    #[test]
    fn sliding_window_forgets_old_behaviour() {
        let mut est = SurvivalEstimator::new(10);
        for _ in 0..10 {
            est.record(0.1);
        }
        for _ in 0..10 {
            est.record(1.0);
        }
        // The window now only holds worst-case samples.
        assert!(est.survival(0.5) > 0.9);
    }
}
