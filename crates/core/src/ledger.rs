//! Deadline-tagged slack accounting.

use stadvs_sim::TIME_EPS;

/// A ledger of slack amounts, each tagged with the absolute deadline of the
/// job that donated it.
///
/// The tag encodes the safety rule of deadline-tagged reclaiming: slack
/// donated by a job with deadline `d_e` corresponds to processor time that
/// the canonical worst-case schedule provably spends **before `d_e`** — so
/// it may only be consumed by a job whose own deadline is at or after
/// `d_e`. Entries whose tag has passed represent time that already elapsed
/// and [expire](SlackLedger::expire).
///
/// The ledger is kept sorted by tag; donations merge into existing entries
/// with (approximately) equal tags.
///
/// ```
/// use stadvs_core::SlackLedger;
///
/// let mut ledger = SlackLedger::new();
/// ledger.donate(8.0, 2.0);
/// ledger.donate(5.0, 1.0);
/// assert_eq!(ledger.available_up_to(6.0), 1.0);  // only the tag-5 entry
/// assert_eq!(ledger.take_up_to(6.0), 1.0);       // ...which is now consumed
/// assert_eq!(ledger.total(), 2.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SlackLedger {
    entries: Vec<(f64, f64)>,
    /// Bumped on every mutation that changes the entries, so incremental
    /// consumers can key snapshots on it instead of comparing contents.
    revision: u64,
}

/// Equality compares the banked entries only — the [`revision`]
/// (`SlackLedger::revision`) is a change counter, not state.
impl PartialEq for SlackLedger {
    fn eq(&self, other: &SlackLedger) -> bool {
        self.entries == other.entries
    }
}

impl SlackLedger {
    /// Creates an empty ledger.
    pub fn new() -> SlackLedger {
        SlackLedger::default()
    }

    /// Adds `amount` of slack tagged with `deadline`. Non-positive or
    /// negligible (≤ 1 ns) amounts are ignored.
    ///
    /// # Panics
    ///
    /// Panics if `deadline` or `amount` is NaN.
    pub fn donate(&mut self, deadline: f64, amount: f64) {
        assert!(!deadline.is_nan() && !amount.is_nan(), "NaN in ledger");
        debug_assert!(
            amount.is_finite() && deadline.is_finite(),
            "non-finite ledger donation: {amount} tagged {deadline}"
        );
        if amount <= TIME_EPS {
            return;
        }
        self.revision += 1;
        match self
            .entries
            .binary_search_by(|&(tag, _)| tag.total_cmp(&deadline))
        {
            Ok(i) => self.entries[i].1 += amount,
            Err(i) => {
                // Merge with a neighbour whose tag is within tolerance to
                // keep the ledger compact under float jitter.
                if i > 0 && (self.entries[i - 1].0 - deadline).abs() <= TIME_EPS {
                    self.entries[i - 1].1 += amount;
                } else if i < self.entries.len() && (self.entries[i].0 - deadline).abs() <= TIME_EPS
                {
                    self.entries[i].1 += amount;
                } else {
                    self.entries.insert(i, (deadline, amount));
                }
            }
        }
    }

    /// Removes and returns all slack with tags at or before `deadline`.
    pub fn take_up_to(&mut self, deadline: f64) -> f64 {
        let before = self.entries.len();
        let mut taken = 0.0;
        self.entries.retain(|&(tag, amount)| {
            if tag <= deadline + TIME_EPS {
                taken += amount;
                false
            } else {
                true
            }
        });
        if self.entries.len() != before {
            self.revision += 1;
        }
        taken
    }

    /// Total slack with tags at or before `deadline`, without consuming it.
    pub fn available_up_to(&self, deadline: f64) -> f64 {
        self.entries
            .iter()
            .take_while(|&&(tag, _)| tag <= deadline + TIME_EPS)
            .map(|&(_, amount)| amount)
            .sum()
    }

    /// Drops entries whose tag is at or before `now` (their time has
    /// passed) and returns the expired total.
    pub fn expire(&mut self, now: f64) -> f64 {
        let before = self.entries.len();
        let mut expired = 0.0;
        self.entries.retain(|&(tag, amount)| {
            if tag <= now + TIME_EPS {
                expired += amount;
                false
            } else {
                true
            }
        });
        if self.entries.len() != before {
            self.revision += 1;
        }
        expired
    }

    /// Total banked slack.
    pub fn total(&self) -> f64 {
        self.entries.iter().map(|&(_, a)| a).sum()
    }

    /// Number of distinct tags.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the ledger is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Removes everything.
    pub fn clear(&mut self) {
        if !self.entries.is_empty() {
            self.revision += 1;
        }
        self.entries.clear();
    }

    /// A counter bumped by every mutation that changed the entries
    /// ([`donate`](SlackLedger::donate) of a non-negligible amount,
    /// [`take_up_to`](SlackLedger::take_up_to)/[`expire`](SlackLedger::expire)
    /// that removed something, non-empty [`clear`](SlackLedger::clear)).
    /// Equal revisions on the same ledger ⇒ identical entries, so
    /// incremental consumers can reuse a snapshot without rescanning.
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// Iterates over `(tag, amount)` entries in tag order.
    pub fn iter(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.entries.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn donate_take_roundtrip() {
        let mut l = SlackLedger::new();
        l.donate(10.0, 1.0);
        l.donate(5.0, 2.0);
        l.donate(7.0, 0.5);
        assert_eq!(l.len(), 3);
        assert!((l.total() - 3.5).abs() < 1e-12);
        assert!((l.available_up_to(7.0) - 2.5).abs() < 1e-12);
        assert!((l.take_up_to(7.0) - 2.5).abs() < 1e-12);
        assert!((l.total() - 1.0).abs() < 1e-12);
        assert_eq!(l.available_up_to(7.0), 0.0);
    }

    #[test]
    fn tags_merge_within_tolerance() {
        let mut l = SlackLedger::new();
        l.donate(5.0, 1.0);
        l.donate(5.0 + 1e-12, 1.0);
        assert_eq!(l.len(), 1);
        assert!((l.total() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn negligible_donations_ignored() {
        let mut l = SlackLedger::new();
        l.donate(5.0, 0.0);
        l.donate(5.0, -1.0);
        l.donate(5.0, 1e-12);
        assert!(l.is_empty());
    }

    #[test]
    fn expiry_drops_past_tags() {
        let mut l = SlackLedger::new();
        l.donate(3.0, 1.0);
        l.donate(6.0, 2.0);
        let expired = l.expire(4.0);
        assert!((expired - 1.0).abs() < 1e-12);
        assert!((l.total() - 2.0).abs() < 1e-12);
        l.clear();
        assert!(l.is_empty());
    }

    #[test]
    fn entries_stay_sorted() {
        let mut l = SlackLedger::new();
        for &tag in &[9.0, 2.0, 7.0, 4.0, 11.0] {
            l.donate(tag, 1.0);
        }
        let tags: Vec<f64> = l.iter().map(|(t, _)| t).collect();
        let mut sorted = tags.clone();
        sorted.sort_by(f64::total_cmp);
        assert_eq!(tags, sorted);
    }

    #[test]
    fn revision_tracks_mutations_only() {
        let mut l = SlackLedger::new();
        let r0 = l.revision();
        l.donate(5.0, 1e-12); // negligible: ignored, no bump
        l.clear(); // already empty: no bump
        assert_eq!(l.take_up_to(10.0), 0.0); // nothing removed: no bump
        assert_eq!(l.expire(10.0), 0.0);
        assert_eq!(l.revision(), r0);
        l.donate(5.0, 1.0);
        assert!(l.revision() > r0);
        let r1 = l.revision();
        assert!((l.take_up_to(6.0) - 1.0).abs() < 1e-12);
        assert!(l.revision() > r1);
        // Equality ignores the revision counter.
        let mut a = SlackLedger::new();
        let mut b = SlackLedger::new();
        a.donate(3.0, 1.0);
        a.donate(4.0, 1.0);
        assert!((a.take_up_to(3.5) - 1.0).abs() < 1e-12);
        b.donate(4.0, 1.0);
        assert_eq!(a, b);
        assert_ne!(a.revision(), b.revision());
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        let mut l = SlackLedger::new();
        l.donate(f64::NAN, 1.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// An operation on the ledger for model-based testing.
    #[derive(Debug, Clone)]
    enum Op {
        Donate(f64, f64),
        TakeUpTo(f64),
        Expire(f64),
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            (0.0..100.0_f64, 0.0..10.0_f64).prop_map(|(t, a)| Op::Donate(t, a)),
            (0.0..100.0_f64).prop_map(Op::TakeUpTo),
            (0.0..100.0_f64).prop_map(Op::Expire),
        ]
    }

    proptest! {
        /// The ledger conserves slack: donated = taken + expired + banked.
        #[test]
        fn conservation(ops in proptest::collection::vec(op_strategy(), 0..200)) {
            let mut ledger = SlackLedger::new();
            let mut donated = 0.0;
            let mut removed = 0.0;
            for op in ops {
                match op {
                    Op::Donate(tag, amount) => {
                        if amount > stadvs_sim::TIME_EPS {
                            donated += amount;
                        }
                        ledger.donate(tag, amount);
                    }
                    Op::TakeUpTo(d) => removed += ledger.take_up_to(d),
                    Op::Expire(now) => removed += ledger.expire(now),
                }
                // Invariants: sorted tags, positive amounts.
                let tags: Vec<f64> = ledger.iter().map(|(t, _)| t).collect();
                for w in tags.windows(2) {
                    prop_assert!(w[0] < w[1]);
                }
                prop_assert!(ledger.iter().all(|(_, a)| a > 0.0));
            }
            prop_assert!((donated - removed - ledger.total()).abs() < 1e-6);
        }

        /// available_up_to never exceeds total and is monotone in deadline.
        #[test]
        fn availability_monotone(
            donations in proptest::collection::vec((0.0..50.0_f64, 0.001..5.0_f64), 1..50),
            d1 in 0.0..60.0_f64,
            d2 in 0.0..60.0_f64,
        ) {
            let mut ledger = SlackLedger::new();
            for (tag, amount) in donations {
                ledger.donate(tag, amount);
            }
            let (lo, hi) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
            prop_assert!(ledger.available_up_to(lo) <= ledger.available_up_to(hi) + 1e-12);
            prop_assert!(ledger.available_up_to(hi) <= ledger.total() + 1e-12);
        }
    }
}
