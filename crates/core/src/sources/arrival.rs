//! Arrival-stretch slack (the "alone until the next arrival" source).

use stadvs_sim::{ActiveJob, SchedulerView, TIME_EPS};

/// The wall-clock allowance an *alone* job may claim: the distance to the
/// earlier of its deadline and the next task arrival (NTA). Returns `None`
/// when other jobs are ready or the window is degenerate.
///
/// Safety: while `job` is the only ready job no other work exists, and a
/// speed of `remaining / window` worst-case-completes the job by
/// `min(deadline, NTA)` — so at the next arrival the system is at least as
/// far along as any schedule that had already finished the job, and the
/// full-speed feasibility argument for the remaining horizon is untouched.
pub fn arrival_allowance(view: &SchedulerView<'_>, job: &ActiveJob) -> Option<f64> {
    if view.ready_jobs().len() != 1 {
        return None;
    }
    let window = job.deadline.min(view.next_release_global()) - view.now();
    (window > TIME_EPS).then_some(window)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stadvs_power::{Processor, Speed};
    use stadvs_sim::{
        ConstantRatio, Governor, JobRecord, MissPolicy, SimConfig, Simulator, Task, TaskSet,
    };

    /// Records what the source reported during a run.
    #[derive(Default)]
    struct Probe {
        alone_windows: Vec<f64>,
        contended: usize,
    }
    impl Governor for Probe {
        fn name(&self) -> &str {
            "probe"
        }
        fn select_speed(&mut self, view: &SchedulerView<'_>, job: &ActiveJob) -> Speed {
            match arrival_allowance(view, job) {
                Some(w) => self.alone_windows.push(w),
                None => self.contended += 1,
            }
            Speed::FULL
        }
        fn on_completion(&mut self, _v: &SchedulerView<'_>, _r: &JobRecord) {}
    }

    #[test]
    fn windows_are_bounded_by_deadline_and_nta() {
        let tasks = TaskSet::new(vec![
            Task::new(1.0, 4.0).unwrap(),
            Task::new(1.0, 6.0).unwrap(),
        ])
        .unwrap();
        let sim = Simulator::new(
            tasks,
            Processor::ideal_continuous(),
            SimConfig::new(24.0)
                .unwrap()
                .with_miss_policy(MissPolicy::Fail),
        )
        .unwrap();
        let mut probe = Probe::default();
        sim.run(&mut probe, &ConstantRatio::new(1.0)).unwrap();
        // At t=0 both tasks are ready → contended at least once.
        assert!(probe.contended > 0);
        // Alone dispatches exist (after the t=0 burst) with positive,
        // bounded windows.
        assert!(!probe.alone_windows.is_empty());
        for w in &probe.alone_windows {
            assert!(*w > 0.0 && *w <= 6.0, "window {w}");
        }
    }
}
