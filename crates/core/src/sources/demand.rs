//! Look-ahead demand (claims) slack analysis.

use stadvs_sim::{ActiveJob, AnalysisStats, SchedulerView, TIME_EPS};

use crate::sources::ReclaimedPool;

/// Claim sentinel marking a tombstoned sequence event (real claims are
/// never negative). The sweep skips these wholesale.
const TOMBSTONE: f64 = -1.0;

/// Tombstone count that triggers a compaction pass on the next repair.
/// Low enough that the sweep's dead-event overhead stays negligible
/// (each skip is one compare against a just-loaded claim), high enough
/// to amortize the three-array copy-down.
const STALE_COMPACT: usize = 32;

/// Look-ahead slack analysis over the **canonical claims** of everything in
/// the system.
///
/// At a scheduling point `t`, every piece of outstanding work holds a
/// wall-clock *claim* that must fit before a checkpoint:
///
/// * each ready job: its remaining canonical allowance (from the
///   [`ReclaimedPool`]), claimed before its deadline,
/// * each future job released inside the look-ahead window: its canonical
///   occupancy `C_i / U`, claimed before its deadline,
/// * each banked ledger entry: its amount, claimed before its tag.
///
/// The *extra slack* available to the dispatched job is the minimum over
/// checkpoints `D` at or after its deadline of `(D − t) − claims(t, D)` —
/// time that provably nobody has claimed. Granting it to the dispatched
/// job keeps the claim invariant (`claims before D ≤ D − t` for every
/// `D`) intact, which is re-verified at every scheduling point.
///
/// Checkpoints beyond the look-ahead horizon `H` are covered rigorously by
/// an *analytic tail bound*: with `a_i` the next release and `D_i` the
/// relative deadline of task `i`, the release count up to any `D` obeys
/// `count_i(D) ≤ (D − a_i − D_i)/T_i + 1`, and canonical claims accrue at
/// rate exactly 1 (`Σ (C_i/U)/T_i = 1`), so for every `D ≥ max(a_i + D_i)`
///
/// ```text
/// slack(D) ≥ Σ_i (a_i + D_i − t)·(u_i/U)  −  Σ_i C_i/U
///            −  ready claims  −  banked ledger total,
/// ```
///
/// a constant that equals the steady-state sawtooth valley. The analysis
/// takes the minimum of the in-window checkpoints and this tail bound,
/// making the result a sound lower bound over the **unbounded** horizon.
///
/// Measured against canonical claims (not raw worst-case work), the
/// analysis distributes static slack exactly like the canonical schedule —
/// no job can greedily hog the phase slack that later jobs need — while
/// still discovering slack the ledger cannot represent (release phasing,
/// alignment gaps, slack stranded behind too-late tags).
///
/// # Incremental evaluation
///
/// The analysis runs at every dispatch, so four layers keep the per-call
/// cost proportional to what actually changed (see `DESIGN.md` §9):
///
/// * **cross-dispatch caching** — the per-task descriptors (claims,
///   periods, relative deadlines), the release outlook (next deadlines,
///   horizon floor, prune validity point) and the ledger snapshot are
///   cached between calls and refreshed only when their inputs move:
///   the task table on [`invalidate`](DemandAnalysis::invalidate) (pool
///   reset), the release outlook on
///   [`SchedulerView::release_epoch`] advancing (job release), and the
///   ledger snapshot on [`SlackLedger::revision`](crate::SlackLedger::revision)
///   advancing (donate on completion, take/expire on re-grant, clear on
///   overrun or idle drain). Ready-job streams depend on continuously
///   varying per-job state (`wall_used`, fresh grants), so they are
///   rebuilt every call — which also subsumes "pool re-grant" as an
///   invalidation key for the ready portion.
/// * **the cached event sequence** — the merged periodic (task-stream)
///   events are kept between dispatches in exactly tournament-merge
///   order and *repaired* when the release outlook moves (tombstoned
///   slide drops on-lattice, a regenerate-and-splice merge off-lattice;
///   see [`ensure_seq`](DemandAnalysis::ensure_seq) and
///   [`repair_seq`](DemandAnalysis::repair_seq)). The per-dispatch sweep
///   then merges only the few ready/ledger singletons over this
///   sequence ([`sweep_overlay`](DemandAnalysis::sweep_overlay)) instead
///   of re-running the full tournament merge.
/// * **early-exit pruning** — the checkpoint sweep stops as soon as no
///   later checkpoint can change the result (soundness argued at
///   [`prune_safety`]); a non-positive tail bound skips the sweep
///   entirely.
/// * **scratch layout** — the sweep reads dense per-event `f64` arrays
///   (times and denormalized claims); the from-scratch path's merge loop
///   touches a dense `claims` array keyed by stream index, its
///   tournament tree persists between calls (only the shrunk pad range
///   is re-written), and nothing is re-zeroed.
///
/// In debug builds every pruned, cached analysis is re-checked against a
/// from-scratch unpruned sweep and must match **bit-identically**.
#[derive(Debug, Clone)]
pub struct DemandAnalysis {
    horizon_periods: f64,
    /// Scratch: tournament **loser** tree over the stream heads, with keys
    /// packed as `(time bits, stream index)` in a `u128` (see [`pack`]).
    /// `tree[0]` holds the overall winner (earliest head),
    /// `tree[1..cap]` the loser of each internal match,
    /// `tree[cap..2·cap]` the leaf keys (used during the build only).
    /// Replaying a path after a pop touches exactly one stored loser per
    /// level — half the loads of a winner tree — and the packed keys
    /// compare with a single `u128` compare. The buffer persists across
    /// calls; [`build_tree`](DemandAnalysis::build_tree) re-pads only the
    /// slots a shrinking stream count exposes.
    tree: Vec<u128>,
    /// Scratch: the claim attached to every event of stream `i`, split out
    /// of the step descriptors so the merge loop reads one dense `f64`
    /// array.
    claims: Vec<f64>,
    /// Scratch: per-stream event generator state (task streams step by
    /// their period; `period == 0` marks singletons).
    steps: Vec<StreamStep>,
    /// Scratch: initial event time per stream (input to the tree build).
    heads: Vec<f64>,
    /// Logical tree capacity of the current build (`live` rounded up to a
    /// power of two); `tree.len() ≥ 2·cap`.
    cap: usize,
    /// Live stream count of the previous build at this `cap` — slots
    /// `cap+live..cap+prev_live` are the only leaves that can hold stale
    /// finite keys (a pruned sweep leaves consumed streams mid-flight).
    prev_live: usize,
    cache: DispatchCache,
    /// Cached merged **periodic** event sequence (see [`ensure_seq`]
    /// (DemandAnalysis::ensure_seq)): event times and owning task indices
    /// of every in-window task-stream event, in exactly the order the
    /// tournament merge emits them. Valid for `seq_epoch`; covers events
    /// up to `seq_horizon` (+ [`TIME_EPS`]).
    seq_times: Vec<f64>,
    seq_task: Vec<usize>,
    /// Claim attached to each cached event (`cache.claim[seq_task[i]]`,
    /// denormalized so the sweep reads one dense array; task claims are
    /// fixed between cache rebuilds, which also invalidate the sequence).
    /// A **negative** claim marks a tombstone: an event the slide repair
    /// dropped in place (real claims are never negative). The sweep skips
    /// tombstones wholesale — no group roll, no accumulation — so the
    /// swept stream is exactly the compacted one. [`compact_seq`]
    /// (DemandAnalysis::compact_seq) reclaims them once `seq_stale` grows.
    seq_claim: Vec<f64>,
    /// Double buffers for the in-place-impossible repair merge.
    seq_times_spare: Vec<f64>,
    seq_task_spare: Vec<usize>,
    seq_claim_spare: Vec<f64>,
    /// Per-task generator state at the **end** of the cached sequence —
    /// extending the horizon resumes these chains.
    chains: Vec<TaskChain>,
    /// Release basis (bits) each task's cached chain was generated from;
    /// a repair regenerates exactly the tasks whose basis moved.
    seq_release: Vec<f64>,
    seq_epoch: u64,
    seq_valid: bool,
    seq_horizon: f64,
    /// Number of tombstoned events currently parked in the sequence.
    seq_stale: usize,
    /// Scratch: ready-job singletons sorted by `(deadline, position)`.
    ready_sorted: Vec<ReadyEvent>,
    /// Scratch: per-task changed flags for the repair merge.
    changed: Vec<bool>,
    /// Scratch: indices of the changed tasks (the repair merge's argmin
    /// only competes these — untouched chains are pending beyond the old
    /// coverage bound and cannot precede any kept event).
    changed_idx: Vec<usize>,
    /// Scratch: per-task lead-event drop counts for the slide fast path.
    drops: Vec<u32>,
    /// Scratch: regenerated `(time, task)` events of the general repair.
    new_events: Vec<(f64, usize)>,
    analyses: u64,
    events_swept: u64,
}

/// Generator state of one task's deadline chain in the cached sequence.
///
/// Steps exactly like a task stream in [`DemandAnalysis::advance`]
/// (`release += period; next = release + deadline_rel`), so resumed chain
/// events are bit-identical to a from-scratch enumeration.
#[derive(Debug, Clone, Copy)]
struct TaskChain {
    release: f64,
    /// Next not-yet-emitted event time (`release + deadline_rel`).
    next: f64,
}

/// A ready-job singleton in the overlay merge: deadline, registration
/// position (the tie-break the packed stream index provided) and claim.
#[derive(Debug, Clone, Copy)]
struct ReadyEvent {
    deadline: f64,
    pos: usize,
    claim: f64,
}

/// Cached between-dispatch state, each layer keyed on the event source
/// that can change it. All values are stored exactly as the from-scratch
/// sweep would recompute them, so cache hits are bit-identical by
/// construction.
#[derive(Debug, Clone, Default)]
struct DispatchCache {
    /// Task-descriptor layer valid (cleared by
    /// [`DemandAnalysis::invalidate`], i.e. on pool reset).
    valid: bool,
    /// Release-outlook layer valid for `release_epoch`.
    releases_valid: bool,
    /// Ledger snapshot valid for `ledger_revision`.
    ledger_valid: bool,
    n_tasks: usize,
    release_epoch: u64,
    ledger_revision: u64,
    /// Per-task canonical claim `C_i/U` (fixed between pool resets).
    claim: Vec<f64>,
    period: Vec<f64>,
    /// Per-task relative deadline.
    drel: Vec<f64>,
    max_period: f64,
    /// Per-task next release instant (refreshed per release epoch).
    release: Vec<f64>,
    /// Per-task next absolute deadline `release + drel`.
    next_deadline: Vec<f64>,
    /// `max_i next_deadline_i` — structural floor of the horizon.
    first_deadlines: f64,
    /// `max_i (next_deadline_i − T_i)` — earliest checkpoint from which
    /// the tail bound dominates all later checkpoints (see
    /// [`prune_safety`]).
    vmax: f64,
    /// Ledger entries `(tag, amount)` split into dense arrays, plus their
    /// total, snapshot at `ledger_revision`.
    ledger_tags: Vec<f64>,
    ledger_amounts: Vec<f64>,
    ledger_total: f64,
}

/// Packs an event key: `u128` ordering is lexicographic on
/// `(f64::total_cmp(time), stream index)`.
///
/// Event times are non-negative (deadlines at or after `now ≥ 0`) or `+∞`
/// for exhausted streams, so the IEEE-754 bit patterns of the times order
/// exactly as `total_cmp` does and a plain integer compare of the packed
/// keys ranks earlier events first, ties to the lower stream index.
#[inline]
fn pack(time: f64, stream: usize) -> u128 {
    debug_assert!(
        time.is_sign_positive(),
        "event time {time} must be non-negative"
    );
    // xtask:allow(as-cast): lossless widening of an index into the key's low bits
    (u128::from(time.to_bits()) << 64) | stream as u128
}

/// The event time of a packed key.
#[inline]
fn key_time(key: u128) -> f64 {
    // xtask:allow(as-cast): lossless truncation recovering the high 64 key bits
    f64::from_bits((key >> 64) as u64)
}

/// The stream index of a packed key.
#[inline]
fn key_stream(key: u128) -> usize {
    // xtask:allow(as-cast): recovers the index packed from a usize in `pack`
    key as u64 as usize
}

/// Event generator state for one stream.
///
/// Ready jobs and ledger entries are singletons; a task stream yields one
/// event per in-window release, generated on demand by stepping `release`
/// by the period — the same float accumulation a materialized enumeration
/// performs, so event times are bit-identical.
#[derive(Debug, Clone, Copy, Default)]
struct StreamStep {
    /// Current release instant (task streams only).
    release: f64,
    /// Release period for task streams; `0.0` marks a singleton.
    period: f64,
    /// Relative deadline (task streams only).
    deadline_rel: f64,
}

impl StreamStep {
    /// A singleton event source (ready-job deadline or ledger tag): one
    /// event, then exhausted.
    const SINGLETON: StreamStep = StreamStep {
        release: 0.0,
        period: 0.0,
        deadline_rel: 0.0,
    };
}

/// The result of one demand analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DemandSlack {
    /// Minimum checkpoint slack — time claimed by nobody (never negative).
    pub slack: f64,
    /// Total claim mass at the binding checkpoint. The governor grants the
    /// dispatched job only its *share* `claim_J / binding_claims` of the
    /// slack: handing all of it to whoever dispatches first is safe but
    /// greedy, and the convex power curve punishes the resulting speed
    /// asymmetry (measurably so at worst-case demand).
    ///
    /// Canonicalized to `0.0` whenever `slack == 0.0`: a zero grant has no
    /// shares, and pinning the representation lets the pruned sweep stop
    /// the moment slack hits zero while staying bit-identical to the full
    /// sweep.
    pub binding_claims: f64,
}

/// Conservative envelope on the accumulated floating-point error of the
/// checkpoint sweep, used by the early-exit prune.
///
/// # Prune soundness
///
/// The sweep may stop at a checkpoint `d` and return the current
/// `(min_slack, binding_claims)` when **no later checkpoint and not the
/// final tail-bound comparison can change them**. In exact arithmetic:
///
/// * For any checkpoint `D > d ≥ vmax` (with `vmax = max_i (nd_i − T_i)`,
///   `nd_i` task `i`'s next absolute deadline), every task satisfies
///   `D ≥ nd_i − T_i`, so its event count up to `D` obeys
///   `count_i(D) ≤ (D − nd_i)/T_i + 1` (zero events while `D < nd_i`,
///   where the right side is still ≥ 0). Singletons (ready jobs, ledger
///   entries) are subtracted **in full** by the tail bound, so
///   `claims(D) ≤ ready + ledger + Σ_i count_i(D)·claim_i` gives
///
///   ```text
///   slack(D) = (D − t) − claims(D) ≥ tail_bound + (D − t)·(1 − ρ)
///            ≥ tail_bound,
///   ```
///
///   because the canonical claim density `ρ = Σ claim_i/T_i ≤ 1` and
///   `D ≥ t`. Hence once `min_slack ≤ tail_bound`, no later checkpoint
///   can *strictly* undercut `min_slack`, and the sweep's strict `<`
///   update never fires again.
/// * The final `tail_bound < min_slack` update cannot fire either, for
///   the same reason.
///
/// Floating point makes both `min_slack` and `tail_bound` approximate.
/// Every quantity in play is a sum/difference of `events + O(n_tasks)`
/// non-negative terms bounded by `window + claims + tail_abs` (`claims`
/// is itself the abs-sum of the claim prefix; `tail_abs` the abs-sum of
/// the tail accumulation), so the classic summation bound
/// `|err| ≤ ε · ops · Σ|terms|` covers the drift of both sides. Pruning
/// therefore requires `min_slack ≤ tail_bound − prune_safety(...)`: if
/// the margin holds in floats it holds in reals, and the unpruned sweep
/// would return the identical `(min_slack, binding_claims)` bits.
///
/// The prune changes **which events are visited, never the result** —
/// enforced bit-exactly by the debug re-check in
/// [`DemandAnalysis::analyze`] and the differential proptests.
#[inline]
fn prune_safety(events: u64, n_tasks: usize, window: f64, claims: f64, tail_abs: f64) -> f64 {
    // xtask:allow(as-cast): exact widening of small operation counts
    let ops = (events + 2 * n_tasks as u64 + 16) as f64;
    f64::EPSILON * ops * (window + claims + tail_abs + 1.0)
}

/// Canonical result assembly shared by the pruned and unpruned paths:
/// clamp non-finite/negative slack to zero and pin `binding_claims = 0`
/// whenever no slack is granted (see [`DemandSlack::binding_claims`]).
#[inline]
fn finish(min_slack: f64, binding_claims: f64) -> DemandSlack {
    let slack = if min_slack.is_finite() {
        min_slack.max(0.0)
    } else {
        0.0
    };
    DemandSlack {
        slack,
        binding_claims: if slack > 0.0 && binding_claims.is_finite() {
            binding_claims
        } else {
            0.0
        },
    }
}

impl DemandAnalysis {
    /// Creates the analysis with the given look-ahead horizon in units of
    /// the task set's maximum period.
    ///
    /// # Panics
    ///
    /// Panics if `horizon_periods` is not finite and positive.
    pub fn new(horizon_periods: f64) -> DemandAnalysis {
        assert!(
            horizon_periods.is_finite() && horizon_periods > 0.0,
            "horizon_periods {horizon_periods} must be finite and positive"
        );
        DemandAnalysis {
            horizon_periods,
            tree: Vec::new(),
            claims: Vec::new(),
            steps: Vec::new(),
            heads: Vec::new(),
            cap: 0,
            prev_live: 0,
            cache: DispatchCache::default(),
            seq_times: Vec::new(),
            seq_task: Vec::new(),
            seq_claim: Vec::new(),
            seq_times_spare: Vec::new(),
            seq_task_spare: Vec::new(),
            seq_claim_spare: Vec::new(),
            chains: Vec::new(),
            seq_release: Vec::new(),
            seq_epoch: 0,
            seq_valid: false,
            seq_horizon: 0.0,
            seq_stale: 0,
            ready_sorted: Vec::new(),
            changed: Vec::new(),
            changed_idx: Vec::new(),
            drops: Vec::new(),
            new_events: Vec::new(),
            analyses: 0,
            events_swept: 0,
        }
    }

    /// The configured look-ahead horizon (in maximum periods).
    pub fn horizon_periods(&self) -> f64 {
        self.horizon_periods
    }

    /// Drops every cached between-dispatch layer. Call when the pool is
    /// reset (new run, new canonical stretch) — within a run the cache
    /// keys itself on [`SchedulerView::release_epoch`] and the ledger
    /// revision.
    pub fn invalidate(&mut self) {
        self.cache.valid = false;
        self.cache.releases_valid = false;
        self.cache.ledger_valid = false;
        self.seq_valid = false;
    }

    /// Cumulative effort counters since construction or
    /// [`reset_stats`](DemandAnalysis::reset_stats).
    pub fn stats(&self) -> AnalysisStats {
        AnalysisStats {
            analyses: self.analyses,
            events_swept: self.events_swept,
        }
    }

    /// Clears the [`stats`](DemandAnalysis::stats) counters.
    pub fn reset_stats(&mut self) {
        self.analyses = 0;
        self.events_swept = 0;
    }

    /// Unclaimed slack available to the dispatched `job` (never negative),
    /// together with the claim mass at the binding checkpoint.
    ///
    /// Call **after** the pool has granted the job its allowance for this
    /// dispatch (so the job's own claim reflects freshly absorbed bank).
    ///
    /// Incremental: reuses cached descriptors and prunes the checkpoint
    /// sweep (see the type-level docs). In debug builds the result is
    /// re-checked bit-exactly against a cold, unpruned sweep.
    pub fn analyze(
        &mut self,
        view: &SchedulerView<'_>,
        job: &ActiveJob,
        pool: &ReclaimedPool,
    ) -> DemandSlack {
        let (result, events) = self.analyze_impl(view, job, pool, true);
        self.analyses += 1;
        self.events_swept += events;
        #[cfg(debug_assertions)]
        {
            let seq_was_valid = self.seq_valid;
            self.invalidate();
            let (reference, ref_events) = self.analyze_impl(view, job, pool, false);
            // The reference run recomputed every descriptor bit-identically
            // (same inputs, same expressions), so the cached sequence is
            // still consistent with them — restore its validity so debug
            // runs keep exercising the cross-dispatch repair paths instead
            // of rebuilding at every call.
            self.seq_valid = seq_was_valid;
            debug_assert!(
                // xtask:allow(float-eq): deliberate bit-identity check — the pruned sweep must match the reference exactly, not approximately
                result.slack.to_bits() == reference.slack.to_bits()
                    // xtask:allow(float-eq): deliberate bit-identity check, as above
                    && result.binding_claims.to_bits() == reference.binding_claims.to_bits(),
                "incremental analysis diverged from the from-scratch sweep: \
                 {result:?} != {reference:?}"
            );
            debug_assert!(
                events <= ref_events,
                "pruned sweep visited {events} events, from-scratch {ref_events}"
            );
        }
        result
    }

    /// From-scratch, unpruned reference sweep: ignores every cached layer
    /// and visits the full look-ahead window. Returns the result and the
    /// number of events visited; does **not** touch the
    /// [`stats`](DemandAnalysis::stats) counters.
    ///
    /// This is the differential-testing oracle:
    /// [`analyze`](DemandAnalysis::analyze) must match it bit-identically.
    pub fn analyze_reference(
        &mut self,
        view: &SchedulerView<'_>,
        job: &ActiveJob,
        pool: &ReclaimedPool,
    ) -> (DemandSlack, u64) {
        let seq_was_valid = self.seq_valid;
        self.invalidate();
        let out = self.analyze_impl(view, job, pool, false);
        // As in `analyze`'s debug path: the recomputed descriptors are
        // bit-identical, so interleaved oracle calls do not force the next
        // incremental call back to a from-scratch sequence rebuild.
        self.seq_valid = seq_was_valid;
        out
    }

    /// One checkpoint sweep; `prune` selects the fast path (cached
    /// periodic sequence + singleton overlay + early exits) versus the
    /// from-scratch tournament-merge reference. Returns the result and
    /// the number of events visited.
    fn analyze_impl(
        &mut self,
        view: &SchedulerView<'_>,
        job: &ActiveJob,
        pool: &ReclaimedPool,
        prune: bool,
    ) -> (DemandSlack, u64) {
        let now = view.now();
        let n_tasks = view.tasks().len();
        self.refresh_cache(view, pool);

        // One pass over the ready jobs: the horizon's ready floor, the
        // ready claims total, and (fast path only) the sorted singleton
        // overlay — claims are re-granted continuously, so the overlay is
        // rebuilt every call.
        let mut latest_ready = job.deadline;
        let mut ready_claims = 0.0;
        if prune {
            self.ready_sorted.clear();
            for (pos, j) in view.ready_jobs().iter().enumerate() {
                latest_ready = latest_ready.max(j.deadline);
                let claim = pool.remaining_claim_of(j);
                ready_claims += claim;
                self.ready_sorted.push(ReadyEvent {
                    deadline: j.deadline,
                    pos,
                    claim,
                });
            }
            // Sorting by `(deadline, registration position)` reproduces the
            // packed-key order the tournament merge gives these singletons.
            self.ready_sorted
                .sort_unstable_by(|a, b| a.deadline.total_cmp(&b.deadline).then(a.pos.cmp(&b.pos)));
        } else {
            for j in view.ready_jobs() {
                latest_ready = latest_ready.max(j.deadline);
                ready_claims += pool.remaining_claim_of(j);
            }
        }
        // The horizon must reach past every task's first in-window deadline
        // for the tail bound's count formula to apply beyond it.
        let horizon = latest_ready
            .max(now + self.horizon_periods * self.cache.max_period)
            .max(self.cache.first_deadlines);

        // Analytic tail bound for all checkpoints beyond the horizon. With
        // overhead pricing, every claim carries its task's switch margin,
        // and the canonical stretch keeps total accrual at rate 1.
        // `tail_abs` mirrors it with absolute values for the prune's
        // float-error envelope.
        let mut tail_bound = -ready_claims - self.cache.ledger_total;
        let mut tail_abs = ready_claims + self.cache.ledger_total;
        for i in 0..n_tasks {
            let claim = self.cache.claim[i];
            let next_deadline = self.cache.next_deadline[i];
            let term = (next_deadline - now) * claim / self.cache.period[i];
            tail_bound += term - claim;
            tail_abs += term + claim;
        }
        // A non-positive tail bound caps the result at zero slack before
        // any checkpoint is visited: the full sweep's final minimum is
        // `min(min_slack, tail_bound) <= 0`, which `finish` clamps to the
        // same canonical zero. Skip the whole sweep.
        if prune && tail_bound <= 0.0 {
            return (finish(tail_bound, f64::INFINITY), 0);
        }
        if prune {
            self.ensure_seq(horizon);
            return self.sweep_overlay(job, horizon, now, n_tasks, tail_bound, tail_abs);
        }
        self.sweep_reference(view, job, pool, horizon, now, tail_bound)
    }

    /// Fast checkpoint sweep: streams the cached periodic sequence,
    /// overlaying the per-dispatch singletons (sorted ready deadlines,
    /// ledger tags) with a merge whose tie-breaks reproduce the tournament
    /// merge's stream registration order (ready < tasks < ledger, then
    /// position). The hot loop is the sequence-event path — one boundary
    /// compare against each singleton cursor — and drops to a full
    /// three-way pick only when a singleton actually pops (a handful per
    /// analysis).
    ///
    /// Checkpoint candidates are evaluated after **every** event with the
    /// current group head `d`: a mid-group candidate shares `d` with its
    /// group's final candidate but carries strictly smaller claims (every
    /// claim is positive), so it is strictly larger and can never win the
    /// strict-minimum update — the minimum and its binding claims land on
    /// exactly the group-end values the grouped reference computes. The
    /// `vmax` full-stop check runs at group boundaries only (mid-group it
    /// could miss the open group's own end checkpoint); the zero-slack
    /// stop may fire mid-group because [`finish`] canonicalizes every
    /// non-positive minimum to the same `(0, 0)` result. Event pops,
    /// claim accumulation order and checkpoint arithmetic are exactly
    /// those of [`sweep_reference`](DemandAnalysis::sweep_reference), so
    /// results are bit-identical; the prune early-exits (sound per
    /// [`prune_safety`]) only cut the visit count.
    fn sweep_overlay(
        &self,
        job: &ActiveJob,
        horizon: f64,
        now: f64,
        n_tasks: usize,
        tail_bound: f64,
        tail_abs: f64,
    ) -> (DemandSlack, u64) {
        // Same float expression the stream generators clip with. The cached
        // sequence is sorted, so one partition point replaces the per-event
        // horizon clip.
        let h_gate = horizon + TIME_EPS;
        let vmax = self.cache.vmax;
        let till = self.seq_times.partition_point(|&t| t <= h_gate);
        let seq_times = &self.seq_times[..till];
        let seq_claim = &self.seq_claim[..till];
        let ready = &self.ready_sorted[..];
        let tags = &self.cache.ledger_tags[..];
        let amounts = &self.cache.ledger_amounts[..];

        let mut r = 0usize;
        let mut p = 0usize;
        let mut l = 0usize;
        let mut tr = ready.first().map_or(f64::INFINITY, |e| e.deadline);
        let mut tp = seq_times.first().copied().unwrap_or(f64::INFINITY);
        let mut tl = tags.first().map_or(f64::INFINITY, |&t| t.min(horizon));

        let mut events: u64 = 0;
        let mut claims = 0.0;
        let mut min_slack = f64::INFINITY;
        let mut binding_claims = f64::INFINITY;
        // Open-group state; the sentinel gate keeps the first event from
        // triggering a (guarded-out) boundary checkpoint.
        let mut d = f64::NAN;
        let mut gate = f64::NEG_INFINITY;
        loop {
            // Hot path: the next event is a sequence event. Strict `<`
            // against the ready cursor (ready singletons win time ties),
            // `<=` against the ledger cursor (task streams win those).
            while tp < tr && tp <= tl {
                let t = tp;
                let c = seq_claim[p];
                p += 1;
                tp = if p < till {
                    seq_times[p]
                } else {
                    f64::INFINITY
                };
                if c < 0.0 {
                    // Tombstone (slide-dropped event awaiting compaction):
                    // it neither opens a group nor accumulates, so the
                    // stream swept is exactly the compacted one.
                    continue;
                }
                if t > gate {
                    // Previous group closed: its checkpoint minimum is
                    // final, so the full-stop prune may fire (see above).
                    if gate >= job.deadline
                        && d >= vmax
                        && min_slack <= tail_bound
                        && min_slack
                            <= tail_bound - prune_safety(events, n_tasks, d - now, claims, tail_abs)
                    {
                        return (finish(min_slack, binding_claims), events);
                    }
                    d = t;
                    gate = t + TIME_EPS;
                }
                events += 1;
                claims += c;
                if gate >= job.deadline {
                    let slack = (d - now) - claims;
                    if slack < min_slack {
                        min_slack = slack;
                        binding_claims = claims;
                        // Zero slack is absorbing and canonicalized by
                        // `finish` wherever in the group it shows up, so
                        // the stop only needs checking when the minimum
                        // moved.
                        if min_slack <= 0.0 {
                            return (finish(min_slack, binding_claims), events);
                        }
                    }
                }
            }
            // Slow path: a singleton pops (or everything is exhausted).
            let (t, src) = if tr <= tp {
                if tr <= tl {
                    (tr, 0u8)
                } else {
                    (tl, 2)
                }
            } else if tp <= tl {
                (tp, 1)
            } else {
                (tl, 2)
            };
            if !t.is_finite() {
                break;
            }
            if src == 1 && seq_claim[p] < 0.0 {
                // Tombstone: drop it before it can open a group.
                p += 1;
                tp = if p < till {
                    seq_times[p]
                } else {
                    f64::INFINITY
                };
                continue;
            }
            if t > gate {
                if gate >= job.deadline
                    && d >= vmax
                    && min_slack <= tail_bound
                    && min_slack
                        <= tail_bound - prune_safety(events, n_tasks, d - now, claims, tail_abs)
                {
                    return (finish(min_slack, binding_claims), events);
                }
                d = t;
                gate = t + TIME_EPS;
            }
            events += 1;
            match src {
                0 => {
                    claims += ready[r].claim;
                    r += 1;
                    tr = ready.get(r).map_or(f64::INFINITY, |e| e.deadline);
                }
                1 => {
                    claims += seq_claim[p];
                    p += 1;
                    tp = if p < till {
                        seq_times[p]
                    } else {
                        f64::INFINITY
                    };
                }
                _ => {
                    claims += amounts[l];
                    l += 1;
                    tl = tags.get(l).map_or(f64::INFINITY, |&t| t.min(horizon));
                }
            }
            if gate >= job.deadline {
                let slack = (d - now) - claims;
                if slack < min_slack {
                    min_slack = slack;
                    binding_claims = claims;
                    if min_slack <= 0.0 {
                        return (finish(min_slack, binding_claims), events);
                    }
                }
            }
        }
        if tail_bound < min_slack {
            min_slack = tail_bound;
            binding_claims = claims; // everything outstanding binds the tail
        }
        (finish(min_slack, binding_claims), events)
    }

    /// From-scratch checkpoint sweep: registers every event stream (ready
    /// singletons, task streams, ledger singletons), builds the loser tree
    /// and runs the fused merge + prefix scan over the whole window. This
    /// is the oracle the fast path must match bit-identically.
    fn sweep_reference(
        &mut self,
        view: &SchedulerView<'_>,
        job: &ActiveJob,
        pool: &ReclaimedPool,
        horizon: f64,
        now: f64,
        tail_bound: f64,
    ) -> (DemandSlack, u64) {
        let ledger_len = self.cache.ledger_tags.len();
        let n_tasks = self.cache.n_tasks;
        self.ensure_streams(view.ready_jobs().len() + n_tasks + ledger_len);

        let mut live = 0usize;
        for j in view.ready_jobs() {
            self.claims[live] = pool.remaining_claim_of(j);
            self.heads[live] = j.deadline;
            self.steps[live] = StreamStep::SINGLETON;
            live += 1;
        }
        for i in 0..n_tasks {
            let next_deadline = self.cache.next_deadline[i];
            if next_deadline <= horizon + TIME_EPS {
                self.claims[live] = self.cache.claim[i];
                self.heads[live] = next_deadline;
                self.steps[live] = StreamStep {
                    release: self.cache.release[i],
                    period: self.cache.period[i],
                    deadline_rel: self.cache.drel[i],
                };
                live += 1;
            }
        }
        for k in 0..ledger_len {
            let tag = self.cache.ledger_tags[k];
            debug_assert!(
                tag <= horizon + TIME_EPS,
                "ledger tag {tag} beyond horizon {horizon}"
            );
            self.claims[live] = self.cache.ledger_amounts[k];
            self.heads[live] = tag.min(horizon);
            self.steps[live] = StreamStep::SINGLETON;
            live += 1;
        }
        self.build_tree(live);

        // Fused k-way merge + prefix scan: events pop in ascending time,
        // ties in stream registration order - exactly the order a stable
        // sort by time over the materialized blocks produces, so the f64
        // prefix sums are bit-identical (see [`pack`] and `build_tree`).
        let mut events: u64 = 0;
        let mut claims = 0.0;
        let mut min_slack = f64::INFINITY;
        let mut binding_claims = f64::INFINITY;
        let mut head = self.tree[0];
        while key_time(head).is_finite() {
            let d = key_time(head);
            let gate = d + TIME_EPS;
            loop {
                events += 1;
                claims += self.claims[key_stream(head)];
                head = self.advance(key_stream(head), horizon);
                if key_time(head) > gate {
                    break;
                }
            }
            // Checkpoints before the dispatched job's deadline do not bind
            // it (see `sweep_overlay`).
            if gate >= job.deadline {
                let slack = (d - now) - claims;
                if slack < min_slack {
                    min_slack = slack;
                    binding_claims = claims;
                }
            }
        }
        if tail_bound < min_slack {
            min_slack = tail_bound;
            binding_claims = claims; // everything outstanding binds the tail
        }
        (finish(min_slack, binding_claims), events)
    }

    /// Ensures the cached periodic sequence is valid for the current
    /// release epoch and covers `horizon`:
    ///
    /// * invalidated (pool reset, task set change) - full rebuild;
    /// * release epoch advanced (job release) - per-task **repair**: only
    ///   the chains whose release basis moved are regenerated and merged
    ///   back with the untouched remainder in one streaming pass;
    /// * horizon slid forward - pure tail **extension**, resuming the
    ///   saved chain states.
    ///
    /// Event times step exactly as [`advance`](DemandAnalysis::advance)
    /// does, so the sequence is bit-identical to a from-scratch merge.
    fn ensure_seq(&mut self, horizon: f64) {
        let n = self.cache.n_tasks;
        if !self.seq_valid || self.chains.len() != n {
            self.chains.clear();
            for i in 0..n {
                self.chains.push(TaskChain {
                    release: self.cache.release[i],
                    next: self.cache.next_deadline[i],
                });
            }
            self.seq_release.clear();
            self.seq_release.extend_from_slice(&self.cache.release);
            self.seq_times.clear();
            self.seq_task.clear();
            self.seq_claim.clear();
            self.seq_stale = 0;
            self.seq_horizon = horizon;
            self.seq_epoch = self.cache.release_epoch;
            self.extend_seq(horizon);
            self.seq_valid = true;
        // xtask:allow(float-eq): release_epoch is a u64 change counter, not a time
        } else if self.seq_epoch != self.cache.release_epoch {
            self.repair_seq(horizon);
        } else if horizon > self.seq_horizon {
            self.seq_horizon = horizon;
            self.extend_seq(horizon);
        }
    }

    /// Copies the live events down over the tombstones (all three arrays)
    /// and resets the stale count. Pure removal of sweep no-ops, so the
    /// swept stream is unchanged.
    fn compact_seq(&mut self) {
        let mut w = 0usize;
        for p in 0..self.seq_task.len() {
            let t = self.seq_task[p];
            if t == usize::MAX {
                continue;
            }
            self.seq_times[w] = self.seq_times[p];
            self.seq_task[w] = t;
            self.seq_claim[w] = self.seq_claim[p];
            w += 1;
        }
        self.seq_times.truncate(w);
        self.seq_task.truncate(w);
        self.seq_claim.truncate(w);
        self.seq_stale = 0;
    }

    /// Appends every pending chain event with time at most `to` (+
    /// [`TIME_EPS`], the stream generators' clip rule) to the cached
    /// sequence, earliest first, ties to the lower task index - the
    /// packed-key order of the tournament merge.
    fn extend_seq(&mut self, to: f64) {
        let bound = to + TIME_EPS;
        loop {
            let mut best = usize::MAX;
            let mut best_t = f64::INFINITY;
            for (i, c) in self.chains.iter().enumerate() {
                if c.next < best_t {
                    best_t = c.next;
                    best = i;
                }
            }
            if best_t > bound {
                break;
            }
            self.seq_times.push(best_t);
            self.seq_task.push(best);
            self.seq_claim.push(self.cache.claim[best]);
            let c = &mut self.chains[best];
            c.release += self.cache.period[best];
            c.next = c.release + self.cache.drel[best];
        }
    }

    /// Repairs the cached sequence after the release outlook moved.
    ///
    /// **Slide fast path**: when every moved release basis advanced along
    /// its chain's additive lattice (`release += period`, bit-checked),
    /// the regenerated chain is the old one minus its leading events — all
    /// later events are produced by the identical float operations on the
    /// identical operands. The repair tombstones each slid task's first
    /// `k` live events in place (no memmove; see the `seq_claim` field
    /// doc), steps the saved chain state over any drops beyond the
    /// emitted prefix, and compacts once enough tombstones pile up.
    ///
    /// **General path** (basis moved off-lattice, e.g. a sporadic delay):
    /// regenerates the changed chains from their new bases as one merged
    /// stream (argmin over the changed chains), and splices it past the
    /// kept events in one two-way pass into the spare buffers (then
    /// swaps, dropping tombstones for free). Untouched chains are pending
    /// beyond the old coverage bound, so they cannot precede any kept
    /// event and never enter the merge.
    ///
    /// Both paths also extend coverage to `horizon` when it moved past the
    /// cached one.
    fn repair_seq(&mut self, horizon: f64) {
        let n = self.cache.n_tasks;
        // Slide detection: walk each moved basis forward along the old
        // additive lattice and require a bit-exact hit.
        // Generous: a slide step is one float add, and covering a long idle
        // gap (many releases of a short-period task between dispatches) on
        // the fast path is far cheaper than any merge repair.
        const MAX_SLIDE: u32 = 512;
        self.drops.clear();
        self.drops.resize(n, 0);
        let mut slide_ok = true;
        let mut total_drops: u32 = 0;
        self.changed.clear();
        self.changed.resize(n, false);
        self.changed_idx.clear();
        for i in 0..n {
            // xtask:allow(float-eq): deliberate bit-compare — an identical basis means an identical chain
            if self.cache.release[i].to_bits() == self.seq_release[i].to_bits() {
                continue;
            }
            self.changed[i] = true;
            self.changed_idx.push(i);
            if slide_ok {
                let target_bits = self.cache.release[i].to_bits();
                let mut r = self.seq_release[i];
                let mut steps: u32 = 0;
                loop {
                    r += self.cache.period[i];
                    steps += 1;
                    if r.to_bits() == target_bits {
                        self.drops[i] = steps;
                        total_drops += steps;
                        break;
                    }
                    if steps >= MAX_SLIDE || r > self.cache.release[i] {
                        slide_ok = false;
                        break;
                    }
                }
            }
        }
        self.seq_release.clear();
        self.seq_release.extend_from_slice(&self.cache.release);
        self.seq_epoch = self.cache.release_epoch;
        if self.changed_idx.is_empty() {
            if horizon > self.seq_horizon {
                self.seq_horizon = horizon;
                self.extend_seq(horizon);
            }
            return;
        }
        if slide_ok {
            if total_drops == 1 {
                // Overwhelmingly common: one task released one job. Its
                // earliest remaining event (if emitted) leads the drop.
                let task = self.changed_idx[0];
                match self.seq_task.iter().position(|&t| t == task) {
                    Some(idx) => {
                        self.seq_task[idx] = usize::MAX;
                        self.seq_claim[idx] = TOMBSTONE;
                        self.seq_stale += 1;
                    }
                    None => {
                        // Nothing emitted yet: skip the pending event.
                        let c = &mut self.chains[task];
                        c.release += self.cache.period[task];
                        c.next = c.release + self.cache.drel[task];
                    }
                }
            } else {
                let mut pending = total_drops;
                for p in 0..self.seq_task.len() {
                    let t = self.seq_task[p];
                    // `t < n` also filters earlier tombstones.
                    if t < n && self.drops[t] > 0 {
                        self.drops[t] -= 1;
                        self.seq_task[p] = usize::MAX;
                        self.seq_claim[p] = TOMBSTONE;
                        self.seq_stale += 1;
                        pending -= 1;
                        if pending == 0 {
                            break;
                        }
                    }
                }
                // Drops past the emitted prefix skip pending events.
                for k in 0..self.changed_idx.len() {
                    let i = self.changed_idx[k];
                    for _ in 0..self.drops[i] {
                        let c = &mut self.chains[i];
                        c.release += self.cache.period[i];
                        c.next = c.release + self.cache.drel[i];
                    }
                }
            }
            if self.seq_stale >= STALE_COMPACT {
                self.compact_seq();
            }
            if horizon > self.seq_horizon {
                self.seq_horizon = horizon;
                self.extend_seq(horizon);
            }
            return;
        }
        // General repair: regenerate each changed chain from its new basis
        // up to the old coverage bound, sort the regenerated events once,
        // and splice them into the kept events in a single two-way pass
        // (then extend if the horizon also moved — the regenerated chains
        // are already stepped past the bound, so the extension's argmin
        // interleaves every chain correctly). Ties are only possible
        // across distinct tasks and go to the lower task index, as the
        // packed keys of the tournament merge would.
        let old_bound = self.seq_horizon + TIME_EPS;
        self.new_events.clear();
        for &i in &self.changed_idx {
            self.chains[i] = TaskChain {
                release: self.cache.release[i],
                next: self.cache.next_deadline[i],
            };
        }
        // Emit the changed chains' merged stream (earliest first, ties to
        // the lower task index — the strict `<` argmin provides both).
        loop {
            let mut best = usize::MAX;
            let mut best_t = f64::INFINITY;
            for &i in &self.changed_idx {
                if self.chains[i].next < best_t {
                    best_t = self.chains[i].next;
                    best = i;
                }
            }
            if best_t > old_bound {
                break;
            }
            self.new_events.push((best_t, best));
            let c = &mut self.chains[best];
            c.release += self.cache.period[best];
            c.next = c.release + self.cache.drel[best];
        }
        self.seq_times_spare.clear();
        self.seq_task_spare.clear();
        self.seq_claim_spare.clear();
        let mut q = 0usize;
        for p in 0..self.seq_times.len() {
            let old_task = self.seq_task[p];
            if old_task == usize::MAX || self.changed[old_task] {
                // Tombstone, or stale event of a regenerated chain. New
                // events that would have sorted before it are emitted
                // ahead of the next kept event instead — same order.
                continue;
            }
            let old_t = self.seq_times[p];
            while q < self.new_events.len() {
                let (t, i) = self.new_events[q];
                // xtask:allow(float-eq): bit-equal times tie-break by task index
                if t < old_t || (t.to_bits() == old_t.to_bits() && i < old_task) {
                    self.seq_times_spare.push(t);
                    self.seq_task_spare.push(i);
                    self.seq_claim_spare.push(self.cache.claim[i]);
                    q += 1;
                } else {
                    break;
                }
            }
            self.seq_times_spare.push(old_t);
            self.seq_task_spare.push(old_task);
            self.seq_claim_spare.push(self.seq_claim[p]);
        }
        for &(t, i) in &self.new_events[q..] {
            self.seq_times_spare.push(t);
            self.seq_task_spare.push(i);
            self.seq_claim_spare.push(self.cache.claim[i]);
        }
        std::mem::swap(&mut self.seq_times, &mut self.seq_times_spare);
        std::mem::swap(&mut self.seq_task, &mut self.seq_task_spare);
        std::mem::swap(&mut self.seq_claim, &mut self.seq_claim_spare);
        self.seq_stale = 0; // the splice dropped every tombstone
        let target = self.seq_horizon.max(horizon);
        self.seq_horizon = target;
        self.extend_seq(target);
    }

    /// Refreshes the cached layers that are out of date (see
    /// [`DispatchCache`]). Values are recomputed with the exact
    /// expressions the from-scratch sweep uses, so hits are bit-identical.
    fn refresh_cache(&mut self, view: &SchedulerView<'_>, pool: &ReclaimedPool) {
        let tasks = view.tasks();
        let n = tasks.len();
        let cache = &mut self.cache;
        if !cache.valid || cache.n_tasks != n {
            cache.n_tasks = n;
            cache.claim.clear();
            cache.period.clear();
            cache.drel.clear();
            for (id, task) in tasks.iter() {
                cache.claim.push(pool.claim_of(id));
                cache.period.push(task.period());
                cache.drel.push(task.deadline());
            }
            cache.max_period = tasks.max_period();
            cache.releases_valid = false;
            cache.ledger_valid = false;
            cache.valid = true;
            // A rebuilt task table invalidates the cached event sequence.
            self.seq_valid = false;
        }
        // xtask:allow(float-eq): release_epoch is a u64 change counter, not a time
        if !cache.releases_valid || cache.release_epoch != view.release_epoch() {
            cache.release.clear();
            cache.next_deadline.clear();
            let mut first_deadlines = 0.0;
            let mut vmax = f64::NEG_INFINITY;
            for (i, (id, _)) in tasks.iter().enumerate() {
                let release = view.next_release_of(id);
                let next_deadline = release + cache.drel[i];
                first_deadlines = f64::max(first_deadlines, next_deadline);
                vmax = f64::max(vmax, next_deadline - cache.period[i]);
                cache.release.push(release);
                cache.next_deadline.push(next_deadline);
            }
            cache.first_deadlines = first_deadlines;
            cache.vmax = vmax;
            cache.release_epoch = view.release_epoch();
            cache.releases_valid = true;
        }
        let ledger = pool.ledger();
        if !cache.ledger_valid || cache.ledger_revision != ledger.revision() {
            cache.ledger_tags.clear();
            cache.ledger_amounts.clear();
            for (tag, amount) in ledger.iter() {
                cache.ledger_tags.push(tag);
                cache.ledger_amounts.push(amount);
            }
            cache.ledger_total = ledger.total();
            cache.ledger_revision = ledger.revision();
            cache.ledger_valid = true;
        }
    }

    /// Grows the stream scratch arrays to hold at least `n` streams.
    /// One-time growth: steady-state calls never allocate.
    fn ensure_streams(&mut self, n: usize) {
        if self.claims.len() < n {
            self.claims.resize(n, 0.0);
            self.heads.resize(n, f64::INFINITY);
            self.steps.resize(n, StreamStep::SINGLETON);
        }
    }

    /// Builds the loser tree over streams `0..live`, padding the leaf
    /// level with exhausted (`+∞`) keys up to the next power of two.
    ///
    /// Streams are registered in the order a materialized enumeration
    /// pushes its event blocks (ready jobs, then tasks by id, then ledger
    /// entries) and each stream's times are non-decreasing, so the packed
    /// keys' tie-break to the lower stream index makes the merge emit ties
    /// in block (push) order: exactly the stable-sort order.
    ///
    /// The buffer persists across calls. Invariant: after every build at
    /// capacity `cap`, leaf slots `cap+live..2·cap` hold `+∞` pads —
    /// so a later build at the same `cap` only needs to re-pad
    /// `cap+live..cap+prev_live` (slots a pruned sweep may have left with
    /// finite mid-merge keys). A capacity change rewrites the pad range in
    /// full, since the slots belonged to a different layout.
    fn build_tree(&mut self, live: usize) {
        let cap = live.next_power_of_two();
        if self.tree.len() < 2 * cap {
            self.tree.resize(2 * cap, 0u128);
        }
        if cap == self.cap {
            for i in live..self.prev_live {
                self.tree[cap + i] = pack(f64::INFINITY, i);
            }
        } else {
            for i in live..cap {
                self.tree[cap + i] = pack(f64::INFINITY, i);
            }
        }
        for i in 0..live {
            self.tree[cap + i] = pack(self.heads[i], i);
        }
        // Winner pass bottom-up, then convert the internal nodes to the
        // losers of their matches top-down (children still hold winners
        // when their parent is converted).
        for n in (1..cap).rev() {
            self.tree[n] = self.tree[2 * n].min(self.tree[2 * n + 1]);
        }
        self.tree[0] = self.tree[1];
        for n in 1..cap {
            self.tree[n] = self.tree[2 * n].max(self.tree[2 * n + 1]);
        }
        self.cap = cap;
        self.prev_live = live;
    }

    /// Consumes the head of stream `w` and replays its tournament path:
    /// the new key of `w` plays the stored loser at each node up to the
    /// root, the winner carries upward, and the final winner lands in
    /// `tree[0]` (also returned) — one load per level, branchless
    /// (`u128` min/max compile to compare+select).
    ///
    /// Task streams step to their next in-window release — the same float
    /// accumulation (`release += period`) the materialized enumeration
    /// performed, so event times are bit-identical; exhausted streams park
    /// at `∞` and never win again.
    #[inline]
    fn advance(&mut self, w: usize, horizon: f64) -> u128 {
        let step = &mut self.steps[w];
        let time = if step.period > 0.0 {
            step.release += step.period;
            let next = step.release + step.deadline_rel;
            if next <= horizon + TIME_EPS {
                next
            } else {
                f64::INFINITY
            }
        } else {
            f64::INFINITY
        };
        let mut cur = pack(time, w);
        let mut n = (self.cap + w) / 2;
        while n >= 1 {
            let stored = self.tree[n];
            let lo = stored.min(cur);
            self.tree[n] = stored.max(cur);
            cur = lo;
            n /= 2;
        }
        self.tree[0] = cur;
        cur
    }
}

impl Default for DemandAnalysis {
    /// A quarter maximum period of look-ahead beyond the structural floor
    /// (latest ready deadline and every task's first in-window deadline).
    /// The analytic tail bound makes ANY horizon sound; longer windows only
    /// trade analysis cost for (measured: negligible) extra precision.
    fn default() -> DemandAnalysis {
        DemandAnalysis::new(0.25)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stadvs_sim::{ActiveJob, Task, TaskSet};

    // Direct unit tests drive the analysis through a hand-built view via
    // the simulator; end-to-end behaviour is covered in `slack_edf` tests
    // and the integration suite. Here we check the pure bookkeeping.

    /// Loads `(time, claim, period, deadline_rel)` stream descriptors into
    /// the scratch arrays, mirroring the push order of `analyze_impl`.
    fn load_streams(analysis: &mut DemandAnalysis, specs: &[(f64, f64, f64, f64)]) -> usize {
        analysis.ensure_streams(specs.len());
        for (live, &(time, claim, period, deadline_rel)) in specs.iter().enumerate() {
            analysis.claims[live] = claim;
            analysis.heads[live] = time + deadline_rel;
            analysis.steps[live] = StreamStep {
                release: time,
                period,
                deadline_rel,
            };
        }
        specs.len()
    }

    /// Pops every event of the built tree in order.
    fn drain(analysis: &mut DemandAnalysis, horizon: f64) -> Vec<(f64, f64)> {
        let mut merged = Vec::new();
        let mut head = analysis.tree[0];
        while key_time(head).is_finite() {
            merged.push((key_time(head), analysis.claims[key_stream(head)]));
            head = analysis.advance(key_stream(head), horizon);
        }
        merged
    }

    /// The tournament merge must emit events in exactly the order the
    /// materialize-and-stable-sort implementation produced: ascending
    /// time, ties in stream registration (= push block) order. Payloads
    /// record the stream, so equality also proves the tie-break.
    #[test]
    fn tournament_merge_emits_stable_sorted_event_order() {
        let mut lcg: u64 = 0x2545_F491_4F6C_DD1D;
        let mut rand = |m: u64| {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (lcg >> 33) % m
        };
        for round in 0..80 {
            // A mix of singleton and arithmetic (task-like) streams with
            // heavy collisions on a coarse time grid.
            let mut analysis = DemandAnalysis::default();
            let mut specs = Vec::new();
            let mut reference = Vec::new();
            let horizon = 10.0;
            let n = 1 + rand(9);
            for _ in 0..n {
                let time = rand(13) as f64 * 0.5;
                let claim = specs.len() as f64;
                if rand(2) == 0 {
                    specs.push((time, claim, 0.0, 0.0));
                    reference.push((time, claim));
                } else {
                    let period = 0.5 + rand(4) as f64 * 0.75;
                    let deadline_rel = rand(3) as f64 * 0.5;
                    let mut release = time;
                    loop {
                        let deadline = release + deadline_rel;
                        if deadline > horizon + TIME_EPS {
                            break;
                        }
                        reference.push((deadline, claim));
                        release += period;
                    }
                    if time + deadline_rel <= horizon + TIME_EPS {
                        specs.push((time, claim, period, deadline_rel));
                    }
                }
            }
            reference.sort_by(|a, b| a.0.total_cmp(&b.0));

            let live = load_streams(&mut analysis, &specs);
            analysis.build_tree(live);
            assert_eq!(drain(&mut analysis, horizon), reference, "round {round}");
        }
    }

    /// Rebuilding a persistent tree must be clean after partial sweeps and
    /// across capacity changes: stale mid-merge keys from a pruned sweep
    /// may never leak into the next merge.
    #[test]
    fn tree_reuse_after_partial_sweep_and_resize_is_clean() {
        let horizon = 100.0;
        let singles = |times: &[f64]| -> Vec<(f64, f64, f64, f64)> {
            times
                .iter()
                .enumerate()
                .map(|(i, &t)| (t, i as f64, 0.0, 0.0))
                .collect()
        };
        let mut analysis = DemandAnalysis::default();

        // Build 5 streams (cap 8), consume only two events (as a pruned
        // sweep would), leaving finite keys in the tree.
        let live = load_streams(&mut analysis, &singles(&[5.0, 1.0, 4.0, 2.0, 3.0]));
        analysis.build_tree(live);
        let first = analysis.tree[0];
        assert_eq!(key_time(first), 1.0);
        let second = analysis.advance(key_stream(first), horizon);
        assert_eq!(key_time(second), 2.0);
        analysis.advance(key_stream(second), horizon);

        // Same capacity, fewer streams: slots 3..5 held live keys.
        let live = load_streams(&mut analysis, &singles(&[9.0, 8.0, 7.0]));
        analysis.build_tree(live);
        assert_eq!(
            drain(&mut analysis, horizon),
            vec![(7.0, 2.0), (8.0, 1.0), (9.0, 0.0)]
        );

        // Shrink the capacity (cap 8 → 2), then grow it (→ 16); each
        // layout change must re-pad in full.
        let live = load_streams(&mut analysis, &singles(&[6.0, 5.0]));
        analysis.build_tree(live);
        assert_eq!(drain(&mut analysis, horizon), vec![(5.0, 1.0), (6.0, 0.0)]);

        let times: Vec<f64> = (0..9).map(|i| f64::from(i) * 1.5 + 0.5).collect();
        let specs = singles(&times);
        let live = load_streams(&mut analysis, &specs);
        analysis.build_tree(live);
        let merged = drain(&mut analysis, horizon);
        assert_eq!(merged.len(), 9);
        assert!(merged.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn horizon_validation() {
        assert_eq!(DemandAnalysis::default().horizon_periods(), 0.25);
        assert_eq!(DemandAnalysis::new(3.5).horizon_periods(), 3.5);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn bad_horizon_rejected() {
        let _ = DemandAnalysis::new(f64::NAN);
    }

    /// Exercise extra_slack through a minimal simulated dispatch.
    #[test]
    fn synchronous_worst_case_has_no_extra_slack_at_full_utilization() {
        use stadvs_power::{Processor, Speed};
        use stadvs_sim::{Governor, MissPolicy, SchedulerView, SimConfig, Simulator, WorstCase};

        struct Probe {
            pool: ReclaimedPool,
            analysis: DemandAnalysis,
            max_extra: f64,
        }
        impl Governor for Probe {
            fn name(&self) -> &str {
                "probe"
            }
            fn on_start(&mut self, tasks: &TaskSet, _p: &Processor) {
                self.pool.reset(tasks);
                self.analysis.invalidate();
            }
            fn select_speed(&mut self, view: &SchedulerView<'_>, job: &ActiveJob) -> Speed {
                let allowance = self.pool.allowance(view, job);
                let extra = self.analysis.analyze(view, job, &self.pool).slack;
                self.max_extra = self.max_extra.max(extra);
                let rem = job.remaining_budget();
                let total = (allowance + extra).min(job.deadline - view.now());
                let s = if total <= rem { 1.0 } else { rem / total };
                Speed::clamped(s, view.processor().min_speed())
            }
            fn on_completion(&mut self, _v: &SchedulerView<'_>, r: &stadvs_sim::JobRecord) {
                self.pool.settle(r, true);
            }
        }

        // U = 1 synchronous worst case: every checkpoint is tight.
        let tasks = TaskSet::new(vec![
            Task::new(2.0, 4.0).unwrap(),
            Task::new(4.0, 8.0).unwrap(),
        ])
        .unwrap();
        let sim = Simulator::new(
            tasks,
            Processor::ideal_continuous(),
            SimConfig::new(32.0)
                .unwrap()
                .with_miss_policy(MissPolicy::Fail),
        )
        .unwrap();
        let mut probe = Probe {
            pool: ReclaimedPool::new(),
            analysis: DemandAnalysis::default(),
            max_extra: 0.0,
        };
        let out = sim.run(&mut probe, &WorstCase).unwrap();
        assert!(out.all_deadlines_met());
        assert!(
            probe.max_extra < 1e-9,
            "found phantom slack {} at U = 1",
            probe.max_extra
        );
        // Canonical speed at U = 1 is full speed: energy = busy time.
        assert!((out.total_energy() - 32.0).abs() < 1e-4);
    }

    /// The pruned, cached analyzer must return bit-identical results to
    /// the from-scratch unpruned sweep at every dispatch of a live run,
    /// and never visit more events than it.
    #[test]
    fn incremental_analysis_matches_reference_and_prunes() {
        use stadvs_power::{Processor, Speed};
        use stadvs_sim::{ConstantRatio, Governor, SchedulerView, SimConfig, Simulator};

        struct Probe {
            pool: ReclaimedPool,
            fast: DemandAnalysis,
            oracle: DemandAnalysis,
            reference_events: u64,
            checks: u64,
        }
        impl Governor for Probe {
            fn name(&self) -> &str {
                "diff-probe"
            }
            fn on_start(&mut self, tasks: &TaskSet, _p: &Processor) {
                self.pool.reset(tasks);
                self.fast.invalidate();
                self.fast.reset_stats();
            }
            fn select_speed(&mut self, view: &SchedulerView<'_>, job: &ActiveJob) -> Speed {
                let before = self.fast.stats().events_swept;
                let fast = self.fast.analyze(view, job, &self.pool);
                let swept = self.fast.stats().events_swept - before;
                let (slow, ref_events) = self.oracle.analyze_reference(view, job, &self.pool);
                assert_eq!(fast.slack.to_bits(), slow.slack.to_bits());
                assert_eq!(fast.binding_claims.to_bits(), slow.binding_claims.to_bits());
                assert!(
                    swept <= ref_events,
                    "pruned sweep visited {swept} events, reference {ref_events}"
                );
                self.reference_events += ref_events;
                self.checks += 1;
                let rem = job.remaining_budget();
                let total =
                    (self.pool.allowance(view, job) + fast.slack).min(job.deadline - view.now());
                let s = if total <= rem { 1.0 } else { rem / total };
                Speed::clamped(s, view.processor().min_speed())
            }
            fn on_completion(&mut self, _v: &SchedulerView<'_>, r: &stadvs_sim::JobRecord) {
                self.pool.settle(r, true);
            }
            fn on_idle(&mut self, _v: &SchedulerView<'_>) {
                self.pool.drain_on_idle();
            }
        }

        for seed in 0..4u64 {
            use rand::rngs::StdRng;
            use rand::{Rng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed);
            let mut tasks = Vec::new();
            let n = rng.gen_range(2..7);
            let mut budget: f64 = 0.95;
            for _ in 0..n {
                if budget < 0.06 {
                    break;
                }
                let period = rng.gen_range(0.5..8.0_f64);
                let u = rng.gen_range(0.05..budget.min(0.5));
                budget -= u;
                tasks.push(Task::new(u * period, period).unwrap());
            }
            let set = TaskSet::new(tasks).unwrap();
            let sim = Simulator::new(
                set,
                Processor::ideal_continuous(),
                SimConfig::new(30.0).unwrap(),
            )
            .unwrap();
            let mut probe = Probe {
                pool: ReclaimedPool::new(),
                fast: DemandAnalysis::default(),
                oracle: DemandAnalysis::default(),
                reference_events: 0,
                checks: 0,
            };
            let out = sim.run(&mut probe, &ConstantRatio::new(0.5)).unwrap();
            assert!(out.all_deadlines_met());
            assert!(probe.checks >= 5, "probe barely ran ({})", probe.checks);
            let stats = probe.fast.stats();
            assert_eq!(stats.analyses, probe.checks);
            assert!(
                stats.events_swept <= probe.reference_events,
                "seed {seed}: pruning visited more events ({}) than from-scratch ({})",
                stats.events_swept,
                probe.reference_events
            );
        }
    }

    /// The analytic tail bound must never certify more slack than a very
    /// long explicit enumeration would: shrinking the look-ahead window can
    /// only make the result more conservative.
    #[test]
    fn tail_bound_is_conservative_versus_long_windows() {
        use stadvs_power::{Processor, Speed};
        use stadvs_sim::{ConstantRatio, Governor, SchedulerView, SimConfig, Simulator};

        struct Probe {
            pool: ReclaimedPool,
            short: DemandAnalysis,
            long: DemandAnalysis,
            violations: usize,
            checks: usize,
        }
        impl Governor for Probe {
            fn name(&self) -> &str {
                "tail-probe"
            }
            fn on_start(&mut self, tasks: &TaskSet, _p: &Processor) {
                self.pool.reset(tasks);
                self.short.invalidate();
                self.long.invalidate();
            }
            fn select_speed(&mut self, view: &SchedulerView<'_>, job: &ActiveJob) -> Speed {
                let allowance = self.pool.allowance(view, job);
                let short = self.short.analyze(view, job, &self.pool).slack;
                let long = self.long.analyze(view, job, &self.pool).slack;
                self.checks += 1;
                if short > long + 1e-9 {
                    self.violations += 1;
                }
                let rem = job.remaining_budget();
                let total = (allowance + short).min(job.deadline - view.now());
                let s = if total <= rem { 1.0 } else { rem / total };
                Speed::clamped(s, view.processor().min_speed())
            }
            fn on_completion(&mut self, _v: &SchedulerView<'_>, r: &stadvs_sim::JobRecord) {
                self.pool.settle(r, true);
            }
            fn on_idle(&mut self, _v: &SchedulerView<'_>) {
                self.pool.drain_on_idle();
            }
        }

        for seed in 0..8u64 {
            use rand::rngs::StdRng;
            use rand::{Rng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed);
            let mut tasks = Vec::new();
            let n = rng.gen_range(2..6);
            let mut budget: f64 = 0.9;
            for _ in 0..n {
                if budget < 0.06 {
                    break;
                }
                let period = rng.gen_range(0.5..8.0_f64);
                let u = rng.gen_range(0.05..budget.min(0.5));
                budget -= u;
                tasks.push(Task::new(u * period, period).unwrap());
            }
            let set = TaskSet::new(tasks).unwrap();
            let sim = Simulator::new(
                set,
                Processor::ideal_continuous(),
                SimConfig::new(20.0).unwrap(),
            )
            .unwrap();
            let mut probe = Probe {
                pool: ReclaimedPool::new(),
                short: DemandAnalysis::new(0.05),
                long: DemandAnalysis::new(16.0),
                violations: 0,
                checks: 0,
            };
            let out = sim.run(&mut probe, &ConstantRatio::new(0.4)).unwrap();
            assert!(out.all_deadlines_met());
            assert!(
                probe.checks >= 5,
                "probe barely ran ({} checks)",
                probe.checks
            );
            assert_eq!(
                probe.violations, 0,
                "seed {seed}: tail bound certified more slack than a 16-period window                  in {}/{} dispatches",
                probe.violations, probe.checks
            );
        }
    }

    /// The analysis discovers release-phasing slack the ledger cannot see.
    #[test]
    fn phasing_slack_is_found_for_staggered_releases() {
        use stadvs_power::{Processor, Speed};
        use stadvs_sim::{Governor, MissPolicy, SchedulerView, SimConfig, Simulator, WorstCase};

        struct Probe {
            pool: ReclaimedPool,
            analysis: DemandAnalysis,
            saw_extra: bool,
        }
        impl Governor for Probe {
            fn name(&self) -> &str {
                "probe2"
            }
            fn on_start(&mut self, tasks: &TaskSet, _p: &Processor) {
                self.pool.reset(tasks);
                self.analysis.invalidate();
            }
            fn select_speed(&mut self, view: &SchedulerView<'_>, job: &ActiveJob) -> Speed {
                let allowance = self.pool.allowance(view, job);
                let extra = self.analysis.analyze(view, job, &self.pool).slack;
                if extra > 0.1 {
                    self.saw_extra = true;
                }
                let rem = job.remaining_budget();
                let total = (allowance + extra).min(job.deadline - view.now());
                let s = if total <= rem { 1.0 } else { rem / total };
                Speed::clamped(s, view.processor().min_speed())
            }
            fn on_completion(&mut self, _v: &SchedulerView<'_>, r: &stadvs_sim::JobRecord) {
                self.pool.settle(r, true);
            }
        }

        // A phased low-rate task leaves real gaps in the canonical claims.
        let tasks = TaskSet::new(vec![
            Task::new(1.0, 4.0).unwrap(),
            Task::new(1.0, 16.0).unwrap().with_phase(8.0).unwrap(),
        ])
        .unwrap();
        let sim = Simulator::new(
            tasks,
            Processor::ideal_continuous(),
            SimConfig::new(64.0)
                .unwrap()
                .with_miss_policy(MissPolicy::Fail),
        )
        .unwrap();
        let mut probe = Probe {
            pool: ReclaimedPool::new(),
            analysis: DemandAnalysis::default(),
            saw_extra: false,
        };
        let out = sim.run(&mut probe, &WorstCase).unwrap();
        assert!(out.all_deadlines_met());
        assert!(probe.saw_extra, "no phasing slack discovered");
    }
}
