//! Look-ahead demand (claims) slack analysis.

use stadvs_sim::{ActiveJob, SchedulerView, TIME_EPS};

use crate::sources::ReclaimedPool;

/// Look-ahead slack analysis over the **canonical claims** of everything in
/// the system.
///
/// At a scheduling point `t`, every piece of outstanding work holds a
/// wall-clock *claim* that must fit before a checkpoint:
///
/// * each ready job: its remaining canonical allowance (from the
///   [`ReclaimedPool`]), claimed before its deadline,
/// * each future job released inside the look-ahead window: its canonical
///   occupancy `C_i / U`, claimed before its deadline,
/// * each banked ledger entry: its amount, claimed before its tag.
///
/// The *extra slack* available to the dispatched job is the minimum over
/// checkpoints `D` at or after its deadline of `(D − t) − claims(t, D)` —
/// time that provably nobody has claimed. Granting it to the dispatched
/// job keeps the claim invariant (`claims before D ≤ D − t` for every
/// `D`) intact, which is re-verified at every scheduling point.
///
/// Checkpoints beyond the look-ahead horizon `H` are covered rigorously by
/// an *analytic tail bound*: with `a_i` the next release and `D_i` the
/// relative deadline of task `i`, the release count up to any `D` obeys
/// `count_i(D) ≤ (D − a_i − D_i)/T_i + 1`, and canonical claims accrue at
/// rate exactly 1 (`Σ (C_i/U)/T_i = 1`), so for every `D ≥ max(a_i + D_i)`
///
/// ```text
/// slack(D) ≥ Σ_i (a_i + D_i − t)·(u_i/U)  −  Σ_i C_i/U
///            −  ready claims  −  banked ledger total,
/// ```
///
/// a constant that equals the steady-state sawtooth valley. The analysis
/// takes the minimum of the in-window checkpoints and this tail bound,
/// making the result a sound lower bound over the **unbounded** horizon.
///
/// Measured against canonical claims (not raw worst-case work), the
/// analysis distributes static slack exactly like the canonical schedule —
/// no job can greedily hog the phase slack that later jobs need — while
/// still discovering slack the ledger cannot represent (release phasing,
/// alignment gaps, slack stranded behind too-late tags).
#[derive(Debug, Clone)]
pub struct DemandAnalysis {
    horizon_periods: f64,
    /// Scratch: one lazily-enumerated event source per ready job, task and
    /// ledger entry, reused across dispatches.
    streams: Vec<Stream>,
    /// Scratch: tournament **loser** tree over the stream heads, with keys
    /// packed as `(time bits, stream index)` in a `u128` (see [`pack`]).
    /// `tree[0]` holds the overall winner (earliest head), `tree[1..P]`
    /// the loser of each internal match, `tree[P..2P]` the leaf keys
    /// (used during the build only). Replaying a path after a pop touches
    /// exactly one stored loser per level — half the loads of a winner
    /// tree — and the packed keys compare with a single `u128` compare.
    tree: Vec<u128>,
}

/// Packs an event key: `u128` ordering is lexicographic on
/// `(f64::total_cmp(time), stream index)`.
///
/// Event times are non-negative (deadlines at or after `now ≥ 0`) or `+∞`
/// for exhausted streams, so the IEEE-754 bit patterns of the times order
/// exactly as `total_cmp` does and a plain integer compare of the packed
/// keys ranks earlier events first, ties to the lower stream index.
#[inline]
fn pack(time: f64, stream: usize) -> u128 {
    debug_assert!(
        time.is_sign_positive(),
        "event time {time} must be non-negative"
    );
    // xtask:allow(as-cast): lossless widening of an index into the key's low bits
    (u128::from(time.to_bits()) << 64) | stream as u128
}

/// The event time of a packed key.
#[inline]
fn key_time(key: u128) -> f64 {
    // xtask:allow(as-cast): lossless truncation recovering the high 64 key bits
    f64::from_bits((key >> 64) as u64)
}

/// The stream index of a packed key.
#[inline]
fn key_stream(key: u128) -> usize {
    // xtask:allow(as-cast): recovers the index packed from a usize in `pack`
    key as u64 as usize
}

/// One source of checkpoint events in the claims analysis.
///
/// Ready jobs and ledger entries are singletons; a task stream yields one
/// event per in-window release, generated on demand by stepping `release`
/// by the period — the same float accumulation a materialized enumeration
/// performs, so event times are bit-identical. An exhausted stream parks
/// at `time = ∞`.
#[derive(Debug, Clone, Copy)]
struct Stream {
    /// Next event time (absolute deadline, or clamped ledger tag).
    time: f64,
    /// The claim attached to every event of this stream.
    claim: f64,
    /// Release period for task streams; `0.0` marks a singleton.
    period: f64,
    /// Current release instant (task streams only).
    release: f64,
    /// Relative deadline (task streams only).
    deadline_rel: f64,
}

impl Stream {
    /// A singleton event source (ready-job deadline or ledger tag).
    fn singleton(time: f64, claim: f64) -> Stream {
        Stream {
            time,
            claim,
            period: 0.0,
            release: 0.0,
            deadline_rel: 0.0,
        }
    }

    /// An exhausted placeholder (pads the tournament tree to a power of
    /// two and never wins against a live stream).
    fn exhausted() -> Stream {
        Stream::singleton(f64::INFINITY, 0.0)
    }
}

/// The result of one demand analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DemandSlack {
    /// Minimum checkpoint slack — time claimed by nobody (never negative).
    pub slack: f64,
    /// Total claim mass at the binding checkpoint. The governor grants the
    /// dispatched job only its *share* `claim_J / binding_claims` of the
    /// slack: handing all of it to whoever dispatches first is safe but
    /// greedy, and the convex power curve punishes the resulting speed
    /// asymmetry (measurably so at worst-case demand).
    pub binding_claims: f64,
}

impl DemandAnalysis {
    /// Creates the analysis with the given look-ahead horizon in units of
    /// the task set's maximum period.
    ///
    /// # Panics
    ///
    /// Panics if `horizon_periods` is not finite and positive.
    pub fn new(horizon_periods: f64) -> DemandAnalysis {
        assert!(
            horizon_periods.is_finite() && horizon_periods > 0.0,
            "horizon_periods {horizon_periods} must be finite and positive"
        );
        DemandAnalysis {
            horizon_periods,
            streams: Vec::new(),
            tree: Vec::new(),
        }
    }

    /// The configured look-ahead horizon (in maximum periods).
    pub fn horizon_periods(&self) -> f64 {
        self.horizon_periods
    }

    /// Unclaimed slack available to the dispatched `job` (never negative),
    /// together with the claim mass at the binding checkpoint.
    ///
    /// Call **after** the pool has granted the job its allowance for this
    /// dispatch (so the job's own claim reflects freshly absorbed bank).
    pub fn analyze(
        &mut self,
        view: &SchedulerView<'_>,
        job: &ActiveJob,
        pool: &ReclaimedPool,
    ) -> DemandSlack {
        let now = view.now();
        let tasks = view.tasks();
        let latest_ready = view
            .ready_jobs()
            .iter()
            .map(|j| j.deadline)
            .fold(job.deadline, f64::max);
        // The horizon must reach past every task's first in-window deadline
        // for the tail bound's count formula to apply beyond it.
        let first_deadlines = tasks
            .iter()
            .map(|(id, t)| view.next_release_of(id) + t.deadline())
            .fold(0.0, f64::max);
        let horizon = latest_ready
            .max(now + self.horizon_periods * tasks.max_period())
            .max(first_deadlines);

        self.streams.clear();
        let mut ready_claims = 0.0;
        for j in view.ready_jobs() {
            let claim = pool.remaining_claim_of(j);
            ready_claims += claim;
            self.streams.push(Stream::singleton(j.deadline, claim));
        }
        // Analytic tail bound for all checkpoints beyond the horizon. With
        // overhead pricing, every claim carries its task's switch margin,
        // and the canonical stretch keeps total accrual at rate 1.
        let mut tail_bound = -ready_claims - pool.ledger().total();
        for (id, task) in tasks.iter() {
            let claim = pool.claim_of(id);
            let release = view.next_release_of(id);
            let next_deadline = release + task.deadline();
            tail_bound += (next_deadline - now) * claim / task.period() - claim;
            if next_deadline <= horizon + TIME_EPS {
                self.streams.push(Stream {
                    time: next_deadline,
                    claim,
                    period: task.period(),
                    release,
                    deadline_rel: task.deadline(),
                });
            }
        }
        for (tag, amount) in pool.ledger().iter() {
            debug_assert!(
                tag <= horizon + TIME_EPS,
                "ledger tag {tag} beyond horizon {horizon}"
            );
            self.streams
                .push(Stream::singleton(tag.min(horizon), amount));
        }
        self.rebuild_tree();

        // Fused k-way merge + prefix scan: events pop in ascending time,
        // ties in stream registration order — exactly the order a stable
        // sort by time over the materialized blocks produces, so the f64
        // prefix sums are bit-identical (see [`pack`] and `rebuild_tree`).
        let mut claims = 0.0;
        let mut min_slack = f64::INFINITY;
        let mut binding_claims = f64::INFINITY;
        let mut head = self.tree[0];
        while key_time(head).is_finite() {
            let d = key_time(head);
            loop {
                claims += self.streams[key_stream(head)].claim;
                self.advance(key_stream(head), horizon);
                head = self.tree[0];
                if key_time(head) > d + TIME_EPS {
                    break;
                }
            }
            // Checkpoints before the dispatched job's deadline do not bind
            // it: it is the EDF minimum, and any future earlier-deadline
            // job preempts it and takes its own claim first.
            if d + TIME_EPS >= job.deadline {
                let slack = (d - now) - claims;
                if slack < min_slack {
                    min_slack = slack;
                    binding_claims = claims;
                }
            }
        }
        if tail_bound < min_slack {
            min_slack = tail_bound;
            binding_claims = claims; // everything outstanding binds the tail
        }
        DemandSlack {
            slack: if min_slack.is_finite() {
                min_slack.max(0.0)
            } else {
                0.0
            },
            binding_claims: if binding_claims.is_finite() {
                binding_claims
            } else {
                0.0
            },
        }
    }
}

impl DemandAnalysis {
    /// Builds the loser tree over the current streams, padding with
    /// exhausted placeholders to a power of two. Reuses the scratch
    /// buffers: allocation-free once they have grown to the task-set size.
    ///
    /// Streams are registered in the order a materialized enumeration
    /// pushes its event blocks (ready jobs, then tasks by id, then ledger
    /// entries) and each stream's times are non-decreasing, so the packed
    /// keys' tie-break to the lower stream index makes the merge emit ties
    /// in block (push) order: exactly the stable-sort order.
    fn rebuild_tree(&mut self) {
        let leaves = self.streams.len().next_power_of_two();
        self.streams.resize(leaves, Stream::exhausted());
        self.tree.clear();
        self.tree.resize(2 * leaves, 0u128);
        for i in 0..leaves {
            self.tree[leaves + i] = pack(self.streams[i].time, i);
        }
        // Winner pass bottom-up, then convert the internal nodes to the
        // losers of their matches top-down (children still hold winners
        // when their parent is converted).
        for n in (1..leaves).rev() {
            self.tree[n] = self.tree[2 * n].min(self.tree[2 * n + 1]);
        }
        self.tree[0] = self.tree[1];
        for n in 1..leaves {
            self.tree[n] = self.tree[2 * n].max(self.tree[2 * n + 1]);
        }
    }

    /// Consumes the head of stream `w` and replays its tournament path:
    /// the new key of `w` plays the stored loser at each node up to the
    /// root, the winner carries upward, and the final winner lands in
    /// `tree[0]` — one load per level.
    ///
    /// Task streams step to their next in-window release — the same float
    /// accumulation (`release += period`) the materialized enumeration
    /// performed, so event times are bit-identical; exhausted streams park
    /// at `∞` and never win again.
    fn advance(&mut self, w: usize, horizon: f64) {
        let s = &mut self.streams[w];
        if s.period > 0.0 {
            s.release += s.period;
            let next = s.release + s.deadline_rel;
            s.time = if next <= horizon + TIME_EPS {
                next
            } else {
                f64::INFINITY
            };
        } else {
            s.time = f64::INFINITY;
        }
        let mut cur = pack(s.time, w);
        let mut n = (self.tree.len() / 2 + w) / 2;
        while n >= 1 {
            if self.tree[n] < cur {
                std::mem::swap(&mut self.tree[n], &mut cur);
            }
            n /= 2;
        }
        self.tree[0] = cur;
    }
}

impl Default for DemandAnalysis {
    /// A quarter maximum period of look-ahead beyond the structural floor
    /// (latest ready deadline and every task's first in-window deadline).
    /// The analytic tail bound makes ANY horizon sound; longer windows only
    /// trade analysis cost for (measured: negligible) extra precision.
    fn default() -> DemandAnalysis {
        DemandAnalysis::new(0.25)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stadvs_sim::{ActiveJob, Task, TaskSet};

    // Direct unit tests drive the analysis through a hand-built view via
    // the simulator; end-to-end behaviour is covered in `slack_edf` tests
    // and the integration suite. Here we check the pure bookkeeping.

    /// The tournament merge must emit events in exactly the order the
    /// materialize-and-stable-sort implementation produced: ascending
    /// time, ties in stream registration (= push block) order. Payloads
    /// record the stream, so equality also proves the tie-break.
    #[test]
    fn tournament_merge_emits_stable_sorted_event_order() {
        let mut lcg: u64 = 0x2545_F491_4F6C_DD1D;
        let mut rand = |m: u64| {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (lcg >> 33) % m
        };
        for round in 0..80 {
            // A mix of singleton and arithmetic (task-like) streams with
            // heavy collisions on a coarse time grid.
            let mut analysis = DemandAnalysis::default();
            let mut reference = Vec::new();
            let horizon = 10.0;
            let n = 1 + rand(9);
            for _ in 0..n {
                let time = rand(13) as f64 * 0.5;
                let claim = analysis.streams.len() as f64;
                if rand(2) == 0 {
                    analysis.streams.push(Stream::singleton(time, claim));
                    reference.push((time, claim));
                } else {
                    let period = 0.5 + rand(4) as f64 * 0.75;
                    let deadline_rel = rand(3) as f64 * 0.5;
                    let mut release = time;
                    loop {
                        let deadline = release + deadline_rel;
                        if deadline > horizon + TIME_EPS {
                            break;
                        }
                        reference.push((deadline, claim));
                        release += period;
                    }
                    let first = time + deadline_rel;
                    if first <= horizon + TIME_EPS {
                        analysis.streams.push(Stream {
                            time: first,
                            claim,
                            period,
                            release: time,
                            deadline_rel,
                        });
                    }
                }
            }
            reference.sort_by(|a, b| a.0.total_cmp(&b.0));

            analysis.rebuild_tree();
            let mut merged = Vec::new();
            loop {
                let head = analysis.tree[0];
                if !key_time(head).is_finite() {
                    break;
                }
                merged.push((key_time(head), analysis.streams[key_stream(head)].claim));
                analysis.advance(key_stream(head), horizon);
            }
            assert_eq!(merged, reference, "round {round}");
        }
    }

    #[test]
    fn horizon_validation() {
        assert_eq!(DemandAnalysis::default().horizon_periods(), 0.25);
        assert_eq!(DemandAnalysis::new(3.5).horizon_periods(), 3.5);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn bad_horizon_rejected() {
        let _ = DemandAnalysis::new(f64::NAN);
    }

    /// Exercise extra_slack through a minimal simulated dispatch.
    #[test]
    fn synchronous_worst_case_has_no_extra_slack_at_full_utilization() {
        use stadvs_power::{Processor, Speed};
        use stadvs_sim::{Governor, MissPolicy, SchedulerView, SimConfig, Simulator, WorstCase};

        struct Probe {
            pool: ReclaimedPool,
            analysis: DemandAnalysis,
            max_extra: f64,
        }
        impl Governor for Probe {
            fn name(&self) -> &str {
                "probe"
            }
            fn on_start(&mut self, tasks: &TaskSet, _p: &Processor) {
                self.pool.reset(tasks);
            }
            fn select_speed(&mut self, view: &SchedulerView<'_>, job: &ActiveJob) -> Speed {
                let allowance = self.pool.allowance(view, job);
                let extra = self.analysis.analyze(view, job, &self.pool).slack;
                self.max_extra = self.max_extra.max(extra);
                let rem = job.remaining_budget();
                let total = (allowance + extra).min(job.deadline - view.now());
                let s = if total <= rem { 1.0 } else { rem / total };
                Speed::clamped(s, view.processor().min_speed())
            }
            fn on_completion(&mut self, _v: &SchedulerView<'_>, r: &stadvs_sim::JobRecord) {
                self.pool.settle(r, true);
            }
        }

        // U = 1 synchronous worst case: every checkpoint is tight.
        let tasks = TaskSet::new(vec![
            Task::new(2.0, 4.0).unwrap(),
            Task::new(4.0, 8.0).unwrap(),
        ])
        .unwrap();
        let sim = Simulator::new(
            tasks,
            Processor::ideal_continuous(),
            SimConfig::new(32.0)
                .unwrap()
                .with_miss_policy(MissPolicy::Fail),
        )
        .unwrap();
        let mut probe = Probe {
            pool: ReclaimedPool::new(),
            analysis: DemandAnalysis::default(),
            max_extra: 0.0,
        };
        let out = sim.run(&mut probe, &WorstCase).unwrap();
        assert!(out.all_deadlines_met());
        assert!(
            probe.max_extra < 1e-9,
            "found phantom slack {} at U = 1",
            probe.max_extra
        );
        // Canonical speed at U = 1 is full speed: energy = busy time.
        assert!((out.total_energy() - 32.0).abs() < 1e-4);
    }

    /// The analytic tail bound must never certify more slack than a very
    /// long explicit enumeration would: shrinking the look-ahead window can
    /// only make the result more conservative.
    #[test]
    fn tail_bound_is_conservative_versus_long_windows() {
        use stadvs_power::{Processor, Speed};
        use stadvs_sim::{ConstantRatio, Governor, SchedulerView, SimConfig, Simulator};

        struct Probe {
            pool: ReclaimedPool,
            short: DemandAnalysis,
            long: DemandAnalysis,
            violations: usize,
            checks: usize,
        }
        impl Governor for Probe {
            fn name(&self) -> &str {
                "tail-probe"
            }
            fn on_start(&mut self, tasks: &TaskSet, _p: &Processor) {
                self.pool.reset(tasks);
            }
            fn select_speed(&mut self, view: &SchedulerView<'_>, job: &ActiveJob) -> Speed {
                let allowance = self.pool.allowance(view, job);
                let short = self.short.analyze(view, job, &self.pool).slack;
                let long = self.long.analyze(view, job, &self.pool).slack;
                self.checks += 1;
                if short > long + 1e-9 {
                    self.violations += 1;
                }
                let rem = job.remaining_budget();
                let total = (allowance + short).min(job.deadline - view.now());
                let s = if total <= rem { 1.0 } else { rem / total };
                Speed::clamped(s, view.processor().min_speed())
            }
            fn on_completion(&mut self, _v: &SchedulerView<'_>, r: &stadvs_sim::JobRecord) {
                self.pool.settle(r, true);
            }
            fn on_idle(&mut self, _v: &SchedulerView<'_>) {
                self.pool.drain_on_idle();
            }
        }

        for seed in 0..8u64 {
            use rand::rngs::StdRng;
            use rand::{Rng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed);
            let mut tasks = Vec::new();
            let n = rng.gen_range(2..6);
            let mut budget: f64 = 0.9;
            for _ in 0..n {
                if budget < 0.06 {
                    break;
                }
                let period = rng.gen_range(0.5..8.0_f64);
                let u = rng.gen_range(0.05..budget.min(0.5));
                budget -= u;
                tasks.push(Task::new(u * period, period).unwrap());
            }
            let set = TaskSet::new(tasks).unwrap();
            let sim = Simulator::new(
                set,
                Processor::ideal_continuous(),
                SimConfig::new(20.0).unwrap(),
            )
            .unwrap();
            let mut probe = Probe {
                pool: ReclaimedPool::new(),
                short: DemandAnalysis::new(0.05),
                long: DemandAnalysis::new(16.0),
                violations: 0,
                checks: 0,
            };
            let out = sim.run(&mut probe, &ConstantRatio::new(0.4)).unwrap();
            assert!(out.all_deadlines_met());
            assert!(
                probe.checks >= 5,
                "probe barely ran ({} checks)",
                probe.checks
            );
            assert_eq!(
                probe.violations, 0,
                "seed {seed}: tail bound certified more slack than a 16-period window                  in {}/{} dispatches",
                probe.violations, probe.checks
            );
        }
    }

    /// The analysis discovers release-phasing slack the ledger cannot see.
    #[test]
    fn phasing_slack_is_found_for_staggered_releases() {
        use stadvs_power::{Processor, Speed};
        use stadvs_sim::{Governor, MissPolicy, SchedulerView, SimConfig, Simulator, WorstCase};

        struct Probe {
            pool: ReclaimedPool,
            analysis: DemandAnalysis,
            saw_extra: bool,
        }
        impl Governor for Probe {
            fn name(&self) -> &str {
                "probe2"
            }
            fn on_start(&mut self, tasks: &TaskSet, _p: &Processor) {
                self.pool.reset(tasks);
            }
            fn select_speed(&mut self, view: &SchedulerView<'_>, job: &ActiveJob) -> Speed {
                let allowance = self.pool.allowance(view, job);
                let extra = self.analysis.analyze(view, job, &self.pool).slack;
                if extra > 0.1 {
                    self.saw_extra = true;
                }
                let rem = job.remaining_budget();
                let total = (allowance + extra).min(job.deadline - view.now());
                let s = if total <= rem { 1.0 } else { rem / total };
                Speed::clamped(s, view.processor().min_speed())
            }
            fn on_completion(&mut self, _v: &SchedulerView<'_>, r: &stadvs_sim::JobRecord) {
                self.pool.settle(r, true);
            }
        }

        // A phased low-rate task leaves real gaps in the canonical claims.
        let tasks = TaskSet::new(vec![
            Task::new(1.0, 4.0).unwrap(),
            Task::new(1.0, 16.0).unwrap().with_phase(8.0).unwrap(),
        ])
        .unwrap();
        let sim = Simulator::new(
            tasks,
            Processor::ideal_continuous(),
            SimConfig::new(64.0)
                .unwrap()
                .with_miss_policy(MissPolicy::Fail),
        )
        .unwrap();
        let mut probe = Probe {
            pool: ReclaimedPool::new(),
            analysis: DemandAnalysis::default(),
            saw_extra: false,
        };
        let out = sim.run(&mut probe, &WorstCase).unwrap();
        assert!(out.all_deadlines_met());
        assert!(probe.saw_extra, "no phasing slack discovered");
    }
}
