//! Look-ahead demand (claims) slack analysis.

use stadvs_sim::{ActiveJob, SchedulerView, TIME_EPS};

use crate::sources::ReclaimedPool;

/// Look-ahead slack analysis over the **canonical claims** of everything in
/// the system.
///
/// At a scheduling point `t`, every piece of outstanding work holds a
/// wall-clock *claim* that must fit before a checkpoint:
///
/// * each ready job: its remaining canonical allowance (from the
///   [`ReclaimedPool`]), claimed before its deadline,
/// * each future job released inside the look-ahead window: its canonical
///   occupancy `C_i / U`, claimed before its deadline,
/// * each banked ledger entry: its amount, claimed before its tag.
///
/// The *extra slack* available to the dispatched job is the minimum over
/// checkpoints `D` at or after its deadline of `(D − t) − claims(t, D)` —
/// time that provably nobody has claimed. Granting it to the dispatched
/// job keeps the claim invariant (`claims before D ≤ D − t` for every
/// `D`) intact, which is re-verified at every scheduling point.
///
/// Checkpoints beyond the look-ahead horizon `H` are covered rigorously by
/// an *analytic tail bound*: with `a_i` the next release and `D_i` the
/// relative deadline of task `i`, the release count up to any `D` obeys
/// `count_i(D) ≤ (D − a_i − D_i)/T_i + 1`, and canonical claims accrue at
/// rate exactly 1 (`Σ (C_i/U)/T_i = 1`), so for every `D ≥ max(a_i + D_i)`
///
/// ```text
/// slack(D) ≥ Σ_i (a_i + D_i − t)·(u_i/U)  −  Σ_i C_i/U
///            −  ready claims  −  banked ledger total,
/// ```
///
/// a constant that equals the steady-state sawtooth valley. The analysis
/// takes the minimum of the in-window checkpoints and this tail bound,
/// making the result a sound lower bound over the **unbounded** horizon.
///
/// Measured against canonical claims (not raw worst-case work), the
/// analysis distributes static slack exactly like the canonical schedule —
/// no job can greedily hog the phase slack that later jobs need — while
/// still discovering slack the ledger cannot represent (release phasing,
/// alignment gaps, slack stranded behind too-late tags).
#[derive(Debug, Clone)]
pub struct DemandAnalysis {
    horizon_periods: f64,
    /// Scratch: (checkpoint deadline, claim) events.
    events: Vec<(f64, f64)>,
}

/// The result of one demand analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DemandSlack {
    /// Minimum checkpoint slack — time claimed by nobody (never negative).
    pub slack: f64,
    /// Total claim mass at the binding checkpoint. The governor grants the
    /// dispatched job only its *share* `claim_J / binding_claims` of the
    /// slack: handing all of it to whoever dispatches first is safe but
    /// greedy, and the convex power curve punishes the resulting speed
    /// asymmetry (measurably so at worst-case demand).
    pub binding_claims: f64,
}

impl DemandAnalysis {
    /// Creates the analysis with the given look-ahead horizon in units of
    /// the task set's maximum period.
    ///
    /// # Panics
    ///
    /// Panics if `horizon_periods` is not finite and positive.
    pub fn new(horizon_periods: f64) -> DemandAnalysis {
        assert!(
            horizon_periods.is_finite() && horizon_periods > 0.0,
            "horizon_periods {horizon_periods} must be finite and positive"
        );
        DemandAnalysis {
            horizon_periods,
            events: Vec::new(),
        }
    }

    /// The configured look-ahead horizon (in maximum periods).
    pub fn horizon_periods(&self) -> f64 {
        self.horizon_periods
    }

    /// Unclaimed slack available to the dispatched `job` (never negative),
    /// together with the claim mass at the binding checkpoint.
    ///
    /// Call **after** the pool has granted the job its allowance for this
    /// dispatch (so the job's own claim reflects freshly absorbed bank).
    pub fn analyze(
        &mut self,
        view: &SchedulerView<'_>,
        job: &ActiveJob,
        pool: &ReclaimedPool,
    ) -> DemandSlack {
        let now = view.now();
        let tasks = view.tasks();
        let scale = pool.scale();
        let latest_ready = view
            .ready_jobs()
            .iter()
            .map(|j| j.deadline)
            .fold(job.deadline, f64::max);
        // The horizon must reach past every task's first in-window deadline
        // for the tail bound's count formula to apply beyond it.
        let first_deadlines = tasks
            .iter()
            .map(|(id, t)| view.next_release_of(id) + t.deadline())
            .fold(0.0, f64::max);
        let horizon = latest_ready
            .max(now + self.horizon_periods * tasks.max_period())
            .max(first_deadlines);

        self.events.clear();
        let mut ready_claims = 0.0;
        for j in view.ready_jobs() {
            let claim = pool.remaining_claim_of(j);
            ready_claims += claim;
            self.events.push((j.deadline, claim));
        }
        // Analytic tail bound for all checkpoints beyond the horizon. With
        // overhead pricing, every claim carries its task's switch margin,
        // and the canonical stretch keeps total accrual at rate 1.
        let mut tail_bound = -ready_claims - pool.ledger().total();
        for (id, task) in tasks.iter() {
            let claim = task.wcet() * scale + pool.margin_of(id);
            let next_deadline = view.next_release_of(id) + task.deadline();
            tail_bound += (next_deadline - now) * claim / task.period() - claim;
            let mut release = view.next_release_of(id);
            loop {
                let deadline = release + task.deadline();
                if deadline > horizon + TIME_EPS {
                    break;
                }
                self.events.push((deadline, claim));
                release += task.period();
            }
        }
        for (tag, amount) in pool.ledger().iter() {
            debug_assert!(
                tag <= horizon + TIME_EPS,
                "ledger tag {tag} beyond horizon {horizon}"
            );
            self.events.push((tag.min(horizon), amount));
        }
        self.events.sort_by(|a, b| a.0.total_cmp(&b.0));

        let mut claims = 0.0;
        let mut min_slack = f64::INFINITY;
        let mut binding_claims = f64::INFINITY;
        let mut i = 0;
        while i < self.events.len() {
            let d = self.events[i].0;
            while i < self.events.len() && self.events[i].0 <= d + TIME_EPS {
                claims += self.events[i].1;
                i += 1;
            }
            // Checkpoints before the dispatched job's deadline do not bind
            // it: it is the EDF minimum, and any future earlier-deadline
            // job preempts it and takes its own claim first.
            if d + TIME_EPS >= job.deadline {
                let slack = (d - now) - claims;
                if slack < min_slack {
                    min_slack = slack;
                    binding_claims = claims;
                }
            }
        }
        if tail_bound < min_slack {
            min_slack = tail_bound;
            binding_claims = claims; // everything outstanding binds the tail
        }
        DemandSlack {
            slack: if min_slack.is_finite() {
                min_slack.max(0.0)
            } else {
                0.0
            },
            binding_claims: if binding_claims.is_finite() {
                binding_claims
            } else {
                0.0
            },
        }
    }
}

impl Default for DemandAnalysis {
    /// A quarter maximum period of look-ahead beyond the structural floor
    /// (latest ready deadline and every task's first in-window deadline).
    /// The analytic tail bound makes ANY horizon sound; longer windows only
    /// trade analysis cost for (measured: negligible) extra precision.
    fn default() -> DemandAnalysis {
        DemandAnalysis::new(0.25)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stadvs_sim::{ActiveJob, Task, TaskSet};

    // Direct unit tests drive the analysis through a hand-built view via
    // the simulator; end-to-end behaviour is covered in `slack_edf` tests
    // and the integration suite. Here we check the pure bookkeeping.

    #[test]
    fn horizon_validation() {
        assert_eq!(DemandAnalysis::default().horizon_periods(), 0.25);
        assert_eq!(DemandAnalysis::new(3.5).horizon_periods(), 3.5);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn bad_horizon_rejected() {
        let _ = DemandAnalysis::new(f64::NAN);
    }

    /// Exercise extra_slack through a minimal simulated dispatch.
    #[test]
    fn synchronous_worst_case_has_no_extra_slack_at_full_utilization() {
        use stadvs_power::{Processor, Speed};
        use stadvs_sim::{Governor, MissPolicy, SchedulerView, SimConfig, Simulator, WorstCase};

        struct Probe {
            pool: ReclaimedPool,
            analysis: DemandAnalysis,
            max_extra: f64,
        }
        impl Governor for Probe {
            fn name(&self) -> &str {
                "probe"
            }
            fn on_start(&mut self, tasks: &TaskSet, _p: &Processor) {
                self.pool.reset(tasks);
            }
            fn select_speed(&mut self, view: &SchedulerView<'_>, job: &ActiveJob) -> Speed {
                let allowance = self.pool.allowance(view, job);
                let extra = self.analysis.analyze(view, job, &self.pool).slack;
                self.max_extra = self.max_extra.max(extra);
                let rem = job.remaining_budget();
                let total = (allowance + extra).min(job.deadline - view.now());
                let s = if total <= rem { 1.0 } else { rem / total };
                Speed::clamped(s, view.processor().min_speed())
            }
            fn on_completion(&mut self, _v: &SchedulerView<'_>, r: &stadvs_sim::JobRecord) {
                self.pool.settle(r, true);
            }
        }

        // U = 1 synchronous worst case: every checkpoint is tight.
        let tasks = TaskSet::new(vec![
            Task::new(2.0, 4.0).unwrap(),
            Task::new(4.0, 8.0).unwrap(),
        ])
        .unwrap();
        let sim = Simulator::new(
            tasks,
            Processor::ideal_continuous(),
            SimConfig::new(32.0)
                .unwrap()
                .with_miss_policy(MissPolicy::Fail),
        )
        .unwrap();
        let mut probe = Probe {
            pool: ReclaimedPool::new(),
            analysis: DemandAnalysis::default(),
            max_extra: 0.0,
        };
        let out = sim.run(&mut probe, &WorstCase).unwrap();
        assert!(out.all_deadlines_met());
        assert!(
            probe.max_extra < 1e-9,
            "found phantom slack {} at U = 1",
            probe.max_extra
        );
        // Canonical speed at U = 1 is full speed: energy = busy time.
        assert!((out.total_energy() - 32.0).abs() < 1e-4);
    }

    /// The analytic tail bound must never certify more slack than a very
    /// long explicit enumeration would: shrinking the look-ahead window can
    /// only make the result more conservative.
    #[test]
    fn tail_bound_is_conservative_versus_long_windows() {
        use stadvs_power::{Processor, Speed};
        use stadvs_sim::{ConstantRatio, Governor, SchedulerView, SimConfig, Simulator};

        struct Probe {
            pool: ReclaimedPool,
            short: DemandAnalysis,
            long: DemandAnalysis,
            violations: usize,
            checks: usize,
        }
        impl Governor for Probe {
            fn name(&self) -> &str {
                "tail-probe"
            }
            fn on_start(&mut self, tasks: &TaskSet, _p: &Processor) {
                self.pool.reset(tasks);
            }
            fn select_speed(&mut self, view: &SchedulerView<'_>, job: &ActiveJob) -> Speed {
                let allowance = self.pool.allowance(view, job);
                let short = self.short.analyze(view, job, &self.pool).slack;
                let long = self.long.analyze(view, job, &self.pool).slack;
                self.checks += 1;
                if short > long + 1e-9 {
                    self.violations += 1;
                }
                let rem = job.remaining_budget();
                let total = (allowance + short).min(job.deadline - view.now());
                let s = if total <= rem { 1.0 } else { rem / total };
                Speed::clamped(s, view.processor().min_speed())
            }
            fn on_completion(&mut self, _v: &SchedulerView<'_>, r: &stadvs_sim::JobRecord) {
                self.pool.settle(r, true);
            }
            fn on_idle(&mut self, _v: &SchedulerView<'_>) {
                self.pool.drain_on_idle();
            }
        }

        for seed in 0..8u64 {
            use rand::rngs::StdRng;
            use rand::{Rng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed);
            let mut tasks = Vec::new();
            let n = rng.gen_range(2..6);
            let mut budget: f64 = 0.9;
            for _ in 0..n {
                if budget < 0.06 {
                    break;
                }
                let period = rng.gen_range(0.5..8.0_f64);
                let u = rng.gen_range(0.05..budget.min(0.5));
                budget -= u;
                tasks.push(Task::new(u * period, period).unwrap());
            }
            let set = TaskSet::new(tasks).unwrap();
            let sim = Simulator::new(
                set,
                Processor::ideal_continuous(),
                SimConfig::new(20.0).unwrap(),
            )
            .unwrap();
            let mut probe = Probe {
                pool: ReclaimedPool::new(),
                short: DemandAnalysis::new(0.05),
                long: DemandAnalysis::new(16.0),
                violations: 0,
                checks: 0,
            };
            let out = sim.run(&mut probe, &ConstantRatio::new(0.4)).unwrap();
            assert!(out.all_deadlines_met());
            assert!(
                probe.checks >= 5,
                "probe barely ran ({} checks)",
                probe.checks
            );
            assert_eq!(
                probe.violations, 0,
                "seed {seed}: tail bound certified more slack than a 16-period window                  in {}/{} dispatches",
                probe.violations, probe.checks
            );
        }
    }

    /// The analysis discovers release-phasing slack the ledger cannot see.
    #[test]
    fn phasing_slack_is_found_for_staggered_releases() {
        use stadvs_power::{Processor, Speed};
        use stadvs_sim::{Governor, MissPolicy, SchedulerView, SimConfig, Simulator, WorstCase};

        struct Probe {
            pool: ReclaimedPool,
            analysis: DemandAnalysis,
            saw_extra: bool,
        }
        impl Governor for Probe {
            fn name(&self) -> &str {
                "probe2"
            }
            fn on_start(&mut self, tasks: &TaskSet, _p: &Processor) {
                self.pool.reset(tasks);
            }
            fn select_speed(&mut self, view: &SchedulerView<'_>, job: &ActiveJob) -> Speed {
                let allowance = self.pool.allowance(view, job);
                let extra = self.analysis.analyze(view, job, &self.pool).slack;
                if extra > 0.1 {
                    self.saw_extra = true;
                }
                let rem = job.remaining_budget();
                let total = (allowance + extra).min(job.deadline - view.now());
                let s = if total <= rem { 1.0 } else { rem / total };
                Speed::clamped(s, view.processor().min_speed())
            }
            fn on_completion(&mut self, _v: &SchedulerView<'_>, r: &stadvs_sim::JobRecord) {
                self.pool.settle(r, true);
            }
        }

        // A phased low-rate task leaves real gaps in the canonical claims.
        let tasks = TaskSet::new(vec![
            Task::new(1.0, 4.0).unwrap(),
            Task::new(1.0, 16.0).unwrap().with_phase(8.0).unwrap(),
        ])
        .unwrap();
        let sim = Simulator::new(
            tasks,
            Processor::ideal_continuous(),
            SimConfig::new(64.0)
                .unwrap()
                .with_miss_policy(MissPolicy::Fail),
        )
        .unwrap();
        let mut probe = Probe {
            pool: ReclaimedPool::new(),
            analysis: DemandAnalysis::default(),
            saw_extra: false,
        };
        let out = sim.run(&mut probe, &WorstCase).unwrap();
        assert!(out.all_deadlines_met());
        assert!(probe.saw_extra, "no phasing slack discovered");
    }
}
