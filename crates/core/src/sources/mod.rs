//! The three slack sources composed by the slack-time analysis.
//!
//! Each source answers, with its own safety argument, "how much wall-clock
//! allowance may the dispatched EDF job consume without endangering any
//! deadline, assuming every current and future job takes its full WCET?"
//! All three speak one accounting currency — **canonical claims**, the
//! occupancy each job holds in the EDF schedule stretched to speed `U` —
//! which is what lets them compose *additively*:
//!
//! * [`ReclaimedPool`] — the canonical base: a claim of `C/U` per job,
//!   plus deadline-tagged banked earliness of completed jobs,
//! * [`DemandAnalysis`] — the unclaimed remainder: minimum checkpoint
//!   slack `(D − t) − claims(t, D)` over the look-ahead window, with a
//!   rigorous beyond-horizon tail bound,
//! * [`arrival_allowance`] — the arrival stretch: an *alone* job may use
//!   the whole window to the earlier of its deadline and the next task
//!   arrival, because it worst-case-completes before anything else exists.
//!
//! A historical design note: an earlier draft let a *work-based* demand
//! analysis (raw WCET demand, not claims) compete with the canonical
//! allowance via `max(...)`. That composition is **unsound** — the two
//! schemes assume different invariants, and a two-task counterexample at
//! `U = 0.75` (one job overdraws its canonical allotment on demand-slack,
//! the next relies on the canonical allotment being intact) misses a
//! deadline. Measuring demand in claim units removes the conflict and, as
//! a bonus, distributes static slack fairly instead of letting the first
//! job hog it.

mod arrival;
mod demand;
mod reclaimed;

pub use arrival::arrival_allowance;
pub use demand::{DemandAnalysis, DemandSlack};
pub use reclaimed::ReclaimedPool;
