//! Canonical-schedule allowances and reclaimed-earliness banking.

use stadvs_sim::{ActiveJob, JobId, JobRecord, SchedulerView, TaskSet};

use crate::ledger::SlackLedger;

/// Canonical-schedule allowance accounting with deadline-tagged banking.
///
/// The *canonical schedule* is EDF stretched to constant speed `U`: each job
/// occupies exactly `C_i / U` of processor time, all before its deadline.
/// That occupancy is the job's **claim**. The pool tracks every open claim:
///
/// * a dispatched job owns its claim (initialized to `C_i / U`, reduced by
///   the wall time it consumes),
/// * eligible banked slack (ledger entries tagged at or before the job's
///   deadline) is transferred into its claim eagerly at dispatch,
/// * at [`settle`](ReclaimedPool::settle), the unused claim of a completed
///   job is banked in the ledger tagged with its deadline (when banking is
///   requested) or simply released.
///
/// Safety: every claim unit corresponds to canonical occupancy before the
/// owning deadline, so worst-case completion times never move past the
/// canonical ones. The pool also exposes the whole claim picture
/// ([`remaining_claim_of`](ReclaimedPool::remaining_claim_of),
/// [`ledger`](ReclaimedPool::ledger), [`scale`](ReclaimedPool::scale)) so
/// that the demand analysis can measure the time **nobody** has claimed.
#[derive(Debug, Clone, Default)]
pub struct ReclaimedPool {
    scale: f64,
    margins: Vec<f64>,
    /// Per-task base claim `C_i · κ + m_i`, fixed for the whole run at
    /// reset — the incremental per-task state that lets every consumer
    /// (allowance, remaining-claim queries, the demand analysis) look the
    /// claim up instead of re-deriving it at each scheduling point.
    claims: Vec<f64>,
    degenerate: bool,
    ledger: SlackLedger,
    /// Open grants, indexed by task: `(job index, granted total)` pairs.
    /// At most a couple of jobs per task are ever in flight, so a linear
    /// scan of a task's slot beats hashing `JobId`s — and the slot vectors
    /// keep their capacity across resets, so the dispatch path stays
    /// allocation-free after warm-up.
    granted: Vec<Vec<(u64, f64)>>,
}

impl ReclaimedPool {
    /// Creates an empty pool (call [`ReclaimedPool::reset`] before use).
    pub fn new() -> ReclaimedPool {
        ReclaimedPool {
            scale: 1.0,
            margins: Vec::new(),
            claims: Vec::new(),
            degenerate: false,
            ledger: SlackLedger::new(),
            granted: Vec::new(),
        }
    }

    /// The granted total of `job`'s open grant, if any.
    fn grant_of(&self, id: JobId) -> Option<f64> {
        self.granted
            .get(id.task.0)?
            .iter()
            .find(|&&(index, _)| index == id.index)
            .map(|&(_, total)| total)
    }

    /// The open grant of `job`, created at `initial` if absent.
    fn grant_mut(&mut self, id: JobId, initial: f64) -> &mut f64 {
        if self.granted.len() <= id.task.0 {
            self.granted.resize_with(id.task.0 + 1, Vec::new);
        }
        let slot = &mut self.granted[id.task.0];
        match slot.iter().position(|&(index, _)| index == id.index) {
            Some(k) => &mut slot[k].1,
            None => {
                slot.push((id.index, initial));
                let k = slot.len() - 1;
                &mut slot[k].1
            }
        }
    }

    /// Resets the pool for a task set (clears all state, derives the
    /// canonical stretch `1/U`, no switch-overhead margins).
    pub fn reset(&mut self, tasks: &TaskSet) {
        self.reset_with_overhead(tasks, 0.0);
    }

    /// Resets the pool pricing a per-switch latency `delta` into the claims
    /// currency.
    ///
    /// Each job of task `i` is charged a wall-clock margin covering its
    /// worst-case switch count: one switch at dispatch, one per *resume*
    /// after a preemption, plus one of slack. Only arrivals with an earlier
    /// absolute deadline preempt, and a `τ_j` arrival can have an earlier
    /// deadline only if it lands within the first `D_i − D_j` of the job's
    /// window, so
    ///
    /// ```text
    /// m_i = δ · (2 + Σ_{j ≠ i, D_j < D_i} ((D_i − D_j)/T_j + 1)).
    /// ```
    ///
    /// This bound is only valid for a governor that **commits** to its
    /// dispatch speed across non-preempting releases (the arrivals were
    /// already counted by the demand analysis, so the committed speed stays
    /// feasible) — [`SlackEdf`](crate::SlackEdf) does exactly that in
    /// overhead-aware mode.
    ///
    /// The canonical stretch is re-solved so total claims still accrue at
    /// rate exactly 1: `κ = (1 − Σ m_i/T_i) / U`. When no stretch ≥ 1
    /// exists the platform cannot afford DVS at this overhead; the pool
    /// reports [`is_degenerate`](ReclaimedPool::is_degenerate) and the
    /// governor must stay at full speed (zero switches, trivially safe).
    pub fn reset_with_overhead(&mut self, tasks: &TaskSet, delta: f64) {
        self.ledger.clear();
        // Empty the grant slots but keep their capacity warm for the run.
        self.granted.truncate(tasks.len());
        for slot in &mut self.granted {
            slot.clear();
        }
        self.margins.clear();
        self.margins.extend(tasks.iter().map(|(i, ti)| {
            let preemptions: f64 = tasks
                .iter()
                .filter(|(j, tj)| *j != i && tj.deadline() < ti.deadline())
                .map(|(_, tj)| (ti.deadline() - tj.deadline()) / tj.period() + 1.0)
                .sum();
            delta * (2.0 + preemptions)
        }));

        // The canonical stretch is the inverse of the minimum feasible
        // static speed of the *margin-inflated* task set. For implicit
        // deadlines without margins this reduces to the classic `1/U`, but
        // for constrained deadlines the utilization is NOT a feasibility
        // witness — the dbf intensity peak is — and a margin only stays
        // conservative when folded into the WCET before stretching
        // (`(C + m)·κ ≥ C·κ + m` for `κ ≥ 1`).
        let inflated: Result<Vec<stadvs_sim::Task>, _> = tasks
            .iter()
            .zip(&self.margins)
            .map(|((_, t), &m)| {
                stadvs_sim::Task::with_deadline(t.wcet() + m, t.period(), t.deadline())
            })
            .collect();
        let kappa = match inflated.and_then(stadvs_sim::TaskSet::new) {
            Ok(set) => {
                let s_req = stadvs_analysis::minimum_static_speed(&set).max(1.0e-6);
                1.0 / s_req
            }
            // A margin pushed some WCET past its deadline: no safe
            // slowdown exists on this platform.
            Err(_) => 0.0,
        };
        self.degenerate = kappa < 1.0;
        self.scale = kappa.max(1.0);
        self.claims.clear();
        let scale = self.scale;
        self.claims.extend(
            tasks
                .iter()
                .zip(&self.margins)
                .map(|((_, t), &m)| t.wcet() * scale + m),
        );
    }

    /// Whether the switch overhead is too large for any safe slowdown; the
    /// governor must run at full speed and never switch.
    pub fn is_degenerate(&self) -> bool {
        self.degenerate
    }

    /// The canonical stretch factor `κ` (`1/U` without overhead margins).
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// The per-job switch-overhead margin of `task` (0 without overhead
    /// pricing).
    pub fn margin_of(&self, task: stadvs_sim::TaskId) -> f64 {
        self.margins.get(task.0).copied().unwrap_or(0.0)
    }

    /// The base claim of a fresh job of `task`: `C · κ + m`, precomputed at
    /// reset so per-dispatch consumers (the demand analysis in particular)
    /// read it in `O(1)`.
    pub fn claim_of(&self, task: stadvs_sim::TaskId) -> f64 {
        self.claims.get(task.0).copied().unwrap_or(0.0)
    }

    /// The base claim of `job`, falling back to an on-the-fly derivation
    /// for jobs of tasks outside the reset table.
    fn base_claim(&self, job: &ActiveJob) -> f64 {
        self.claims
            .get(job.id.task.0)
            .copied()
            .unwrap_or(job.wcet * self.scale)
    }

    /// The banked-slack ledger.
    pub fn ledger(&self) -> &SlackLedger {
        &self.ledger
    }

    /// The wall-clock allowance available to the dispatched `job`: its
    /// remaining claim plus freshly absorbed eligible bank, capped at the
    /// job's deadline window. Expired bank entries are dropped first.
    pub fn allowance(&mut self, view: &SchedulerView<'_>, job: &ActiveJob) -> f64 {
        let now = view.now();
        self.ledger.expire(now);
        let taken = self.ledger.take_up_to(job.deadline);
        let initial = self.base_claim(job);
        let entry = self.grant_mut(job.id, initial);
        *entry += taken;
        (*entry - job.wall_used()).min(job.deadline - now)
    }

    /// The remaining claim of any ready job: how much processor time it may
    /// still need before its deadline. This is the larger of its remaining
    /// canonical occupancy and its remaining *worst-case work* — a job that
    /// overdrew its canonical grant (by consuming granted extra slack)
    /// still needs at least its remaining work at full speed, and the
    /// demand analysis must keep covering it, or other jobs would overdraw
    /// in turn and miss deadlines.
    pub fn remaining_claim_of(&self, job: &ActiveJob) -> f64 {
        let margin = self.margin_of(job.id.task);
        let granted = self
            .grant_of(job.id)
            .unwrap_or_else(|| self.base_claim(job));
        (granted - job.wall_used()).max(job.remaining_budget() + margin)
    }

    /// Settles a completed job: its grant is closed and, when `bank` is
    /// true, the unused claim is donated to the ledger tagged with the
    /// job's deadline.
    ///
    /// The job's switch margin is forfeited, never donated: a job's
    /// recorded wall time excludes the transition latencies spent on its
    /// behalf, so re-banking the margin would credit time that was really
    /// consumed by voltage switches.
    pub fn settle(&mut self, record: &JobRecord, bank: bool) {
        let Some(slot) = self.granted.get_mut(record.id.task.0) else {
            return;
        };
        let Some(k) = slot.iter().position(|&(index, _)| index == record.id.index) else {
            return;
        };
        let (_, total) = slot.swap_remove(k);
        if bank {
            let margin = self.margin_of(record.id.task);
            let returned = total - record.wall_time - margin;
            // `returned` may legitimately be negative: a job whose grant
            // fell short of its worst case still plans at least its
            // remaining work (the demand analysis covers the deficit via
            // `remaining_claim_of`), and `donate` drops non-positive
            // amounts — so the deficit is forfeited, never banked, and
            // the pool total stays non-negative by construction.
            debug_assert!(
                returned.is_finite(),
                "non-finite settle residue for job {:?}",
                record.id
            );
            self.ledger.donate(record.deadline, returned);
            debug_assert!(
                self.ledger.total() >= 0.0,
                "reclaimed pool went negative after settling {:?}",
                record.id
            );
        }
    }

    /// Drops all banked slack. **Must be called when the processor goes
    /// idle**: banked entries stand for canonical service the canonical
    /// schedule performs as wall-clock time passes; idling through that
    /// window without draining them would leave claims standing whose time
    /// has silently been spent, and later consumers would overdraw (this
    /// exact failure produced millisecond-scale deadline misses before the
    /// rule was added). An idle instant means the real schedule is strictly
    /// ahead of the canonical one, so resetting to the plain canonical
    /// state is always safe.
    pub fn drain_on_idle(&mut self) {
        self.ledger.clear();
    }

    /// Voids every outstanding certificate after a WCET overrun.
    ///
    /// The canonical occupancy argument prices each job at `C_i · κ`; a job
    /// that executes past `C_i` consumes wall time no claim ever paid for,
    /// so both the banked ledger and every open grant are built on a broken
    /// premise. Clearing them forfeits all accumulated slack: subsequent
    /// dispatches fall back to the base claims, which are re-earned from
    /// scratch — conservative, and safe by the same argument as a fresh
    /// start after an idle interval.
    pub fn invalidate_on_overrun(&mut self) {
        self.ledger.clear();
        for slot in &mut self.granted {
            slot.clear();
        }
    }

    /// Total slack currently banked (diagnostic).
    pub fn banked(&self) -> f64 {
        self.ledger.total()
    }

    /// Number of jobs with open grants (diagnostic).
    pub fn open_grants(&self) -> usize {
        self.granted.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stadvs_power::{Processor, Speed};
    use stadvs_sim::{ConstantRatio, Governor, MissPolicy, SimConfig, Simulator, Task};

    /// A governor exercising only the pool (DRA-equivalent).
    struct PoolOnly(ReclaimedPool);
    impl Governor for PoolOnly {
        fn name(&self) -> &str {
            "pool-only"
        }
        fn on_start(&mut self, tasks: &TaskSet, _p: &Processor) {
            self.0.reset(tasks);
        }
        fn select_speed(&mut self, view: &SchedulerView<'_>, job: &ActiveJob) -> Speed {
            let allowance = self.0.allowance(view, job);
            let rem = job.remaining_budget();
            let s = if allowance <= rem {
                1.0
            } else {
                rem / allowance
            };
            Speed::clamped(s, view.processor().min_speed())
        }
        fn on_completion(&mut self, _v: &SchedulerView<'_>, record: &JobRecord) {
            self.0.settle(record, true);
        }
    }

    #[test]
    fn pool_driven_governor_is_safe_and_reclaims() {
        let tasks = TaskSet::new(vec![
            Task::new(1.0, 4.0).unwrap(),
            Task::new(2.0, 8.0).unwrap(),
        ])
        .unwrap();
        let sim = Simulator::new(
            tasks,
            Processor::ideal_continuous(),
            SimConfig::new(64.0)
                .unwrap()
                .with_miss_policy(MissPolicy::Fail),
        )
        .unwrap();
        let worst = sim
            .run(
                &mut PoolOnly(ReclaimedPool::new()),
                &ConstantRatio::new(1.0),
            )
            .unwrap();
        let light = sim
            .run(
                &mut PoolOnly(ReclaimedPool::new()),
                &ConstantRatio::new(0.3),
            )
            .unwrap();
        assert!(worst.all_deadlines_met());
        assert!(light.all_deadlines_met());
        assert!(light.total_energy() < worst.total_energy());
    }

    #[test]
    fn grants_are_settled_and_claims_reported() {
        let tasks = TaskSet::new(vec![Task::new(1.0, 4.0).unwrap()]).unwrap();
        let sim = Simulator::new(
            tasks.clone(),
            Processor::ideal_continuous(),
            SimConfig::new(16.0).unwrap(),
        )
        .unwrap();
        let mut g = PoolOnly(ReclaimedPool::new());
        let out = sim.run(&mut g, &ConstantRatio::new(0.5)).unwrap();
        assert!(out.all_deadlines_met());
        assert_eq!(g.0.open_grants(), 0);
        // Canonical claim of a fresh job = wcet / U = 1 / 0.25 = 4.
        let mut pool = ReclaimedPool::new();
        pool.reset(&tasks);
        assert!((pool.scale() - 4.0).abs() < 1e-12);
        let job = stadvs_sim::ActiveJob::new(
            stadvs_sim::JobId {
                task: stadvs_sim::TaskId(0),
                index: 0,
            },
            0.0,
            4.0,
            1.0,
            0.5,
        );
        assert!((pool.remaining_claim_of(&job) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn settle_without_banking_discards_leftover() {
        let tasks = TaskSet::new(vec![Task::new(1.0, 4.0).unwrap()]).unwrap();
        let mut pool = ReclaimedPool::new();
        pool.reset(&tasks);
        let record = stadvs_sim::JobRecord {
            id: stadvs_sim::JobId {
                task: stadvs_sim::TaskId(0),
                index: 0,
            },
            release: 0.0,
            deadline: 4.0,
            wcet: 1.0,
            actual: 0.5,
            completion: Some(1.0),
            wall_time: 1.0,
            preemptions: 0,
        };
        // No grant open: settle is a no-op either way.
        pool.settle(&record, true);
        assert_eq!(pool.banked(), 0.0);
    }
}
