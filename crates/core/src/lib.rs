//! # stadvs-core — the slack-time-analysis DVS governor (the contribution)
//!
//! The reproduction target: *"A Dynamic Voltage Scaling Algorithm for
//! Dynamic-Priority Hard Real-Time Systems Using Slack Time Analysis"*
//! (DATE 2002). At every EDF scheduling point the governor analyses how
//! much slack the dispatched job may safely consume and slows the
//! processor so the job's remaining worst case exactly fits — while every
//! deadline remains guaranteed.
//!
//! * [`SlackLedger`] — deadline-tagged slack bookkeeping,
//! * [`sources`] — the three slack sources (reclaimed earliness, arrival
//!   stretching, look-ahead demand analysis) with their safety arguments,
//! * [`SlackEdf`] + [`SlackEdfConfig`] — the composed governor, its
//!   ablation variants, the overhead-aware mode, the leakage-aware
//!   critical-speed floor, and PACE-style intra-job acceleration,
//! * [`pace`] — the closed-form accelerating step schedule.
//!
//! ```
//! use stadvs_core::{SlackEdf, SlackEdfConfig};
//!
//! let full = SlackEdf::new();
//! assert_eq!(full.name(), "st-edf");
//! let ablation = SlackEdf::with_config(SlackEdfConfig::reclaiming_only());
//! assert_eq!(ablation.name(), "st-edf[r]");
//! # use stadvs_sim::Governor as _;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod ledger;
mod num;
pub mod pace;
mod slack_edf;
pub mod sources;

pub use config::SlackEdfConfig;
pub use ledger::SlackLedger;
pub use slack_edf::SlackEdf;
