//! Integer-to-float conversions sanctioned for claims/ledger arithmetic.
//!
//! The `as-cast` lint bans ad-hoc `as` casts between integers and floats
//! in this crate: a truncating or precision-losing cast inside the slack
//! ledger silently corrupts the guarantee arithmetic. Lossless `u32`
//! conversions go through `f64::from`; `usize` counts (which have no
//! `From<usize> for f64` impl) are funnelled through [`count_to_f64`],
//! the one place where the cast is audited.

/// Largest `usize` exactly representable as an `f64` (2^53).
const MAX_EXACT: usize = 1 << f64::MANTISSA_DIGITS;

/// Converts a collection count to `f64`, checking in debug builds that the
/// value is exactly representable (counts here are chunk or sample counts,
/// always far below 2^53).
pub(crate) fn count_to_f64(n: usize) -> f64 {
    debug_assert!(n <= MAX_EXACT, "count {n} is not exactly representable");
    // xtask:allow(as-cast): single sanctioned lossless count conversion
    n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_counts_convert_exactly() {
        assert_eq!(count_to_f64(0), 0.0);
        assert_eq!(count_to_f64(7), 7.0);
        assert_eq!(count_to_f64(1_000_000), 1.0e6);
    }
}
