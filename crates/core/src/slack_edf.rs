//! The slack-time-analysis DVS-EDF governor — the paper's contribution.

use stadvs_power::{Processor, Speed};
use stadvs_sim::{
    ActiveJob, AnalysisStats, Governor, JobRecord, OverrunPolicy, SchedulerView, TaskSet, TIME_EPS,
};

use crate::config::SlackEdfConfig;
use crate::sources::{arrival_allowance, DemandAnalysis, ReclaimedPool};

/// Slack-time-analysis EDF (stEDF): at every scheduling point, estimate the
/// slack the dispatched EDF job may safely consume — from **reclaimed
/// earliness**, **arrival stretching**, and **look-ahead demand analysis**
/// — and run the job at
///
/// ```text
/// speed = remaining worst-case work / certified wall-clock allowance
/// ```
///
/// clamped to the platform's range and quantized **up** to an available
/// operating point. All slack is accounted in one currency — *canonical
/// claims*, the wall-clock occupancy each job holds in the EDF schedule
/// stretched to speed `U` — so the three sources compose additively (see
/// [`crate::sources`]), and the decision is re-made at every scheduling
/// point.
///
/// With [`SlackEdfConfig::overhead_aware`] the governor prices the
/// transition latency into the claims currency itself:
///
/// * every job carries a per-task switch margin
///   `m_i = δ·(2 + Σ_{D_j<D_i} ((D_i − D_j)/T_j + 1))` covering its
///   worst-case switch count (dispatch plus one resume per possible
///   preemption), and the canonical stretch is re-solved so claims still
///   accrue at rate 1 — when no such stretch exists the governor
///   degenerates to full speed (zero switches, trivially safe);
/// * the dispatch speed is *committed* across non-preempting releases
///   (they were already counted by the claims analysis), which is what
///   makes the margin bound valid;
/// * margins are not plannable as execution time: the dispatch speed uses
///   `allowance − m_i`;
/// * it refuses to switch *down* when the projected energy saving over the
///   job's worst-case remainder does not cover two transition energies
///   (the pessimistic-judgment rule) — switches *up* needed for
///   feasibility are always taken.
///
/// Deadline safety: every second of a job's allowance is backed by a
/// claim the slack-time analysis proved lies before the job's deadline in
/// the worst case — the initial grant by the EDF feasibility of the task
/// set, each reclaimed increment by the ledger's deadline-tagged
/// accounting — so executing `remaining/allowance ≤ 1` (capped pacing
/// included) completes the worst case by the deadline.
///
/// ```
/// use stadvs_core::SlackEdf;
/// use stadvs_power::Processor;
/// use stadvs_sim::{ConstantRatio, MissPolicy, SimConfig, Simulator, Task, TaskSet};
///
/// # fn main() -> Result<(), stadvs_sim::SimError> {
/// let tasks = TaskSet::new(vec![Task::new(1.0, 4.0)?, Task::new(2.0, 8.0)?])?;
/// let sim = Simulator::new(
///     tasks,
///     Processor::ideal_continuous(),
///     SimConfig::new(64.0)?.with_miss_policy(MissPolicy::Fail),
/// )?;
/// // Jobs use 40 % of their worst case; stEDF reclaims the rest as slack.
/// let out = sim.run(&mut SlackEdf::new(), &ConstantRatio::new(0.4))?;
/// assert!(out.all_deadlines_met());
/// assert!(out.total_energy() < 0.2 * 16.0); // far below the no-DVS 16 J
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SlackEdf {
    name: String,
    config: SlackEdfConfig,
    pool: ReclaimedPool,
    demand: DemandAnalysis,
    /// Overhead-aware mode: the (job, speed) committed at its dispatch.
    /// The commitment survives non-preempting releases — they were already
    /// counted by the claims analysis — which is what makes the per-task
    /// switch-margin bound valid.
    committed: Option<(stadvs_sim::JobId, Speed)>,
    /// Leakage-aware floor, resolved once per run at `on_start`.
    critical_floor: Option<Speed>,
    /// Work after which to re-plan (PACE step boundary), set per dispatch.
    pending_review: Option<f64>,
    /// Per-task online demand profiles (PACE mode only).
    profiles: Vec<crate::pace::SurvivalEstimator>,
}

impl SlackEdf {
    /// The full algorithm (all sources, no overhead awareness).
    pub fn new() -> SlackEdf {
        SlackEdf::with_config(SlackEdfConfig::full())
    }

    /// A configured variant (ablations, overhead awareness).
    pub fn with_config(config: SlackEdfConfig) -> SlackEdf {
        SlackEdf {
            name: config.variant_name(),
            config,
            pool: ReclaimedPool::new(),
            demand: DemandAnalysis::new(config.horizon_periods),
            committed: None,
            critical_floor: None,
            pending_review: None,
            profiles: Vec::new(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &SlackEdfConfig {
        &self.config
    }

    /// Slack currently banked by the reclaiming source (diagnostic).
    pub fn banked_slack(&self) -> f64 {
        self.pool.banked()
    }

    /// The wall-clock allowance certified for `job` right now.
    ///
    /// All accounting lives in one currency — canonical claims — so the
    /// sources compose *additively*, not by an (unsound) maximum:
    ///
    /// 1. the **canonical base**: the job's remaining claim `C/U − wall`,
    ///    enlarged by eligible banked earliness when reclaiming is on;
    /// 2. the **demand analysis** adds the time provably claimed by nobody
    ///    (minimum checkpoint slack over all outstanding claims, with a
    ///    rigorous beyond-horizon tail bound);
    /// 3. the **arrival stretch** may replace the total with the window to
    ///    the next arrival when the job is alone (it then worst-case-
    ///    completes before anything else exists, restoring a state every
    ///    argument accepts).
    fn certified_allowance(&mut self, view: &SchedulerView<'_>, job: &ActiveJob) -> f64 {
        let rem = job.remaining_budget();

        // Canonical base (the pool always tracks claims; banked entries are
        // only present when reclaiming is on, because settlement discards
        // leftovers otherwise).
        let mut allowance = self.pool.allowance(view, job);

        if self.config.demand_analysis {
            let analysis = self.demand.analyze(view, job, &self.pool);
            let claim = self.pool.remaining_claim_of(job);
            let share = if analysis.binding_claims > TIME_EPS {
                (claim / analysis.binding_claims).min(1.0)
            } else {
                1.0
            };
            allowance += analysis.slack * share;
        }
        if self.config.arrival_stretch {
            if let Some(window) = arrival_allowance(view, job) {
                // Outstanding banked claims with tags beyond this job's
                // deadline rely on wall-clock time inside the stretch
                // window; reserve it for them.
                allowance = allowance.max(window - self.pool.banked());
            }
        }

        // Never plan past the job's own deadline.
        allowance = allowance.min(job.deadline - view.now());

        if self.config.overhead_aware {
            // The grant includes the job's switch margin; that time is
            // spent in transitions, not execution, so it must not be
            // planned as execution time.
            let margin = self.pool.margin_of(job.id.task);
            allowance = (allowance - margin).max(rem);
        }
        allowance.max(rem)
    }
}

impl Default for SlackEdf {
    fn default() -> SlackEdf {
        SlackEdf::new()
    }
}

impl Governor for SlackEdf {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_start(&mut self, tasks: &TaskSet, processor: &Processor) {
        self.committed = None;
        self.critical_floor = self
            .config
            .critical_speed_floor
            .then(|| processor.power_model().critical_speed());
        if self.config.overhead_aware {
            self.pool
                .reset_with_overhead(tasks, processor.overhead().latency());
        } else {
            self.pool.reset(tasks);
        }
        // The pool reset changes the canonical stretch behind the cached
        // per-task claims; drop every cached analysis layer with it.
        self.demand.invalidate();
        self.demand.reset_stats();
        self.profiles = if self.config.pace_steps > 0 {
            (0..tasks.len())
                .map(|_| crate::pace::SurvivalEstimator::new(64))
                .collect()
        } else {
            Vec::new()
        };
    }

    fn select_speed(&mut self, view: &SchedulerView<'_>, job: &ActiveJob) -> Speed {
        if self.pool.is_degenerate() {
            // No canonical stretch ≥ 1 exists (switch overhead too large
            // for any guaranteed slowdown): stay at full speed — zero
            // switches, trivially safe.
            return Speed::FULL;
        }
        let rem = job.remaining_budget();

        if self.config.overhead_aware {
            // Stick to the committed dispatch speed while it remains in
            // force: same job, no intervening switch (a changed platform
            // speed means a preemption ran in between), and still able to
            // worst-case-complete by the deadline.
            if let Some((id, speed)) = self.committed {
                if id == job.id
                    && view.current_speed().same_point(speed)
                    && rem / speed.ratio() <= job.deadline - view.now() + TIME_EPS
                {
                    return speed;
                }
            }
        }

        let allowance = self.certified_allowance(view, job);
        self.pending_review = None;
        let mut requested = if allowance <= rem || allowance <= TIME_EPS {
            1.0
        } else {
            rem / allowance
        };
        if self.config.pace_steps > 0 && !self.config.overhead_aware {
            // The simulator floors review points at 1 µs to guarantee
            // progress; each floored step can therefore run up to 1 µs
            // longer than planned at a low speed. Reserve that slop out of
            // the paced allowance (one potential floor per step) so the
            // worst case still fits, and skip pacing entirely when the
            // steps would be microscopic.
            let guard = 2.0e-6 * f64::from(self.config.pace_steps);
            let paced_allowance = allowance - guard;
            let survival = self.profiles[job.id.task.0].chunk_survival(
                job.executed(),
                job.wcet,
                self.config.pace_steps,
            );
            // The platform cannot exceed full speed; planning the tail
            // above it would make the worst case silently infeasible once
            // dispatch clamps the speed (see [`crate::pace::plan`]).
            let cap = Speed::FULL.ratio();
            if let Some(step) = crate::pace::first_step(rem, paced_allowance, cap, &survival) {
                if step.work / step.speed.max(1e-12) >= 4.0e-6 {
                    requested = step.speed;
                    self.pending_review = Some(step.work);
                }
            }
        }
        let mut floor = view.processor().min_speed();
        if let Some(critical) = self.critical_floor {
            // Below the critical speed, leakage outweighs the voltage
            // saving; flooring higher is always deadline-safe.
            floor = floor.max(critical);
        }
        let mut chosen = view
            .processor()
            .quantize_up(Speed::clamped(requested, floor));
        let current = view.current_speed();

        if self.config.overhead_aware && chosen < current {
            // Pessimistic judgment: slowing down is optional — only do it
            // when the projected saving over the worst-case remainder
            // covers a round trip of transition energy.
            let power = view.processor().power_model();
            let duration = rem / chosen.ratio();
            let saving = (power.active_power(current) - power.active_power(chosen)) * duration;
            let cost = view.processor().overhead().energy(current, chosen)
                + view.processor().overhead().energy(chosen, current);
            if saving <= cost {
                chosen = current;
            }
        }
        if self.config.overhead_aware {
            self.committed = Some((job.id, chosen));
        }
        // Translate the PACE step's work into wall time at the granted
        // speed (the simulator floors tiny reviews itself).
        if let Some(work) = self.pending_review.take() {
            self.pending_review = Some(work / chosen.ratio());
        }
        chosen
    }

    fn review_after(&mut self, _view: &SchedulerView<'_>, _job: &ActiveJob) -> Option<f64> {
        self.pending_review.take()
    }

    fn on_completion(&mut self, _view: &SchedulerView<'_>, record: &JobRecord) {
        self.pool.settle(record, self.config.reclaiming);
        if let Some(profile) = self.profiles.get_mut(record.id.task.0) {
            profile.record(record.actual / record.wcet);
        }
    }

    fn on_idle(&mut self, _view: &SchedulerView<'_>) {
        // Idle time consumes banked canonical service; see
        // [`ReclaimedPool::drain_on_idle`].
        self.pool.drain_on_idle();
    }

    fn overrun_policy(&self) -> OverrunPolicy {
        // The slack certificates assume `C_i` budgets; once a budget is
        // violated the only certificate-free safe action is full speed.
        OverrunPolicy::CompleteAtMax
    }

    fn on_overrun(&mut self, _view: &SchedulerView<'_>, _job: &ActiveJob) {
        // Every banked claim and every committed dispatch speed was
        // certified against WCET budgets the overrunning job just broke:
        // void them all. See [`ReclaimedPool::invalidate_on_overrun`].
        self.committed = None;
        self.pending_review = None;
        self.pool.invalidate_on_overrun();
    }

    fn analysis_stats(&self) -> Option<AnalysisStats> {
        self.config.demand_analysis.then(|| self.demand.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stadvs_sim::{ConstantRatio, MissPolicy, SimConfig, Simulator, Task, WorstCase};

    fn sim(rows: &[(f64, f64)], horizon: f64) -> Simulator {
        let tasks = TaskSet::new(
            rows.iter()
                .map(|&(c, t)| Task::new(c, t).unwrap())
                .collect(),
        )
        .unwrap();
        Simulator::new(
            tasks,
            Processor::ideal_continuous(),
            SimConfig::new(horizon)
                .unwrap()
                .with_miss_policy(MissPolicy::Fail),
        )
        .unwrap()
    }

    #[test]
    fn hard_guarantee_on_worst_case_at_full_utilization() {
        let s = sim(&[(2.0, 4.0), (4.0, 8.0)], 64.0);
        let out = s.run(&mut SlackEdf::new(), &WorstCase).unwrap();
        assert!(out.all_deadlines_met());
        // U = 1 worst case leaves no room: full speed throughout.
        assert!((out.total_energy() - 64.0).abs() < 1e-4);
    }

    #[test]
    fn beats_every_single_source_ablation() {
        let s = sim(&[(1.0, 4.0), (2.0, 8.0), (1.0, 10.0)], 160.0);
        let exec = ConstantRatio::new(0.4);
        let full = s.run(&mut SlackEdf::new(), &exec).unwrap();
        for config in [
            SlackEdfConfig::reclaiming_only(),
            SlackEdfConfig::arrival_only(),
            SlackEdfConfig::demand_only(),
        ] {
            let ablated = s.run(&mut SlackEdf::with_config(config), &exec).unwrap();
            assert!(ablated.all_deadlines_met(), "{config:?}");
            assert!(
                full.total_energy() <= ablated.total_energy() + 1e-9,
                "full {} vs {:?} {}",
                full.total_energy(),
                config,
                ablated.total_energy()
            );
        }
    }

    #[test]
    fn all_variants_meet_deadlines_across_ratios() {
        let configs = [
            SlackEdfConfig::full(),
            SlackEdfConfig::reclaiming_only(),
            SlackEdfConfig::arrival_only(),
            SlackEdfConfig::demand_only(),
        ];
        for rows in [
            vec![(2.0, 4.0), (4.0, 8.0)],
            vec![(1.0, 3.0), (2.0, 9.0), (2.0, 18.0)],
            vec![(1.0, 10.0)],
        ] {
            for ratio in [0.1, 0.5, 0.9, 1.0] {
                for config in configs {
                    let out = sim(&rows, 90.0)
                        .run(
                            &mut SlackEdf::with_config(config),
                            &ConstantRatio::new(ratio),
                        )
                        .unwrap();
                    assert!(
                        out.all_deadlines_met(),
                        "miss: rows={rows:?} ratio={ratio} config={config:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn overhead_aware_variant_is_safe_and_switches_less() {
        use stadvs_power::{TransitionEnergy, TransitionOverhead};
        let tasks = TaskSet::new(vec![
            Task::new(1.0, 4.0).unwrap(),
            Task::new(2.0, 8.0).unwrap(),
        ])
        .unwrap();
        let cpu = Processor::ideal_continuous().with_overhead(
            TransitionOverhead::new(1.0e-2, TransitionEnergy::Constant(5.0e-2)).unwrap(),
        );
        let s = Simulator::new(
            tasks,
            cpu,
            SimConfig::new(64.0)
                .unwrap()
                .with_miss_policy(MissPolicy::Fail),
        )
        .unwrap();
        let exec = ConstantRatio::new(0.5);
        let aware = s
            .run(
                &mut SlackEdf::with_config(SlackEdfConfig::overhead_aware()),
                &exec,
            )
            .unwrap();
        assert!(aware.all_deadlines_met());
        // The oblivious variant under the same overhead platform would
        // switch far more often; the aware one suppresses unprofitable
        // switches.
        let oblivious = s.run(&mut SlackEdf::new(), &exec);
        if let Ok(obl) = oblivious {
            assert!(
                aware.switches <= obl.switches,
                "aware {} vs oblivious {}",
                aware.switches,
                obl.switches
            );
        }
    }

    #[test]
    fn beats_static_by_a_wide_margin_on_light_loads() {
        let s = sim(&[(1.0, 4.0), (2.0, 8.0)], 64.0);
        let exec = ConstantRatio::new(0.2);
        let stedf = s.run(&mut SlackEdf::new(), &exec).unwrap();
        // Static would burn 64 s * 0.5³ = 8 J regardless of actuals.
        assert!(
            stedf.total_energy() < 4.0,
            "energy {}",
            stedf.total_energy()
        );
    }

    #[test]
    fn diagnostics_accessible() {
        let g = SlackEdf::new();
        assert_eq!(g.banked_slack(), 0.0);
        assert_eq!(g.name(), "st-edf");
        assert!(g.config().reclaiming);
        assert!(g.config().demand_analysis && g.config().arrival_stretch);
    }
}
