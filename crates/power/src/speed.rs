//! Normalized processor speed.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::PowerError;

/// A processor speed normalized to the maximum frequency.
///
/// A speed of `1.0` is the maximum frequency `f_max`; a speed `s` executes
/// `s` units of (f_max-normalized) work per unit of wall-clock time. Valid
/// speeds lie in `(0, 1]`: a zero speed is not a speed but the *idle* state,
/// which the simulator models separately.
///
/// `Speed` implements [`Ord`] (speeds are never NaN by construction), so
/// speeds can be compared, sorted, and used as map keys.
///
/// ```
/// use stadvs_power::Speed;
///
/// # fn main() -> Result<(), stadvs_power::PowerError> {
/// let s = Speed::new(0.4)?;
/// assert!(s < Speed::FULL);
/// assert_eq!(s.ratio(), 0.4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(try_from = "f64", into = "f64")]
pub struct Speed(f64);

impl Speed {
    /// The maximum speed, `1.0`.
    pub const FULL: Speed = Speed(1.0);

    /// Creates a speed from a normalized ratio.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::InvalidSpeed`] if `ratio` is not finite or lies
    /// outside `(0, 1]`.
    pub fn new(ratio: f64) -> Result<Speed, PowerError> {
        if !ratio.is_finite() || ratio <= 0.0 || ratio > 1.0 {
            return Err(PowerError::InvalidSpeed(ratio));
        }
        Ok(Speed(ratio))
    }

    /// Creates a speed, clamping `ratio` into `[floor, 1]`.
    ///
    /// This is the constructor governors use: a requested speed below the
    /// floor (or non-positive, e.g. when infinite slack is available) clamps
    /// up to `floor`, and anything above `1.0` clamps down to full speed.
    ///
    /// # Panics
    ///
    /// Panics if `floor` is not itself a valid speed ratio, or if `ratio` is
    /// NaN. Both indicate a programming error in the caller.
    pub fn clamped(ratio: f64, floor: Speed) -> Speed {
        assert!(!ratio.is_nan(), "speed ratio must not be NaN");
        Speed(ratio.clamp(floor.0, 1.0))
    }

    /// The smallest representable positive speed, used as the ultimate
    /// clamping floor where no platform floor applies.
    pub const MIN_POSITIVE: Speed = Speed(1.0e-9);

    /// The normalized ratio in `(0, 1]`.
    pub fn ratio(self) -> f64 {
        self.0
    }

    /// Whether two speeds denote the *same operating point*.
    ///
    /// This is exact identity, not an epsilon comparison: operating points
    /// flow through the system by value (quantization, commitment, trace
    /// segments), so two speeds either are the same point or they are not.
    /// Epsilon comparisons belong to arithmetic-*derived* quantities, never
    /// to operating-point identity — a near-equal speed is still a
    /// different point and switching to it costs a real transition.
    pub fn same_point(self, other: Speed) -> bool {
        // xtask:allow(float-eq): operating-point identity is exact by design
        self.0 == other.0
    }

    /// Wall-clock time needed to execute `work` units of f_max-normalized
    /// work at this speed.
    ///
    /// ```
    /// use stadvs_power::Speed;
    /// # fn main() -> Result<(), stadvs_power::PowerError> {
    /// // 1 ms of full-speed work takes 2 ms at half speed.
    /// assert_eq!(Speed::new(0.5)?.time_for(1.0e-3), 2.0e-3);
    /// # Ok(())
    /// # }
    /// ```
    pub fn time_for(self, work: f64) -> f64 {
        work / self.0
    }

    /// Work executed over wall-clock `duration` at this speed.
    pub fn work_in(self, duration: f64) -> f64 {
        duration * self.0
    }
}

impl Eq for Speed {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for Speed {
    fn cmp(&self, other: &Speed) -> std::cmp::Ordering {
        // Valid speeds are never NaN, so total_cmp matches partial_cmp.
        self.0.total_cmp(&other.0)
    }
}

impl PartialOrd for Speed {
    fn partial_cmp(&self, other: &Speed) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for Speed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}%", self.0 * 100.0)
    }
}

impl TryFrom<f64> for Speed {
    type Error = PowerError;

    fn try_from(ratio: f64) -> Result<Speed, PowerError> {
        Speed::new(ratio)
    }
}

impl From<Speed> for f64 {
    fn from(speed: Speed) -> f64 {
        speed.ratio()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_accepts_valid_range() {
        assert!(Speed::new(1e-9).is_ok());
        assert!(Speed::new(0.5).is_ok());
        assert!(Speed::new(1.0).is_ok());
    }

    #[test]
    fn new_rejects_invalid() {
        assert!(Speed::new(0.0).is_err());
        assert!(Speed::new(-0.1).is_err());
        assert!(Speed::new(1.0001).is_err());
        assert!(Speed::new(f64::NAN).is_err());
        assert!(Speed::new(f64::INFINITY).is_err());
    }

    #[test]
    fn clamped_respects_floor_and_ceiling() {
        let floor = Speed::new(0.1).unwrap();
        assert_eq!(Speed::clamped(0.05, floor), floor);
        assert_eq!(Speed::clamped(2.0, floor), Speed::FULL);
        assert_eq!(Speed::clamped(0.5, floor), Speed::new(0.5).unwrap());
        // Negative / zero requests clamp to the floor (infinite-slack case).
        assert_eq!(Speed::clamped(-3.0, floor), floor);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn clamped_rejects_nan() {
        let _ = Speed::clamped(f64::NAN, Speed::FULL);
    }

    #[test]
    fn time_and_work_are_inverse() {
        let s = Speed::new(0.25).unwrap();
        let work = 3.0e-3;
        let t = s.time_for(work);
        assert!((s.work_in(t) - work).abs() < 1e-15);
    }

    #[test]
    fn ordering_is_numeric() {
        let mut v = [
            Speed::new(0.9).unwrap(),
            Speed::new(0.1).unwrap(),
            Speed::FULL,
        ];
        v.sort();
        assert_eq!(v[0].ratio(), 0.1);
        assert_eq!(v[2], Speed::FULL);
    }

    #[test]
    fn display_is_nonempty_percentage() {
        assert_eq!(Speed::FULL.to_string(), "100.0%");
    }

    #[test]
    fn serde_round_trip() {
        let s = Speed::new(0.75).unwrap();
        let json = serde_json_like(s);
        assert_eq!(json, "0.75");
    }

    // Minimal serialization smoke check without pulling serde_json: go through
    // the Into<f64>/TryFrom<f64> path that the serde attributes use.
    fn serde_json_like(s: Speed) -> String {
        let raw: f64 = s.into();
        let back = Speed::try_from(raw).unwrap();
        assert_eq!(back, s);
        format!("{raw}")
    }
}
