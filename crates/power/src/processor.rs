//! Complete processor profiles.

use serde::{Deserialize, Serialize};

use crate::{
    EnergyAccumulator, FrequencyModel, OperatingPoint, PowerError, PowerKind, PowerModel, Speed,
    TransitionEnergy, TransitionOverhead, VoltageMap,
};

/// A complete variable-voltage processor: which speeds exist, what they cost,
/// and what a speed switch costs.
///
/// Construct one of the ready-made profiles, or assemble a custom processor
/// with [`Processor::new`].
///
/// ```
/// use stadvs_power::Processor;
///
/// let cpu = Processor::xscale_class();
/// assert_eq!(cpu.frequency_model().levels(), Some(5));
/// assert!(!cpu.name().is_empty());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Processor {
    name: String,
    frequency_model: FrequencyModel,
    power_model: PowerModel,
    overhead: TransitionOverhead,
}

/// Unwraps a preset-catalog component. The ready-made profiles below are
/// built from compile-time constant tables, each exercised by the catalog
/// unit tests; a failure here is a broken constant, not a runtime
/// condition, so the panic path is sanctioned in this one place.
fn preset<T>(component: Result<T, PowerError>) -> T {
    // xtask:allow(no-panic): single sanctioned site for constant catalogs
    component.expect("preset catalog constant is valid")
}

impl Processor {
    /// Assembles a custom processor.
    pub fn new(
        name: impl Into<String>,
        frequency_model: FrequencyModel,
        power_model: PowerModel,
        overhead: TransitionOverhead,
    ) -> Processor {
        Processor {
            name: name.into(),
            frequency_model,
            power_model,
            overhead,
        }
    }

    /// The idealized processor used for the paper family's synthetic
    /// experiments: continuous speeds in `[0.05, 1]`, normalized cubic power
    /// (`P(s) = s³`), zero idle power, free speed switches.
    pub fn ideal_continuous() -> Processor {
        Processor {
            name: "ideal-continuous".to_string(),
            frequency_model: FrequencyModel::continuous(preset(Speed::new(0.05))),
            power_model: PowerModel::normalized_cubic(),
            overhead: TransitionOverhead::free(),
        }
    }

    /// An ideal continuous processor with the given speed floor.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::InvalidSpeed`] if `min_speed` is not in `(0, 1]`.
    pub fn ideal_continuous_with_floor(min_speed: f64) -> Result<Processor, PowerError> {
        Ok(Processor {
            name: format!("ideal-continuous-floor-{min_speed}"),
            frequency_model: FrequencyModel::continuous(Speed::new(min_speed)?),
            power_model: PowerModel::normalized_cubic(),
            overhead: TransitionOverhead::free(),
        })
    }

    /// A synthetic discrete processor with `levels` uniformly spaced speeds,
    /// a proportional-with-floor voltage curve, and CMOS power. Used for the
    /// level-count sensitivity experiment (`fig4_levels`).
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::InvalidParameter`] if `levels == 0`.
    pub fn uniform_discrete(levels: usize) -> Result<Processor, PowerError> {
        let voltage = VoltageMap::affine(0.8, 1.8)?;
        let volt = voltage.clone();
        let frequency_model =
            FrequencyModel::uniform_levels(levels, 1.0e9, move |s| volt.voltage_at(s))?;
        // Normalize so that full-speed power is 1 W: C_eff·V_max²·f_max = 1.
        let c_eff = 1.0 / (voltage.v_max() * voltage.v_max() * 1.0e9);
        let power_model = PowerModel::new(
            PowerKind::Cmos {
                c_eff,
                f_max_hz: 1.0e9,
                voltage,
            },
            0.0,
            0.0,
        )?;
        Ok(Processor {
            name: format!("uniform-discrete-{levels}"),
            frequency_model,
            power_model,
            overhead: TransitionOverhead::free(),
        })
    }

    /// A StrongARM SA-1100-class processor: 11 levels from 59 MHz to
    /// 206 MHz, supply voltage 0.8–1.5 V, 140 µs synchronous switch latency.
    /// Values follow the figures quoted for that chip in the DVS literature.
    pub fn strongarm_class() -> Processor {
        let f_max = 206.0e6;
        let mut points = Vec::new();
        let levels = 11usize;
        for i in 0..levels {
            let f = 59.0e6 + (f_max - 59.0e6) * i as f64 / (levels - 1) as f64;
            let ratio = f / f_max;
            let v = 0.8 + (1.5 - 0.8) * (i as f64 / (levels - 1) as f64);
            points.push(OperatingPoint {
                speed: preset(Speed::new(ratio.min(1.0))),
                frequency_hz: f,
                voltage: v,
            });
        }
        let voltage = preset(VoltageMap::table(
            points
                .iter()
                .map(|p| (p.speed.ratio(), p.voltage))
                .collect(),
        ));
        let c_eff = 1.0 / (1.5 * 1.5 * f_max); // full-speed power normalized to 1 W
        Processor {
            name: "strongarm-sa1100-class".to_string(),
            frequency_model: preset(FrequencyModel::discrete(points)),
            power_model: preset(PowerModel::new(
                PowerKind::Cmos {
                    c_eff,
                    f_max_hz: f_max,
                    voltage: voltage.clone(),
                },
                0.02,
                0.0,
            )),
            overhead: preset(TransitionOverhead::new(
                140.0e-6,
                TransitionEnergy::CapacitiveSwing {
                    eta: 0.9,
                    c_dd: 5.0e-6,
                    voltage,
                },
            )),
        }
    }

    /// An Intel XScale-class processor with the 5-point table that circulates
    /// in the DVS literature: (150 MHz, 0.75 V), (400, 1.0), (600, 1.3),
    /// (800, 1.6), (1000, 1.8); 20 µs switch latency.
    pub fn xscale_class() -> Processor {
        let f_max = 1000.0e6;
        let table: [(f64, f64); 5] = [
            (150.0e6, 0.75),
            (400.0e6, 1.0),
            (600.0e6, 1.3),
            (800.0e6, 1.6),
            (1000.0e6, 1.8),
        ];
        let points: Vec<OperatingPoint> = table
            .iter()
            .map(|&(f, v)| OperatingPoint {
                speed: preset(Speed::new(f / f_max)),
                frequency_hz: f,
                voltage: v,
            })
            .collect();
        let voltage = preset(VoltageMap::table(
            points
                .iter()
                .map(|p| (p.speed.ratio(), p.voltage))
                .collect(),
        ));
        let c_eff = 1.0 / (1.8 * 1.8 * f_max);
        Processor {
            name: "xscale-class".to_string(),
            frequency_model: preset(FrequencyModel::discrete(points)),
            power_model: preset(PowerModel::new(
                PowerKind::Cmos {
                    c_eff,
                    f_max_hz: f_max,
                    voltage: voltage.clone(),
                },
                0.05,
                0.0,
            )),
            overhead: preset(TransitionOverhead::new(
                20.0e-6,
                TransitionEnergy::CapacitiveSwing {
                    eta: 0.9,
                    c_dd: 5.0e-6,
                    voltage,
                },
            )),
        }
    }

    /// A Transmeta Crusoe-class processor: (300 MHz, 1.2 V), (400, 1.225),
    /// (500, 1.35), (600, 1.5), (667, 1.6); 30 µs switch latency.
    pub fn crusoe_class() -> Processor {
        let f_max = 667.0e6;
        let table: [(f64, f64); 5] = [
            (300.0e6, 1.2),
            (400.0e6, 1.225),
            (500.0e6, 1.35),
            (600.0e6, 1.5),
            (667.0e6, 1.6),
        ];
        let points: Vec<OperatingPoint> = table
            .iter()
            .map(|&(f, v)| OperatingPoint {
                speed: preset(Speed::new((f / f_max).min(1.0))),
                frequency_hz: f,
                voltage: v,
            })
            .collect();
        let voltage = preset(VoltageMap::table(
            points
                .iter()
                .map(|p| (p.speed.ratio(), p.voltage))
                .collect(),
        ));
        let c_eff = 1.0 / (1.6 * 1.6 * f_max);
        Processor {
            name: "crusoe-class".to_string(),
            frequency_model: preset(FrequencyModel::discrete(points)),
            power_model: preset(PowerModel::new(
                PowerKind::Cmos {
                    c_eff,
                    f_max_hz: f_max,
                    voltage: voltage.clone(),
                },
                0.03,
                0.0,
            )),
            overhead: preset(TransitionOverhead::new(
                30.0e-6,
                TransitionEnergy::CapacitiveSwing {
                    eta: 0.9,
                    c_dd: 5.0e-6,
                    voltage,
                },
            )),
        }
    }

    /// Returns this processor with a different transition-overhead model
    /// (used by the overhead-sensitivity experiment).
    pub fn with_overhead(mut self, overhead: TransitionOverhead) -> Processor {
        self.overhead = overhead;
        self
    }

    /// Returns this processor with a different power model.
    pub fn with_power_model(mut self, power_model: PowerModel) -> Processor {
        self.power_model = power_model;
        self
    }

    /// The profile name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The frequency model.
    pub fn frequency_model(&self) -> &FrequencyModel {
        &self.frequency_model
    }

    /// The power model.
    pub fn power_model(&self) -> &PowerModel {
        &self.power_model
    }

    /// The speed-switch overhead model.
    pub fn overhead(&self) -> &TransitionOverhead {
        &self.overhead
    }

    /// Shorthand for `self.frequency_model().quantize_up(speed)`.
    pub fn quantize_up(&self, speed: Speed) -> Speed {
        self.frequency_model.quantize_up(speed)
    }

    /// Shorthand for the lowest available speed.
    pub fn min_speed(&self) -> Speed {
        self.frequency_model.min_speed()
    }

    /// Creates an [`EnergyAccumulator`] bound to this processor's models.
    pub fn energy_accumulator(&self) -> EnergyAccumulator {
        EnergyAccumulator::new(self.power_model.clone(), self.overhead.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_profile_is_cubic_and_free() {
        let p = Processor::ideal_continuous();
        assert!(p.overhead().is_free());
        assert_eq!(p.frequency_model().levels(), None);
        let half = Speed::new(0.5).unwrap();
        assert!((p.power_model().active_power(half) - 0.125).abs() < 1e-12);
        assert_eq!(p.quantize_up(half), half);
    }

    #[test]
    fn chip_profiles_are_valid_and_normalized() {
        for p in [
            Processor::strongarm_class(),
            Processor::xscale_class(),
            Processor::crusoe_class(),
        ] {
            assert!(p.frequency_model().levels().unwrap() >= 5);
            // Full-speed dynamic power is normalized to ~1 W.
            let full = p.power_model().active_power(Speed::FULL);
            assert!((full - 1.0).abs() < 0.1, "{}: full power {full}", p.name());
            // Lowest level draws much less than full.
            let low = p.power_model().active_power(p.min_speed());
            assert!(low < 0.5 * full, "{}: low power {low}", p.name());
            // Quantization never goes down.
            for i in 1..=20 {
                let req = Speed::new(i as f64 / 20.0).unwrap();
                assert!(p.quantize_up(req) >= req);
            }
            assert!(!p.overhead().is_free());
        }
    }

    #[test]
    fn uniform_discrete_level_count() {
        let p = Processor::uniform_discrete(8).unwrap();
        assert_eq!(p.frequency_model().levels(), Some(8));
        assert!(Processor::uniform_discrete(0).is_err());
        let full = p.power_model().active_power(Speed::FULL);
        assert!((full - 1.0).abs() < 1e-9);
    }

    #[test]
    fn with_overhead_replaces_model() {
        let p = Processor::ideal_continuous().with_overhead(
            TransitionOverhead::new(1.0e-3, TransitionEnergy::Constant(1.0e-6)).unwrap(),
        );
        assert_eq!(p.overhead().latency(), 1.0e-3);
    }

    #[test]
    fn xscale_speeds_match_table() {
        let p = Processor::xscale_class();
        let speeds: Vec<f64> = p
            .frequency_model()
            .points()
            .iter()
            .map(|op| op.speed.ratio())
            .collect();
        assert_eq!(speeds, vec![0.15, 0.4, 0.6, 0.8, 1.0]);
    }
}
