//! Continuous and discrete frequency models.

use serde::{Deserialize, Serialize};

use crate::{PowerError, Speed};

/// One discrete operating point of a real DVS processor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OperatingPoint {
    /// Normalized speed (frequency / maximum frequency).
    pub speed: Speed,
    /// Physical clock frequency in hertz (informational; the simulation is
    /// fully normalized).
    pub frequency_hz: f64,
    /// Supply voltage at this point, in volts.
    pub voltage: f64,
}

/// The set of speeds a processor can actually run at.
///
/// Hard-real-time DVS requires *quantizing requested speeds up*: running
/// faster than requested can only create more slack, never a deadline miss.
/// [`FrequencyModel::quantize_up`] implements exactly that rule, mirroring
/// the GRACE/laEDF convention the paper family uses.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FrequencyModel {
    /// Any speed in `[min_speed, 1]` is available.
    Continuous {
        /// The lowest sustainable speed (real regulators cannot reach 0).
        min_speed: Speed,
    },
    /// Only the listed operating points are available (strictly increasing
    /// speeds; the last one is full speed).
    Discrete {
        /// Available operating points, sorted by increasing speed.
        points: Vec<OperatingPoint>,
    },
}

impl FrequencyModel {
    /// A continuous model with the given floor.
    pub fn continuous(min_speed: Speed) -> FrequencyModel {
        FrequencyModel::Continuous { min_speed }
    }

    /// A discrete model from raw operating points.
    ///
    /// # Errors
    ///
    /// Returns an error if the table is empty, speeds are not strictly
    /// increasing, or the final point is not full speed (a hard-real-time
    /// processor must be able to run at `f_max`, otherwise worst-case
    /// feasibility is not expressible).
    pub fn discrete(points: Vec<OperatingPoint>) -> Result<FrequencyModel, PowerError> {
        if points.is_empty() {
            return Err(PowerError::EmptyFrequencyTable);
        }
        let mut prev = 0.0;
        for (index, p) in points.iter().enumerate() {
            if p.speed.ratio() <= prev {
                return Err(PowerError::UnsortedFrequencyTable { index });
            }
            prev = p.speed.ratio();
        }
        if !points[points.len() - 1].speed.same_point(Speed::FULL) {
            return Err(PowerError::MissingFullSpeed);
        }
        Ok(FrequencyModel::Discrete { points })
    }

    /// A discrete model with `levels` speeds uniformly spaced in
    /// `[1/levels, 1]`, voltages taken from `voltage(s)`.
    ///
    /// This is the synthetic "n-level processor" used in level-count
    /// sensitivity studies (our `fig4_levels` experiment).
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::InvalidParameter`] if `levels == 0`.
    pub fn uniform_levels(
        levels: usize,
        f_max_hz: f64,
        voltage: impl Fn(Speed) -> f64,
    ) -> Result<FrequencyModel, PowerError> {
        if levels == 0 {
            return Err(PowerError::InvalidParameter {
                name: "levels",
                value: 0.0,
            });
        }
        let mut points = Vec::with_capacity(levels);
        for i in 1..=levels {
            let speed = Speed::new(i as f64 / levels as f64)?;
            points.push(OperatingPoint {
                speed,
                frequency_hz: f_max_hz * speed.ratio(),
                voltage: voltage(speed),
            });
        }
        FrequencyModel::discrete(points)
    }

    /// The smallest available speed.
    pub fn min_speed(&self) -> Speed {
        match self {
            FrequencyModel::Continuous { min_speed } => *min_speed,
            FrequencyModel::Discrete { points } => points[0].speed,
        }
    }

    /// The number of discrete levels, or `None` for a continuous model.
    pub fn levels(&self) -> Option<usize> {
        match self {
            FrequencyModel::Continuous { .. } => None,
            FrequencyModel::Discrete { points } => Some(points.len()),
        }
    }

    /// The smallest *available* speed that is `>= requested` (clamped to the
    /// model's range). Rounding up preserves hard deadlines.
    ///
    /// ```
    /// use stadvs_power::{FrequencyModel, Speed};
    ///
    /// # fn main() -> Result<(), stadvs_power::PowerError> {
    /// let model = FrequencyModel::uniform_levels(4, 1.0e9, |_| 1.0)?;
    /// let q = model.quantize_up(Speed::new(0.3)?);
    /// assert_eq!(q, Speed::new(0.5)?); // levels are 0.25, 0.5, 0.75, 1.0
    /// # Ok(())
    /// # }
    /// ```
    pub fn quantize_up(&self, requested: Speed) -> Speed {
        match self {
            FrequencyModel::Continuous { min_speed } => requested.max(*min_speed),
            FrequencyModel::Discrete { points } => points
                .iter()
                .map(|p| p.speed)
                .find(|s| *s >= requested)
                .unwrap_or(Speed::FULL),
        }
    }

    /// Iterates over the discrete operating points (empty for continuous).
    pub fn points(&self) -> &[OperatingPoint] {
        match self {
            FrequencyModel::Continuous { .. } => &[],
            FrequencyModel::Discrete { points } => points,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn speed(r: f64) -> Speed {
        Speed::new(r).unwrap()
    }

    fn point(s: f64, v: f64) -> OperatingPoint {
        OperatingPoint {
            speed: speed(s),
            frequency_hz: 1.0e9 * s,
            voltage: v,
        }
    }

    #[test]
    fn continuous_quantize_clamps_to_floor() {
        let m = FrequencyModel::continuous(speed(0.2));
        assert_eq!(m.quantize_up(speed(0.05)), speed(0.2));
        assert_eq!(m.quantize_up(speed(0.7)), speed(0.7));
        assert_eq!(m.min_speed(), speed(0.2));
        assert_eq!(m.levels(), None);
        assert!(m.points().is_empty());
    }

    #[test]
    fn discrete_quantize_rounds_up() {
        let m = FrequencyModel::discrete(vec![point(0.25, 1.0), point(0.5, 1.2), point(1.0, 1.8)])
            .unwrap();
        assert_eq!(m.quantize_up(speed(0.1)), speed(0.25));
        assert_eq!(m.quantize_up(speed(0.25)), speed(0.25));
        assert_eq!(m.quantize_up(speed(0.26)), speed(0.5));
        assert_eq!(m.quantize_up(speed(0.9)), Speed::FULL);
        assert_eq!(m.levels(), Some(3));
        assert_eq!(m.min_speed(), speed(0.25));
    }

    #[test]
    fn discrete_requires_full_speed_and_order() {
        assert!(matches!(
            FrequencyModel::discrete(vec![]),
            Err(PowerError::EmptyFrequencyTable)
        ));
        assert!(matches!(
            FrequencyModel::discrete(vec![point(0.5, 1.0), point(0.25, 0.9), point(1.0, 1.8)]),
            Err(PowerError::UnsortedFrequencyTable { index: 1 })
        ));
        assert!(matches!(
            FrequencyModel::discrete(vec![point(0.5, 1.0)]),
            Err(PowerError::MissingFullSpeed)
        ));
    }

    #[test]
    fn uniform_levels_spacing() {
        let m = FrequencyModel::uniform_levels(5, 1.0e9, |s| 1.8 * s.ratio()).unwrap();
        let speeds: Vec<f64> = m.points().iter().map(|p| p.speed.ratio()).collect();
        assert_eq!(speeds, vec![0.2, 0.4, 0.6, 0.8, 1.0]);
        assert!((m.points()[2].voltage - 1.8 * 0.6).abs() < 1e-12);
        assert!(FrequencyModel::uniform_levels(0, 1.0e9, |_| 1.0).is_err());
    }

    #[test]
    fn quantize_up_never_returns_lower_speed() {
        let m = FrequencyModel::uniform_levels(7, 1.0e9, |_| 1.0).unwrap();
        for i in 1..=100 {
            let req = speed(i as f64 / 100.0);
            assert!(m.quantize_up(req) >= req);
        }
    }
}
