//! Speed-switch (voltage transition) overhead models.

use serde::{Deserialize, Serialize};

use crate::{PowerError, Speed, VoltageMap};

/// Energy charged per speed switch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TransitionEnergy {
    /// Speed switches are free in energy.
    None,
    /// A fixed energy per switch, in joules.
    Constant(f64),
    /// The capacitive voltage-swing model used by the DVS-overhead
    /// literature: `E = η · C_DD · |V_from² − V_to²|`, where `C_DD` is the
    /// voltage-regulator output capacitance and `η` an efficiency factor.
    CapacitiveSwing {
        /// Regulator efficiency factor (dimensionless, ~0.9).
        eta: f64,
        /// Regulator output capacitance, in farads.
        c_dd: f64,
        /// Voltage map used to translate speeds to voltages.
        voltage: VoltageMap,
    },
}

/// Wall-clock and energy cost of changing the processor speed.
///
/// During the transition latency no instructions execute (synchronous
/// switching, the conservative assumption the paper family makes), so an
/// overhead-aware governor must subtract transition time from its slack
/// before committing to a switch.
///
/// ```
/// use stadvs_power::{Speed, TransitionEnergy, TransitionOverhead};
///
/// # fn main() -> Result<(), stadvs_power::PowerError> {
/// // A StrongARM-class regulator: 140 µs latency, fixed 1 µJ per switch.
/// let overhead = TransitionOverhead::new(140.0e-6, TransitionEnergy::Constant(1.0e-6))?;
/// assert_eq!(overhead.latency(), 140.0e-6);
/// let from = Speed::FULL;
/// let to = Speed::new(0.5)?;
/// assert_eq!(overhead.energy(from, to), 1.0e-6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransitionOverhead {
    latency: f64,
    energy: TransitionEnergy,
}

impl TransitionOverhead {
    /// Creates an overhead model.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::InvalidParameter`] if the latency or any energy
    /// parameter is negative or non-finite.
    pub fn new(latency: f64, energy: TransitionEnergy) -> Result<TransitionOverhead, PowerError> {
        if !latency.is_finite() || latency < 0.0 {
            return Err(PowerError::InvalidParameter {
                name: "latency",
                value: latency,
            });
        }
        match &energy {
            TransitionEnergy::None => {}
            TransitionEnergy::Constant(joules) => {
                if !joules.is_finite() || *joules < 0.0 {
                    return Err(PowerError::InvalidParameter {
                        name: "transition_energy",
                        value: *joules,
                    });
                }
            }
            TransitionEnergy::CapacitiveSwing { eta, c_dd, .. } => {
                if !eta.is_finite() || *eta < 0.0 {
                    return Err(PowerError::InvalidParameter {
                        name: "eta",
                        value: *eta,
                    });
                }
                if !c_dd.is_finite() || *c_dd < 0.0 {
                    return Err(PowerError::InvalidParameter {
                        name: "c_dd",
                        value: *c_dd,
                    });
                }
            }
        }
        Ok(TransitionOverhead { latency, energy })
    }

    /// The zero-cost overhead model (the default assumption of most on-line
    /// DVS papers, including the target paper's main experiments).
    pub fn free() -> TransitionOverhead {
        TransitionOverhead {
            latency: 0.0,
            energy: TransitionEnergy::None,
        }
    }

    /// Whether switches cost nothing in both time and energy.
    pub fn is_free(&self) -> bool {
        // Latency is validated non-negative at construction, so `<= 0.0`
        // is exactly the "zero latency" test without a float equality.
        self.latency <= 0.0 && matches!(self.energy, TransitionEnergy::None)
    }

    /// Wall-clock latency of one switch, in seconds.
    pub fn latency(&self) -> f64 {
        self.latency
    }

    /// Energy of switching from `from` to `to`, in joules.
    pub fn energy(&self, from: Speed, to: Speed) -> f64 {
        match &self.energy {
            TransitionEnergy::None => 0.0,
            TransitionEnergy::Constant(joules) => *joules,
            TransitionEnergy::CapacitiveSwing { eta, c_dd, voltage } => {
                let v_from = voltage.voltage_at(from);
                let v_to = voltage.voltage_at(to);
                eta * c_dd * (v_from * v_from - v_to * v_to).abs()
            }
        }
    }
}

impl Default for TransitionOverhead {
    fn default() -> TransitionOverhead {
        TransitionOverhead::free()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn speed(r: f64) -> Speed {
        Speed::new(r).unwrap()
    }

    #[test]
    fn free_model_costs_nothing() {
        let o = TransitionOverhead::free();
        assert!(o.is_free());
        assert_eq!(o.latency(), 0.0);
        assert_eq!(o.energy(Speed::FULL, speed(0.25)), 0.0);
        assert_eq!(TransitionOverhead::default(), o);
    }

    #[test]
    fn constant_energy_ignores_speeds() {
        let o = TransitionOverhead::new(1.0e-4, TransitionEnergy::Constant(2.0e-6)).unwrap();
        assert!(!o.is_free());
        assert_eq!(o.energy(Speed::FULL, speed(0.1)), 2.0e-6);
        assert_eq!(o.energy(speed(0.1), speed(0.9)), 2.0e-6);
    }

    #[test]
    fn capacitive_swing_matches_formula() {
        let o = TransitionOverhead::new(
            20.0e-6,
            TransitionEnergy::CapacitiveSwing {
                eta: 0.9,
                c_dd: 5.0e-6,
                voltage: VoltageMap::proportional(2.0).unwrap(),
            },
        )
        .unwrap();
        // V(1.0)=2, V(0.5)=1: E = 0.9 * 5e-6 * |4-1| = 13.5e-6.
        let e = o.energy(Speed::FULL, speed(0.5));
        assert!((e - 13.5e-6).abs() < 1e-12);
        // Symmetric in direction.
        assert!((o.energy(speed(0.5), Speed::FULL) - e).abs() < 1e-18);
        // Same-speed "switch" costs nothing.
        assert_eq!(o.energy(speed(0.5), speed(0.5)), 0.0);
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(TransitionOverhead::new(-1.0, TransitionEnergy::None).is_err());
        assert!(TransitionOverhead::new(0.0, TransitionEnergy::Constant(-1.0)).is_err());
        assert!(TransitionOverhead::new(
            0.0,
            TransitionEnergy::CapacitiveSwing {
                eta: -0.9,
                c_dd: 1.0e-6,
                voltage: VoltageMap::proportional(1.0).unwrap(),
            }
        )
        .is_err());
    }
}
