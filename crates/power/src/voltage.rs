//! Supply-voltage-versus-speed maps.

use serde::{Deserialize, Serialize};

use crate::{PowerError, Speed};

/// The minimum supply voltage that sustains a given normalized speed.
///
/// CMOS circuit delay grows as the supply voltage approaches the threshold
/// voltage, so sustaining a clock frequency requires a minimum `V_DD`. DVS
/// papers use one of three shapes, all provided here:
///
/// * [`VoltageMap::Proportional`] — `V(s) = V_max · s` (the textbook
///   first-order model, yielding the classic cubic power curve),
/// * [`VoltageMap::Affine`] — `V(s) = V_min + (V_max − V_min) · s`
///   (real processors cannot scale to 0 V),
/// * [`VoltageMap::Table`] — piecewise-linear interpolation through measured
///   `(speed, voltage)` pairs, as published for concrete chips.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum VoltageMap {
    /// `V(s) = V_max · s`.
    Proportional {
        /// Supply voltage at full speed, in volts.
        v_max: f64,
    },
    /// `V(s) = V_min + (V_max − V_min) · s`.
    Affine {
        /// Supply voltage as speed approaches zero, in volts.
        v_min: f64,
        /// Supply voltage at full speed, in volts.
        v_max: f64,
    },
    /// Piecewise-linear interpolation through `(speed, voltage)` pairs sorted
    /// by speed; speeds below the first entry use the first entry's voltage.
    Table {
        /// `(speed ratio, voltage)` pairs, strictly increasing in speed.
        points: Vec<(f64, f64)>,
    },
}

impl VoltageMap {
    /// Creates a proportional map.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::InvalidVoltage`] if `v_max` is not positive and
    /// finite.
    pub fn proportional(v_max: f64) -> Result<VoltageMap, PowerError> {
        check_voltage(v_max)?;
        Ok(VoltageMap::Proportional { v_max })
    }

    /// Creates an affine map `V(s) = v_min + (v_max − v_min)·s`.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::InvalidVoltage`] if either voltage is invalid or
    /// `v_min > v_max`.
    pub fn affine(v_min: f64, v_max: f64) -> Result<VoltageMap, PowerError> {
        check_voltage(v_min)?;
        check_voltage(v_max)?;
        if v_min > v_max {
            return Err(PowerError::InvalidVoltage(v_min));
        }
        Ok(VoltageMap::Affine { v_min, v_max })
    }

    /// Creates a table map from `(speed, voltage)` pairs.
    ///
    /// # Errors
    ///
    /// Returns an error if the table is empty, speeds are not strictly
    /// increasing within `(0, 1]`, or any voltage is invalid.
    pub fn table(points: Vec<(f64, f64)>) -> Result<VoltageMap, PowerError> {
        if points.is_empty() {
            return Err(PowerError::EmptyFrequencyTable);
        }
        let mut prev = 0.0;
        for (index, &(s, v)) in points.iter().enumerate() {
            if !s.is_finite() || s <= prev || s > 1.0 {
                return Err(PowerError::UnsortedFrequencyTable { index });
            }
            check_voltage(v)?;
            prev = s;
        }
        Ok(VoltageMap::Table { points })
    }

    /// The supply voltage (volts) sustaining `speed`.
    pub fn voltage_at(&self, speed: Speed) -> f64 {
        let s = speed.ratio();
        match self {
            VoltageMap::Proportional { v_max } => v_max * s,
            VoltageMap::Affine { v_min, v_max } => v_min + (v_max - v_min) * s,
            VoltageMap::Table { points } => interpolate(points, s),
        }
    }

    /// The supply voltage at full speed.
    pub fn v_max(&self) -> f64 {
        self.voltage_at(Speed::FULL)
    }
}

fn check_voltage(v: f64) -> Result<(), PowerError> {
    if !v.is_finite() || v <= 0.0 {
        return Err(PowerError::InvalidVoltage(v));
    }
    Ok(())
}

fn interpolate(points: &[(f64, f64)], s: f64) -> f64 {
    let first = points[0];
    if s <= first.0 {
        return first.1;
    }
    for window in points.windows(2) {
        let (s0, v0) = window[0];
        let (s1, v1) = window[1];
        if s <= s1 {
            let t = (s - s0) / (s1 - s0);
            return v0 + (v1 - v0) * t;
        }
    }
    points[points.len() - 1].1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn speed(r: f64) -> Speed {
        Speed::new(r).unwrap()
    }

    #[test]
    fn proportional_scales_linearly() {
        let map = VoltageMap::proportional(2.0).unwrap();
        assert!((map.voltage_at(speed(0.5)) - 1.0).abs() < 1e-12);
        assert!((map.v_max() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn affine_has_floor() {
        let map = VoltageMap::affine(0.8, 1.8).unwrap();
        assert!((map.voltage_at(speed(1e-6)) - 0.8).abs() < 1e-5);
        assert!((map.v_max() - 1.8).abs() < 1e-12);
        assert!((map.voltage_at(speed(0.5)) - 1.3).abs() < 1e-12);
    }

    #[test]
    fn affine_rejects_inverted_range() {
        assert!(VoltageMap::affine(2.0, 1.0).is_err());
    }

    #[test]
    fn table_interpolates_and_saturates_low() {
        let map = VoltageMap::table(vec![(0.25, 1.0), (0.5, 1.2), (1.0, 1.8)]).unwrap();
        // Below the lowest point: saturate at the lowest voltage.
        assert!((map.voltage_at(speed(0.1)) - 1.0).abs() < 1e-12);
        // Exactly on a point.
        assert!((map.voltage_at(speed(0.5)) - 1.2).abs() < 1e-12);
        // Between points: linear.
        assert!((map.voltage_at(speed(0.75)) - 1.5).abs() < 1e-12);
        assert!((map.voltage_at(Speed::FULL) - 1.8).abs() < 1e-12);
    }

    #[test]
    fn table_rejects_bad_input() {
        assert!(VoltageMap::table(vec![]).is_err());
        assert!(VoltageMap::table(vec![(0.5, 1.0), (0.5, 1.2)]).is_err());
        assert!(VoltageMap::table(vec![(0.5, 1.2), (0.25, 1.0)]).is_err());
        assert!(VoltageMap::table(vec![(0.5, -1.0)]).is_err());
        assert!(VoltageMap::table(vec![(1.5, 1.0)]).is_err());
    }

    #[test]
    fn voltage_is_monotone_in_speed() {
        let maps = [
            VoltageMap::proportional(1.8).unwrap(),
            VoltageMap::affine(0.7, 1.8).unwrap(),
            VoltageMap::table(vec![(0.2, 0.9), (0.6, 1.3), (1.0, 1.8)]).unwrap(),
        ];
        for map in &maps {
            let mut last = 0.0;
            for i in 1..=100 {
                let v = map.voltage_at(speed(i as f64 / 100.0));
                assert!(v >= last - 1e-12, "{map:?} not monotone at {i}");
                last = v;
            }
        }
    }
}
