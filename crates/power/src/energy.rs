//! Energy accounting over a simulated schedule.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{PowerModel, Speed, TransitionOverhead};

/// Energy totals of one simulation run, by component.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Energy spent executing jobs, in joules.
    pub active: f64,
    /// Energy spent idling, in joules.
    pub idle: f64,
    /// Energy spent in speed transitions, in joules.
    pub transition: f64,
}

impl EnergyBreakdown {
    /// Total energy in joules.
    pub fn total(&self) -> f64 {
        self.active + self.idle + self.transition
    }
}

impl fmt::Display for EnergyBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.6} J (active {:.6}, idle {:.6}, transition {:.6})",
            self.total(),
            self.active,
            self.idle,
            self.transition
        )
    }
}

/// Integrates the energy of a schedule as it is produced.
///
/// The simulator drives this accumulator with execution segments, idle
/// segments, and speed-switch events; the accumulator applies the
/// [`PowerModel`] and [`TransitionOverhead`] to produce an
/// [`EnergyBreakdown`].
///
/// ```
/// use stadvs_power::{EnergyAccumulator, PowerModel, Speed, TransitionOverhead};
///
/// # fn main() -> Result<(), stadvs_power::PowerError> {
/// let mut acc = EnergyAccumulator::new(PowerModel::normalized_cubic(), TransitionOverhead::free());
/// acc.add_execution(Speed::FULL, 1.0);          // 1 s at full speed: 1 J
/// acc.add_execution(Speed::new(0.5)?, 2.0);     // 2 s at half speed: 0.25 J
/// acc.add_idle(5.0);                            // free in this model
/// let e = acc.breakdown();
/// assert!((e.total() - 1.25).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct EnergyAccumulator {
    power: PowerModel,
    overhead: TransitionOverhead,
    breakdown: EnergyBreakdown,
    switches: u64,
}

impl EnergyAccumulator {
    /// Creates an accumulator for the given models.
    pub fn new(power: PowerModel, overhead: TransitionOverhead) -> EnergyAccumulator {
        EnergyAccumulator {
            power,
            overhead,
            breakdown: EnergyBreakdown::default(),
            switches: 0,
        }
    }

    /// Adds an execution segment of `duration` seconds at `speed`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `duration` is negative.
    pub fn add_execution(&mut self, speed: Speed, duration: f64) {
        debug_assert!(duration >= -1e-12, "negative execution duration {duration}");
        self.breakdown.active += self.power.active_energy(speed, duration.max(0.0));
    }

    /// Adds an idle segment of `duration` seconds.
    pub fn add_idle(&mut self, duration: f64) {
        debug_assert!(duration >= -1e-12, "negative idle duration {duration}");
        self.breakdown.idle += self.power.idle_energy(duration.max(0.0));
    }

    /// Records a speed switch from `from` to `to`, charging its energy.
    /// (The *latency* of the switch is modelled by the simulator as a
    /// segment during which no work executes.)
    pub fn add_transition(&mut self, from: Speed, to: Speed) {
        self.breakdown.transition += self.overhead.energy(from, to);
        self.switches += 1;
    }

    /// The totals so far.
    pub fn breakdown(&self) -> EnergyBreakdown {
        self.breakdown
    }

    /// The number of speed switches recorded.
    pub fn switch_count(&self) -> u64 {
        self.switches
    }

    /// The power model in use.
    pub fn power_model(&self) -> &PowerModel {
        &self.power
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TransitionEnergy;

    #[test]
    fn breakdown_components_accumulate() {
        let power = PowerModel::normalized_cubic_with_idle(0.1).unwrap();
        let overhead = TransitionOverhead::new(1.0e-4, TransitionEnergy::Constant(1.0e-3)).unwrap();
        let mut acc = EnergyAccumulator::new(power, overhead);
        acc.add_execution(Speed::FULL, 2.0);
        acc.add_idle(10.0);
        acc.add_transition(Speed::FULL, Speed::new(0.5).unwrap());
        acc.add_transition(Speed::new(0.5).unwrap(), Speed::FULL);
        let b = acc.breakdown();
        assert!((b.active - 2.0).abs() < 1e-12);
        assert!((b.idle - 1.0).abs() < 1e-12);
        assert!((b.transition - 2.0e-3).abs() < 1e-12);
        assert_eq!(acc.switch_count(), 2);
        assert!((b.total() - (2.0 + 1.0 + 2.0e-3)).abs() < 1e-12);
    }

    #[test]
    fn display_is_nonempty() {
        let b = EnergyBreakdown::default();
        assert!(b.to_string().contains('J'));
        assert_eq!(b.total(), 0.0);
    }

    #[test]
    fn tiny_negative_durations_are_clamped() {
        // Floating-point event math can produce -1e-16 segments; they must
        // not poison the totals.
        let mut acc =
            EnergyAccumulator::new(PowerModel::normalized_cubic(), TransitionOverhead::free());
        acc.add_execution(Speed::FULL, -1.0e-15);
        acc.add_idle(-1.0e-15);
        assert!(acc.breakdown().total() >= 0.0);
    }
}
