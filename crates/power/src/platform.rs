//! Multiprocessor platform: a fixed set of voltage-scalable cores.
//!
//! The DATE 2002 algorithm is defined on one processor; the canonical
//! multiprocessor extension (Nélis et al., partitioned EDF) keeps every
//! core's frequency state and energy account *independent* — there is no
//! shared voltage rail and no migration. A [`Platform`] is therefore just
//! an ordered, non-empty collection of [`Processor`]s, and a
//! [`PlatformEnergy`] is the per-core [`EnergyBreakdown`]s plus their sum.

use serde::{Deserialize, Serialize};

use crate::energy::EnergyBreakdown;
use crate::error::PowerError;
use crate::processor::Processor;

/// A fixed multiprocessor platform.
///
/// Cores are identified by their index (`0..len()`); each core scales its
/// voltage/frequency independently of every other core. A platform with
/// one core is exactly the uniprocessor model of the paper.
///
/// ```
/// use stadvs_power::{Platform, Processor};
///
/// # fn main() -> Result<(), stadvs_power::PowerError> {
/// let quad = Platform::homogeneous(4, Processor::ideal_continuous())?;
/// assert_eq!(quad.len(), 4);
/// assert_eq!(quad.core(0).name(), quad.core(3).name());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Platform {
    cores: Vec<Processor>,
}

impl Platform {
    /// Creates a platform from explicit (possibly heterogeneous) cores.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::EmptyPlatform`] if `cores` is empty.
    pub fn new(cores: Vec<Processor>) -> Result<Platform, PowerError> {
        if cores.is_empty() {
            return Err(PowerError::EmptyPlatform);
        }
        Ok(Platform { cores })
    }

    /// Creates an identical-multiprocessor platform: `count` copies of
    /// `core`.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::EmptyPlatform`] if `count` is zero.
    pub fn homogeneous(count: usize, core: Processor) -> Result<Platform, PowerError> {
        if count == 0 {
            return Err(PowerError::EmptyPlatform);
        }
        Ok(Platform {
            cores: vec![core; count],
        })
    }

    /// A single-core platform (the paper's uniprocessor model).
    pub fn uniprocessor(core: Processor) -> Platform {
        Platform { cores: vec![core] }
    }

    /// The cores, indexable by core id.
    pub fn cores(&self) -> &[Processor] {
        &self.cores
    }

    /// The core with the given index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    pub fn core(&self, index: usize) -> &Processor {
        &self.cores[index]
    }

    /// Number of cores (always at least 1).
    pub fn len(&self) -> usize {
        self.cores.len()
    }

    /// Whether the platform has no cores (never true for a constructed
    /// platform; provided for the conventional `len`/`is_empty` pair).
    pub fn is_empty(&self) -> bool {
        self.cores.is_empty()
    }

    /// A short human-readable description, e.g. `4x ideal-continuous`.
    pub fn describe(&self) -> String {
        let first = self.cores[0].name();
        if self.cores.iter().all(|c| c.name() == first) {
            format!("{}x {}", self.cores.len(), first)
        } else {
            let names: Vec<&str> = self.cores.iter().map(Processor::name).collect();
            names.join("+")
        }
    }
}

/// Platform-level energy account: the per-core breakdowns and switch
/// counts of one multiprocessor run.
///
/// Under partitioned scheduling every core integrates its own dynamic,
/// idle, and transition energy with its own [`crate::EnergyAccumulator`];
/// the platform total is the plain sum — there is no shared component.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct PlatformEnergy {
    per_core: Vec<EnergyBreakdown>,
    per_core_switches: Vec<u64>,
}

impl PlatformEnergy {
    /// Builds the account from per-core `(breakdown, switch count)` pairs
    /// in core order.
    pub fn from_cores(cores: Vec<(EnergyBreakdown, u64)>) -> PlatformEnergy {
        let (per_core, per_core_switches) = cores.into_iter().unzip();
        PlatformEnergy {
            per_core,
            per_core_switches,
        }
    }

    /// Per-core energy breakdowns, in core order.
    pub fn per_core(&self) -> &[EnergyBreakdown] {
        &self.per_core
    }

    /// Per-core speed-switch counts, in core order.
    pub fn per_core_switches(&self) -> &[u64] {
        &self.per_core_switches
    }

    /// The component-wise sum over all cores.
    pub fn aggregate(&self) -> EnergyBreakdown {
        let mut sum = EnergyBreakdown::default();
        for b in &self.per_core {
            sum.active += b.active;
            sum.idle += b.idle;
            sum.transition += b.transition;
        }
        sum
    }

    /// Total platform energy in joules.
    pub fn total(&self) -> f64 {
        self.aggregate().total()
    }

    /// Total speed switches across all cores.
    pub fn switches(&self) -> u64 {
        self.per_core_switches.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_platform_has_identical_cores() {
        let p = Platform::homogeneous(4, Processor::ideal_continuous()).unwrap();
        assert_eq!(p.len(), 4);
        assert!(!p.is_empty());
        for c in p.cores() {
            assert_eq!(c.name(), p.core(0).name());
        }
        assert_eq!(p.describe(), format!("4x {}", p.core(0).name()));
    }

    #[test]
    fn empty_platforms_are_rejected() {
        assert_eq!(
            Platform::homogeneous(0, Processor::ideal_continuous()).unwrap_err(),
            PowerError::EmptyPlatform
        );
        assert_eq!(
            Platform::new(vec![]).unwrap_err(),
            PowerError::EmptyPlatform
        );
    }

    #[test]
    fn uniprocessor_is_one_core() {
        let p = Platform::uniprocessor(Processor::strongarm_class());
        assert_eq!(p.len(), 1);
        assert_eq!(p.describe(), format!("1x {}", p.core(0).name()));
    }

    #[test]
    fn heterogeneous_describe_joins_names() {
        let p = Platform::new(vec![
            Processor::ideal_continuous(),
            Processor::strongarm_class(),
        ])
        .unwrap();
        assert!(p.describe().contains('+'));
    }

    #[test]
    fn platform_energy_sums_components() {
        let a = EnergyBreakdown {
            active: 1.0,
            idle: 0.5,
            transition: 0.25,
        };
        let b = EnergyBreakdown {
            active: 2.0,
            idle: 0.0,
            transition: 0.75,
        };
        let e = PlatformEnergy::from_cores(vec![(a, 3), (b, 7)]);
        let sum = e.aggregate();
        assert!((sum.active - 3.0).abs() < 1e-12);
        assert!((sum.idle - 0.5).abs() < 1e-12);
        assert!((sum.transition - 1.0).abs() < 1e-12);
        assert!((e.total() - 4.5).abs() < 1e-12);
        assert_eq!(e.switches(), 10);
        assert_eq!(e.per_core().len(), 2);
        assert_eq!(e.per_core_switches(), &[3, 7]);
    }
}
