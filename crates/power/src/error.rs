//! Error type for processor/power model construction.

use std::error::Error;
use std::fmt;

/// Errors produced when constructing power-model components from invalid
/// parameters.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PowerError {
    /// A speed ratio outside `(0, 1]` (or non-finite) was supplied.
    InvalidSpeed(f64),
    /// A voltage that is non-finite or non-positive was supplied.
    InvalidVoltage(f64),
    /// A frequency model needs at least one operating point.
    EmptyFrequencyTable,
    /// Discrete operating points must have strictly increasing speeds.
    UnsortedFrequencyTable {
        /// Index of the offending operating point.
        index: usize,
    },
    /// A discrete frequency table must include full speed (1.0) so that
    /// worst-case schedulability at `f_max` is expressible.
    MissingFullSpeed,
    /// A physical parameter (capacitance, power, latency, …) was non-finite
    /// or negative.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A multiprocessor platform needs at least one core.
    EmptyPlatform,
}

impl fmt::Display for PowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PowerError::InvalidSpeed(v) => {
                write!(f, "speed ratio {v} is not in (0, 1]")
            }
            PowerError::InvalidVoltage(v) => {
                write!(f, "voltage {v} is not finite and positive")
            }
            PowerError::EmptyFrequencyTable => {
                write!(
                    f,
                    "frequency table must contain at least one operating point"
                )
            }
            PowerError::UnsortedFrequencyTable { index } => {
                write!(
                    f,
                    "operating point {index} does not have a strictly increasing speed"
                )
            }
            PowerError::MissingFullSpeed => {
                write!(f, "discrete frequency table must include full speed 1.0")
            }
            PowerError::InvalidParameter { name, value } => {
                write!(f, "parameter `{name}` has invalid value {value}")
            }
            PowerError::EmptyPlatform => {
                write!(f, "platform must contain at least one core")
            }
        }
    }
}

impl Error for PowerError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let messages = [
            PowerError::InvalidSpeed(1.5).to_string(),
            PowerError::InvalidVoltage(-1.0).to_string(),
            PowerError::EmptyFrequencyTable.to_string(),
            PowerError::UnsortedFrequencyTable { index: 3 }.to_string(),
            PowerError::MissingFullSpeed.to_string(),
            PowerError::InvalidParameter {
                name: "c_eff",
                value: -2.0,
            }
            .to_string(),
            PowerError::EmptyPlatform.to_string(),
        ];
        for m in messages {
            assert!(!m.is_empty());
        }
        assert!(PowerError::InvalidSpeed(1.5).to_string().contains("1.5"));
        assert!(PowerError::UnsortedFrequencyTable { index: 3 }
            .to_string()
            .contains('3'));
    }

    #[test]
    fn error_is_std_error_send_sync() {
        fn assert_traits<T: Error + Send + Sync + 'static>() {}
        assert_traits::<PowerError>();
    }
}
