//! Power draw as a function of speed.

use serde::{Deserialize, Serialize};

use crate::{PowerError, Speed, VoltageMap};

/// The speed-dependent (active) component of the power model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PowerKind {
    /// CMOS dynamic power `P(s) = C_eff · V(s)² · f(s)` with
    /// `f(s) = s · f_max`, which is the formula the paper family uses.
    Cmos {
        /// Effective switched capacitance, in farads.
        c_eff: f64,
        /// Maximum clock frequency, in hertz.
        f_max_hz: f64,
        /// Supply-voltage map.
        voltage: VoltageMap,
    },
    /// Normalized polynomial power `P(s) = coefficient · s^exponent`.
    /// With a proportional voltage map, CMOS power reduces to the cubic
    /// `P(s) = P_max · s³`, which this variant expresses directly.
    Polynomial {
        /// Power at full speed, in watts.
        coefficient: f64,
        /// Exponent (3.0 for the first-order CMOS model).
        exponent: f64,
    },
    /// Polynomial dynamic power plus an *on-power* drawn only while
    /// executing: `P(s) = coefficient · s^exponent + on_power`. Models a
    /// leaky processor with a deep sleep state — leakage flows while busy
    /// but not while idle. This is the setting where the
    /// [critical speed](PowerModel::critical_speed) matters: stretching a
    /// job below it keeps the leaky core awake longer than the voltage
    /// drop repays.
    Sleepable {
        /// Dynamic power at full speed, in watts.
        coefficient: f64,
        /// Exponent (3.0 for the first-order CMOS model).
        exponent: f64,
        /// Leakage/on power while executing, in watts.
        on_power: f64,
    },
}

/// A complete processor power model: active power plus idle and static
/// components.
///
/// * **active power** — drawn while executing at speed `s`,
/// * **idle power** — drawn while the processor has no job to run (clock
///   gating reduces it below active power, but it is rarely zero),
/// * **static power** — drawn unconditionally (leakage); added to both of
///   the above.
///
/// ```
/// use stadvs_power::{PowerModel, Speed};
///
/// # fn main() -> Result<(), stadvs_power::PowerError> {
/// let model = PowerModel::normalized_cubic();
/// assert!((model.active_power(Speed::FULL) - 1.0).abs() < 1e-12);
/// assert!((model.active_power(Speed::new(0.5)?) - 0.125).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    kind: PowerKind,
    idle_power: f64,
    static_power: f64,
}

impl PowerModel {
    /// Creates a power model.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::InvalidParameter`] if any physical parameter is
    /// negative or non-finite.
    pub fn new(
        kind: PowerKind,
        idle_power: f64,
        static_power: f64,
    ) -> Result<PowerModel, PowerError> {
        check("idle_power", idle_power)?;
        check("static_power", static_power)?;
        match &kind {
            PowerKind::Cmos {
                c_eff, f_max_hz, ..
            } => {
                check("c_eff", *c_eff)?;
                check("f_max_hz", *f_max_hz)?;
            }
            PowerKind::Polynomial {
                coefficient,
                exponent,
            } => {
                check("coefficient", *coefficient)?;
                check("exponent", *exponent)?;
            }
            PowerKind::Sleepable {
                coefficient,
                exponent,
                on_power,
            } => {
                check("coefficient", *coefficient)?;
                check("exponent", *exponent)?;
                check("on_power", *on_power)?;
            }
        }
        Ok(PowerModel {
            kind,
            idle_power,
            static_power,
        })
    }

    /// The idealized, fully normalized model used throughout the synthetic
    /// experiments: `P(s) = s³`, zero idle and static power. With this model
    /// "normalized energy" is directly comparable across algorithms.
    pub fn normalized_cubic() -> PowerModel {
        PowerModel {
            kind: PowerKind::Polynomial {
                coefficient: 1.0,
                exponent: 3.0,
            },
            idle_power: 0.0,
            static_power: 0.0,
        }
    }

    /// A normalized cubic model with non-zero idle power (fraction of full
    /// active power), used in idle-power sensitivity studies.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::InvalidParameter`] if `idle_fraction` is
    /// negative or non-finite.
    pub fn normalized_cubic_with_idle(idle_fraction: f64) -> Result<PowerModel, PowerError> {
        PowerModel::new(
            PowerKind::Polynomial {
                coefficient: 1.0,
                exponent: 3.0,
            },
            idle_fraction,
            0.0,
        )
    }

    /// Power drawn while executing at `speed`, in watts (includes static
    /// power).
    pub fn active_power(&self, speed: Speed) -> f64 {
        let dynamic = match &self.kind {
            PowerKind::Cmos {
                c_eff,
                f_max_hz,
                voltage,
            } => {
                let v = voltage.voltage_at(speed);
                c_eff * v * v * f_max_hz * speed.ratio()
            }
            PowerKind::Polynomial {
                coefficient,
                exponent,
            } => coefficient * speed.ratio().powf(*exponent),
            PowerKind::Sleepable {
                coefficient,
                exponent,
                on_power,
            } => coefficient * speed.ratio().powf(*exponent) + on_power,
        };
        dynamic + self.static_power
    }

    /// Power drawn while idle, in watts (includes static power).
    pub fn idle_power(&self) -> f64 {
        self.idle_power + self.static_power
    }

    /// Energy (joules) of executing for `duration` seconds at `speed`.
    pub fn active_energy(&self, speed: Speed, duration: f64) -> f64 {
        self.active_power(speed) * duration
    }

    /// Energy (joules) of idling for `duration` seconds.
    pub fn idle_energy(&self, duration: f64) -> f64 {
        self.idle_power() * duration
    }

    /// Energy (joules) per unit of *work* at `speed` — the quantity DVS
    /// minimizes. Without static power this decreases monotonically as
    /// speed drops; with leakage it turns back up below the
    /// [critical speed](PowerModel::critical_speed).
    pub fn energy_per_work(&self, speed: Speed) -> f64 {
        self.active_power(speed) / speed.ratio()
    }

    /// The *critical speed*: the speed minimizing energy per unit of work.
    ///
    /// With non-zero static (leakage) power, running slower than this
    /// wastes energy — the job takes longer and leaks more than the
    /// voltage reduction saves. Leakage-aware governors floor their speed
    /// requests here. Computed by golden-section search on the (unimodal)
    /// energy-per-work curve; returns the platform minimum representable
    /// speed when the curve is monotone (zero leakage).
    pub fn critical_speed(&self) -> Speed {
        const PHI: f64 = 0.618_033_988_749_894_8;
        let mut lo = 1.0e-6;
        let mut hi = 1.0;
        let energy = |s: f64| self.energy_per_work(Speed::clamped(s, Speed::MIN_POSITIVE));
        for _ in 0..120 {
            let a = hi - PHI * (hi - lo);
            let b = lo + PHI * (hi - lo);
            if energy(a) < energy(b) {
                hi = b;
            } else {
                lo = a;
            }
        }
        Speed::clamped(0.5 * (lo + hi), Speed::MIN_POSITIVE)
    }

    /// The active-power kind.
    pub fn kind(&self) -> &PowerKind {
        &self.kind
    }
}

fn check(name: &'static str, value: f64) -> Result<(), PowerError> {
    if !value.is_finite() || value < 0.0 {
        return Err(PowerError::InvalidParameter { name, value });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn speed(r: f64) -> Speed {
        Speed::new(r).unwrap()
    }

    #[test]
    fn cubic_power_is_cubic() {
        let m = PowerModel::normalized_cubic();
        assert!((m.active_power(speed(0.5)) - 0.125).abs() < 1e-12);
        assert!((m.active_power(speed(0.1)) - 1e-3).abs() < 1e-12);
        assert_eq!(m.idle_power(), 0.0);
    }

    #[test]
    fn cmos_matches_formula() {
        let m = PowerModel::new(
            PowerKind::Cmos {
                c_eff: 1.0e-9,
                f_max_hz: 1.0e9,
                voltage: VoltageMap::proportional(2.0).unwrap(),
            },
            0.0,
            0.0,
        )
        .unwrap();
        // P(1) = 1e-9 * 4 * 1e9 = 4 W; P(0.5) = 1e-9 * 1 * 0.5e9 = 0.5 W.
        assert!((m.active_power(Speed::FULL) - 4.0).abs() < 1e-9);
        assert!((m.active_power(speed(0.5)) - 0.5).abs() < 1e-9);
        // Proportional voltage makes CMOS exactly cubic: P(0.5)/P(1) = 1/8.
        assert!((m.active_power(speed(0.5)) / m.active_power(Speed::FULL) - 0.125).abs() < 1e-12);
    }

    #[test]
    fn static_power_is_added_everywhere() {
        let m = PowerModel::new(
            PowerKind::Polynomial {
                coefficient: 1.0,
                exponent: 3.0,
            },
            0.05,
            0.02,
        )
        .unwrap();
        assert!((m.idle_power() - 0.07).abs() < 1e-12);
        assert!((m.active_power(Speed::FULL) - 1.02).abs() < 1e-12);
    }

    #[test]
    fn energy_per_work_decreases_with_speed() {
        let m = PowerModel::normalized_cubic();
        assert!(m.energy_per_work(speed(0.5)) < m.energy_per_work(Speed::FULL));
        assert!(m.energy_per_work(speed(0.25)) < m.energy_per_work(speed(0.5)));
        // s^3 / s = s^2:
        assert!((m.energy_per_work(speed(0.5)) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(PowerModel::new(
            PowerKind::Polynomial {
                coefficient: -1.0,
                exponent: 3.0
            },
            0.0,
            0.0
        )
        .is_err());
        assert!(PowerModel::normalized_cubic_with_idle(-0.1).is_err());
        assert!(PowerModel::new(
            PowerKind::Cmos {
                c_eff: f64::NAN,
                f_max_hz: 1.0,
                voltage: VoltageMap::proportional(1.0).unwrap()
            },
            0.0,
            0.0
        )
        .is_err());
    }

    #[test]
    fn critical_speed_matches_closed_form() {
        // e(s) = s² + P_static/s minimizes at s* = (P_static/2)^(1/3).
        for p_static in [0.01_f64, 0.05, 0.2] {
            let m = PowerModel::new(
                PowerKind::Polynomial {
                    coefficient: 1.0,
                    exponent: 3.0,
                },
                0.0,
                p_static,
            )
            .unwrap();
            let expected = (p_static / 2.0).powf(1.0 / 3.0);
            let got = m.critical_speed().ratio();
            assert!(
                (got - expected).abs() < 1e-6,
                "P_static {p_static}: got {got}, expected {expected}"
            );
        }
        // Zero leakage: the curve is monotone, critical speed collapses to
        // (essentially) zero.
        let ideal = PowerModel::normalized_cubic();
        assert!(ideal.critical_speed().ratio() < 1e-3);
    }

    #[test]
    fn energy_scales_with_duration() {
        let m = PowerModel::normalized_cubic();
        let e1 = m.active_energy(speed(0.7), 1.0);
        let e2 = m.active_energy(speed(0.7), 2.5);
        assert!((e2 / e1 - 2.5).abs() < 1e-12);
        assert_eq!(m.idle_energy(10.0), 0.0);
    }
}
