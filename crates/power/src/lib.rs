//! # stadvs-power — variable-voltage processor, power, and energy models
//!
//! This crate is the *hardware substrate* of the `stadvs` reproduction of the
//! DATE 2002 paper *"A Dynamic Voltage Scaling Algorithm for Dynamic-Priority
//! Hard Real-Time Systems Using Slack Time Analysis"*. It models a
//! voltage/frequency-scalable processor of the class that paper targets:
//!
//! * a normalized [`Speed`] in `(0, 1]` (1.0 = maximum frequency),
//! * a [`FrequencyModel`] that is either continuous within a range or a set of
//!   discrete [`OperatingPoint`]s (speed quantized *up* for hard guarantees),
//! * a [`VoltageMap`] giving the minimum supply voltage that sustains a speed,
//! * a [`PowerModel`] (`P = C_eff · V² · f` CMOS dynamic power, or a simple
//!   polynomial), plus idle and always-on static power,
//! * a [`TransitionOverhead`] charging both wall-clock latency and energy per
//!   speed switch (e.g. the `η·C_DD·|V₁²−V₂²|` capacitive model),
//! * an [`EnergyAccumulator`] that integrates a schedule's energy.
//!
//! Ready-made [`Processor`] profiles mirror the processor classes used by the
//! 2002-era DVS literature (StrongARM SA-1100-class, Intel XScale-class,
//! Transmeta Crusoe-class) plus an ideal continuous processor.
//!
//! ```
//! use stadvs_power::{Processor, Speed};
//!
//! # fn main() -> Result<(), stadvs_power::PowerError> {
//! let cpu = Processor::ideal_continuous();
//! let half = cpu.quantize_up(Speed::new(0.5)?);
//! // At half speed an ideal cubic processor draws 1/8 of full power:
//! let p = cpu.power_model().active_power(half);
//! assert!((p - 0.125).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod energy;
mod error;
mod freq_model;
mod overhead;
mod platform;
mod power_model;
mod processor;
mod speed;
mod voltage;

pub use energy::{EnergyAccumulator, EnergyBreakdown};
pub use error::PowerError;
pub use freq_model::{FrequencyModel, OperatingPoint};
pub use overhead::{TransitionEnergy, TransitionOverhead};
pub use platform::{Platform, PlatformEnergy};
pub use power_model::{PowerKind, PowerModel};
pub use processor::Processor;
pub use speed::Speed;
pub use voltage::VoltageMap;
