//! Criterion benchmarks: off-line analysis algorithms — QPA
//! schedulability, job materialization, the YDS optimal schedule, and the
//! clairvoyant static-optimal speed.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use stadvs_analysis::{
    edf_schedulable, materialize_jobs, optimal_static_speed, yds_schedule, WorkKind,
};
use stadvs_sim::{Task, TaskSet};
use stadvs_workload::{DemandPattern, ExecutionModel, TaskSetSpec};

fn constrained_set(n: usize, seed: u64) -> TaskSet {
    // Constrained deadlines force the full QPA walk (implicit deadlines
    // short-circuit to the utilization test).
    let base = TaskSetSpec::new(n, 0.85)
        .expect("valid spec")
        .with_seed(seed)
        .generate()
        .expect("generates");
    TaskSet::new(
        base.iter()
            .map(|(_, t)| {
                Task::with_deadline(t.wcet(), t.period(), t.wcet().max(0.8 * t.period()))
                    .expect("valid constrained task")
            })
            .collect(),
    )
    .expect("non-empty")
}

fn bench_qpa(c: &mut Criterion) {
    let mut group = c.benchmark_group("qpa_schedulability");
    for n in [4usize, 8, 16, 32] {
        let set = constrained_set(n, 11);
        group.bench_with_input(BenchmarkId::from_parameter(n), &set, |b, set| {
            b.iter(|| edf_schedulable(set));
        });
    }
    group.finish();
}

fn bench_yds(c: &mut Criterion) {
    let spec = TaskSetSpec::new(8, 0.7).expect("valid spec").with_seed(3);
    let tasks = spec.generate().expect("generates");
    let exec = ExecutionModel::new(DemandPattern::Uniform { min: 0.5, max: 1.0 })
        .expect("valid pattern")
        .with_seed(3);
    let mut group = c.benchmark_group("yds_optimal_schedule");
    group.sample_size(10);
    for horizon in [0.5_f64, 1.0, 2.0] {
        let jobs = materialize_jobs(&tasks, &exec, horizon);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{}jobs", jobs.len())),
            &jobs,
            |b, jobs| {
                b.iter(|| yds_schedule(jobs, WorkKind::Actual).peak_speed());
            },
        );
    }
    group.finish();
}

fn bench_oracle_speed(c: &mut Criterion) {
    let tasks = TaskSetSpec::new(8, 0.7)
        .expect("valid spec")
        .with_seed(5)
        .generate()
        .expect("generates");
    let exec = ExecutionModel::uniform_bcet(0.5)
        .expect("valid")
        .with_seed(5);
    let jobs = materialize_jobs(&tasks, &exec, 2.0);
    c.bench_function("oracle_static_speed_2s", |b| {
        b.iter(|| optimal_static_speed(&jobs, WorkKind::Actual));
    });
    c.bench_function("materialize_jobs_2s", |b| {
        b.iter(|| materialize_jobs(&tasks, &exec, 2.0).len());
    });
}

criterion_group!(benches, bench_qpa, bench_yds, bench_oracle_speed);
criterion_main!(benches);
