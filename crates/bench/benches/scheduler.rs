//! Criterion benchmarks: simulator throughput and per-governor scheduling
//! overhead (`bench_micro` in the experiment index).
//!
//! The paper family reports the run-time complexity of the slack analysis;
//! here we measure it directly: wall-clock cost of simulating one second of
//! a standard 8-task workload under each governor. Differences between
//! governors isolate the cost of their `select_speed` logic.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use stadvs_experiments::{make_governor, WorkloadCase, STANDARD_LINEUP};
use stadvs_power::Processor;
use stadvs_sim::{SimConfig, Simulator};
use stadvs_workload::DemandPattern;

fn bench_governors(c: &mut Criterion) {
    let case = WorkloadCase::synthetic(8, 0.7, DemandPattern::Uniform { min: 0.5, max: 1.0 }, 42);
    let sim = Simulator::new(
        case.tasks.clone(),
        Processor::ideal_continuous(),
        SimConfig::new(1.0).expect("valid horizon"),
    )
    .expect("feasible");

    let mut group = c.benchmark_group("simulate_1s_8tasks");
    for name in STANDARD_LINEUP {
        group.bench_with_input(BenchmarkId::from_parameter(name), name, |b, name| {
            b.iter(|| {
                let mut governor = make_governor(name).expect("lineup resolves");
                let out = sim.run(governor.as_mut(), &case.exec).expect("runs");
                assert_eq!(out.miss_count(), 0);
                out.total_energy()
            });
        });
    }
    group.finish();
}

fn bench_task_count_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("stedf_scaling_by_tasks");
    for n in [4usize, 8, 16, 32] {
        let case =
            WorkloadCase::synthetic(n, 0.7, DemandPattern::Uniform { min: 0.5, max: 1.0 }, 7);
        let sim = Simulator::new(
            case.tasks.clone(),
            Processor::ideal_continuous(),
            SimConfig::new(0.5).expect("valid horizon"),
        )
        .expect("feasible");
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut governor = make_governor("st-edf").expect("resolves");
                sim.run(governor.as_mut(), &case.exec)
                    .expect("runs")
                    .total_energy()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_governors, bench_task_count_scaling);
criterion_main!(benches);
