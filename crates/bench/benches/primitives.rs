//! Criterion benchmarks: core data structures and workload generators —
//! slack-ledger operations, UUniFast, and execution-demand sampling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use stadvs_core::SlackLedger;
use stadvs_sim::{ExecutionSource, Task, TaskId};
use stadvs_workload::{uunifast, DemandPattern, ExecutionModel};

fn bench_ledger(c: &mut Criterion) {
    let mut group = c.benchmark_group("slack_ledger");
    for size in [16usize, 128, 1024] {
        group.bench_with_input(
            BenchmarkId::new("donate_take_cycle", size),
            &size,
            |b, &size| {
                b.iter(|| {
                    let mut ledger = SlackLedger::new();
                    for i in 0..size {
                        // Pseudo-random-ish tags without an RNG in the hot loop.
                        let tag = ((i * 2_654_435_761) % 1_000) as f64;
                        ledger.donate(tag, 0.001);
                    }
                    let mut taken = 0.0;
                    for d in [250.0, 500.0, 750.0, 1_000.0] {
                        taken += ledger.take_up_to(d);
                    }
                    taken
                });
            },
        );
    }
    group.finish();
}

fn bench_uunifast(c: &mut Criterion) {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut group = c.benchmark_group("uunifast");
    for n in [8usize, 64, 512] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| uunifast(n, 0.8, &mut rng));
        });
    }
    group.finish();
}

fn bench_demand_sampling(c: &mut Criterion) {
    let task = Task::new(1.0e-3, 10.0e-3).expect("valid task");
    let patterns = [
        ("uniform", DemandPattern::Uniform { min: 0.2, max: 1.0 }),
        (
            "normal",
            DemandPattern::Normal {
                mean: 0.5,
                std_dev: 0.2,
                floor: 0.05,
            },
        ),
        (
            "bursty",
            DemandPattern::Bursty {
                low: 0.2,
                high: 0.9,
                burst_jobs: 20,
                duty: 0.4,
            },
        ),
    ];
    let mut group = c.benchmark_group("demand_sampling");
    for (name, pattern) in patterns {
        let model = ExecutionModel::new(pattern).expect("valid").with_seed(9);
        group.bench_function(name, |b| {
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                model.actual_work(TaskId(0), &task, i)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ledger, bench_uunifast, bench_demand_sampling);
criterion_main!(benches);
