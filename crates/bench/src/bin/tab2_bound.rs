//! Regenerates the `tab2_bound` experiment (see DESIGN.md §4).

fn main() {
    let opts = stadvs_bench::options_from_env();
    let _ = stadvs_bench::regenerate("tab2_bound", &opts);
}
