//! Regenerates the `faults` experiment (see DESIGN.md §10).

fn main() {
    let opts = stadvs_bench::options_from_env();
    let _ = stadvs_bench::regenerate("faults", &opts);
}
