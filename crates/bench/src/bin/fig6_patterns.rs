//! Regenerates the `fig6_patterns` experiment (see DESIGN.md §4).

fn main() {
    let opts = stadvs_bench::options_from_env();
    let _ = stadvs_bench::regenerate("fig6_patterns", &opts);
}
