//! Regenerates the `fig3_ntasks` experiment (see DESIGN.md §4).

fn main() {
    let opts = stadvs_bench::options_from_env();
    let _ = stadvs_bench::regenerate("fig3_ntasks", &opts);
}
