//! Regenerates the `fleet` family artifact (`results/fleet.{md,csv}`)
//! and reports sweep throughput and peak RSS.
//!
//! Standard scale is ~10⁵ nodes; `--quick` (or `STADVS_QUICK=1`) drops
//! to ~10⁴. `--threads N` pins the worker count — the table bits are
//! identical either way (that is the engine's contract); only the
//! wall-clock changes.

use std::time::Instant;

use stadvs_bench::peak_rss_bytes;
use stadvs_experiments::{write_csv, write_markdown};
use stadvs_fleet::{fleet_table, run_fleet, FleetConfig, FleetSpec};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick")
        || std::env::var("STADVS_QUICK").is_ok_and(|v| v == "1");
    let threads: Option<usize> = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .map(|raw| raw.parse().expect("--threads takes a thread count"));

    let spec = if quick {
        FleetSpec::quick(42)
    } else {
        FleetSpec::standard(42)
    };
    let config = FleetConfig {
        threads,
        ..FleetConfig::default()
    };
    eprintln!(
        "running fleet ({} nodes, {} cells x {} replications)...",
        spec.nodes(),
        spec.cell_count(),
        spec.replications
    );
    let start = Instant::now();
    let outcome = run_fleet(&spec, &config).expect("fleet sweep runs");
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    assert!(outcome.complete(), "an unchecked run sweeps everything");

    let table = fleet_table(&spec, &outcome);
    println!("{table}");
    write_markdown(&table, "results/fleet.md").expect("write results markdown");
    write_csv(&table, "results/fleet.csv").expect("write results csv");

    let agg = &outcome.aggregate;
    eprintln!(
        "fleet: {} nodes in {elapsed:.2} s — {:.0} nodes/s, {:.0} events/s, \
         peak RSS {:.1} MiB",
        agg.nodes,
        agg.nodes as f64 / elapsed,
        agg.events as f64 / elapsed,
        peak_rss_bytes() as f64 / (1024.0 * 1024.0)
    );
}
