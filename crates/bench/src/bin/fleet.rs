//! Regenerates the `fleet` family artifact (`results/fleet.{md,csv}`)
//! and reports sweep throughput and peak RSS.
//!
//! Standard scale is ~10⁵ nodes; `--quick` (or `STADVS_QUICK=1`) drops
//! to ~10⁴. `--threads N` pins the worker count — the table bits are
//! identical either way (that is the engine's contract); only the
//! wall-clock changes. The sweep itself lives in
//! [`stadvs_bench::regenerate_fleet`], shared with `all_experiments`.

use std::time::Instant;

use stadvs_bench::{peak_rss_bytes, regenerate_fleet};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick")
        || std::env::var("STADVS_QUICK").is_ok_and(|v| v == "1");
    let threads: Option<usize> = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .map(|raw| raw.parse().expect("--threads takes a thread count"));

    let start = Instant::now();
    let table = regenerate_fleet(quick, threads);
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    eprintln!(
        "fleet: {} rows in {elapsed:.2} s, peak RSS {:.1} MiB",
        table.rows.len(),
        peak_rss_bytes() as f64 / (1024.0 * 1024.0)
    );
}
