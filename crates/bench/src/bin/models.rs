//! Regenerates the `models` experiment (see DESIGN.md §14).

fn main() {
    let opts = stadvs_bench::options_from_env();
    let _ = stadvs_bench::regenerate("models", &opts);
}
