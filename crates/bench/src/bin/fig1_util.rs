//! Regenerates the `fig1_util` experiment (see DESIGN.md §4).

fn main() {
    let opts = stadvs_bench::options_from_env();
    let _ = stadvs_bench::regenerate("fig1_util", &opts);
}
