//! Simulator throughput probe: events/sec and ns/event per governor, plus
//! allocation counts, event-queue occupancy high-water marks, the
//! same-instant release batch histogram, a fleet-sweep throughput row
//! (nodes/sec and peak RSS), and an end-to-end `fig1 --quick` wall-clock
//! probe.
//!
//! Each row's repetition count is calibrated from one measured
//! steady-state run against a fixed wall-time budget (see
//! [`calibrate_reps`]), so fast workloads are no longer pinned at an
//! arbitrary rep cap and the allocation columns bracket a steady-state
//! run rather than cold scratch growth.
//!
//! Writes `BENCH_sim.json` at the repository root (or the current
//! directory when not launched via cargo). Run through `cargo xtask bench`,
//! which also compares the numbers against the committed
//! `BENCH_baseline.json` and fails on a >2x ns/event regression.
//!
//! Each governor record is emitted as a single JSON line inside the
//! `governors` array, which keeps the file trivially parseable without a
//! JSON dependency (the xtask gate greps the lines).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use stadvs_bench::peak_rss_bytes;
use stadvs_core::sources::{DemandAnalysis, ReclaimedPool};
use stadvs_experiments::experiments::{by_id, RunOptions};
use stadvs_experiments::{make_governor, WorkloadCase};
use stadvs_fleet::{run_fleet, FleetConfig, FleetSpec};
use stadvs_power::{Platform, Processor, Speed};
use stadvs_sim::{
    ActiveJob, ComponentCtx, ComponentId, EventHandler, EventKind, FaultPlan, Governor, JobRecord,
    Kernel, PlatformScratch, PlatformSim, SchedulerView, SimConfig, SimError, SimEvent, SimScratch,
    Simulator, TaskSet,
};
use stadvs_workload::{partitioner_by_name, reference, DemandPattern};

/// A counting wrapper around the system allocator: lets the probe report
/// allocations per simulation run (the hot path is designed to make zero).
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates directly to `System`; the counters are relaxed atomics
// and never influence allocation behaviour.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_snapshot() -> (u64, u64) {
    (
        ALLOCS.load(Ordering::Relaxed),
        BYTES.load(Ordering::Relaxed),
    )
}

struct GovernorRecord {
    name: String,
    workload: &'static str,
    events: u64,
    reps: u32,
    ns_per_event: f64,
    events_per_sec: f64,
    allocs_per_run: u64,
    bytes_per_run: u64,
    /// High-water mark of armed timing-wheel buckets (distinct pending
    /// timestamps beyond the queue's front cache) during one run.
    wheel_occupancy_hwm: u64,
    /// High-water mark of events sharing one pending timestamp.
    bucket_len_hwm: u64,
    /// Same-instant release batch size histogram, summed over the run
    /// (buckets 1, 2, 3, 4, 5–8, 9–16, 17–32, 33+).
    release_batches: [u64; 8],
}

/// Computes a fixed repetition count from one measured run, so every row
/// spends roughly `budget_secs` regardless of workload size. A fixed
/// count (instead of a per-rep deadline check) keeps the rep count — and
/// therefore the measured distribution — stable across runs whose
/// first-rep time wobbles, which previously pinned fast workloads at an
/// arbitrary cap.
fn calibrate_reps(est_secs: f64, budget_secs: f64) -> u32 {
    (budget_secs / est_secs.max(1.0e-9)).clamp(3.0, 20_000.0) as u32
}

/// The probed lineup: every standard governor plus the overhead-aware
/// variant (exercised by tab1 on the xscale platform).
fn probe_lineup() -> Vec<&'static str> {
    let mut names = stadvs_experiments::STANDARD_LINEUP.to_vec();
    names.push("st-edf-oa");
    names
}

fn probe_governor(
    name: &str,
    workload: &'static str,
    case: &WorkloadCase,
    horizon: f64,
    budget_secs: f64,
) -> GovernorRecord {
    let sim = Simulator::new(
        case.tasks.clone(),
        Processor::ideal_continuous(),
        SimConfig::new(horizon).expect("probe horizon is valid"),
    )
    .expect("probe task sets are feasible");
    let mut scratch = SimScratch::new();

    // Cold warm-up run: grows the scratch buffers and faults in code
    // paths. Its allocations are one-time growth, so it is *not* the run
    // the allocation columns bracket.
    let mut governor = make_governor(name).expect("probe lineup resolves");
    let warm = sim
        .run_with_scratch(governor.as_mut(), &case.exec, &mut scratch)
        .expect("probe simulation succeeds");
    let events = warm.events;

    // Steady-state run: every buffer is at its high-water mark, so the
    // bracket reports what one full rep (fresh governor included, as the
    // experiment runner makes one) inherently allocates. Also times the
    // run to calibrate the rep count.
    let mut governor = make_governor(name).expect("probe lineup resolves");
    let (a0, b0) = alloc_snapshot();
    let est_start = Instant::now();
    let steady = sim
        .run_with_scratch(governor.as_mut(), &case.exec, &mut scratch)
        .expect("probe simulation succeeds");
    let est_secs = est_start.elapsed().as_secs_f64();
    let (a1, b1) = alloc_snapshot();
    assert_eq!(steady.events, events, "probe runs must be deterministic");
    let release_batches = steady.release_batches;
    let queue_stats = scratch.queue_stats();

    // Timed repetitions: fresh governor per rep (as the experiment runner
    // does), shared scratch (likewise), fixed calibrated count.
    let reps = calibrate_reps(est_secs, budget_secs);
    let start = Instant::now();
    for _ in 0..reps {
        let mut governor = make_governor(name).expect("probe lineup resolves");
        let out = sim
            .run_with_scratch(governor.as_mut(), &case.exec, &mut scratch)
            .expect("probe simulation succeeds");
        assert_eq!(out.events, events, "probe runs must be deterministic");
    }
    let elapsed = start.elapsed().as_secs_f64();
    let total_events = events as f64 * f64::from(reps);
    GovernorRecord {
        name: name.to_string(),
        workload,
        events,
        reps,
        ns_per_event: elapsed * 1.0e9 / total_events,
        events_per_sec: total_events / elapsed,
        allocs_per_run: a1 - a0,
        bytes_per_run: b1 - b0,
        wheel_occupancy_hwm: queue_stats.wheel_occupancy_hwm,
        bucket_len_hwm: queue_stats.bucket_len_hwm,
        release_batches,
    }
}

/// One row of the slack-analysis microbench (the `analysis` array in
/// `BENCH_sim.json`). The keys are distinct from the governor records on
/// purpose: the xtask regression gate greps for `ns_per_event`, and these
/// rows are informational (the tightened st-edf governor rows gate the
/// same code path end to end).
struct AnalysisRecord {
    workload: &'static str,
    reps: u32,
    analyses: u64,
    ns_per_analysis: f64,
    events_per_analysis: f64,
    allocs_per_analysis: f64,
}

/// In-situ probe governor for the analysis microbench: replays the exact
/// st-edf hook sequence around [`DemandAnalysis::analyze`] (allowance
/// grant before the sweep, settle on completion, drain on idle) but wraps
/// each `analyze` call in its own stopwatch, so the measurement isolates
/// the per-dispatch analysis cost from the rest of the simulator loop.
/// Runs at full speed so the schedule — and therefore the dispatch
/// sequence being measured — is deterministic across reps.
///
/// Deadline safety: always returns [`Speed::FULL`], the no-DVS schedule —
/// a feasible task set cannot miss at full speed.
struct AnalysisProbe {
    pool: ReclaimedPool,
    demand: DemandAnalysis,
    spent_ns: u64,
    slack_sum: f64,
}

impl Governor for AnalysisProbe {
    fn name(&self) -> &str {
        "analysis-probe"
    }

    fn on_start(&mut self, tasks: &TaskSet, _processor: &Processor) {
        self.pool.reset(tasks);
        self.demand.invalidate();
        self.demand.reset_stats();
    }

    fn select_speed(&mut self, view: &SchedulerView<'_>, job: &ActiveJob) -> Speed {
        let _allowance = self.pool.allowance(view, job);
        let start = Instant::now();
        let analysis = self.demand.analyze(view, job, &self.pool);
        self.spent_ns += start.elapsed().as_nanos() as u64;
        // Fold the result into a sink so the call cannot be optimised out.
        self.slack_sum += analysis.slack.min(1.0e9);
        Speed::FULL
    }

    fn on_completion(&mut self, _view: &SchedulerView<'_>, record: &JobRecord) {
        self.pool.settle(record, true);
    }

    fn on_idle(&mut self, _view: &SchedulerView<'_>) {
        self.pool.drain_on_idle();
    }

    fn on_overrun(&mut self, _view: &SchedulerView<'_>, _job: &ActiveJob) {
        self.pool.invalidate_on_overrun();
    }
}

fn probe_analysis(
    workload: &'static str,
    case: &WorkloadCase,
    horizon: f64,
    budget_secs: f64,
) -> AnalysisRecord {
    let sim = Simulator::new(
        case.tasks.clone(),
        Processor::ideal_continuous(),
        SimConfig::new(horizon).expect("probe horizon is valid"),
    )
    .expect("probe task sets are feasible");
    let mut scratch = SimScratch::new();
    let mut probe = AnalysisProbe {
        pool: ReclaimedPool::new(),
        demand: DemandAnalysis::new(1.0),
        spent_ns: 0,
        slack_sum: 0.0,
    };

    // Warm-up run: grows the analysis caches, the merge tree and the sim
    // scratch. The timed reps after it must not allocate at all. Also
    // times the run to calibrate the rep count.
    let est_start = Instant::now();
    sim.run_with_scratch(&mut probe, &case.exec, &mut scratch)
        .expect("probe simulation succeeds");
    let est_secs = est_start.elapsed().as_secs_f64();

    let reps = calibrate_reps(est_secs, budget_secs);
    let mut spent_ns = 0u64;
    let mut analyses = 0u64;
    let mut events_swept = 0u64;
    let (a0, _) = alloc_snapshot();
    for _ in 0..reps {
        probe.spent_ns = 0;
        sim.run_with_scratch(&mut probe, &case.exec, &mut scratch)
            .expect("probe simulation succeeds");
        let stats = probe.demand.stats();
        spent_ns += probe.spent_ns;
        analyses += stats.analyses;
        events_swept += stats.events_swept;
    }
    let (a1, _) = alloc_snapshot();
    assert!(probe.slack_sum.is_finite(), "probe slack sink overflowed");
    let n = analyses as f64;
    AnalysisRecord {
        workload,
        reps,
        analyses: analyses / u64::from(reps),
        ns_per_analysis: spent_ns as f64 / n,
        events_per_analysis: events_swept as f64 / n,
        allocs_per_analysis: (a1 - a0) as f64 / n,
    }
}

/// The multiprocessor probe: the standard slack-analysis governor on a
/// 4-core platform (WFD-partitioned union workload, one fresh governor
/// and demand stream per core), reported as workload `platform4`.
/// `ns_per_event` counts events summed across all cores, so the number is
/// directly comparable to the uniprocessor records.
fn probe_platform(budget_secs: f64) -> GovernorRecord {
    const CORES: usize = 4;
    const HORIZON: f64 = 20.0;
    let case = WorkloadCase::synthetic_union(
        CORES,
        5,
        0.5,
        DemandPattern::Uniform { min: 0.2, max: 1.0 },
        42,
    );
    let report = partitioner_by_name("wfd")
        .expect("wfd is registered")
        .partition(&case.tasks, CORES)
        .expect("positive core count");
    assert!(report.admitted(), "probe workload must fully admit");
    let assignments: Vec<_> = (0..CORES)
        .map(|c| report.core_task_set(&case.tasks, c))
        .collect();
    let sim = PlatformSim::new(
        Platform::homogeneous(CORES, Processor::ideal_continuous()).expect("positive core count"),
        assignments,
        SimConfig::new(HORIZON).expect("probe horizon is valid"),
    )
    .expect("admitted partitions are per-core feasible");
    let execs: Vec<_> = (0..CORES)
        .map(|c| report.core_demand(&case.exec, c))
        .collect();
    let mut scratch = PlatformScratch::new();

    let make = |_core: usize| make_governor("st-edf").expect("probe lineup resolves");

    // Cold warm-up run: grows the per-core scratch set and the stepping
    // kernel's buffers.
    let warm = sim
        .run_faulted_with_scratch(make, &execs, &FaultPlan::NONE, &mut scratch)
        .expect("probe simulation succeeds");
    let events = warm.events();

    // Steady-state run: brackets the inherent per-rep allocations and
    // times one rep for calibration. Release batches are summed across
    // the per-core outcomes (the stepping kernel itself releases nothing).
    let (a0, b0) = alloc_snapshot();
    let est_start = Instant::now();
    let steady = sim
        .run_faulted_with_scratch(make, &execs, &FaultPlan::NONE, &mut scratch)
        .expect("probe simulation succeeds");
    let est_secs = est_start.elapsed().as_secs_f64();
    let (a1, b1) = alloc_snapshot();
    assert_eq!(steady.events(), events, "probe runs must be deterministic");
    let mut release_batches = [0u64; 8];
    for core in &steady.cores {
        for (sum, n) in release_batches.iter_mut().zip(core.release_batches) {
            *sum += n;
        }
    }
    let queue_stats = scratch.queue_stats();

    let reps = calibrate_reps(est_secs, budget_secs);
    let start = Instant::now();
    for _ in 0..reps {
        let out = sim
            .run_faulted_with_scratch(make, &execs, &FaultPlan::NONE, &mut scratch)
            .expect("probe simulation succeeds");
        assert_eq!(out.events(), events, "probe runs must be deterministic");
    }
    let elapsed = start.elapsed().as_secs_f64();
    let total_events = events as f64 * f64::from(reps);
    GovernorRecord {
        name: "st-edf".to_string(),
        workload: "platform4",
        events,
        reps,
        ns_per_event: elapsed * 1.0e9 / total_events,
        events_per_sec: total_events / elapsed,
        allocs_per_run: a1 - a0,
        bytes_per_run: b1 - b0,
        wheel_occupancy_hwm: queue_stats.wheel_occupancy_hwm,
        bucket_len_hwm: queue_stats.bucket_len_hwm,
        release_batches,
    }
}

/// Self-rescheduling load component for the kernel dispatch microbench:
/// every delivery re-emits one event to itself until the shared budget of
/// deliveries is spent, so the measured loop is pure kernel work — queue
/// push, ordered pop, counter update, handler dispatch — with no
/// scheduling logic on top.
struct EchoLoad {
    /// Total deliveries (across all components) after which re-emission
    /// stops and the queue drains.
    budget: u64,
}

impl EventHandler for EchoLoad {
    fn handle(&mut self, event: SimEvent, ctx: &mut ComponentCtx<'_>) -> Result<(), SimError> {
        if ctx.delivered() < self.budget {
            ctx.emit(ctx.now() + 1.0e-6, EventKind::Dispatch, event.target);
        }
        Ok(())
    }
}

/// The kernel dispatch microbench: four self-rescheduling components over
/// one shared kernel, reported as `name: "kernel"` with the standard
/// `ns_per_event` key. This row isolates the typed-event machinery the
/// `Simulator`/`PlatformSim` facades stand on, so a regression in queue
/// ordering or delivery bookkeeping is caught even when the end-to-end
/// governor rows hide it behind scheduler work. Gated at ≤1.3× by
/// `cargo xtask bench`.
fn probe_kernel(budget_secs: f64) -> GovernorRecord {
    const COMPONENTS: usize = 4;
    const EVENTS_PER_REP: u64 = 100_000;
    let mut kernel = Kernel::new();
    let mut loads: Vec<EchoLoad> = (0..COMPONENTS)
        .map(|_| EchoLoad {
            budget: EVENTS_PER_REP,
        })
        .collect();

    let run_once = |kernel: &mut Kernel, loads: &mut [EchoLoad]| {
        kernel.reset(COMPONENTS, None);
        for c in 0..COMPONENTS {
            kernel.schedule(SimEvent {
                time: 0.0,
                kind: EventKind::Dispatch,
                source: ComponentId(c),
                target: ComponentId(c),
            });
        }
        let mut handlers: Vec<&mut dyn EventHandler> = loads
            .iter_mut()
            .map(|l| l as &mut dyn EventHandler)
            .collect();
        kernel.run(&mut handlers).expect("echo loads never fail");
        kernel.delivered()
    };

    // Cold warm-up run: grows the queue buffer and the handler table.
    let events = run_once(&mut kernel, &mut loads);

    // Steady-state run: brackets inherent allocations (zero by design)
    // and times one rep for calibration. The echo load never batches
    // lattice releases, so that histogram stays all-zero here.
    let (a0, b0) = alloc_snapshot();
    let est_start = Instant::now();
    let delivered = run_once(&mut kernel, &mut loads);
    let est_secs = est_start.elapsed().as_secs_f64();
    let (a1, b1) = alloc_snapshot();
    assert_eq!(delivered, events, "probe runs must be deterministic");
    let queue_stats = kernel.queue_stats();

    let reps = calibrate_reps(est_secs, budget_secs);
    let start = Instant::now();
    for _ in 0..reps {
        let delivered = run_once(&mut kernel, &mut loads);
        assert_eq!(delivered, events, "probe runs must be deterministic");
    }
    let elapsed = start.elapsed().as_secs_f64();
    let total_events = events as f64 * f64::from(reps);
    GovernorRecord {
        name: "kernel".to_string(),
        workload: "microqueue",
        events,
        reps,
        ns_per_event: elapsed * 1.0e9 / total_events,
        events_per_sec: total_events / elapsed,
        allocs_per_run: a1 - a0,
        bytes_per_run: b1 - b0,
        wheel_occupancy_hwm: queue_stats.wheel_occupancy_hwm,
        bucket_len_hwm: queue_stats.bucket_len_hwm,
        release_batches: [0; 8],
    }
}

/// The fleet-sweep throughput row: one streaming `run_fleet` sweep over a
/// small grid, reported with the same `ns_per_event` key as the governor
/// records so the xtask regression gate picks it up, plus the fleet-specific
/// rates (nodes/sec) and the process peak RSS. The sweep runs after every
/// other probe, so `peak_rss_bytes` reflects the high-water mark including
/// the fleet path — the acceptance bar is that it stays flat as the node
/// count grows, which the CI fleet job checks at larger scales.
struct FleetRecord {
    nodes: u64,
    events: u64,
    ns_per_event: f64,
    events_per_sec: f64,
    nodes_per_sec: f64,
    allocs_per_run: u64,
    bytes_per_run: u64,
    peak_rss_bytes: u64,
}

fn probe_fleet(quick: bool) -> FleetRecord {
    let spec = if quick {
        FleetSpec::tiny(42)
    } else {
        FleetSpec::tiny(42).with_nodes(4800)
    };
    let config = FleetConfig::default();

    let (a0, b0) = alloc_snapshot();
    let start = Instant::now();
    let outcome = run_fleet(&spec, &config).expect("probe fleet sweep runs");
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    let (a1, b1) = alloc_snapshot();
    assert!(outcome.complete(), "probe fleet must sweep every node");

    let agg = &outcome.aggregate;
    FleetRecord {
        nodes: agg.nodes,
        events: agg.events,
        ns_per_event: elapsed * 1.0e9 / agg.events as f64,
        events_per_sec: agg.events as f64 / elapsed,
        nodes_per_sec: agg.nodes as f64 / elapsed,
        allocs_per_run: a1 - a0,
        bytes_per_run: b1 - b0,
        peak_rss_bytes: peak_rss_bytes(),
    }
}

/// Formats an f64 for JSON: finite, shortest-ish representation.
fn jnum(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_string()
    }
}

fn render_json(
    records: &[GovernorRecord],
    analysis: &[AnalysisRecord],
    fleet: &FleetRecord,
    quick: bool,
    end_to_end_secs: f64,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"stadvs-bench-sim-v1\",\n");
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str("  \"governors\": [\n");
    for r in records {
        let batches: Vec<String> = r.release_batches.iter().map(u64::to_string).collect();
        out.push_str(&format!(
            "    {{ \"name\": \"{}\", \"workload\": \"{}\", \"events\": {}, \"reps\": {}, \
             \"ns_per_event\": {}, \"events_per_sec\": {}, \"allocs_per_run\": {}, \
             \"bytes_per_run\": {}, \"wheel_occupancy_hwm\": {}, \"bucket_len_hwm\": {}, \
             \"release_batches\": [{}] }},\n",
            r.name,
            r.workload,
            r.events,
            r.reps,
            jnum(r.ns_per_event),
            jnum(r.events_per_sec),
            r.allocs_per_run,
            r.bytes_per_run,
            r.wheel_occupancy_hwm,
            r.bucket_len_hwm,
            batches.join(", "),
        ));
    }
    // The fleet sweep rides in the governors array (its `ns_per_event` key
    // is what the xtask gate greps for); the extra fleet-only fields are
    // ignored by the gate.
    out.push_str(&format!(
        "    {{ \"name\": \"fleet\", \"workload\": \"sweep\", \"events\": {}, \"reps\": 1, \
         \"ns_per_event\": {}, \"events_per_sec\": {}, \"allocs_per_run\": {}, \
         \"bytes_per_run\": {}, \"nodes\": {}, \"nodes_per_sec\": {}, \
         \"peak_rss_bytes\": {} }}\n",
        fleet.events,
        jnum(fleet.ns_per_event),
        jnum(fleet.events_per_sec),
        fleet.allocs_per_run,
        fleet.bytes_per_run,
        fleet.nodes,
        jnum(fleet.nodes_per_sec),
        fleet.peak_rss_bytes,
    ));
    out.push_str("  ],\n");
    out.push_str("  \"analysis\": [\n");
    for (i, r) in analysis.iter().enumerate() {
        let comma = if i + 1 < analysis.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{ \"name\": \"st-edf\", \"workload\": \"{}\", \"reps\": {}, \
             \"analyses_per_run\": {}, \"ns_per_analysis\": {}, \
             \"events_per_analysis\": {}, \"allocs_per_analysis\": {} }}{comma}\n",
            r.workload,
            r.reps,
            r.analyses,
            jnum(r.ns_per_analysis),
            jnum(r.events_per_analysis),
            jnum(r.allocs_per_analysis),
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"peak_rss_bytes\": {},\n",
        fleet.peak_rss_bytes
    ));
    out.push_str(&format!(
        "  \"end_to_end\": {{ \"name\": \"fig1_util_quick\", \"seconds\": {} }}\n",
        jnum(end_to_end_secs)
    ));
    out.push_str("}\n");
    out
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick")
        || std::env::var("STADVS_QUICK").is_ok_and(|v| v == "1");
    let budget_secs = if quick { 0.05 } else { 0.25 };

    // Workload A: the synthetic generator the sweep experiments use.
    let synthetic =
        WorkloadCase::synthetic(6, 0.75, DemandPattern::Uniform { min: 0.3, max: 1.0 }, 42);
    // Workload B: the avionics reference set — many tasks with a wide
    // period spread, the heaviest per-event load in the evaluation (tab1).
    let avionics_tasks = reference::all()
        .into_iter()
        .find(|(name, _)| *name == "avionics")
        .expect("avionics reference set exists")
        .1;
    let avionics_horizon = avionics_tasks.max_period();
    let avionics = WorkloadCase::fixed(
        avionics_tasks,
        DemandPattern::Uniform { min: 0.5, max: 1.0 },
        0,
    );

    let mut records = Vec::new();
    for name in probe_lineup() {
        records.push(probe_governor(
            name,
            "synthetic",
            &synthetic,
            20.0,
            budget_secs,
        ));
        records.push(probe_governor(
            name,
            "avionics",
            &avionics,
            avionics_horizon,
            budget_secs,
        ));
        let last = &records[records.len() - 2..];
        for r in last {
            eprintln!(
                "{:<12} {:<10} {:>9.1} ns/event  {:>12.0} events/s  {:>6} allocs/run",
                r.name, r.workload, r.ns_per_event, r.events_per_sec, r.allocs_per_run
            );
        }
    }

    // The multiprocessor stepping-loop probe (4 cores, WFD partition).
    let platform = probe_platform(budget_secs);
    eprintln!(
        "{:<12} {:<10} {:>9.1} ns/event  {:>12.0} events/s  {:>6} allocs/run",
        platform.name,
        platform.workload,
        platform.ns_per_event,
        platform.events_per_sec,
        platform.allocs_per_run
    );
    records.push(platform);

    // The kernel dispatch microbench (pure queue/delivery machinery).
    let kernel = probe_kernel(budget_secs);
    eprintln!(
        "{:<12} {:<10} {:>9.1} ns/event  {:>12.0} events/s  {:>6} allocs/run",
        kernel.name,
        kernel.workload,
        kernel.ns_per_event,
        kernel.events_per_sec,
        kernel.allocs_per_run
    );
    records.push(kernel);

    // The slack-analysis microbench: per-analysis cost in isolation, on
    // the same two workloads the governor rows use.
    let analysis_rows = vec![
        probe_analysis("synthetic", &synthetic, 20.0, budget_secs),
        probe_analysis("avionics", &avionics, avionics_horizon, budget_secs),
    ];
    for r in &analysis_rows {
        eprintln!(
            "{:<12} {:<10} {:>9.1} ns/analysis  {:>7.1} events/analysis  {:>6.2} allocs/analysis",
            "st-edf-anal",
            r.workload,
            r.ns_per_analysis,
            r.events_per_analysis,
            r.allocs_per_analysis
        );
    }

    // End-to-end probe: one full quick fig1 sweep, in-process (no file
    // writes — regeneration is `cargo xtask bench`'s job, not the probe's).
    let fig1 = by_id("fig1_util").expect("fig1_util is registered");
    let start = Instant::now();
    let table = (fig1.run)(&RunOptions::quick());
    let end_to_end_secs = start.elapsed().as_secs_f64();
    assert!(!table.rows.is_empty(), "fig1 probe produced no rows");
    eprintln!("fig1_util --quick end-to-end: {end_to_end_secs:.3} s");

    // The fleet-sweep throughput row (last, so peak RSS covers the whole
    // probe including the streaming path).
    let fleet = probe_fleet(quick);
    eprintln!(
        "{:<12} {:<10} {:>9.1} ns/event  {:>12.0} events/s  {:>8.0} nodes/s  \
         peak RSS {:.1} MiB",
        "fleet",
        "sweep",
        fleet.ns_per_event,
        fleet.events_per_sec,
        fleet.nodes_per_sec,
        fleet.peak_rss_bytes as f64 / (1024.0 * 1024.0)
    );

    let json = render_json(&records, &analysis_rows, &fleet, quick, end_to_end_secs);
    // The compile-time manifest dir pins the workspace root regardless of
    // the invoking process's environment or working directory.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sim.json");
    std::fs::write(path, &json).expect("write BENCH_sim.json");
    println!("{json}");
    eprintln!("wrote {path}");
}
