//! Regenerates every figure and table of the evaluation in report order,
//! writing `results/<id>.{md,csv}` — the source of EXPERIMENTS.md.

use stadvs_experiments::experiments::all;

fn main() {
    let opts = stadvs_bench::options_from_env();
    let start = std::time::Instant::now();
    for experiment in all() {
        let _ = stadvs_bench::regenerate(experiment.id, &opts);
    }
    eprintln!(
        "all experiments regenerated in {:.1} s",
        start.elapsed().as_secs_f64()
    );
}
