//! Regenerates every figure and table of the evaluation in report order,
//! writing `results/<id>.{md,csv}` — the source of EXPERIMENTS.md — and
//! then the `fleet` family artifact, which lives outside the experiment
//! registry (`experiments` cannot depend on `fleet`).

use stadvs_experiments::experiments::{all, RunOptions};

fn main() {
    let opts = stadvs_bench::options_from_env();
    let quick = opts == RunOptions::quick();
    let start = std::time::Instant::now();
    for experiment in all() {
        let _ = stadvs_bench::regenerate(experiment.id, &opts);
    }
    let _ = stadvs_bench::regenerate_fleet(quick, None);
    eprintln!(
        "all experiments regenerated in {:.1} s",
        start.elapsed().as_secs_f64()
    );
}
