//! Regenerates the `fig5_overhead` experiment (see DESIGN.md §4).

fn main() {
    let opts = stadvs_bench::options_from_env();
    let _ = stadvs_bench::regenerate("fig5_overhead", &opts);
}
