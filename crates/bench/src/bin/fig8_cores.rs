//! Regenerates the `fig8_cores` experiment (see DESIGN.md §11).

fn main() {
    let opts = stadvs_bench::options_from_env();
    let _ = stadvs_bench::regenerate("fig8_cores", &opts);
}
