//! Regenerates the `budget` experiment (see DESIGN.md §15).

fn main() {
    let opts = stadvs_bench::options_from_env();
    let _ = stadvs_bench::regenerate("budget", &opts);
}
