//! # stadvs-bench — benchmark harness and figure/table regeneration
//!
//! * `src/bin/<experiment id>.rs` — one binary per reproduced figure/table;
//!   each prints the markdown table and writes `results/<id>.{md,csv}`.
//!   Pass `--quick` (or set `STADVS_QUICK=1`) for a fast smoke run.
//! * `src/bin/all_experiments.rs` — regenerates everything (the source of
//!   `EXPERIMENTS.md` measurements).
//! * `benches/` — Criterion microbenchmarks: simulator throughput per
//!   governor, schedulability analysis (QPA), the YDS optimal schedule,
//!   slack-ledger operations, and workload generation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use stadvs_experiments::experiments::{by_id, RunOptions};
use stadvs_experiments::{write_csv, write_markdown, Table};
use stadvs_fleet::{fleet_table, run_fleet, FleetConfig, FleetSpec};

/// Resolves run options from the process arguments/environment: `--quick`
/// or `STADVS_QUICK=1` selects the reduced preset.
pub fn options_from_env() -> RunOptions {
    let quick = std::env::args().any(|a| a == "--quick")
        || std::env::var("STADVS_QUICK").is_ok_and(|v| v == "1");
    if quick {
        RunOptions::quick()
    } else {
        RunOptions::standard()
    }
}

/// Runs the registered experiment `id`, prints its markdown table, and
/// writes `results/<id>.md` and `results/<id>.csv`.
///
/// # Panics
///
/// Panics if `id` is not registered or the result files cannot be written
/// (binaries crash loudly on harness errors).
pub fn regenerate(id: &str, opts: &RunOptions) -> Table {
    let experiment = by_id(id).unwrap_or_else(|| panic!("unknown experiment `{id}`"));
    eprintln!("running {id} ({})...", experiment.title);
    let table = (experiment.run)(opts);
    println!("{table}");
    write_markdown(&table, format!("results/{id}.md")).expect("write results markdown");
    write_csv(&table, format!("results/{id}.csv")).expect("write results csv");
    if let Some(script) = gnuplot_script(&table, id) {
        std::fs::write(format!("results/{id}.gnuplot"), script).expect("write gnuplot script");
    }
    table
}

/// Runs the fleet sweep (the `fleet` family artifact, which lives outside
/// the experiment registry because `experiments` cannot depend on
/// `fleet`), prints its markdown table, and writes
/// `results/fleet.{md,csv}`. `quick` selects the ~10⁴-node preset instead
/// of the standard ~10⁵; `threads` pins the worker count — the table bits
/// are identical either way (the engine's contract), only the wall-clock
/// changes.
///
/// # Panics
///
/// Panics if the sweep fails, leaves nodes unswept, or the result files
/// cannot be written (binaries crash loudly on harness errors).
pub fn regenerate_fleet(quick: bool, threads: Option<usize>) -> Table {
    let spec = if quick {
        FleetSpec::quick(42)
    } else {
        FleetSpec::standard(42)
    };
    let config = FleetConfig {
        threads,
        ..FleetConfig::default()
    };
    eprintln!(
        "running fleet ({} nodes, {} cells x {} replications)...",
        spec.nodes(),
        spec.cell_count(),
        spec.replications
    );
    let outcome = run_fleet(&spec, &config).expect("fleet sweep runs");
    assert!(outcome.complete(), "an unchecked run sweeps everything");
    let table = fleet_table(&spec, &outcome);
    println!("{table}");
    write_markdown(&table, "results/fleet.md").expect("write results markdown");
    write_csv(&table, "results/fleet.csv").expect("write results csv");
    table
}

/// Peak resident set size of this process, in bytes (`VmHWM` from
/// `/proc/self/status`). Returns 0 on platforms without procfs or when
/// the file is unreadable — callers treat 0 as "unknown", never as an
/// actual measurement.
///
/// The fleet probes report this next to the allocation counters: the
/// streaming engine's acceptance bar is a peak RSS that stays flat as
/// the node count grows.
pub fn peak_rss_bytes() -> u64 {
    if !cfg!(target_os = "linux") {
        return 0;
    }
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

/// A gnuplot script rendering the table as line series over its numeric
/// key column (`gnuplot results/<id>.gnuplot` → `results/<id>.svg`).
/// Returns `None` for tables with non-numeric keys (bar-style tables).
pub fn gnuplot_script(table: &Table, id: &str) -> Option<String> {
    if table.rows.is_empty() || table.rows.iter().any(|(k, _)| k.parse::<f64>().is_err()) {
        return None;
    }
    let mut script = String::new();
    script.push_str(&format!(
        "set terminal svg size 900,560 dynamic background rgb 'white'\n\
         set output '{id}.svg'\n\
         set title \"{}\" noenhanced\n\
         set xlabel \"{}\" noenhanced\n\
         set ylabel \"normalized energy\"\n\
         set key outside right\n\
         set grid\n\
         set datafile separator ','\n",
        table.title.replace('"', "'"),
        table.key_label
    ));
    script.push_str("plot ");
    let series: Vec<String> = table
        .columns
        .iter()
        .enumerate()
        .map(|(i, name)| {
            format!(
                "'{id}.csv' using 1:{} skip 1 with linespoints title \"{name}\" noenhanced",
                i + 2
            )
        })
        .collect();
    script.push_str(&series.join(", \\\n     "));
    script.push('\n');
    Some(script)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_rss_reads_as_a_plausible_number() {
        let rss = peak_rss_bytes();
        if cfg!(target_os = "linux") {
            // A running test binary has certainly touched > 1 MiB.
            assert!(rss > 1 << 20, "VmHWM parse produced {rss}");
        } else {
            assert_eq!(rss, 0);
        }
    }

    #[test]
    fn gnuplot_only_for_numeric_keys() {
        let mut numeric = Table::new("t", "U", vec!["a".to_string()]);
        numeric.push_row("0.5", vec![1.0]);
        let script = gnuplot_script(&numeric, "demo").expect("numeric keys plot");
        assert!(script.contains("'demo.csv' using 1:2"));
        assert!(script.contains("set output 'demo.svg'"));

        let mut labelled = Table::new("t", "pattern", vec!["a".to_string()]);
        labelled.push_row("bursty", vec![1.0]);
        assert!(gnuplot_script(&labelled, "demo").is_none());
    }
}
