//! The event-driven preemptive EDF / DVS simulation engine.

use serde::{Deserialize, Serialize};
use stadvs_power::Processor;

use crate::component::{CoreEngine, CoreScratch, EventHandler, Step, TraceSink};
use crate::event::{ComponentId, EventKind, SimEvent};
use crate::exec::ExecutionSource;
use crate::fault::FaultPlan;
use crate::governor::Governor;
use crate::kernel::{Kernel, KernelStats};
use crate::model::SkipPolicy;
use crate::outcome::SimOutcome;
use crate::task::TaskSet;
use crate::SimError;

/// Absolute tolerance for event-time comparisons (1 ns).
pub const TIME_EPS: f64 = 1.0e-9;
/// Absolute tolerance below which remaining work counts as zero.
pub const WORK_EPS: f64 = 1.0e-12;

/// What to do when a job misses its deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum MissPolicy {
    /// Record the miss in the job record and keep simulating (the default;
    /// lets experiments *count* misses).
    #[default]
    Record,
    /// Abort the simulation with [`SimError::DeadlineMiss`]. Use in tests
    /// that assert the hard-real-time guarantee.
    Fail,
}

/// Simulation parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    horizon: f64,
    record_trace: bool,
    miss_policy: MissPolicy,
    max_events: u64,
    /// Defaulted on deserialization so pre-model configurations load
    /// unchanged.
    #[serde(default)]
    skip_policy: SkipPolicy,
}

impl Default for SimConfig {
    /// The canonical defaults shared by every construction path: a 1 s
    /// horizon, no trace recording, [`MissPolicy::Record`], and a
    /// 20-million-event runaway guard. All call sites (including
    /// [`crate::PlatformSim`]) build on this single definition via the
    /// builder methods — the literals live nowhere else.
    fn default() -> SimConfig {
        SimConfig {
            horizon: 1.0,
            record_trace: false,
            miss_policy: MissPolicy::Record,
            max_events: 20_000_000,
            skip_policy: SkipPolicy::Greedy,
        }
    }
}

impl SimConfig {
    /// Creates a configuration simulating `[0, horizon)` seconds.
    ///
    /// Jobs released strictly before the horizon are simulated; releases at
    /// or after it are not generated. For fair cross-governor comparisons
    /// choose the horizon as a multiple of the hyperperiod (or much larger
    /// than the largest period). Everything else takes the
    /// [`SimConfig::default`] values.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if `horizon` is not finite and
    /// positive.
    pub fn new(horizon: f64) -> Result<SimConfig, SimError> {
        SimConfig::default().with_horizon(horizon)
    }

    /// Replaces the simulated horizon.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if `horizon` is not finite and
    /// positive.
    pub fn with_horizon(mut self, horizon: f64) -> Result<SimConfig, SimError> {
        if !horizon.is_finite() || horizon <= 0.0 {
            return Err(SimError::InvalidConfig {
                field: "horizon",
                value: horizon,
            });
        }
        self.horizon = horizon;
        Ok(self)
    }

    /// Enables or disables full trace recording (off by default; job records
    /// and energy totals are always kept).
    pub fn with_trace(mut self, record: bool) -> SimConfig {
        self.record_trace = record;
        self
    }

    /// Sets the deadline-miss policy.
    pub fn with_miss_policy(mut self, policy: MissPolicy) -> SimConfig {
        self.miss_policy = policy;
        self
    }

    /// Sets the (m,k)-firm skip policy (see [`SkipPolicy`]); irrelevant for
    /// task sets without weakly-hard tasks.
    pub fn with_skip_policy(mut self, policy: SkipPolicy) -> SimConfig {
        self.skip_policy = policy;
        self
    }

    /// Sets the runaway guard (maximum scheduler events).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if `max_events` is zero.
    pub fn with_max_events(mut self, max_events: u64) -> Result<SimConfig, SimError> {
        if max_events == 0 {
            return Err(SimError::InvalidConfig {
                field: "max_events",
                value: 0.0,
            });
        }
        self.max_events = max_events;
        Ok(self)
    }

    /// The simulated horizon in seconds.
    pub fn horizon(&self) -> f64 {
        self.horizon
    }

    /// Whether a full trace is recorded.
    pub fn records_trace(&self) -> bool {
        self.record_trace
    }

    /// The deadline-miss policy.
    pub fn miss_policy(&self) -> MissPolicy {
        self.miss_policy
    }

    /// The (m,k)-firm skip policy.
    pub fn skip_policy(&self) -> SkipPolicy {
        self.skip_policy
    }

    /// The scheduler-event budget before the run aborts.
    pub fn max_events(&self) -> u64 {
        self.max_events
    }
}

/// Reusable working memory for [`Simulator::run_with_scratch`].
///
/// One simulation run needs the per-core scheduling buffers (ready set,
/// release queue, per-task counters) plus the kernel's event queue and
/// counter tables. All of them are sized by the task set, not the
/// horizon, and all of them are fully reset at the start of each run — so
/// a single `SimScratch` can be threaded through thousands of runs (the
/// experiment sweeps do exactly this, one scratch per worker thread)
/// without re-allocating per case.
#[derive(Debug, Clone, Default)]
pub struct SimScratch {
    pub(crate) core: CoreScratch,
    pub(crate) kernel: Kernel,
}

impl SimScratch {
    /// Creates an empty scratch space; buffers grow on first use.
    pub fn new() -> SimScratch {
        SimScratch::default()
    }

    /// The event queue's timing-wheel occupancy counters from the last
    /// kernel-driven run through this scratch (zeroed before each run;
    /// all-zero after direct oracle runs, which bypass the kernel).
    pub fn queue_stats(&self) -> crate::QueueStats {
        self.kernel.queue_stats()
    }
}

/// A reusable simulator for one task set on one processor.
///
/// [`Simulator::run`] is `&self`: the same simulator can replay the same
/// workload under different governors, which is exactly how the energy
/// comparisons are produced.
///
/// ```
/// use stadvs_power::{Processor, Speed};
/// use stadvs_sim::{ConstantRatio, Governor, SchedulerView, ActiveJob,
///                  SimConfig, Simulator, Task, TaskSet};
///
/// struct FullSpeed;
/// impl Governor for FullSpeed {
///     fn name(&self) -> &str { "full" }
///     fn select_speed(&mut self, _: &SchedulerView<'_>, _: &ActiveJob) -> Speed {
///         Speed::FULL
///     }
/// }
///
/// # fn main() -> Result<(), stadvs_sim::SimError> {
/// let tasks = TaskSet::new(vec![Task::new(1.0e-3, 10.0e-3)?])?;
/// let sim = Simulator::new(tasks, Processor::ideal_continuous(), SimConfig::new(0.1)?)?;
/// let outcome = sim.run(&mut FullSpeed, &ConstantRatio::new(0.5))?;
/// assert!(outcome.all_deadlines_met());
/// assert_eq!(outcome.jobs.len(), 10);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Simulator {
    tasks: TaskSet,
    processor: Processor,
    config: SimConfig,
}

impl Simulator {
    /// Creates a simulator.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Infeasible`] if the task set's worst-case density
    /// exceeds 1 — no speed assignment (not even always-full-speed) could
    /// then guarantee deadlines, so simulating it as a *hard* system is
    /// meaningless.
    pub fn new(
        tasks: TaskSet,
        processor: Processor,
        config: SimConfig,
    ) -> Result<Simulator, SimError> {
        let density = tasks.density();
        if density > 1.0 + 1.0e-9 {
            return Err(SimError::Infeasible { density });
        }
        Ok(Simulator {
            tasks,
            processor,
            config,
        })
    }

    /// The scheduled task set.
    pub fn tasks(&self) -> &TaskSet {
        &self.tasks
    }

    /// The platform.
    pub fn processor(&self) -> &Processor {
        &self.processor
    }

    /// The configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Runs one simulation of the configured horizon.
    ///
    /// # Errors
    ///
    /// * [`SimError::DeadlineMiss`] under [`MissPolicy::Fail`] when a job
    ///   completes after its deadline;
    /// * [`SimError::EventLimitExceeded`] if the runaway guard trips.
    pub fn run<G, E>(&self, governor: &mut G, exec: &E) -> Result<SimOutcome, SimError>
    where
        G: Governor + ?Sized,
        E: ExecutionSource + ?Sized,
    {
        self.run_with_scratch(governor, exec, &mut SimScratch::new())
    }

    /// Runs one simulation, reusing `scratch`'s buffers.
    ///
    /// Observably identical to [`Simulator::run`]; callers replaying many
    /// cases (the experiment runner, the benchmarks) thread one scratch per
    /// worker through all of them to avoid per-case allocation churn.
    ///
    /// # Errors
    ///
    /// * [`SimError::DeadlineMiss`] under [`MissPolicy::Fail`] when a job
    ///   completes after its deadline;
    /// * [`SimError::EventLimitExceeded`] if the runaway guard trips.
    pub fn run_with_scratch<G, E>(
        &self,
        governor: &mut G,
        exec: &E,
        scratch: &mut SimScratch,
    ) -> Result<SimOutcome, SimError>
    where
        G: Governor + ?Sized,
        E: ExecutionSource + ?Sized,
    {
        self.run_faulted_with_scratch(governor, exec, &FaultPlan::NONE, scratch)
    }

    /// Runs one simulation under the fault-injection recipe `plan`.
    ///
    /// Injected faults and the resulting degradation are reported in
    /// [`SimOutcome::faults`]. Deadline misses of *contaminated* jobs (jobs
    /// that shared a busy interval with overrun backlog, were aborted, or
    /// were shed) are fault-attributed: they are recorded but never trip
    /// [`MissPolicy::Fail`] — a miss that *does* trip it under fault
    /// injection is an algorithm bug, not an injected fault.
    ///
    /// With [`FaultPlan::none`] this is bit-for-bit identical to
    /// [`Simulator::run`].
    ///
    /// # Errors
    ///
    /// * [`SimError::DeadlineMiss`] under [`MissPolicy::Fail`] when an
    ///   **uncontaminated** job completes after its deadline;
    /// * [`SimError::EventLimitExceeded`] if the runaway guard trips.
    pub fn run_faulted<G, E>(
        &self,
        governor: &mut G,
        exec: &E,
        plan: &FaultPlan,
    ) -> Result<SimOutcome, SimError>
    where
        G: Governor + ?Sized,
        E: ExecutionSource + ?Sized,
    {
        self.run_faulted_with_scratch(governor, exec, plan, &mut SimScratch::new())
    }

    /// [`Simulator::run_faulted`], reusing `scratch`'s buffers.
    ///
    /// # Errors
    ///
    /// See [`Simulator::run_faulted`].
    pub fn run_faulted_with_scratch<G, E>(
        &self,
        governor: &mut G,
        exec: &E,
        plan: &FaultPlan,
        scratch: &mut SimScratch,
    ) -> Result<SimOutcome, SimError>
    where
        G: Governor + ?Sized,
        E: ExecutionSource + ?Sized,
    {
        let SimScratch { core, kernel } = scratch;
        // Fixed component layout: the engine is slot 0, the note sink
        // slot 1 — identical to a 1-core platform's layout, which is what
        // keeps the uniprocessor and platform event accounting bit-equal.
        const ENGINE: ComponentId = ComponentId(0);
        const SINK: ComponentId = ComponentId(1);
        kernel.reset(2, None);
        let mut engine = CoreEngine::new(
            &self.tasks,
            &self.processor,
            &self.config,
            governor,
            exec,
            plan,
            core,
            ENGINE,
            SINK,
            None,
            0,
        );
        kernel.schedule(SimEvent {
            time: 0.0,
            kind: EventKind::Release,
            source: ENGINE,
            target: ENGINE,
        });
        let mut sink = TraceSink;
        {
            let mut handlers: [&mut dyn EventHandler; 2] = [&mut engine, &mut sink];
            kernel.run(&mut handlers)?;
        }
        let stats = kernel.stats_for(ENGINE);
        engine.finish(stats)
    }

    /// Drives the very same [`CoreEngine`] the kernel-backed facade uses,
    /// but directly — no event queue, no kernel clock — as the oracle for
    /// the kernel differential harness: any divergence between this path
    /// and [`Simulator::run_faulted_with_scratch`] is a bug in the kernel
    /// plumbing, not in the engine. [`SimOutcome::kernel`] is zeroed on
    /// this path (there is no kernel to count events).
    ///
    /// Not part of the supported API; use the regular run methods.
    #[doc(hidden)]
    pub fn run_faulted_direct<G, E>(
        &self,
        governor: &mut G,
        exec: &E,
        plan: &FaultPlan,
        scratch: &mut SimScratch,
    ) -> Result<SimOutcome, SimError>
    where
        G: Governor + ?Sized,
        E: ExecutionSource + ?Sized,
    {
        let mut engine = CoreEngine::new(
            &self.tasks,
            &self.processor,
            &self.config,
            governor,
            exec,
            plan,
            &mut scratch.core,
            ComponentId(0),
            ComponentId(1),
            None,
            0,
        );
        loop {
            match engine.step(&mut None)? {
                Step::Continue => {}
                Step::Done => break,
            }
        }
        engine.finish(KernelStats::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{ConstantRatio, WorstCase};
    use crate::governor::SchedulerView;
    use crate::job::ActiveJob;
    use crate::task::{Task, TaskId};
    use crate::trace::SegmentKind;
    use stadvs_power::Speed;

    /// Runs everything at full speed.
    struct FullSpeed;
    impl Governor for FullSpeed {
        fn name(&self) -> &str {
            "full-speed"
        }
        fn select_speed(&mut self, _: &SchedulerView<'_>, _: &ActiveJob) -> Speed {
            Speed::FULL
        }
    }

    /// Runs everything at a fixed speed (possibly missing deadlines).
    struct Fixed(f64);
    impl Governor for Fixed {
        fn name(&self) -> &str {
            "fixed"
        }
        fn select_speed(&mut self, _: &SchedulerView<'_>, _: &ActiveJob) -> Speed {
            Speed::new(self.0).unwrap()
        }
    }

    fn two_task_set() -> TaskSet {
        TaskSet::new(vec![
            Task::new(1.0, 4.0).unwrap(),
            Task::new(2.0, 8.0).unwrap(),
        ])
        .unwrap()
    }

    fn sim(tasks: TaskSet, horizon: f64) -> Simulator {
        Simulator::new(
            tasks,
            stadvs_power::Processor::ideal_continuous(),
            SimConfig::new(horizon).unwrap().with_trace(true),
        )
        .unwrap()
    }

    #[test]
    fn full_speed_edf_meets_all_deadlines() {
        let s = sim(two_task_set(), 32.0);
        let out = s.run(&mut FullSpeed, &WorstCase).unwrap();
        assert!(out.all_deadlines_met());
        // 8 jobs of T0 + 4 jobs of T1 over 32 s.
        assert_eq!(out.jobs.len(), 12);
        assert_eq!(out.completed_jobs(), 12);
        // Busy time = total worst-case work = 8*1 + 4*2 = 16.
        assert!((out.busy_time - 16.0).abs() < 1e-9);
        assert!((out.idle_time - 16.0).abs() < 1e-9);
        // Energy: 16 s at power 1 (cubic, s=1) with free idle.
        assert!((out.total_energy() - 16.0).abs() < 1e-9);
        assert_eq!(out.switches, 0);
    }

    #[test]
    fn half_speed_doubles_busy_time_and_cuts_energy() {
        // U = 0.5, so half speed is exactly the static-optimal point.
        let s = sim(two_task_set(), 32.0);
        let out = s.run(&mut Fixed(0.5), &WorstCase).unwrap();
        assert!(out.all_deadlines_met(), "static U-speed must be feasible");
        assert!((out.busy_time - 32.0).abs() < 1e-9);
        // Energy: 32 s at 0.125 W = 4 J (vs 16 J at full speed).
        assert!((out.total_energy() - 4.0).abs() < 1e-9);
        // One switch: FULL -> 0.5 at t=0.
        assert_eq!(out.switches, 1);
    }

    #[test]
    fn too_slow_speed_misses_and_fail_policy_errors() {
        let s = Simulator::new(
            two_task_set(),
            stadvs_power::Processor::ideal_continuous(),
            SimConfig::new(32.0)
                .unwrap()
                .with_miss_policy(MissPolicy::Fail),
        )
        .unwrap();
        let err = s.run(&mut Fixed(0.25), &WorstCase).unwrap_err();
        assert!(matches!(err, SimError::DeadlineMiss { .. }));

        // Same run under Record policy counts misses instead.
        let s2 = sim(two_task_set(), 32.0);
        let out = s2.run(&mut Fixed(0.25), &WorstCase).unwrap();
        assert!(out.miss_count() > 0);
    }

    #[test]
    fn actual_below_wcet_creates_idle_time() {
        let s = sim(two_task_set(), 32.0);
        let out = s.run(&mut FullSpeed, &ConstantRatio::new(0.5)).unwrap();
        assert!(out.all_deadlines_met());
        assert!((out.busy_time - 8.0).abs() < 1e-9);
        assert!((out.total_energy() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn preemption_is_counted() {
        // T0 = (1, 4) preempts T1 = (6.5, 12): T1 runs in [1,4) and [5,8)
        // and is preempted at t=4 (T0#1, deadline 8) and at t=8 (T0#2,
        // deadline 12 — the tie with T1's deadline breaks to the lower task
        // id), finally finishing at t=9.5.
        let tasks = TaskSet::new(vec![
            Task::new(1.0, 4.0).unwrap(),
            Task::new(6.5, 12.0).unwrap(),
        ])
        .unwrap();
        let s = sim(tasks, 12.0);
        let out = s.run(&mut FullSpeed, &WorstCase).unwrap();
        assert!(out.all_deadlines_met());
        let t1 = out.jobs.iter().find(|r| r.id.task == TaskId(1)).unwrap();
        assert_eq!(t1.preemptions, 2);
    }

    #[test]
    fn edf_order_is_respected_in_trace() {
        let tasks = TaskSet::new(vec![
            Task::new(1.0, 4.0).unwrap(),
            Task::new(2.0, 8.0).unwrap(),
        ])
        .unwrap();
        let s = sim(tasks, 8.0);
        let out = s.run(&mut FullSpeed, &WorstCase).unwrap();
        let trace = out.trace.as_ref().unwrap();
        // First segment must execute T0 (deadline 4 < 8).
        match trace.segments()[0].kind {
            SegmentKind::Execute { job } => assert_eq!(job.task, TaskId(0)),
            ref k => panic!("unexpected first segment {k:?}"),
        }
        // Work conservation per job: trace work equals actual demand.
        for r in out.jobs.iter().filter(|r| r.completion.is_some()) {
            let w = trace.work_executed_for(r.id);
            assert!((w - r.actual).abs() < 1e-9, "job {} work {w}", r.id);
        }
    }

    #[test]
    fn infeasible_task_set_is_rejected() {
        let tasks = TaskSet::new(vec![
            Task::new(3.0, 4.0).unwrap(),
            Task::new(2.0, 4.0).unwrap(),
        ])
        .unwrap();
        let err = Simulator::new(
            tasks,
            stadvs_power::Processor::ideal_continuous(),
            SimConfig::new(8.0).unwrap(),
        )
        .unwrap_err();
        assert!(matches!(err, SimError::Infeasible { .. }));
    }

    #[test]
    fn event_limit_guards_runaway() {
        let s = Simulator::new(
            two_task_set(),
            stadvs_power::Processor::ideal_continuous(),
            SimConfig::new(1.0e6).unwrap().with_max_events(10).unwrap(),
        )
        .unwrap();
        let err = s.run(&mut FullSpeed, &WorstCase).unwrap_err();
        assert!(matches!(err, SimError::EventLimitExceeded { limit: 10 }));
    }

    #[test]
    fn transition_latency_consumes_time() {
        use stadvs_power::{TransitionEnergy, TransitionOverhead};
        let cpu = stadvs_power::Processor::ideal_continuous().with_overhead(
            TransitionOverhead::new(0.5, TransitionEnergy::Constant(0.125)).unwrap(),
        );
        let tasks = TaskSet::new(vec![Task::new(1.0, 8.0).unwrap()]).unwrap();
        let s = Simulator::new(tasks, cpu, SimConfig::new(8.0).unwrap().with_trace(true)).unwrap();
        // Fixed 0.5 speed: one switch at t=0 (0.5 s latency), then the job
        // runs 2 s. Deadline 8 still met.
        let out = s.run(&mut Fixed(0.5), &WorstCase).unwrap();
        assert!(out.all_deadlines_met());
        assert_eq!(out.switches, 1);
        assert!((out.transition_time - 0.5).abs() < 1e-9);
        assert!((out.energy.transition - 0.125).abs() < 1e-12);
        let first = out.jobs.first().unwrap();
        assert!((first.completion.unwrap() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn same_workload_replays_identically() {
        let s = sim(two_task_set(), 64.0);
        let a = s.run(&mut FullSpeed, &ConstantRatio::new(0.7)).unwrap();
        let b = s.run(&mut FullSpeed, &ConstantRatio::new(0.7)).unwrap();
        assert_eq!(a.jobs, b.jobs);
        assert_eq!(a.total_energy(), b.total_energy());
    }

    #[test]
    fn config_validation() {
        assert!(SimConfig::new(0.0).is_err());
        assert!(SimConfig::new(f64::NAN).is_err());
        assert!(SimConfig::new(1.0).unwrap().with_max_events(0).is_err());
        let c = SimConfig::new(2.0).unwrap().with_trace(true);
        assert_eq!(c.horizon(), 2.0);
        assert!(c.records_trace());
        assert_eq!(c.miss_policy(), MissPolicy::Record);
    }

    #[test]
    fn config_default_is_the_single_construction_path() {
        // `new` must be exactly `default` + `with_horizon`: same defaults,
        // one source of truth for the literals.
        let d = SimConfig::default();
        assert_eq!(d.horizon(), 1.0);
        assert!(!d.records_trace());
        assert_eq!(d.miss_policy(), MissPolicy::Record);
        assert_eq!(SimConfig::new(1.0).unwrap(), d);
        assert_eq!(
            SimConfig::new(3.5).unwrap(),
            d.clone().with_horizon(3.5).unwrap()
        );
        assert!(d.with_horizon(-1.0).is_err());
    }

    /// A two-phase governor: run the first half of each job at `low`, then
    /// switch to full speed — exercising the power-management-point path.
    struct TwoPhase {
        low: f64,
        pending: Option<f64>,
    }
    impl Governor for TwoPhase {
        fn name(&self) -> &str {
            "two-phase"
        }
        fn select_speed(&mut self, _: &SchedulerView<'_>, job: &ActiveJob) -> Speed {
            let half = job.wcet / 2.0;
            if job.executed() < half {
                let speed = Speed::new(self.low).unwrap();
                self.pending = Some((half - job.executed()) / speed.ratio());
                speed
            } else {
                self.pending = None;
                Speed::FULL
            }
        }
        fn review_after(&mut self, _: &SchedulerView<'_>, _: &ActiveJob) -> Option<f64> {
            self.pending.take()
        }
    }

    #[test]
    fn review_points_enable_intra_job_speed_changes() {
        // One task (2, 8), worst case. Plan: first 1.0 of work at 0.25
        // (4 s), second 1.0 at full speed (1 s) → completion at 5 < 8.
        let tasks = TaskSet::new(vec![Task::new(2.0, 8.0).unwrap()]).unwrap();
        let s = sim(tasks, 8.0);
        let out = s
            .run(
                &mut TwoPhase {
                    low: 0.25,
                    pending: None,
                },
                &WorstCase,
            )
            .unwrap();
        assert!(out.all_deadlines_met());
        let completion = out.jobs[0].completion.unwrap();
        assert!(
            (completion - 5.0).abs() < 1e-6,
            "completion {completion} != planned 5.0"
        );
        // Without the review point the low speed would have persisted:
        // 2.0 / 0.25 = 8 s — exactly the deadline, but with a different
        // trace. Check the trace really has both phases.
        let trace = out.trace.as_ref().unwrap();
        let speeds: Vec<f64> = trace
            .segments()
            .iter()
            .filter(|seg| matches!(seg.kind, SegmentKind::Execute { .. }))
            .map(|seg| seg.speed.ratio())
            .collect();
        assert_eq!(speeds, vec![0.25, 1.0]);
        assert_eq!(out.switches, 2); // FULL -> 0.25 -> FULL
    }

    #[test]
    fn review_floor_prevents_zero_progress_loops() {
        /// Pathological governor: always demands an immediate re-review.
        struct Spinner;
        impl Governor for Spinner {
            fn name(&self) -> &str {
                "spinner"
            }
            fn select_speed(&mut self, _: &SchedulerView<'_>, _: &ActiveJob) -> Speed {
                Speed::FULL
            }
            fn review_after(&mut self, _: &SchedulerView<'_>, _: &ActiveJob) -> Option<f64> {
                Some(0.0)
            }
        }
        let tasks = TaskSet::new(vec![Task::new(1.0e-3, 4.0e-3).unwrap()]).unwrap();
        let s = Simulator::new(
            tasks,
            stadvs_power::Processor::ideal_continuous(),
            SimConfig::new(0.05).unwrap(),
        )
        .unwrap();
        // 1 µs floor → at most ~1000 reviews per 1 ms job; well under the
        // event limit, and the run completes correctly.
        let out = s.run(&mut Spinner, &WorstCase).unwrap();
        assert!(out.all_deadlines_met());
        assert_eq!(out.completed_jobs(), 13);
    }

    #[test]
    fn all_hard_run_has_quiet_model_report() {
        let s = sim(two_task_set(), 32.0);
        let out = s.run(&mut FullSpeed, &ConstantRatio::new(0.7)).unwrap();
        assert!(out.models.is_quiet(), "{:?}", out.models);
    }

    fn mixed_set() -> TaskSet {
        TaskSet::new(vec![
            Task::new(1.0, 4.0).unwrap(),
            Task::new(1.0, 4.0).unwrap().weakly_hard(1, 2).unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn greedy_skip_alternates_and_records_instant_completions() {
        let s = sim(mixed_set(), 32.0);
        let out = s.run(&mut FullSpeed, &WorstCase).unwrap();
        assert!(out.all_deadlines_met());
        // (1,2) under Greedy: even indices are licensed (the odd
        // predecessor met) and shed; odd indices are not (the even
        // predecessor was a loss).
        assert_eq!(out.models.skips, 4);
        assert_eq!(out.models.weakly_hard_jobs, 8);
        let skipped: Vec<u64> = out.models.skipped.iter().map(|j| j.index).collect();
        assert_eq!(skipped, vec![0, 2, 4, 6]);
        assert!(out.models.skipped.iter().all(|j| j.task == TaskId(1)));
        for r in out.jobs.iter().filter(|r| out.models.is_skipped(r.id)) {
            assert_eq!(r.actual, 0.0);
            assert_eq!(r.completion, Some(r.release));
            assert_eq!(r.wall_time, 0.0);
        }
        // The shed WCETs never execute: busy time is 8 hard + 4 executed
        // weakly-hard jobs.
        assert!((out.busy_time - 12.0).abs() < 1e-9);
    }

    #[test]
    fn never_policy_executes_every_weakly_hard_job() {
        let s = Simulator::new(
            mixed_set(),
            stadvs_power::Processor::ideal_continuous(),
            SimConfig::new(32.0)
                .unwrap()
                .with_skip_policy(SkipPolicy::Never),
        )
        .unwrap();
        let out = s.run(&mut FullSpeed, &WorstCase).unwrap();
        assert!(out.all_deadlines_met());
        assert_eq!(out.models.skips, 0);
        assert!(out.models.skipped.is_empty());
        assert_eq!(out.models.weakly_hard_jobs, 8);
        assert!((out.busy_time - 16.0).abs() < 1e-9);
    }

    #[test]
    fn seeded_policy_replays_bit_identically() {
        let s = Simulator::new(
            mixed_set(),
            stadvs_power::Processor::ideal_continuous(),
            SimConfig::new(64.0)
                .unwrap()
                .with_skip_policy(SkipPolicy::seeded(0.5, 9).unwrap()),
        )
        .unwrap();
        let a = s.run(&mut FullSpeed, &WorstCase).unwrap();
        let b = s.run(&mut FullSpeed, &WorstCase).unwrap();
        assert_eq!(a.jobs, b.jobs);
        assert_eq!(a.models, b.models);
        // Seeded at 0.5 takes some licensed skips but not all 8.
        assert!(a.models.skips < 8, "skips {}", a.models.skips);
    }

    #[test]
    fn sporadic_releases_follow_seeded_gaps() {
        let tasks = TaskSet::new(vec![
            Task::new(1.0, 4.0).unwrap(),
            Task::new(1.0, 10.0).unwrap().sporadic(0.5, 42).unwrap(),
        ])
        .unwrap();
        let sporadic = tasks.task(TaskId(1)).clone();
        let s = sim(tasks, 100.0);
        let out = s.run(&mut FullSpeed, &WorstCase).unwrap();
        assert!(out.all_deadlines_met());
        let releases: Vec<f64> = out
            .jobs
            .iter()
            .filter(|r| r.id.task == TaskId(1))
            .map(|r| r.release)
            .collect();
        assert!(releases.len() > 5, "horizon must cover several arrivals");
        assert_eq!(releases[0], 0.0);
        for (i, pair) in releases.windows(2).enumerate() {
            let gap = pair[1] - pair[0];
            let expected = sporadic.arrival_gap(i as u64 + 1);
            assert!(
                (gap - expected).abs() < 1e-9,
                "gap {gap} != seeded {expected} at #{i}"
            );
            assert!(gap >= 10.0, "sporadic gap compressed below the period");
        }
        assert_eq!(out.models.sporadic_jobs, releases.len() as u64);
        assert_eq!(out.models.skips, 0, "sporadic jobs are never skipped");
    }

    #[test]
    fn frame_boost_floors_dispatches_until_recovery() {
        // One frame task at fixed 0.4 speed: each job takes 5 s against a
        // 4 s deadline, so un-boosted frames miss; the post-miss boost
        // floor (1.0) makes the *next* frame complete on time, which
        // clears the boost again — miss / recover / miss / recover.
        let tasks = TaskSet::new(vec![Task::new(2.0, 4.0).unwrap().frame(1.0).unwrap()]).unwrap();
        let s = Simulator::new(
            tasks,
            stadvs_power::Processor::ideal_continuous(),
            SimConfig::new(16.0).unwrap(),
        )
        .unwrap();
        let out = s.run(&mut Fixed(0.4), &WorstCase).unwrap();
        assert_eq!(out.models.frame_jobs, 4);
        assert_eq!(out.models.frame_misses, 2);
        assert_eq!(out.models.max_frame_miss_streak, 1);
        assert_eq!(out.models.boosted_dispatches, 2);
        assert_eq!(out.miss_count(), 2);
        // The recovered frames really completed on time.
        let completions: Vec<f64> = out.jobs.iter().filter_map(|r| r.completion).collect();
        assert!((completions[1] - 7.0).abs() < 1e-9);
        assert!((completions[3] - 15.0).abs() < 1e-9);
    }

    #[test]
    fn phased_release_creates_initial_idle() {
        let tasks =
            TaskSet::new(vec![Task::new(1.0, 4.0).unwrap().with_phase(2.0).unwrap()]).unwrap();
        let s = sim(tasks, 10.0);
        let out = s.run(&mut FullSpeed, &WorstCase).unwrap();
        // Releases at 2 and 6 only; job at 10 is outside the horizon.
        assert_eq!(out.jobs.len(), 2);
        let trace = out.trace.as_ref().unwrap();
        assert!(matches!(trace.segments()[0].kind, SegmentKind::Idle));
        assert!((trace.segments()[0].end - 2.0).abs() < 1e-9);
    }
}
