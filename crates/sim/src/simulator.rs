//! The event-driven preemptive EDF / DVS simulation engine.

use serde::{Deserialize, Serialize};
use stadvs_power::{Processor, Speed};

use crate::exec::ExecutionSource;
use crate::fault::{FaultEvent, FaultKind, FaultPlan, FaultReport, OverrunPolicy};
use crate::governor::{Governor, SchedulerView};
use crate::job::{ActiveJob, JobId, JobRecord};
use crate::model::{mk_skip_allowed, ModelReport, SkipPolicy};
use crate::outcome::SimOutcome;
use crate::queue::{ReadySet, ReleaseQueue};
use crate::task::{TaskId, TaskKind, TaskSet};
use crate::trace::{Segment, SegmentKind, Trace};
use crate::SimError;

/// Absolute tolerance for event-time comparisons (1 ns).
pub const TIME_EPS: f64 = 1.0e-9;
/// Absolute tolerance below which remaining work counts as zero.
pub const WORK_EPS: f64 = 1.0e-12;

/// What to do when a job misses its deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum MissPolicy {
    /// Record the miss in the job record and keep simulating (the default;
    /// lets experiments *count* misses).
    #[default]
    Record,
    /// Abort the simulation with [`SimError::DeadlineMiss`]. Use in tests
    /// that assert the hard-real-time guarantee.
    Fail,
}

/// Simulation parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    horizon: f64,
    record_trace: bool,
    miss_policy: MissPolicy,
    max_events: u64,
    /// Defaulted on deserialization so pre-model configurations load
    /// unchanged.
    #[serde(default)]
    skip_policy: SkipPolicy,
}

impl Default for SimConfig {
    /// The canonical defaults shared by every construction path: a 1 s
    /// horizon, no trace recording, [`MissPolicy::Record`], and a
    /// 20-million-event runaway guard. All call sites (including
    /// [`crate::PlatformSim`]) build on this single definition via the
    /// builder methods — the literals live nowhere else.
    fn default() -> SimConfig {
        SimConfig {
            horizon: 1.0,
            record_trace: false,
            miss_policy: MissPolicy::Record,
            max_events: 20_000_000,
            skip_policy: SkipPolicy::Greedy,
        }
    }
}

impl SimConfig {
    /// Creates a configuration simulating `[0, horizon)` seconds.
    ///
    /// Jobs released strictly before the horizon are simulated; releases at
    /// or after it are not generated. For fair cross-governor comparisons
    /// choose the horizon as a multiple of the hyperperiod (or much larger
    /// than the largest period). Everything else takes the
    /// [`SimConfig::default`] values.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if `horizon` is not finite and
    /// positive.
    pub fn new(horizon: f64) -> Result<SimConfig, SimError> {
        SimConfig::default().with_horizon(horizon)
    }

    /// Replaces the simulated horizon.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if `horizon` is not finite and
    /// positive.
    pub fn with_horizon(mut self, horizon: f64) -> Result<SimConfig, SimError> {
        if !horizon.is_finite() || horizon <= 0.0 {
            return Err(SimError::InvalidConfig {
                field: "horizon",
                value: horizon,
            });
        }
        self.horizon = horizon;
        Ok(self)
    }

    /// Enables or disables full trace recording (off by default; job records
    /// and energy totals are always kept).
    pub fn with_trace(mut self, record: bool) -> SimConfig {
        self.record_trace = record;
        self
    }

    /// Sets the deadline-miss policy.
    pub fn with_miss_policy(mut self, policy: MissPolicy) -> SimConfig {
        self.miss_policy = policy;
        self
    }

    /// Sets the (m,k)-firm skip policy (see [`SkipPolicy`]); irrelevant for
    /// task sets without weakly-hard tasks.
    pub fn with_skip_policy(mut self, policy: SkipPolicy) -> SimConfig {
        self.skip_policy = policy;
        self
    }

    /// Sets the runaway guard (maximum scheduler events).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if `max_events` is zero.
    pub fn with_max_events(mut self, max_events: u64) -> Result<SimConfig, SimError> {
        if max_events == 0 {
            return Err(SimError::InvalidConfig {
                field: "max_events",
                value: 0.0,
            });
        }
        self.max_events = max_events;
        Ok(self)
    }

    /// The simulated horizon in seconds.
    pub fn horizon(&self) -> f64 {
        self.horizon
    }

    /// Whether a full trace is recorded.
    pub fn records_trace(&self) -> bool {
        self.record_trace
    }

    /// The deadline-miss policy.
    pub fn miss_policy(&self) -> MissPolicy {
        self.miss_policy
    }

    /// The (m,k)-firm skip policy.
    pub fn skip_policy(&self) -> SkipPolicy {
        self.skip_policy
    }
}

/// Reusable working memory for [`Simulator::run_with_scratch`].
///
/// One simulation run needs a ready set, a release queue, per-task release
/// counters, and a due-task staging buffer. All of them are sized by the
/// task set, not the horizon, and all of them are fully reset at the start
/// of each run — so a single `SimScratch` can be threaded through thousands
/// of runs (the experiment sweeps do exactly this, one scratch per worker
/// thread) without re-allocating per case.
#[derive(Debug, Clone, Default)]
pub struct SimScratch {
    ready: ReadySet,
    releases: ReleaseQueue,
    next_index: Vec<u64>,
    due: Vec<usize>,
    /// Per-task flag set by [`OverrunPolicy::SkipNext`]: the task's next
    /// release is suppressed. Fully reset at the start of each run — a
    /// stale flag would silently shed a job of the *next* workload.
    skip_next: Vec<bool>,
    /// Per-task (m,k) outcome rings for weakly-hard tasks: bit `index % 64`
    /// is set iff that job completed on time. Since `k ≤ 64`, the trailing
    /// `k − 1` outcomes a skip decision inspects are always collision-free.
    /// Fully reset per run.
    mk_met: Vec<u64>,
    /// Per-task frame-recovery flag: set while a frame task is past a
    /// missed frame and not yet back on time (its dispatches are boosted).
    frame_boost: Vec<bool>,
    /// Per-task current run of consecutive late frames.
    frame_streak: Vec<u64>,
}

impl SimScratch {
    /// Creates an empty scratch space; buffers grow on first use.
    pub fn new() -> SimScratch {
        SimScratch::default()
    }
}

/// A reusable simulator for one task set on one processor.
///
/// [`Simulator::run`] is `&self`: the same simulator can replay the same
/// workload under different governors, which is exactly how the energy
/// comparisons are produced.
///
/// ```
/// use stadvs_power::{Processor, Speed};
/// use stadvs_sim::{ConstantRatio, Governor, SchedulerView, ActiveJob,
///                  SimConfig, Simulator, Task, TaskSet};
///
/// struct FullSpeed;
/// impl Governor for FullSpeed {
///     fn name(&self) -> &str { "full" }
///     fn select_speed(&mut self, _: &SchedulerView<'_>, _: &ActiveJob) -> Speed {
///         Speed::FULL
///     }
/// }
///
/// # fn main() -> Result<(), stadvs_sim::SimError> {
/// let tasks = TaskSet::new(vec![Task::new(1.0e-3, 10.0e-3)?])?;
/// let sim = Simulator::new(tasks, Processor::ideal_continuous(), SimConfig::new(0.1)?)?;
/// let outcome = sim.run(&mut FullSpeed, &ConstantRatio::new(0.5))?;
/// assert!(outcome.all_deadlines_met());
/// assert_eq!(outcome.jobs.len(), 10);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Simulator {
    tasks: TaskSet,
    processor: Processor,
    config: SimConfig,
}

impl Simulator {
    /// Creates a simulator.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Infeasible`] if the task set's worst-case density
    /// exceeds 1 — no speed assignment (not even always-full-speed) could
    /// then guarantee deadlines, so simulating it as a *hard* system is
    /// meaningless.
    pub fn new(
        tasks: TaskSet,
        processor: Processor,
        config: SimConfig,
    ) -> Result<Simulator, SimError> {
        let density = tasks.density();
        if density > 1.0 + 1.0e-9 {
            return Err(SimError::Infeasible { density });
        }
        Ok(Simulator {
            tasks,
            processor,
            config,
        })
    }

    /// The scheduled task set.
    pub fn tasks(&self) -> &TaskSet {
        &self.tasks
    }

    /// The platform.
    pub fn processor(&self) -> &Processor {
        &self.processor
    }

    /// The configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Runs one simulation of the configured horizon.
    ///
    /// # Errors
    ///
    /// * [`SimError::DeadlineMiss`] under [`MissPolicy::Fail`] when a job
    ///   completes after its deadline;
    /// * [`SimError::EventLimitExceeded`] if the runaway guard trips.
    pub fn run<G, E>(&self, governor: &mut G, exec: &E) -> Result<SimOutcome, SimError>
    where
        G: Governor + ?Sized,
        E: ExecutionSource + ?Sized,
    {
        self.run_with_scratch(governor, exec, &mut SimScratch::new())
    }

    /// Runs one simulation, reusing `scratch`'s buffers.
    ///
    /// Observably identical to [`Simulator::run`]; callers replaying many
    /// cases (the experiment runner, the benchmarks) thread one scratch per
    /// worker through all of them to avoid per-case allocation churn.
    ///
    /// # Errors
    ///
    /// * [`SimError::DeadlineMiss`] under [`MissPolicy::Fail`] when a job
    ///   completes after its deadline;
    /// * [`SimError::EventLimitExceeded`] if the runaway guard trips.
    pub fn run_with_scratch<G, E>(
        &self,
        governor: &mut G,
        exec: &E,
        scratch: &mut SimScratch,
    ) -> Result<SimOutcome, SimError>
    where
        G: Governor + ?Sized,
        E: ExecutionSource + ?Sized,
    {
        self.run_faulted_with_scratch(governor, exec, &FaultPlan::NONE, scratch)
    }

    /// Runs one simulation under the fault-injection recipe `plan`.
    ///
    /// Injected faults and the resulting degradation are reported in
    /// [`SimOutcome::faults`]. Deadline misses of *contaminated* jobs (jobs
    /// that shared a busy interval with overrun backlog, were aborted, or
    /// were shed) are fault-attributed: they are recorded but never trip
    /// [`MissPolicy::Fail`] — a miss that *does* trip it under fault
    /// injection is an algorithm bug, not an injected fault.
    ///
    /// With [`FaultPlan::none`] this is bit-for-bit identical to
    /// [`Simulator::run`].
    ///
    /// # Errors
    ///
    /// * [`SimError::DeadlineMiss`] under [`MissPolicy::Fail`] when an
    ///   **uncontaminated** job completes after its deadline;
    /// * [`SimError::EventLimitExceeded`] if the runaway guard trips.
    pub fn run_faulted<G, E>(
        &self,
        governor: &mut G,
        exec: &E,
        plan: &FaultPlan,
    ) -> Result<SimOutcome, SimError>
    where
        G: Governor + ?Sized,
        E: ExecutionSource + ?Sized,
    {
        self.run_faulted_with_scratch(governor, exec, plan, &mut SimScratch::new())
    }

    /// [`Simulator::run_faulted`], reusing `scratch`'s buffers.
    ///
    /// # Errors
    ///
    /// See [`Simulator::run_faulted`].
    pub fn run_faulted_with_scratch<G, E>(
        &self,
        governor: &mut G,
        exec: &E,
        plan: &FaultPlan,
        scratch: &mut SimScratch,
    ) -> Result<SimOutcome, SimError>
    where
        G: Governor + ?Sized,
        E: ExecutionSource + ?Sized,
    {
        let tasks = &self.tasks;
        let processor = &self.processor;
        let horizon = self.config.horizon;
        let n = tasks.len();

        // Fault-injection state. `faults_on` is checked once per gate so the
        // no-fault path stays branch-predictable; `jittered` additionally
        // gates the sporadic release recurrence, which is float-identical to
        // the periodic one only in the absence of delays.
        let faults_on = !plan.is_none();
        let jittered = faults_on && plan.has_jitter();
        // Task-model state. `models_on` plays the same role for the model
        // bookkeeping that `faults_on` plays for the fault channels: checked
        // once per run, so all-hard task sets simulate bit-identically to
        // the pre-model engine.
        let models_on = !tasks.all_hard();
        let skip_policy = self.config.skip_policy;
        let mut model_report = ModelReport::default();
        let mut skipped_ids: Vec<JobId> = Vec::new();
        let mut report = FaultReport::default();
        let mut contaminated_ids: Vec<JobId> = Vec::new();
        let mut contamination_active = false;
        let mut recovery_start: Option<f64> = None;
        let mut switch_ordinal: u64 = 0;
        // Bumped whenever any task's next-release instant advances, so
        // governors can key release-derived caches on the epoch (see
        // [`SchedulerView::release_epoch`]).
        let mut release_epoch: u64 = 0;

        let mut now = 0.0_f64;
        scratch.ready.reset(n);
        if jittered {
            scratch.releases.reset(
                tasks
                    .iter()
                    .map(|(id, t)| t.phase() + plan.release_delay(id, 0, t.period())),
            );
        } else {
            scratch.releases.reset(tasks.iter().map(|(_, t)| t.phase()));
        }
        scratch.next_index.clear();
        scratch.next_index.resize(n, 0);
        scratch.due.clear();
        scratch.skip_next.clear();
        scratch.skip_next.resize(n, false);
        scratch.mk_met.clear();
        scratch.mk_met.resize(n, 0);
        scratch.frame_boost.clear();
        scratch.frame_boost.resize(n, false);
        scratch.frame_streak.clear();
        scratch.frame_streak.resize(n, 0);
        // Pre-size for the jobs this horizon generates (capped: the records
        // move into the outcome, so a hostile horizon must not pre-book
        // unbounded memory).
        let expected_jobs: usize = tasks
            .iter()
            .map(|(_, t)| {
                if t.phase() >= horizon {
                    0
                } else {
                    ((horizon - t.phase()) / t.period()).ceil() as usize + 1
                }
            })
            .sum();
        let mut records: Vec<JobRecord> = Vec::with_capacity(expected_jobs.min(1 << 20));
        let mut acc = processor.energy_accumulator();
        let mut trace = self.config.record_trace.then(Trace::new);
        let mut current_speed = Speed::FULL;
        let mut last_running: Option<JobId> = None;
        // Set after a speed transition: the job the speed was committed
        // for. If it is still the EDF choice afterwards, the commitment
        // holds and the governor is not re-consulted — re-consulting would
        // let the latency-shrunk slack demand a marginally different speed
        // and chain transitions forever (real platforms commit too).
        let mut committed_for: Option<JobId> = None;
        let mut events: u64 = 0;
        // Runtime invariant audit (debug builds only): the clock must never
        // move backwards, and idle + transition + execution time must tile
        // `[0, now]` — a gap or overlap means the trace and the energy
        // accounting have diverged from wall-clock time.
        let mut audit_prev_now = now;
        let mut audit_accounted = 0.0_f64;

        governor.on_start(tasks, processor);

        loop {
            events += 1;
            if events > self.config.max_events {
                return Err(SimError::EventLimitExceeded {
                    limit: self.config.max_events,
                });
            }
            debug_assert!(
                now >= audit_prev_now,
                "clock moved backwards: {audit_prev_now} -> {now}"
            );
            debug_assert!(
                (audit_accounted - now).abs() <= TIME_EPS * events as f64,
                "timeline not tiled: accounted {audit_accounted}, clock {now}"
            );
            audit_prev_now = now;

            // 1. Release every job due at (or within tolerance of) `now`,
            //    in ascending task order (the release queue stages the due
            //    tasks; each may owe several jobs if its period is tiny).
            scratch.releases.pop_due(now, horizon, &mut scratch.due);
            let mut d = 0;
            while d < scratch.due.len() {
                let i = scratch.due[d];
                while scratch.releases.time(i) <= now + TIME_EPS
                    && scratch.releases.time(i) < horizon
                {
                    let task = tasks.task(TaskId(i));
                    let kind = task.kind();
                    let id = JobId {
                        task: TaskId(i),
                        index: scratch.next_index[i],
                    };
                    let release = scratch.releases.time(i);
                    let fault_shed = faults_on && scratch.skip_next[i];
                    if models_on {
                        match kind {
                            TaskKind::Hard => {}
                            TaskKind::WeaklyHard { .. } => {
                                model_report.weakly_hard_jobs += 1;
                                // The ring slot wraps to this job: its
                                // outcome starts as "lost" and is only set
                                // on an on-time completion. Position
                                // `index % 64` is outside every trailing
                                // window a skip decision inspects (k ≤ 64),
                                // so clearing before deciding is safe.
                                scratch.mk_met[i] &= !(1u64 << (id.index % 64));
                            }
                            TaskKind::Sporadic { .. } => model_report.sporadic_jobs += 1,
                            TaskKind::Frame { .. } => model_report.frame_jobs += 1,
                        }
                    }
                    // A fault-shed (OverrunPolicy::SkipNext) takes priority
                    // over a model skip; the latter only applies to
                    // weakly-hard jobs whose (m,k) contract stays
                    // satisfiable AND which the run's SkipPolicy elects.
                    let mut shed_record: Option<JobRecord> = None;
                    if fault_shed {
                        // OverrunPolicy::SkipNext sheds this release: the
                        // job is recorded as never run and fault-attributed.
                        scratch.skip_next[i] = false;
                        report.skipped_releases += 1;
                        report.events.push(FaultEvent {
                            job: id,
                            at: release,
                            kind: FaultKind::SkippedRelease,
                        });
                        contaminated_ids.push(id);
                        records.push(JobRecord {
                            id,
                            release,
                            deadline: release + task.deadline(),
                            wcet: task.wcet(),
                            actual: 0.0,
                            completion: None,
                            wall_time: 0.0,
                            preemptions: 0,
                        });
                    } else {
                        let mut model_skip = false;
                        if models_on {
                            if let TaskKind::WeaklyHard { m, k } = kind {
                                model_skip = mk_skip_allowed(scratch.mk_met[i], id.index, m, k)
                                    && skip_policy.wants_skip(id);
                            }
                        }
                        if model_skip {
                            // Energy-aware skip: shed the job at release as
                            // an instant zero-work completion. The governor
                            // sees the completion (not the release), so
                            // reclaiming governors bank the entire WCET as
                            // slack. The met bit stays cleared: a skipped
                            // job is a loss in the (m,k) window.
                            model_report.skips += 1;
                            skipped_ids.push(id);
                            shed_record = Some(JobRecord {
                                id,
                                release,
                                deadline: release + task.deadline(),
                                wcet: task.wcet(),
                                actual: 0.0,
                                completion: Some(release),
                                wall_time: 0.0,
                                preemptions: 0,
                            });
                        } else {
                            let actual = exec.actual_work(id.task, task, id.index);
                            let mut job = ActiveJob::new(
                                id,
                                release,
                                release + task.deadline(),
                                task.wcet(),
                                actual,
                            );
                            job.kind = kind;
                            if faults_on {
                                // Multiplying by exactly 1.0 (the
                                // not-selected case) is a bit-exact no-op,
                                // so no branch.
                                job.actual *= plan.overrun_factor(id.task, id.index);
                                if jittered && release > task.release_of(id.index) + TIME_EPS {
                                    report.jittered_releases += 1;
                                    report.events.push(FaultEvent {
                                        job: id,
                                        at: release,
                                        kind: FaultKind::JitteredRelease {
                                            delay: release - task.release_of(id.index),
                                        },
                                    });
                                }
                                if contamination_active {
                                    job.contaminated = true;
                                }
                            }
                            scratch.ready.push(job);
                        }
                    }
                    scratch.next_index[i] += 1;
                    if models_on && matches!(kind, TaskKind::Sporadic { .. }) {
                        // Sporadic recurrence: the next arrival trails this
                        // one by the seeded gap (≥ the period, so arrivals
                        // never precede the periodic lattice — the same
                        // safety class as delay-only jitter). Under a jitter
                        // channel the injected delay adds on top.
                        let gap = task.arrival_gap(scratch.next_index[i]);
                        let next = if jittered {
                            release
                                + gap
                                + plan.release_delay(id.task, scratch.next_index[i], task.period())
                        } else {
                            release + gap
                        };
                        scratch.releases.set_time(i, next);
                    } else if jittered {
                        // Jittered periodic recurrence: delay the nominal
                        // release but never compress inter-arrival times
                        // below the period — compression could overload even
                        // a full-speed EDF schedule, which would make the
                        // injected jitter indistinguishable from an
                        // algorithm bug.
                        let nominal = task.release_of(scratch.next_index[i]);
                        let delay =
                            plan.release_delay(id.task, scratch.next_index[i], task.period());
                        scratch
                            .releases
                            .set_time(i, (nominal + delay).max(release + task.period()));
                    } else {
                        scratch
                            .releases
                            .set_time(i, task.release_of(scratch.next_index[i]));
                    }
                    release_epoch += 1;
                    if !fault_shed {
                        // Due tasks from `d` on are still staged out of the
                        // release heap; fold their instants back in so the
                        // view's next-arrival query stays exact mid-release.
                        let next_arrival = scratch.releases.min_with_pending(&scratch.due[d..]);
                        let view = SchedulerView::new(
                            now,
                            tasks,
                            processor,
                            scratch.ready.jobs(),
                            scratch.releases.times(),
                            next_arrival,
                            current_speed,
                            release_epoch,
                        );
                        if let Some(record) = shed_record {
                            // The skipped job never enters the ready set:
                            // the governor observes an instant zero-work
                            // completion at the release instant.
                            governor.on_completion(&view, &record);
                            records.push(record);
                        } else if let Some(released) = scratch.ready.last() {
                            governor.on_release(&view, released);
                        }
                    }
                }
                scratch.releases.requeue(i);
                d += 1;
            }

            if now >= horizon - TIME_EPS {
                break;
            }

            let next_arrival = scratch.releases.next_arrival();

            // 2. Idle until the next arrival (or the horizon) if nothing is
            //    ready. An empty ready set also ends any overrun recovery
            //    episode: backlog contamination cannot cross an idle
            //    instant.
            if scratch.ready.is_empty() {
                if faults_on && contamination_active {
                    contamination_active = false;
                    if let Some(start) = recovery_start.take() {
                        let recovery = now - start;
                        report.recovery_episodes += 1;
                        report.recovery_time += recovery;
                        if recovery > report.max_recovery_latency {
                            report.max_recovery_latency = recovery;
                        }
                    }
                }
                {
                    let view = SchedulerView::new(
                        now,
                        tasks,
                        processor,
                        scratch.ready.jobs(),
                        scratch.releases.times(),
                        next_arrival,
                        current_speed,
                        release_epoch,
                    );
                    governor.on_idle(&view);
                }
                let wake = next_arrival.min(horizon).max(now);
                if wake > now {
                    acc.add_idle(wake - now);
                    if let Some(tr) = trace.as_mut() {
                        tr.push(Segment {
                            start: now,
                            end: wake,
                            speed: current_speed,
                            kind: SegmentKind::Idle,
                        });
                    }
                    audit_accounted += wake - now;
                    now = wake;
                }
                continue;
            }

            // 3. Dispatch the EDF job (`O(log n)` via the lazy-deletion
            //    heap; the selection order is identical to a linear scan).
            let Some(ji) = scratch.ready.edf_index() else {
                // Unreachable: the ready set was checked non-empty above.
                break;
            };
            let cur_id = scratch.ready.job(ji).id;
            if let Some(prev) = last_running {
                if prev != cur_id {
                    if let Some(p) = scratch.ready.job_mut_by_id(prev) {
                        p.preemptions += 1;
                    }
                }
            }
            last_running = Some(cur_id);

            // 4. Select (and if needed transition to) the execution speed,
            //    and ask for an optional intra-job review point. A job
            //    forced to full speed by an overrun policy bypasses the
            //    governor entirely — its certificate is already invalid.
            let committed = committed_for.take() == Some(cur_id);
            let forced = faults_on && scratch.ready.job(ji).forced_max;
            let mut review: Option<f64> = None;
            let requested = if forced {
                Speed::FULL
            } else if committed {
                current_speed
            } else {
                let view = SchedulerView::new(
                    now,
                    tasks,
                    processor,
                    scratch.ready.jobs(),
                    scratch.releases.times(),
                    next_arrival,
                    current_speed,
                    release_epoch,
                );
                let speed = governor.select_speed(&view, scratch.ready.job(ji));
                review = governor.review_after(&view, scratch.ready.job(ji));
                speed
            };
            let mut speed = processor.quantize_up(requested);
            if models_on && !forced {
                // Frame-recovery boost: after a missed frame, the task's
                // dispatches are floored at its boost ratio until it
                // completes on time again. A speed floor (like the level
                // clamp below) only ever raises speeds, so other tasks'
                // deadlines are never endangered.
                if let TaskKind::Frame { boost, .. } = scratch.ready.job(ji).kind {
                    if scratch.frame_boost[cur_id.task.0] && speed.ratio() < boost {
                        speed = processor.quantize_up(Speed::clamped(boost, processor.min_speed()));
                        model_report.boosted_dispatches += 1;
                    }
                }
            }
            if faults_on && !forced {
                // Level-floor clamp: the platform's lowest operating points
                // are unavailable, so every selection is raised to the
                // floor (deadline-safe: speeds only ever increase).
                if let Some(floor) = plan.level_floor() {
                    if speed.ratio() < floor {
                        speed = processor.quantize_up(Speed::clamped(floor, processor.min_speed()));
                        report.clamped_selections += 1;
                    }
                }
                // Switch-drop channel: each candidate *downward* switch may
                // be dropped (the DVS command was lost; the processor keeps
                // its previous, faster speed). Upward switches always go
                // through — dropping those could cause unattributed misses.
                if speed.ratio() < current_speed.ratio() && !speed.same_point(current_speed) {
                    let ordinal = switch_ordinal;
                    switch_ordinal += 1;
                    if plan.drops_switch(ordinal) {
                        report.dropped_switches += 1;
                        report.events.push(FaultEvent {
                            job: cur_id,
                            at: now,
                            kind: FaultKind::DroppedSwitch,
                        });
                        speed = current_speed;
                    }
                }
            }
            if !speed.same_point(current_speed) {
                acc.add_transition(current_speed, speed);
                current_speed = speed;
                let latency = processor.overhead().latency();
                if latency > 0.0 {
                    let end = (now + latency).min(horizon);
                    if let Some(tr) = trace.as_mut() {
                        tr.push(Segment {
                            start: now,
                            end,
                            speed,
                            kind: SegmentKind::Transition,
                        });
                    }
                    audit_accounted += end - now;
                    now = end;
                    // Re-enter the loop: releases that occurred during the
                    // transition are processed; if this job is still the
                    // EDF choice it executes at the committed speed.
                    committed_for = Some(cur_id);
                    continue;
                }
            }

            // 5. Execute until completion, next arrival, or the horizon —
            //    whichever comes first.
            let job = scratch.ready.job_mut(ji);
            let dt_complete = job.remaining_actual() / speed.ratio();
            let dt_arrival = (next_arrival - now).max(0.0);
            let dt_horizon = horizon - now;
            // Governor-requested power-management point (floored to keep
            // progress even against a misbehaving governor).
            let dt_review = review.map_or(f64::INFINITY, |r| r.max(1.0e-6));
            // Budget bound: a job whose injected demand exceeds its WCET
            // must stop *at* the WCET crossing so the overrun is detected
            // at the exact instant the certificate becomes invalid.
            let dt_budget = if faults_on && !job.overrun && job.actual > job.wcet + WORK_EPS {
                (job.wcet - job.executed).max(0.0) / speed.ratio()
            } else {
                f64::INFINITY
            };
            let dt = dt_complete
                .min(dt_arrival)
                .min(dt_horizon)
                .min(dt_review)
                .min(dt_budget)
                .max(0.0);
            if dt > 0.0 {
                debug_assert!(dt.is_finite(), "non-finite execution step at {now}");
                job.executed += speed.ratio() * dt;
                job.wall_used += dt;
                debug_assert!(
                    job.remaining_actual() >= -WORK_EPS,
                    "job {:?} executed past its actual demand by {}",
                    cur_id,
                    -job.remaining_actual()
                );
                acc.add_execution(speed, dt);
                audit_accounted += dt;
                if let Some(tr) = trace.as_mut() {
                    tr.push(Segment {
                        start: now,
                        end: now + dt,
                        speed,
                        kind: SegmentKind::Execute { job: cur_id },
                    });
                }
                now += dt;
            }

            // 5b. Overrun detection: the instant executed work crosses the
            //     WCET with demand still remaining, the governor's budget
            //     certificate is invalid. Everything currently ready (and
            //     everything released until the backlog drains) is
            //     contaminated: its misses are fault-attributed.
            if faults_on {
                let j = scratch.ready.job(ji);
                let detected = !j.overrun
                    && j.actual > j.wcet + WORK_EPS
                    && j.executed >= j.wcet - WORK_EPS
                    && j.remaining_actual() > WORK_EPS;
                let factor = j.actual / j.wcet;
                if detected {
                    report.overruns += 1;
                    report.events.push(FaultEvent {
                        job: cur_id,
                        at: now,
                        kind: FaultKind::WcetOverrun { factor },
                    });
                    contamination_active = true;
                    if recovery_start.is_none() {
                        recovery_start = Some(now);
                    }
                    for ready_job in scratch.ready.jobs_mut() {
                        ready_job.contaminated = true;
                    }
                    scratch.ready.job_mut(ji).overrun = true;
                    {
                        let view = SchedulerView::new(
                            now,
                            tasks,
                            processor,
                            scratch.ready.jobs(),
                            scratch.releases.times(),
                            next_arrival,
                            current_speed,
                            release_epoch,
                        );
                        governor.on_overrun(&view, scratch.ready.job(ji));
                    }
                    // Exhaustive on purpose (no `_` arm): a new policy
                    // variant must force a decision at this exact point
                    // (enforced by the `fault-policy-exhaustive` lint).
                    match plan.resolve_policy(governor.overrun_policy()) {
                        OverrunPolicy::Abort => {
                            let job = scratch.ready.complete(ji);
                            report.aborted += 1;
                            report.events.push(FaultEvent {
                                job: job.id,
                                at: now,
                                kind: FaultKind::Aborted,
                            });
                            contaminated_ids.push(job.id);
                            last_running = None;
                            records.push(JobRecord {
                                id: job.id,
                                release: job.release,
                                deadline: job.deadline,
                                wcet: job.wcet,
                                actual: job.actual,
                                completion: None,
                                wall_time: job.wall_used,
                                preemptions: job.preemptions,
                            });
                        }
                        OverrunPolicy::CompleteAtMax => {
                            scratch.ready.job_mut(ji).forced_max = true;
                            report.forced_full_speed += 1;
                            report.events.push(FaultEvent {
                                job: cur_id,
                                at: now,
                                kind: FaultKind::ForcedFullSpeed,
                            });
                        }
                        OverrunPolicy::SkipNext => {
                            scratch.ready.job_mut(ji).forced_max = true;
                            report.forced_full_speed += 1;
                            report.events.push(FaultEvent {
                                job: cur_id,
                                at: now,
                                kind: FaultKind::ForcedFullSpeed,
                            });
                            scratch.skip_next[cur_id.task.0] = true;
                        }
                    }
                    continue;
                }
            }

            // 6. Completion handling.
            if scratch.ready.job(ji).remaining_actual() <= WORK_EPS {
                let job = scratch.ready.complete(ji);
                let fault_attributed = faults_on && job.contaminated;
                if fault_attributed {
                    contaminated_ids.push(job.id);
                }
                let record = JobRecord {
                    id: job.id,
                    release: job.release,
                    deadline: job.deadline,
                    wcet: job.wcet,
                    actual: job.actual,
                    completion: Some(now),
                    wall_time: job.wall_used,
                    preemptions: job.preemptions,
                };
                if self.config.miss_policy == MissPolicy::Fail
                    && now > record.deadline + TIME_EPS
                    && !fault_attributed
                {
                    return Err(SimError::DeadlineMiss {
                        job: record.id,
                        deadline: record.deadline,
                        completed: now,
                    });
                }
                last_running = None;
                if models_on {
                    let on_time = !record.missed(horizon);
                    match job.kind {
                        TaskKind::Hard | TaskKind::Sporadic { .. } => {}
                        TaskKind::WeaklyHard { .. } => {
                            if on_time {
                                scratch.mk_met[record.id.task.0] |= 1u64 << (record.id.index % 64);
                            }
                        }
                        TaskKind::Frame { .. } => {
                            let ti = record.id.task.0;
                            if on_time {
                                scratch.frame_boost[ti] = false;
                                scratch.frame_streak[ti] = 0;
                            } else {
                                scratch.frame_boost[ti] = true;
                                scratch.frame_streak[ti] += 1;
                                model_report.frame_misses += 1;
                                if scratch.frame_streak[ti] > model_report.max_frame_miss_streak {
                                    model_report.max_frame_miss_streak = scratch.frame_streak[ti];
                                }
                            }
                        }
                    }
                }
                let view = SchedulerView::new(
                    now,
                    tasks,
                    processor,
                    scratch.ready.jobs(),
                    scratch.releases.times(),
                    next_arrival,
                    current_speed,
                    release_epoch,
                );
                governor.on_completion(&view, &record);
                records.push(record);
            }
        }

        // Jobs still incomplete when the horizon ended.
        for job in scratch.ready.drain_jobs() {
            let fault_attributed = faults_on && job.contaminated;
            if fault_attributed {
                contaminated_ids.push(job.id);
            }
            let record = JobRecord {
                id: job.id,
                release: job.release,
                deadline: job.deadline,
                wcet: job.wcet,
                actual: job.actual,
                completion: None,
                wall_time: job.wall_used,
                preemptions: job.preemptions,
            };
            if self.config.miss_policy == MissPolicy::Fail
                && record.missed(horizon)
                && !fault_attributed
            {
                return Err(SimError::DeadlineMiss {
                    job: record.id,
                    deadline: record.deadline,
                    completed: horizon,
                });
            }
            records.push(record);
        }
        records.sort_by_key(|r| (r.id.task, r.id.index));

        // A recovery episode still open at the horizon is closed there: the
        // latency lower-bounds what a longer horizon would have measured.
        if let Some(start) = recovery_start.take() {
            let recovery = now - start;
            report.recovery_episodes += 1;
            report.recovery_time += recovery;
            if recovery > report.max_recovery_latency {
                report.max_recovery_latency = recovery;
            }
        }
        if faults_on {
            contaminated_ids.sort_unstable();
            contaminated_ids.dedup();
            report.contaminated = contaminated_ids;
        }
        if models_on {
            skipped_ids.sort_unstable();
            skipped_ids.dedup();
            model_report.skipped = skipped_ids;
        }

        let (busy, idle, transition) = match trace.as_ref() {
            Some(tr) => (tr.busy_time(), tr.idle_time(), tr.transition_time()),
            None => {
                let busy: f64 = records.iter().map(|r| r.wall_time).sum();
                (busy, 0.0, 0.0) // idle/transition splits need a trace
            }
        };

        Ok(SimOutcome {
            governor: governor.name().to_string(),
            horizon,
            energy: acc.breakdown(),
            switches: acc.switch_count(),
            jobs: records,
            events,
            busy_time: busy,
            idle_time: idle,
            transition_time: transition,
            faults: report,
            models: model_report,
            analysis: governor.analysis_stats().unwrap_or_default(),
            trace,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{ConstantRatio, WorstCase};
    use crate::task::Task;

    /// Runs everything at full speed.
    struct FullSpeed;
    impl Governor for FullSpeed {
        fn name(&self) -> &str {
            "full-speed"
        }
        fn select_speed(&mut self, _: &SchedulerView<'_>, _: &ActiveJob) -> Speed {
            Speed::FULL
        }
    }

    /// Runs everything at a fixed speed (possibly missing deadlines).
    struct Fixed(f64);
    impl Governor for Fixed {
        fn name(&self) -> &str {
            "fixed"
        }
        fn select_speed(&mut self, _: &SchedulerView<'_>, _: &ActiveJob) -> Speed {
            Speed::new(self.0).unwrap()
        }
    }

    fn two_task_set() -> TaskSet {
        TaskSet::new(vec![
            Task::new(1.0, 4.0).unwrap(),
            Task::new(2.0, 8.0).unwrap(),
        ])
        .unwrap()
    }

    fn sim(tasks: TaskSet, horizon: f64) -> Simulator {
        Simulator::new(
            tasks,
            stadvs_power::Processor::ideal_continuous(),
            SimConfig::new(horizon).unwrap().with_trace(true),
        )
        .unwrap()
    }

    #[test]
    fn full_speed_edf_meets_all_deadlines() {
        let s = sim(two_task_set(), 32.0);
        let out = s.run(&mut FullSpeed, &WorstCase).unwrap();
        assert!(out.all_deadlines_met());
        // 8 jobs of T0 + 4 jobs of T1 over 32 s.
        assert_eq!(out.jobs.len(), 12);
        assert_eq!(out.completed_jobs(), 12);
        // Busy time = total worst-case work = 8*1 + 4*2 = 16.
        assert!((out.busy_time - 16.0).abs() < 1e-9);
        assert!((out.idle_time - 16.0).abs() < 1e-9);
        // Energy: 16 s at power 1 (cubic, s=1) with free idle.
        assert!((out.total_energy() - 16.0).abs() < 1e-9);
        assert_eq!(out.switches, 0);
    }

    #[test]
    fn half_speed_doubles_busy_time_and_cuts_energy() {
        // U = 0.5, so half speed is exactly the static-optimal point.
        let s = sim(two_task_set(), 32.0);
        let out = s.run(&mut Fixed(0.5), &WorstCase).unwrap();
        assert!(out.all_deadlines_met(), "static U-speed must be feasible");
        assert!((out.busy_time - 32.0).abs() < 1e-9);
        // Energy: 32 s at 0.125 W = 4 J (vs 16 J at full speed).
        assert!((out.total_energy() - 4.0).abs() < 1e-9);
        // One switch: FULL -> 0.5 at t=0.
        assert_eq!(out.switches, 1);
    }

    #[test]
    fn too_slow_speed_misses_and_fail_policy_errors() {
        let s = Simulator::new(
            two_task_set(),
            stadvs_power::Processor::ideal_continuous(),
            SimConfig::new(32.0)
                .unwrap()
                .with_miss_policy(MissPolicy::Fail),
        )
        .unwrap();
        let err = s.run(&mut Fixed(0.25), &WorstCase).unwrap_err();
        assert!(matches!(err, SimError::DeadlineMiss { .. }));

        // Same run under Record policy counts misses instead.
        let s2 = sim(two_task_set(), 32.0);
        let out = s2.run(&mut Fixed(0.25), &WorstCase).unwrap();
        assert!(out.miss_count() > 0);
    }

    #[test]
    fn actual_below_wcet_creates_idle_time() {
        let s = sim(two_task_set(), 32.0);
        let out = s.run(&mut FullSpeed, &ConstantRatio::new(0.5)).unwrap();
        assert!(out.all_deadlines_met());
        assert!((out.busy_time - 8.0).abs() < 1e-9);
        assert!((out.total_energy() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn preemption_is_counted() {
        // T0 = (1, 4) preempts T1 = (6.5, 12): T1 runs in [1,4) and [5,8)
        // and is preempted at t=4 (T0#1, deadline 8) and at t=8 (T0#2,
        // deadline 12 — the tie with T1's deadline breaks to the lower task
        // id), finally finishing at t=9.5.
        let tasks = TaskSet::new(vec![
            Task::new(1.0, 4.0).unwrap(),
            Task::new(6.5, 12.0).unwrap(),
        ])
        .unwrap();
        let s = sim(tasks, 12.0);
        let out = s.run(&mut FullSpeed, &WorstCase).unwrap();
        assert!(out.all_deadlines_met());
        let t1 = out.jobs.iter().find(|r| r.id.task == TaskId(1)).unwrap();
        assert_eq!(t1.preemptions, 2);
    }

    #[test]
    fn edf_order_is_respected_in_trace() {
        let tasks = TaskSet::new(vec![
            Task::new(1.0, 4.0).unwrap(),
            Task::new(2.0, 8.0).unwrap(),
        ])
        .unwrap();
        let s = sim(tasks, 8.0);
        let out = s.run(&mut FullSpeed, &WorstCase).unwrap();
        let trace = out.trace.as_ref().unwrap();
        // First segment must execute T0 (deadline 4 < 8).
        match trace.segments()[0].kind {
            SegmentKind::Execute { job } => assert_eq!(job.task, TaskId(0)),
            ref k => panic!("unexpected first segment {k:?}"),
        }
        // Work conservation per job: trace work equals actual demand.
        for r in out.jobs.iter().filter(|r| r.completion.is_some()) {
            let w = trace.work_executed_for(r.id);
            assert!((w - r.actual).abs() < 1e-9, "job {} work {w}", r.id);
        }
    }

    #[test]
    fn infeasible_task_set_is_rejected() {
        let tasks = TaskSet::new(vec![
            Task::new(3.0, 4.0).unwrap(),
            Task::new(2.0, 4.0).unwrap(),
        ])
        .unwrap();
        let err = Simulator::new(
            tasks,
            stadvs_power::Processor::ideal_continuous(),
            SimConfig::new(8.0).unwrap(),
        )
        .unwrap_err();
        assert!(matches!(err, SimError::Infeasible { .. }));
    }

    #[test]
    fn event_limit_guards_runaway() {
        let s = Simulator::new(
            two_task_set(),
            stadvs_power::Processor::ideal_continuous(),
            SimConfig::new(1.0e6).unwrap().with_max_events(10).unwrap(),
        )
        .unwrap();
        let err = s.run(&mut FullSpeed, &WorstCase).unwrap_err();
        assert!(matches!(err, SimError::EventLimitExceeded { limit: 10 }));
    }

    #[test]
    fn transition_latency_consumes_time() {
        use stadvs_power::{TransitionEnergy, TransitionOverhead};
        let cpu = stadvs_power::Processor::ideal_continuous().with_overhead(
            TransitionOverhead::new(0.5, TransitionEnergy::Constant(0.125)).unwrap(),
        );
        let tasks = TaskSet::new(vec![Task::new(1.0, 8.0).unwrap()]).unwrap();
        let s = Simulator::new(tasks, cpu, SimConfig::new(8.0).unwrap().with_trace(true)).unwrap();
        // Fixed 0.5 speed: one switch at t=0 (0.5 s latency), then the job
        // runs 2 s. Deadline 8 still met.
        let out = s.run(&mut Fixed(0.5), &WorstCase).unwrap();
        assert!(out.all_deadlines_met());
        assert_eq!(out.switches, 1);
        assert!((out.transition_time - 0.5).abs() < 1e-9);
        assert!((out.energy.transition - 0.125).abs() < 1e-12);
        let first = out.jobs.first().unwrap();
        assert!((first.completion.unwrap() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn same_workload_replays_identically() {
        let s = sim(two_task_set(), 64.0);
        let a = s.run(&mut FullSpeed, &ConstantRatio::new(0.7)).unwrap();
        let b = s.run(&mut FullSpeed, &ConstantRatio::new(0.7)).unwrap();
        assert_eq!(a.jobs, b.jobs);
        assert_eq!(a.total_energy(), b.total_energy());
    }

    #[test]
    fn config_validation() {
        assert!(SimConfig::new(0.0).is_err());
        assert!(SimConfig::new(f64::NAN).is_err());
        assert!(SimConfig::new(1.0).unwrap().with_max_events(0).is_err());
        let c = SimConfig::new(2.0).unwrap().with_trace(true);
        assert_eq!(c.horizon(), 2.0);
        assert!(c.records_trace());
        assert_eq!(c.miss_policy(), MissPolicy::Record);
    }

    #[test]
    fn config_default_is_the_single_construction_path() {
        // `new` must be exactly `default` + `with_horizon`: same defaults,
        // one source of truth for the literals.
        let d = SimConfig::default();
        assert_eq!(d.horizon(), 1.0);
        assert!(!d.records_trace());
        assert_eq!(d.miss_policy(), MissPolicy::Record);
        assert_eq!(SimConfig::new(1.0).unwrap(), d);
        assert_eq!(
            SimConfig::new(3.5).unwrap(),
            d.clone().with_horizon(3.5).unwrap()
        );
        assert!(d.with_horizon(-1.0).is_err());
    }

    /// A two-phase governor: run the first half of each job at `low`, then
    /// switch to full speed — exercising the power-management-point path.
    struct TwoPhase {
        low: f64,
        pending: Option<f64>,
    }
    impl Governor for TwoPhase {
        fn name(&self) -> &str {
            "two-phase"
        }
        fn select_speed(&mut self, _: &SchedulerView<'_>, job: &ActiveJob) -> Speed {
            let half = job.wcet / 2.0;
            if job.executed() < half {
                let speed = Speed::new(self.low).unwrap();
                self.pending = Some((half - job.executed()) / speed.ratio());
                speed
            } else {
                self.pending = None;
                Speed::FULL
            }
        }
        fn review_after(&mut self, _: &SchedulerView<'_>, _: &ActiveJob) -> Option<f64> {
            self.pending.take()
        }
    }

    #[test]
    fn review_points_enable_intra_job_speed_changes() {
        // One task (2, 8), worst case. Plan: first 1.0 of work at 0.25
        // (4 s), second 1.0 at full speed (1 s) → completion at 5 < 8.
        let tasks = TaskSet::new(vec![Task::new(2.0, 8.0).unwrap()]).unwrap();
        let s = sim(tasks, 8.0);
        let out = s
            .run(
                &mut TwoPhase {
                    low: 0.25,
                    pending: None,
                },
                &WorstCase,
            )
            .unwrap();
        assert!(out.all_deadlines_met());
        let completion = out.jobs[0].completion.unwrap();
        assert!(
            (completion - 5.0).abs() < 1e-6,
            "completion {completion} != planned 5.0"
        );
        // Without the review point the low speed would have persisted:
        // 2.0 / 0.25 = 8 s — exactly the deadline, but with a different
        // trace. Check the trace really has both phases.
        let trace = out.trace.as_ref().unwrap();
        let speeds: Vec<f64> = trace
            .segments()
            .iter()
            .filter(|seg| matches!(seg.kind, SegmentKind::Execute { .. }))
            .map(|seg| seg.speed.ratio())
            .collect();
        assert_eq!(speeds, vec![0.25, 1.0]);
        assert_eq!(out.switches, 2); // FULL -> 0.25 -> FULL
    }

    #[test]
    fn review_floor_prevents_zero_progress_loops() {
        /// Pathological governor: always demands an immediate re-review.
        struct Spinner;
        impl Governor for Spinner {
            fn name(&self) -> &str {
                "spinner"
            }
            fn select_speed(&mut self, _: &SchedulerView<'_>, _: &ActiveJob) -> Speed {
                Speed::FULL
            }
            fn review_after(&mut self, _: &SchedulerView<'_>, _: &ActiveJob) -> Option<f64> {
                Some(0.0)
            }
        }
        let tasks = TaskSet::new(vec![Task::new(1.0e-3, 4.0e-3).unwrap()]).unwrap();
        let s = Simulator::new(
            tasks,
            stadvs_power::Processor::ideal_continuous(),
            SimConfig::new(0.05).unwrap(),
        )
        .unwrap();
        // 1 µs floor → at most ~1000 reviews per 1 ms job; well under the
        // event limit, and the run completes correctly.
        let out = s.run(&mut Spinner, &WorstCase).unwrap();
        assert!(out.all_deadlines_met());
        assert_eq!(out.completed_jobs(), 13);
    }

    #[test]
    fn all_hard_run_has_quiet_model_report() {
        let s = sim(two_task_set(), 32.0);
        let out = s.run(&mut FullSpeed, &ConstantRatio::new(0.7)).unwrap();
        assert!(out.models.is_quiet(), "{:?}", out.models);
    }

    fn mixed_set() -> TaskSet {
        TaskSet::new(vec![
            Task::new(1.0, 4.0).unwrap(),
            Task::new(1.0, 4.0).unwrap().weakly_hard(1, 2).unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn greedy_skip_alternates_and_records_instant_completions() {
        let s = sim(mixed_set(), 32.0);
        let out = s.run(&mut FullSpeed, &WorstCase).unwrap();
        assert!(out.all_deadlines_met());
        // (1,2) under Greedy: even indices are licensed (the odd
        // predecessor met) and shed; odd indices are not (the even
        // predecessor was a loss).
        assert_eq!(out.models.skips, 4);
        assert_eq!(out.models.weakly_hard_jobs, 8);
        let skipped: Vec<u64> = out.models.skipped.iter().map(|j| j.index).collect();
        assert_eq!(skipped, vec![0, 2, 4, 6]);
        assert!(out.models.skipped.iter().all(|j| j.task == TaskId(1)));
        for r in out.jobs.iter().filter(|r| out.models.is_skipped(r.id)) {
            assert_eq!(r.actual, 0.0);
            assert_eq!(r.completion, Some(r.release));
            assert_eq!(r.wall_time, 0.0);
        }
        // The shed WCETs never execute: busy time is 8 hard + 4 executed
        // weakly-hard jobs.
        assert!((out.busy_time - 12.0).abs() < 1e-9);
    }

    #[test]
    fn never_policy_executes_every_weakly_hard_job() {
        let s = Simulator::new(
            mixed_set(),
            stadvs_power::Processor::ideal_continuous(),
            SimConfig::new(32.0)
                .unwrap()
                .with_skip_policy(SkipPolicy::Never),
        )
        .unwrap();
        let out = s.run(&mut FullSpeed, &WorstCase).unwrap();
        assert!(out.all_deadlines_met());
        assert_eq!(out.models.skips, 0);
        assert!(out.models.skipped.is_empty());
        assert_eq!(out.models.weakly_hard_jobs, 8);
        assert!((out.busy_time - 16.0).abs() < 1e-9);
    }

    #[test]
    fn seeded_policy_replays_bit_identically() {
        let s = Simulator::new(
            mixed_set(),
            stadvs_power::Processor::ideal_continuous(),
            SimConfig::new(64.0)
                .unwrap()
                .with_skip_policy(SkipPolicy::seeded(0.5, 9).unwrap()),
        )
        .unwrap();
        let a = s.run(&mut FullSpeed, &WorstCase).unwrap();
        let b = s.run(&mut FullSpeed, &WorstCase).unwrap();
        assert_eq!(a.jobs, b.jobs);
        assert_eq!(a.models, b.models);
        // Seeded at 0.5 takes some licensed skips but not all 8.
        assert!(a.models.skips < 8, "skips {}", a.models.skips);
    }

    #[test]
    fn sporadic_releases_follow_seeded_gaps() {
        let tasks = TaskSet::new(vec![
            Task::new(1.0, 4.0).unwrap(),
            Task::new(1.0, 10.0).unwrap().sporadic(0.5, 42).unwrap(),
        ])
        .unwrap();
        let sporadic = tasks.task(TaskId(1)).clone();
        let s = sim(tasks, 100.0);
        let out = s.run(&mut FullSpeed, &WorstCase).unwrap();
        assert!(out.all_deadlines_met());
        let releases: Vec<f64> = out
            .jobs
            .iter()
            .filter(|r| r.id.task == TaskId(1))
            .map(|r| r.release)
            .collect();
        assert!(releases.len() > 5, "horizon must cover several arrivals");
        assert_eq!(releases[0], 0.0);
        for (i, pair) in releases.windows(2).enumerate() {
            let gap = pair[1] - pair[0];
            let expected = sporadic.arrival_gap(i as u64 + 1);
            assert!(
                (gap - expected).abs() < 1e-9,
                "gap {gap} != seeded {expected} at #{i}"
            );
            assert!(gap >= 10.0, "sporadic gap compressed below the period");
        }
        assert_eq!(out.models.sporadic_jobs, releases.len() as u64);
        assert_eq!(out.models.skips, 0, "sporadic jobs are never skipped");
    }

    #[test]
    fn frame_boost_floors_dispatches_until_recovery() {
        // One frame task at fixed 0.4 speed: each job takes 5 s against a
        // 4 s deadline, so un-boosted frames miss; the post-miss boost
        // floor (1.0) makes the *next* frame complete on time, which
        // clears the boost again — miss / recover / miss / recover.
        let tasks = TaskSet::new(vec![Task::new(2.0, 4.0).unwrap().frame(1.0).unwrap()]).unwrap();
        let s = Simulator::new(
            tasks,
            stadvs_power::Processor::ideal_continuous(),
            SimConfig::new(16.0).unwrap(),
        )
        .unwrap();
        let out = s.run(&mut Fixed(0.4), &WorstCase).unwrap();
        assert_eq!(out.models.frame_jobs, 4);
        assert_eq!(out.models.frame_misses, 2);
        assert_eq!(out.models.max_frame_miss_streak, 1);
        assert_eq!(out.models.boosted_dispatches, 2);
        assert_eq!(out.miss_count(), 2);
        // The recovered frames really completed on time.
        let completions: Vec<f64> = out.jobs.iter().filter_map(|r| r.completion).collect();
        assert!((completions[1] - 7.0).abs() < 1e-9);
        assert!((completions[3] - 15.0).abs() < 1e-9);
    }

    #[test]
    fn phased_release_creates_initial_idle() {
        let tasks =
            TaskSet::new(vec![Task::new(1.0, 4.0).unwrap().with_phase(2.0).unwrap()]).unwrap();
        let s = sim(tasks, 10.0);
        let out = s.run(&mut FullSpeed, &WorstCase).unwrap();
        // Releases at 2 and 6 only; job at 10 is outside the horizon.
        assert_eq!(out.jobs.len(), 2);
        let trace = out.trace.as_ref().unwrap();
        assert!(matches!(trace.segments()[0].kind, SegmentKind::Idle));
        assert!((trace.segments()[0].end - 2.0).abs() < 1e-9);
    }
}
