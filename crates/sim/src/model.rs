//! Task-model run-time policy and reporting: the energy-aware skip policy
//! for (m,k)-firm weakly-hard jobs, and the per-model statistics the
//! simulator attaches to every outcome.
//!
//! Skipping is the weakly-hard energy lever: a job of a
//! [`TaskKind::WeaklyHard`](crate::TaskKind::WeaklyHard) task may be shed at
//! its release — recorded as an instant zero-work completion, with the whole
//! WCET handed back to the governor as reclaimable slack — but **only** when
//! the sliding-window contract stays satisfiable. The admissibility rule is
//! the trailing-window check implemented by
//! [`MkWindow::skip_allowed`](crate::MkWindow::skip_allowed): a skip is
//! licensed iff at least `m` of the task's last `k − 1` job outcomes met
//! their deadline (outcomes before the first job count as met). Provided
//! every non-skipped job meets its deadline, that rule keeps *every* window
//! of `k` consecutive jobs at `≥ m` deadlines met. The [`SkipPolicy`] below
//! only ever *narrows* this licensed set — it decides which licensed skips
//! to take, never whether an unlicensed skip is allowed.

use serde::{Deserialize, Serialize};

use crate::fault::splitmix64;
use crate::job::JobId;
use crate::SimError;

/// Hash-stream separator for seeded skip draws (same family as the
/// fault-plan stream constants, decorrelated by value).
const STREAM_SKIP: u64 = 0x0F4A_11A5_000B;

/// Which *licensed* (m,k)-firm skips the simulator takes.
///
/// All variants are governor-invariant: a skip decision is a pure function
/// of the task's job-outcome history and (for [`SkipPolicy::Seeded`]) a
/// deterministic per-job hash draw — never of the governor's speed choices.
/// In-contract (when every non-skipped job meets its deadline) the outcome
/// history itself is governor-invariant, so the whole skip stream is too;
/// the differential harness pins exactly that.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum SkipPolicy {
    /// Skip every licensed job (the default): the maximal energy reclaim
    /// the (m,k) contracts admit.
    #[default]
    Greedy,
    /// Never skip; weakly-hard tasks execute like hard ones.
    Never,
    /// Skip a licensed job iff an independent per-job draw keyed on `seed`
    /// falls below `probability` — a partial-shedding policy for sweeping
    /// the energy/quality trade-off. Construct via [`SkipPolicy::seeded`].
    Seeded {
        /// Probability of taking a licensed skip, in `[0, 1]`.
        probability: f64,
        /// Seed of the per-job draws.
        seed: u64,
    },
}

impl SkipPolicy {
    /// A validated [`SkipPolicy::Seeded`] policy.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] unless `probability ∈ [0, 1]`.
    pub fn seeded(probability: f64, seed: u64) -> Result<SkipPolicy, SimError> {
        if !probability.is_finite() || !(0.0..=1.0).contains(&probability) {
            return Err(SimError::InvalidConfig {
                field: "skip_probability",
                value: probability,
            });
        }
        Ok(SkipPolicy::Seeded { probability, seed })
    }

    /// Whether the policy takes a *licensed* skip of `job`. Pure in
    /// `(self, job)`.
    pub fn wants_skip(&self, job: JobId) -> bool {
        match *self {
            SkipPolicy::Greedy => true,
            SkipPolicy::Never => false,
            SkipPolicy::Seeded { probability, seed } => {
                let h = splitmix64(
                    seed ^ splitmix64(STREAM_SKIP)
                        ^ splitmix64(job.task.0 as u64 ^ splitmix64(job.index)),
                );
                // 53 high bits → exactly representable uniform grid in [0, 1).
                // xtask:allow(as-cast): not in crates/core, exact 53-bit conversion
                let u = (h >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0);
                u < probability
            }
        }
    }
}

/// Whether shedding the job at `index` of an (m,k)-firm task is licensed,
/// given the task's raw outcome ring `bits` (bit `j % 64` set iff job `j`
/// met its deadline; only the trailing `k − 1` outcomes are inspected, so
/// `k ≤ 64` makes the ring collision-free).
///
/// The rule: a skip is licensed iff at least `m` of the last `k − 1` job
/// outcomes met their deadline, where outcomes before job 0 count as met.
/// Provided every non-skipped job meets its deadline, this keeps every
/// window of `k` consecutive jobs at `≥ m` met: for any window `W` ending
/// at or after the skipped job, the skipped position is `W`'s *only* loss
/// not already visible in the trailing window the rule inspected, and that
/// window already certified `m` survivors. This is the single shared
/// implementation — the simulator's release-time decision and the audit's
/// replay ([`MkWindow`](crate::MkWindow)) both call it.
pub(crate) fn mk_skip_allowed(bits: u64, index: u64, m: u32, k: u32) -> bool {
    let lookback = u64::from(k - 1);
    let real = lookback.min(index);
    // Outcomes before job 0 count as met: the window is padded with
    // virtual successes at startup.
    // xtask:allow(as-cast): not in crates/core, lookback − real ≤ 63
    let mut met = (lookback - real) as u32;
    for j in (index - real)..index {
        // xtask:allow(as-cast): not in crates/core, single-bit value
        met += ((bits >> (j % 64)) & 1) as u32;
    }
    met >= m
}

/// Per-model statistics of one simulation run.
///
/// Always present on a [`SimOutcome`](crate::SimOutcome);
/// [`ModelReport::is_quiet`] on all-hard runs. The audit referee recomputes
/// every counter from the job records and flags divergence.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ModelReport {
    /// Weakly-hard jobs shed at release under the run's [`SkipPolicy`].
    pub skips: u64,
    /// Jobs released by weakly-hard tasks (skipped ones included).
    pub weakly_hard_jobs: u64,
    /// Jobs released by sporadic tasks.
    pub sporadic_jobs: u64,
    /// Jobs released by frame tasks.
    pub frame_jobs: u64,
    /// Dispatches whose speed was raised to a frame task's boost floor.
    pub boosted_dispatches: u64,
    /// Frame jobs that completed after their deadline.
    pub frame_misses: u64,
    /// The longest run of consecutive late frames of any single frame task.
    pub max_frame_miss_streak: u64,
    /// The shed weakly-hard jobs, sorted and deduplicated.
    pub skipped: Vec<JobId>,
}

impl ModelReport {
    /// Whether the run saw no model activity at all (always true for
    /// all-hard task sets).
    pub fn is_quiet(&self) -> bool {
        self.skips == 0
            && self.weakly_hard_jobs == 0
            && self.sporadic_jobs == 0
            && self.frame_jobs == 0
            && self.boosted_dispatches == 0
            && self.frame_misses == 0
            && self.max_frame_miss_streak == 0
            && self.skipped.is_empty()
    }

    /// Whether `job` was shed at release (see [`ModelReport::skipped`]).
    pub fn is_skipped(&self, job: JobId) -> bool {
        self.skipped.binary_search(&job).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskId;

    fn jid(task: usize, index: u64) -> JobId {
        JobId {
            task: TaskId(task),
            index,
        }
    }

    #[test]
    fn greedy_and_never_are_constant() {
        for i in 0..32 {
            assert!(SkipPolicy::Greedy.wants_skip(jid(1, i)));
            assert!(!SkipPolicy::Never.wants_skip(jid(1, i)));
        }
    }

    #[test]
    fn seeded_validates_probability() {
        assert!(SkipPolicy::seeded(0.0, 1).is_ok());
        assert!(SkipPolicy::seeded(1.0, 1).is_ok());
        assert!(SkipPolicy::seeded(-0.1, 1).is_err());
        assert!(SkipPolicy::seeded(1.1, 1).is_err());
        assert!(SkipPolicy::seeded(f64::NAN, 1).is_err());
    }

    #[test]
    fn seeded_is_deterministic_and_seed_sensitive() {
        let a = SkipPolicy::seeded(0.5, 11).unwrap();
        let b = SkipPolicy::seeded(0.5, 12).unwrap();
        let da: Vec<bool> = (0..64).map(|i| a.wants_skip(jid(2, i))).collect();
        let da2: Vec<bool> = (0..64).map(|i| a.wants_skip(jid(2, i))).collect();
        let db: Vec<bool> = (0..64).map(|i| b.wants_skip(jid(2, i))).collect();
        assert_eq!(da, da2);
        assert_ne!(da, db);
        let hits = da.iter().filter(|&&s| s).count();
        assert!(hits > 8 && hits < 56, "hits {hits}");
    }

    #[test]
    fn seeded_extremes() {
        let always = SkipPolicy::seeded(1.0, 3).unwrap();
        let never = SkipPolicy::seeded(0.0, 3).unwrap();
        for i in 0..32 {
            assert!(always.wants_skip(jid(0, i)));
            assert!(!never.wants_skip(jid(0, i)));
        }
    }

    #[test]
    fn report_accessors() {
        let mut r = ModelReport::default();
        assert!(r.is_quiet());
        assert!(!r.is_skipped(jid(0, 0)));
        r.skips = 2;
        r.weakly_hard_jobs = 5;
        r.skipped = vec![jid(0, 1), jid(1, 4)];
        assert!(!r.is_quiet());
        assert!(r.is_skipped(jid(0, 1)));
        assert!(r.is_skipped(jid(1, 4)));
        assert!(!r.is_skipped(jid(1, 3)));
    }
}
