//! Partitioned multiprocessor simulation: N per-core EDF-DVS simulators.
//!
//! Under partitioned EDF there is no migration: each core schedules its
//! own task subset with its own governor, its own speed state, and its
//! own energy account. [`PlatformSim`] drives the N per-core engines as
//! components of one shared [`crate::Kernel`]: every core is a
//! pre-registered [`crate::EventHandler`] slot, the kernel pops the
//! per-core wake events in global `(time, seq, component)` order, and
//! each delivery executes exactly one step of that core's legacy loop.
//! Because partitioned cores share no mutable state, this interleaving is
//! bit-identical per core to running the streams sequentially — and a
//! 1-core platform is *bit-identical* to the uniprocessor [`Simulator`]
//! (the differential tests pin both).
//!
//! What the shared kernel adds over sequential stepping is *coupling*:
//! [`PlatformSim::run_budgeted`] threads a [`BudgetLedger`] through the
//! kernel's shared state, and because grants happen in global time order
//! the ledger sees a time-consistent picture of all cores' draws — the
//! platform-level power cap the old per-core loop could not express.
//!
//! Each core gets a **fresh governor instance** from the caller's factory
//! (governors carry per-run state; sharing one across cores would leak
//! slack estimates between task subsets), its own scratch buffers (from
//! [`PlatformScratch`]), and the fault plan applied independently. Cores
//! with no assigned tasks idle for the whole horizon and are charged idle
//! energy — an "empty" core is still powered.

use crate::budget::{BudgetLedger, BudgetReport};
use crate::component::{CoreEngine, CoreScratch, EventHandler, TraceSink};
use crate::event::{ComponentId, EventKind, SimEvent};
use crate::exec::ExecutionSource;
use crate::fault::{FaultPlan, FaultReport};
use crate::governor::Governor;
use crate::kernel::{Kernel, KernelStats};
use crate::outcome::SimOutcome;
use crate::simulator::{SimConfig, Simulator};
use crate::task::TaskSet;
use crate::trace::{Segment, SegmentKind, Trace};
use crate::SimError;
use stadvs_power::{Platform, PlatformEnergy, Processor};

use crate::audit::{audit_outcome, AuditReport};

/// Reusable per-core working memory for [`PlatformSim`] runs.
///
/// One [`CoreScratch`] per core plus the shared kernel, grown on demand
/// and reused across runs — the platform event path never allocates per
/// event.
#[derive(Debug, Clone, Default)]
pub struct PlatformScratch {
    per_core: Vec<CoreScratch>,
    kernel: Kernel,
    /// Idle cores' governor names, rebuilt each run (the `String`s are
    /// per-run, the `Vec` spine is reused).
    idle_names: Vec<Option<String>>,
}

impl PlatformScratch {
    /// Creates an empty scratch space; per-core buffers grow on first use.
    pub fn new() -> PlatformScratch {
        PlatformScratch::default()
    }

    /// Ensures one [`CoreScratch`] exists per core (grows, never shrinks).
    fn ensure(&mut self, cores: usize) {
        if self.per_core.len() < cores {
            self.per_core.resize_with(cores, CoreScratch::default);
        }
    }

    /// The shared event queue's timing-wheel occupancy counters from the
    /// last run through this scratch (zeroed before each run).
    pub fn queue_stats(&self) -> crate::QueueStats {
        self.kernel.queue_stats()
    }
}

/// The aggregated result of one multiprocessor run: one [`SimOutcome`]
/// per core, in core order, plus platform-level accessors.
#[derive(Debug, Clone, PartialEq)]
pub struct PlatformOutcome {
    /// Name of the governor family driving every core.
    pub governor: String,
    /// The shared horizon, in seconds.
    pub horizon: f64,
    /// Per-core outcomes (idle cores report zero jobs and pure idle time).
    pub cores: Vec<SimOutcome>,
}

impl PlatformOutcome {
    /// The outcome of one core.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn core(&self, core: usize) -> &SimOutcome {
        &self.cores[core]
    }

    /// The platform-level energy account (per-core breakdowns + switches).
    pub fn energy(&self) -> PlatformEnergy {
        PlatformEnergy::from_cores(self.cores.iter().map(|o| (o.energy, o.switches)).collect())
    }

    /// Total energy across all cores, in joules.
    pub fn total_energy(&self) -> f64 {
        self.cores.iter().map(SimOutcome::total_energy).sum()
    }

    /// Total speed switches across all cores.
    pub fn switches(&self) -> u64 {
        self.cores.iter().map(|o| o.switches).sum()
    }

    /// Total scheduler events across all cores.
    pub fn events(&self) -> u64 {
        self.cores.iter().map(|o| o.events).sum()
    }

    /// Total deadline misses across all cores.
    pub fn miss_count(&self) -> usize {
        self.cores.iter().map(SimOutcome::miss_count).sum()
    }

    /// Total completed jobs across all cores.
    pub fn completed_jobs(&self) -> usize {
        self.cores.iter().map(SimOutcome::completed_jobs).sum()
    }

    /// Total deadline misses attributable to injected faults.
    pub fn fault_attributed_misses(&self) -> usize {
        self.cores
            .iter()
            .map(SimOutcome::fault_attributed_misses)
            .sum()
    }

    /// Total deadline misses **not** attributable to injected faults (a
    /// non-zero count under injection is an algorithm bug on some core).
    pub fn unattributed_misses(&self) -> usize {
        self.cores.iter().map(SimOutcome::unattributed_misses).sum()
    }

    /// Whether every due job on every core met its deadline.
    pub fn all_deadlines_met(&self) -> bool {
        self.cores.iter().all(SimOutcome::all_deadlines_met)
    }
}

/// A reusable multiprocessor simulator: one [`Simulator`] per non-idle
/// core of a [`Platform`], all sharing one [`SimConfig`].
///
/// ```
/// use stadvs_power::{Platform, Processor};
/// use stadvs_sim::{PlatformSim, SimConfig, Task, TaskSet};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let platform = Platform::homogeneous(2, Processor::ideal_continuous())?;
/// let core0 = TaskSet::new(vec![Task::new(1.0e-3, 10.0e-3)?])?;
/// let core1 = TaskSet::new(vec![Task::new(2.0e-3, 10.0e-3)?])?;
/// let sim = PlatformSim::new(platform, vec![Some(core0), Some(core1)],
///                            SimConfig::new(0.1)?)?;
/// assert_eq!(sim.core_count(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PlatformSim {
    platform: Platform,
    cores: Vec<Option<Simulator>>,
    config: SimConfig,
}

impl PlatformSim {
    /// Creates a platform simulator from per-core task assignments
    /// (`None` = the core idles for the whole horizon).
    ///
    /// # Errors
    ///
    /// * [`SimError::PlatformMismatch`] if `assignments` does not have one
    ///   entry per platform core;
    /// * [`SimError::Infeasible`] if any core's task subset has worst-case
    ///   density above 1 (the partitioner admitted an overloaded core).
    pub fn new(
        platform: Platform,
        assignments: Vec<Option<TaskSet>>,
        config: SimConfig,
    ) -> Result<PlatformSim, SimError> {
        if assignments.len() != platform.len() {
            return Err(SimError::PlatformMismatch {
                cores: platform.len(),
                provided: assignments.len(),
            });
        }
        let mut cores = Vec::with_capacity(assignments.len());
        for (index, tasks) in assignments.into_iter().enumerate() {
            let sim = match tasks {
                Some(t) => {
                    // xtask:allow(hot-path-alloc): build-time clone, once per core
                    let processor = platform.core(index).clone();
                    // xtask:allow(hot-path-alloc): build-time clone, once per core
                    let core_config = config.clone();
                    Some(Simulator::new(t, processor, core_config)?)
                }
                None => None,
            };
            cores.push(sim);
        }
        Ok(PlatformSim {
            platform,
            cores,
            config,
        })
    }

    /// A single-core platform wrapping the legacy uniprocessor model —
    /// bit-identical to running [`Simulator`] directly.
    ///
    /// # Errors
    ///
    /// Same as [`PlatformSim::new`].
    pub fn uniprocessor(
        tasks: TaskSet,
        processor: Processor,
        config: SimConfig,
    ) -> Result<PlatformSim, SimError> {
        PlatformSim::new(Platform::uniprocessor(processor), vec![Some(tasks)], config)
    }

    /// The platform.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// The shared configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Number of cores.
    pub fn core_count(&self) -> usize {
        self.cores.len()
    }

    /// The task set assigned to a core, or `None` for an idle core.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn core_tasks(&self, core: usize) -> Option<&TaskSet> {
        self.cores[core].as_ref().map(Simulator::tasks)
    }

    /// Runs every core over the shared horizon with a fresh governor per
    /// core and the *same* demand source applied to each core's local task
    /// ids. For partitioned workloads that need original-id demand streams,
    /// use [`PlatformSim::run_faulted_with_scratch`] with per-core sources
    /// (e.g. `stadvs-workload`'s `PartitionReport::core_demand`).
    ///
    /// # Errors
    ///
    /// Same as [`PlatformSim::run_faulted_with_scratch`].
    pub fn run<G, E>(&self, make_governor: G, exec: &E) -> Result<PlatformOutcome, SimError>
    where
        G: FnMut(usize) -> Box<dyn Governor>,
        E: ExecutionSource + ?Sized,
    {
        let execs: Vec<&E> = self.cores.iter().map(|_| exec).collect();
        self.run_faulted_with_scratch(
            make_governor,
            &execs,
            &FaultPlan::NONE,
            &mut PlatformScratch::new(),
        )
    }

    /// Like [`PlatformSim::run`], but with a fault plan (applied to every
    /// core independently).
    ///
    /// # Errors
    ///
    /// Same as [`PlatformSim::run_faulted_with_scratch`].
    pub fn run_faulted<G, E>(
        &self,
        make_governor: G,
        exec: &E,
        plan: &FaultPlan,
    ) -> Result<PlatformOutcome, SimError>
    where
        G: FnMut(usize) -> Box<dyn Governor>,
        E: ExecutionSource + ?Sized,
    {
        let execs: Vec<&E> = self.cores.iter().map(|_| exec).collect();
        self.run_faulted_with_scratch(make_governor, &execs, plan, &mut PlatformScratch::new())
    }

    /// The full-control run: a fresh governor per core from `make_governor`,
    /// one demand source per core in `execs` (entries for idle cores are
    /// never queried), `plan` injected into every core independently (the
    /// plan's seeded draws key on each core's *local* task ids), and
    /// reusable scratch memory.
    ///
    /// All cores are driven as components of one shared kernel; because
    /// partitioned cores share no mutable state, the global event
    /// interleaving is bit-identical per core to sequential stepping
    /// (module docs).
    ///
    /// # Errors
    ///
    /// * [`SimError::PlatformMismatch`] if `execs` does not have one entry
    ///   per core;
    /// * any [`Simulator`] run error from a core's event loop
    ///   ([`SimError::DeadlineMiss`] under `MissPolicy::Fail`,
    ///   [`SimError::EventLimitExceeded`], …).
    pub fn run_faulted_with_scratch<G, E>(
        &self,
        make_governor: G,
        execs: &[E],
        plan: &FaultPlan,
        scratch: &mut PlatformScratch,
    ) -> Result<PlatformOutcome, SimError>
    where
        G: FnMut(usize) -> Box<dyn Governor>,
        E: ExecutionSource,
    {
        self.run_kernel_backed(make_governor, execs, plan, None, scratch)
            .map(|(outcome, _)| outcome)
    }

    /// Runs the platform under a shared power budget: aggregate active
    /// draw across all cores is capped at `cap_watts`, and per-core speed
    /// grants are throttled to the remaining headroom at every dispatch
    /// (see [`BudgetLedger`]). Run under [`crate::MissPolicy::Record`]:
    /// a tight cap knowingly trades deadlines for power, and the misses
    /// are part of the result.
    ///
    /// # Errors
    ///
    /// * [`SimError::InvalidConfig`] if `cap_watts` is not finite positive;
    /// * otherwise as [`PlatformSim::run_faulted_with_scratch`].
    pub fn run_budgeted<G, E>(
        &self,
        make_governor: G,
        execs: &[E],
        cap_watts: f64,
        scratch: &mut PlatformScratch,
    ) -> Result<(PlatformOutcome, BudgetReport), SimError>
    where
        G: FnMut(usize) -> Box<dyn Governor>,
        E: ExecutionSource,
    {
        let ledger = BudgetLedger::new(cap_watts, self.cores.len())?;
        let (outcome, report) =
            self.run_kernel_backed(make_governor, execs, &FaultPlan::NONE, Some(ledger), scratch)?;
        Ok((outcome, report.unwrap_or_default()))
    }

    /// The one platform drive path: registers every core engine, the note
    /// sink, and (when budgeted) the budget observer with the shared
    /// kernel, seeds each non-idle core's initial release wake, and drains
    /// the queue. Component layout: core `k` is slot `k`, the sink is slot
    /// `n`, the budget observer (budgeted runs only) slot `n + 1`.
    fn run_kernel_backed<G, E>(
        &self,
        mut make_governor: G,
        execs: &[E],
        plan: &FaultPlan,
        cap: Option<BudgetLedger>,
        scratch: &mut PlatformScratch,
    ) -> Result<(PlatformOutcome, Option<BudgetReport>), SimError>
    where
        G: FnMut(usize) -> Box<dyn Governor>,
        E: ExecutionSource,
    {
        if execs.len() != self.cores.len() {
            return Err(SimError::PlatformMismatch {
                cores: self.cores.len(),
                provided: execs.len(),
            });
        }
        let n = self.cores.len();
        scratch.ensure(n);
        let PlatformScratch {
            per_core,
            kernel,
            idle_names,
        } = scratch;
        let sink_id = ComponentId(n);
        let budgeted = cap.is_some();
        let budget_id = if budgeted {
            Some(ComponentId(n + 1))
        } else {
            None
        };
        kernel.reset(n + 1 + usize::from(budgeted), cap);

        // Build the engines in core order — every core (idle or not) gets
        // a fresh governor instance, so factory side effects stay
        // core-ordered exactly as under sequential stepping.
        let mut engines: Vec<Option<CoreEngine<'_, Box<dyn Governor>, E>>> =
            Vec::with_capacity(n);
        idle_names.clear();
        for ((core, sim), core_scratch) in
            self.cores.iter().enumerate().zip(per_core.iter_mut())
        {
            let governor = make_governor(core);
            match sim {
                Some(sim) => {
                    engines.push(Some(CoreEngine::new(
                        sim.tasks(),
                        sim.processor(),
                        &self.config,
                        governor,
                        &execs[core],
                        plan,
                        core_scratch,
                        ComponentId(core),
                        sink_id,
                        budget_id,
                        core,
                    )));
                    idle_names.push(None);
                }
                None => {
                    engines.push(None);
                    // xtask:allow(hot-path-alloc): once per idle core at setup
                    idle_names.push(Some(governor.name().to_string()));
                }
            }
        }
        for core in 0..n {
            if engines[core].is_some() {
                kernel.schedule(SimEvent {
                    time: 0.0,
                    kind: EventKind::Release,
                    source: ComponentId(core),
                    target: ComponentId(core),
                });
            }
        }
        let mut sink = TraceSink;
        let mut budget_observer = TraceSink;
        // Idle cores' handler slots are backed by zero-sized sinks; no
        // events ever target them (nothing is seeded for an idle core).
        let mut placeholders: Vec<TraceSink> = vec![TraceSink; n];
        {
            let mut handlers: Vec<&mut dyn EventHandler> = Vec::with_capacity(n + 2);
            for (engine, placeholder) in engines.iter_mut().zip(placeholders.iter_mut()) {
                match engine {
                    Some(e) => handlers.push(e),
                    None => handlers.push(placeholder),
                }
            }
            handlers.push(&mut sink);
            if budgeted {
                handlers.push(&mut budget_observer);
            }
            kernel.run(&mut handlers)?;
        }
        let budget_report = kernel.take_budget().map(|ledger| ledger.report());
        let mut outcomes = Vec::with_capacity(n);
        for (core, engine) in engines.into_iter().enumerate() {
            let outcome = match engine {
                Some(engine) => engine.finish(kernel.stats_for(ComponentId(core)))?,
                None => {
                    self.idle_outcome(core, idle_names[core].as_deref().unwrap_or_default())
                }
            };
            outcomes.push(outcome);
        }
        // A platform always has at least one core, but stay panic-free.
        let governor = outcomes
            .first()
            .map(|o| o.governor.clone())
            .unwrap_or_default();
        Ok((
            PlatformOutcome {
                governor,
                horizon: self.config.horizon(),
                cores: outcomes,
            },
            budget_report,
        ))
    }

    /// The outcome of a core with no assigned tasks: pure idle time,
    /// charged at the core's idle power — an empty core is still powered.
    fn idle_outcome(&self, core: usize, governor: &str) -> SimOutcome {
        let horizon = self.config.horizon();
        let processor = self.platform.core(core);
        let mut acc = processor.energy_accumulator();
        acc.add_idle(horizon);
        let trace = self.config.records_trace().then(|| {
            let mut t = Trace::new();
            t.push(Segment {
                start: 0.0,
                end: horizon,
                speed: processor.min_speed(),
                kind: SegmentKind::Idle,
            });
            t
        });
        SimOutcome {
            governor: governor.to_string(),
            horizon,
            energy: acc.breakdown(),
            switches: 0,
            jobs: Vec::new(),
            events: 0,
            busy_time: 0.0,
            idle_time: horizon,
            transition_time: 0.0,
            faults: FaultReport::default(),
            models: crate::model::ModelReport::default(),
            release_batches: [0; 8],
            analysis: crate::outcome::AnalysisStats::default(),
            kernel: KernelStats::default(),
            trace,
        }
    }

    /// Applies the audit referee to every core: real cores run
    /// [`audit_outcome`] against their task subset and the plan; idle cores
    /// get a trivially clean report.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::PlatformMismatch`] if `outcome` does not have
    /// one per-core outcome per platform core.
    pub fn audit(
        &self,
        outcome: &PlatformOutcome,
        plan: &FaultPlan,
    ) -> Result<Vec<AuditReport>, SimError> {
        if outcome.cores.len() != self.cores.len() {
            return Err(SimError::PlatformMismatch {
                cores: self.cores.len(),
                provided: outcome.cores.len(),
            });
        }
        let mut reports = Vec::with_capacity(self.cores.len());
        for (core, sim) in self.cores.iter().enumerate() {
            let report = match sim {
                Some(sim) => audit_outcome(&outcome.cores[core], sim.tasks(), plan),
                None => clean_report(),
            };
            reports.push(report);
        }
        Ok(reports)
    }
}

/// The audit report of a core that ran nothing.
fn clean_report() -> AuditReport {
    AuditReport {
        issues: Vec::new(),
        jobs_checked: 0,
        attributed_misses: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::ConstantRatio;
    use crate::governor::SchedulerView;
    use crate::job::ActiveJob;
    use crate::task::Task;
    use stadvs_power::Speed;

    struct FullSpeed;
    impl Governor for FullSpeed {
        fn name(&self) -> &str {
            "full"
        }
        fn select_speed(&mut self, _: &SchedulerView<'_>, _: &ActiveJob) -> Speed {
            Speed::FULL
        }
    }

    fn two_sets() -> (TaskSet, TaskSet) {
        let a = TaskSet::new(vec![Task::new(1.0e-3, 10.0e-3).unwrap()]).unwrap();
        let b = TaskSet::new(vec![Task::new(2.0e-3, 10.0e-3).unwrap()]).unwrap();
        (a, b)
    }

    fn quad() -> Platform {
        Platform::homogeneous(4, Processor::ideal_continuous()).unwrap()
    }

    #[test]
    fn mismatched_assignments_are_rejected() {
        let (a, _) = two_sets();
        let err =
            PlatformSim::new(quad(), vec![Some(a)], SimConfig::new(0.1).unwrap()).unwrap_err();
        assert!(matches!(
            err,
            SimError::PlatformMismatch {
                cores: 4,
                provided: 1
            }
        ));
    }

    #[test]
    fn one_core_matches_legacy_simulator_bitwise() {
        let (a, _) = two_sets();
        let config = SimConfig::new(0.1).unwrap().with_trace(true);
        let legacy = Simulator::new(a.clone(), Processor::ideal_continuous(), config.clone())
            .unwrap()
            .run(&mut FullSpeed, &ConstantRatio::new(0.5))
            .unwrap();
        let platform = PlatformSim::uniprocessor(a, Processor::ideal_continuous(), config).unwrap();
        let outcome = platform
            .run(|_| Box::new(FullSpeed), &ConstantRatio::new(0.5))
            .unwrap();
        assert_eq!(outcome.cores.len(), 1);
        assert_eq!(outcome.cores[0], legacy);
        assert_eq!(outcome.total_energy(), legacy.total_energy());
        assert_eq!(outcome.switches(), legacy.switches);
    }

    #[test]
    fn idle_cores_are_charged_idle_energy_and_audit_clean() {
        let (a, b) = two_sets();
        let idle_hungry = Processor::ideal_continuous()
            .with_power_model(stadvs_power::PowerModel::normalized_cubic_with_idle(0.1).unwrap());
        let platform = Platform::homogeneous(4, idle_hungry).unwrap();
        let sim = PlatformSim::new(
            platform,
            vec![Some(a), None, Some(b), None],
            SimConfig::new(0.1).unwrap(),
        )
        .unwrap();
        let outcome = sim
            .run(|_| Box::new(FullSpeed), &ConstantRatio::new(0.5))
            .unwrap();
        assert_eq!(outcome.cores.len(), 4);
        // Idle cores burn idle power for the whole horizon.
        assert!(outcome.cores[1].energy.idle > 0.0);
        assert_eq!(outcome.cores[1].jobs.len(), 0);
        assert!((outcome.cores[1].idle_time - 0.1).abs() < 1e-12);
        assert!(outcome.all_deadlines_met());
        assert!(
            (outcome.total_energy() - outcome.cores.iter().map(|c| c.total_energy()).sum::<f64>())
                .abs()
                < 1e-12
        );
        let reports = sim.audit(&outcome, &FaultPlan::NONE).unwrap();
        assert_eq!(reports.len(), 4);
        for r in &reports {
            assert!(r.is_clean(), "{r}");
        }
        assert_eq!(reports[1].jobs_checked, 0);
    }

    #[test]
    fn each_core_gets_a_fresh_governor_instance() {
        // A stateful governor that slows down on every speed query; if
        // cores shared the instance, core order would leak into speeds.
        struct Decaying {
            calls: u64,
        }
        impl Governor for Decaying {
            fn name(&self) -> &str {
                "decaying"
            }
            fn select_speed(&mut self, view: &SchedulerView<'_>, _: &ActiveJob) -> Speed {
                self.calls += 1;
                let s = (1.0 / self.calls as f64).max(0.5);
                Speed::clamped(s, view.processor().min_speed())
            }
        }
        let (a, _) = two_sets();
        let platform = Platform::homogeneous(2, Processor::ideal_continuous()).unwrap();
        let sim = PlatformSim::new(
            platform,
            vec![Some(a.clone()), Some(a)],
            SimConfig::new(0.05).unwrap(),
        )
        .unwrap();
        let mut instances = 0;
        let outcome = sim
            .run(
                |_| {
                    instances += 1;
                    Box::new(Decaying { calls: 0 })
                },
                &ConstantRatio::new(1.0),
            )
            .unwrap();
        assert_eq!(instances, 2);
        // Identical task sets + fresh per-core state ⇒ identical outcomes.
        assert_eq!(outcome.cores[0].jobs, outcome.cores[1].jobs);
        assert_eq!(
            outcome.cores[0].total_energy(),
            outcome.cores[1].total_energy()
        );
    }

    #[test]
    fn per_core_exec_sources_are_respected() {
        let (a, b) = two_sets();
        let platform = Platform::homogeneous(2, Processor::ideal_continuous()).unwrap();
        let sim = PlatformSim::new(
            platform,
            vec![Some(a), Some(b)],
            SimConfig::new(0.1).unwrap(),
        )
        .unwrap();
        let execs = [ConstantRatio::new(1.0), ConstantRatio::new(0.25)];
        let outcome = sim
            .run_faulted_with_scratch(
                |_| Box::new(FullSpeed),
                &execs,
                &FaultPlan::NONE,
                &mut PlatformScratch::new(),
            )
            .unwrap();
        // Core 0 runs 1 ms jobs at ratio 1.0, core 1 runs 2 ms jobs at
        // ratio 0.25: busy time 10 ms vs 5 ms over the horizon.
        assert!((outcome.cores[0].busy_time - 0.010).abs() < 1e-9);
        assert!((outcome.cores[1].busy_time - 0.005).abs() < 1e-9);
        // Mismatched exec slice is rejected.
        let err = sim
            .run_faulted_with_scratch(
                |_| Box::new(FullSpeed),
                &execs[..1],
                &FaultPlan::NONE,
                &mut PlatformScratch::new(),
            )
            .unwrap_err();
        assert!(matches!(err, SimError::PlatformMismatch { .. }));
    }

    #[test]
    fn scratch_reuse_is_bit_identical() {
        let (a, b) = two_sets();
        let platform = Platform::homogeneous(2, Processor::ideal_continuous()).unwrap();
        let sim = PlatformSim::new(
            platform,
            vec![Some(a), Some(b)],
            SimConfig::new(0.2).unwrap(),
        )
        .unwrap();
        let mut scratch = PlatformScratch::new();
        let execs = [ConstantRatio::new(0.6), ConstantRatio::new(0.6)];
        let first = sim
            .run_faulted_with_scratch(
                |_| Box::new(FullSpeed),
                &execs,
                &FaultPlan::NONE,
                &mut scratch,
            )
            .unwrap();
        let second = sim
            .run_faulted_with_scratch(
                |_| Box::new(FullSpeed),
                &execs,
                &FaultPlan::NONE,
                &mut scratch,
            )
            .unwrap();
        assert_eq!(first, second);
    }
}
