//! Sources of actual (run-time) execution demand.

use crate::task::{Task, TaskId};

/// Supplies each job's *actual* execution demand (at full speed).
///
/// Implementations must be **deterministic**: the same `(task, job_index)`
/// must always yield the same demand, so that a workload can be replayed for
/// different governors and so that clairvoyant analyses (oracle bounds) see
/// exactly the jobs the simulator ran. Randomized models achieve this by
/// hashing a seed with the task id and job index (see `stadvs-workload`).
///
/// The returned demand is clamped by the simulator into `[0, wcet]` — a hard
/// real-time workload never exceeds its worst case.
pub trait ExecutionSource {
    /// Actual demand (full-speed seconds) of job `job_index` of `task`.
    fn actual_work(&self, task_id: TaskId, task: &Task, job_index: u64) -> f64;
}

/// Every job consumes exactly its worst case.
///
/// Under this source DVS can only exploit *static* slack (`U < 1`), which is
/// the degenerate setting where static scaling is already optimal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WorstCase;

impl ExecutionSource for WorstCase {
    fn actual_work(&self, _task_id: TaskId, task: &Task, _job_index: u64) -> f64 {
        task.wcet()
    }
}

/// Every job consumes a fixed fraction of its worst case.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConstantRatio {
    ratio: f64,
}

impl ConstantRatio {
    /// Creates a source where every job consumes `ratio · wcet`.
    ///
    /// # Panics
    ///
    /// Panics if `ratio` is not within `[0, 1]`.
    pub fn new(ratio: f64) -> ConstantRatio {
        assert!(
            ratio.is_finite() && (0.0..=1.0).contains(&ratio),
            "execution ratio {ratio} must be in [0, 1]"
        );
        ConstantRatio { ratio }
    }

    /// The fixed fraction of WCET each job consumes.
    pub fn ratio(&self) -> f64 {
        self.ratio
    }
}

impl ExecutionSource for ConstantRatio {
    fn actual_work(&self, _task_id: TaskId, task: &Task, _job_index: u64) -> f64 {
        task.wcet() * self.ratio
    }
}

impl<E: ExecutionSource + ?Sized> ExecutionSource for &E {
    fn actual_work(&self, task_id: TaskId, task: &Task, job_index: u64) -> f64 {
        (**self).actual_work(task_id, task, job_index)
    }
}

impl<E: ExecutionSource + ?Sized> ExecutionSource for Box<E> {
    fn actual_work(&self, task_id: TaskId, task: &Task, job_index: u64) -> f64 {
        (**self).actual_work(task_id, task, job_index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::Task;

    #[test]
    fn worst_case_returns_wcet() {
        let t = Task::new(2.0, 10.0).unwrap();
        assert_eq!(WorstCase.actual_work(TaskId(0), &t, 0), 2.0);
        assert_eq!(WorstCase.actual_work(TaskId(0), &t, 99), 2.0);
    }

    #[test]
    fn constant_ratio_scales() {
        let t = Task::new(2.0, 10.0).unwrap();
        let src = ConstantRatio::new(0.25);
        assert_eq!(src.actual_work(TaskId(0), &t, 5), 0.5);
        assert_eq!(src.ratio(), 0.25);
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1]")]
    fn constant_ratio_rejects_out_of_range() {
        let _ = ConstantRatio::new(1.5);
    }

    #[test]
    fn blanket_impls_delegate() {
        let t = Task::new(2.0, 10.0).unwrap();
        let boxed: Box<dyn ExecutionSource> = Box::new(ConstantRatio::new(0.5));
        assert_eq!(boxed.actual_work(TaskId(0), &t, 0), 1.0);
        let by_ref = &WorstCase;
        assert_eq!(by_ref.actual_work(TaskId(0), &t, 0), 2.0);
    }
}
