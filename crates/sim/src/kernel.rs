//! The discrete-event simulation kernel: a shared deterministic clock,
//! the typed event queue, and per-component event accounting.
//!
//! A [`Kernel`] owns the clock and one [`crate::SimEvent`] queue; the
//! components it drives (core engines, trace sinks, the budget observer)
//! implement [`crate::EventHandler`] and are addressed by caller-assigned
//! [`ComponentId`] slots. [`Kernel::run`] pops events in the total
//! `(time, seq, source)` order and delivers each to its target with a
//! [`crate::ComponentCtx`] through which the component reads the clock,
//! emits future events, and reaches the run-scoped [`SharedState`]
//! (currently the optional power-budget ledger).
//!
//! Allocation discipline: the kernel lives inside the run scratch
//! ([`crate::SimScratch`] / [`crate::PlatformScratch`]) and
//! [`Kernel::reset`] reuses the queue buffer and counter tables across
//! runs — the steady-state event path allocates nothing and boxes
//! nothing (components are pre-registered in an index-addressed slice;
//! events are `Copy`).

use serde::{Deserialize, Serialize};

use crate::budget::BudgetLedger;
use crate::component::{ComponentCtx, EventHandler};
use crate::event::{ComponentId, EventKind, EventQueue, SimEvent, EVENT_KINDS};
use crate::SimError;

/// Per-component event counters, by [`EventKind`] slot
/// (see [`EventKind::index`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct KernelStats {
    /// Events this component emitted, by kind.
    pub emitted: [u64; EVENT_KINDS],
    /// Events delivered to this component, by kind.
    pub handled: [u64; EVENT_KINDS],
}

impl KernelStats {
    /// Total events emitted across all kinds.
    pub fn emitted_total(&self) -> u64 {
        self.emitted.iter().sum()
    }

    /// Total events handled across all kinds.
    pub fn handled_total(&self) -> u64 {
        self.handled.iter().sum()
    }

    /// Events of one kind this component emitted.
    pub fn emitted_of(&self, kind: EventKind) -> u64 {
        self.emitted[kind.index()]
    }

    /// Events of one kind delivered to this component.
    pub fn handled_of(&self, kind: EventKind) -> u64 {
        self.handled[kind.index()]
    }
}

/// Run-scoped state the kernel lends to every component through
/// [`ComponentCtx::shared`]. Owned by the kernel (not `Rc<RefCell<_>>`):
/// exactly one component borrows it at a time — the one currently
/// handling an event — so there is nothing to lock and nothing that can
/// panic.
#[derive(Debug, Clone, Default)]
pub struct SharedState {
    /// The shared power-budget ledger, when this run is budget-capped
    /// (see [`crate::PlatformSim::run_budgeted`]).
    pub budget: Option<BudgetLedger>,
}

/// The discrete-event kernel: clock, deterministic queue, per-component
/// sequence counters and event accounting.
#[derive(Debug, Clone, Default)]
pub struct Kernel {
    queue: EventQueue,
    seqs: Vec<u64>,
    emitted: Vec<[u64; EVENT_KINDS]>,
    handled: Vec<[u64; EVENT_KINDS]>,
    now: f64,
    delivered: u64,
    shared: SharedState,
}

impl Kernel {
    /// Creates an empty kernel; buffers grow on first use.
    pub fn new() -> Kernel {
        Kernel::default()
    }

    /// Resets for a run with `components` slots and optional shared
    /// budget state. Reuses every buffer — no allocation once the tables
    /// have grown to the platform's component count.
    pub fn reset(&mut self, components: usize, budget: Option<BudgetLedger>) {
        self.queue.clear();
        self.seqs.clear();
        self.seqs.resize(components, 0);
        self.emitted.clear();
        self.emitted.resize(components, [0; EVENT_KINDS]);
        self.handled.clear();
        self.handled.resize(components, [0; EVENT_KINDS]);
        self.now = 0.0;
        self.delivered = 0;
        self.shared = SharedState { budget };
    }

    /// Number of registered component slots.
    pub fn components(&self) -> usize {
        self.seqs.len()
    }

    /// The kernel clock: the time of the event being (or last) delivered.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Total events delivered so far this run.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Events still pending in the queue.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// The event queue's timing-wheel occupancy counters for the current
    /// run (reset by [`Kernel::reset`]).
    pub fn queue_stats(&self) -> crate::event::QueueStats {
        self.queue.stats()
    }

    /// Seeds an event before (or outside) [`Kernel::run`], stamped with
    /// the source component's next sequence number and counted as an
    /// emission of that component.
    ///
    /// Out-of-range source or target ids are rejected in debug builds and
    /// dropped in release builds.
    pub fn schedule(&mut self, event: SimEvent) {
        let s = event.source.0;
        if s >= self.seqs.len() || event.target.0 >= self.seqs.len() {
            debug_assert!(false, "schedule outside component table: {event:?}");
            return;
        }
        let seq = self.seqs[s];
        self.seqs[s] += 1;
        self.emitted[s][event.kind.index()] += 1;
        self.queue.push(event, seq);
    }

    /// The event counters of one component slot (zeroed stats for ids
    /// outside the table).
    pub fn stats_for(&self, id: ComponentId) -> KernelStats {
        match (self.emitted.get(id.0), self.handled.get(id.0)) {
            (Some(&emitted), Some(&handled)) => KernelStats { emitted, handled },
            _ => KernelStats::default(),
        }
    }

    /// Read access to the shared run state.
    pub fn shared(&self) -> &SharedState {
        &self.shared
    }

    /// Takes the budget ledger out of the shared state (after a run, to
    /// build the [`crate::BudgetReport`]).
    pub fn take_budget(&mut self) -> Option<BudgetLedger> {
        self.shared.budget.take()
    }

    /// Drains the queue, delivering every event to `handlers[target]` in
    /// the deterministic `(time, seq, source)` order. `handlers` is the
    /// pre-registered component table: slot `i` handles events targeted
    /// at [`ComponentId`]`(i)`.
    ///
    /// The kernel clock is *ordering-only*: component arithmetic uses the
    /// components' own state (a core engine advances its own clock), so
    /// delivery timing can never perturb float results (DESIGN.md §15).
    ///
    /// # Errors
    ///
    /// Propagates the first error a handler returns; the remaining queue
    /// is abandoned (the next [`Kernel::reset`] clears it).
    pub fn run(&mut self, handlers: &mut [&mut dyn EventHandler]) -> Result<(), SimError> {
        debug_assert_eq!(
            handlers.len(),
            self.seqs.len(),
            "handler table must match the registered component count"
        );
        while let Some(queued) = self.queue.pop() {
            let event = queued.event;
            debug_assert!(
                event.time >= self.now,
                "kernel clock moved backwards: {} -> {}",
                self.now,
                event.time
            );
            self.now = event.time;
            self.delivered += 1;
            let t = event.target.0;
            if t >= handlers.len() {
                debug_assert!(false, "event targets unregistered component: {event:?}");
                continue;
            }
            self.handled[t][event.kind.index()] += 1;
            let mut ctx = ComponentCtx {
                queue: &mut self.queue,
                seqs: &mut self.seqs,
                emitted: &mut self.emitted,
                now: event.time,
                delivered: self.delivered,
                shared: &mut self.shared,
                self_id: event.target,
            };
            handlers[t].handle(event, &mut ctx)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Records every delivery and optionally echoes one derived event.
    struct Recorder {
        log: Vec<(u64, f64, EventKind, usize)>,
        echo_to: Option<ComponentId>,
    }

    impl EventHandler for Recorder {
        fn handle(&mut self, event: SimEvent, ctx: &mut ComponentCtx<'_>) -> Result<(), SimError> {
            self.log
                .push((ctx.delivered(), ctx.now(), event.kind, event.source.0));
            if let Some(target) = self.echo_to {
                if event.kind == EventKind::Release {
                    ctx.emit(ctx.now() + 1.0, EventKind::Completion, target);
                }
            }
            Ok(())
        }
    }

    fn release_at(time: f64, id: usize) -> SimEvent {
        SimEvent {
            time,
            kind: EventKind::Release,
            source: ComponentId(id),
            target: ComponentId(id),
        }
    }

    #[test]
    fn delivers_in_time_order_and_counts_per_component() {
        let mut kernel = Kernel::new();
        kernel.reset(2, None);
        kernel.schedule(release_at(1.0, 1));
        kernel.schedule(release_at(0.5, 0));
        let mut a = Recorder {
            log: Vec::new(),
            echo_to: Some(ComponentId(1)),
        };
        let mut b = Recorder {
            log: Vec::new(),
            echo_to: None,
        };
        {
            let mut handlers: [&mut dyn EventHandler; 2] = [&mut a, &mut b];
            kernel.run(&mut handlers).unwrap();
        }
        // a's release at 0.5 first, then b's at 1.0, then the echoed
        // completion at 1.5.
        assert_eq!(a.log, vec![(1, 0.5, EventKind::Release, 0)]);
        assert_eq!(
            b.log,
            vec![
                (2, 1.0, EventKind::Release, 1),
                (3, 1.5, EventKind::Completion, 0)
            ]
        );
        assert_eq!(kernel.delivered(), 3);
        assert_eq!(kernel.stats_for(ComponentId(0)).emitted_total(), 2);
        assert_eq!(
            kernel.stats_for(ComponentId(0)).emitted_of(EventKind::Completion),
            1
        );
        assert_eq!(kernel.stats_for(ComponentId(1)).handled_total(), 2);
        assert_eq!(kernel.stats_for(ComponentId(9)), KernelStats::default());
        assert!((kernel.now() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn reset_clears_counters_and_queue() {
        let mut kernel = Kernel::new();
        kernel.reset(1, None);
        kernel.schedule(release_at(0.0, 0));
        kernel.reset(1, None);
        assert_eq!(kernel.pending(), 0);
        assert_eq!(kernel.delivered(), 0);
        assert_eq!(kernel.stats_for(ComponentId(0)), KernelStats::default());
        assert!(kernel.shared().budget.is_none());
    }

    #[test]
    fn handler_errors_stop_the_run() {
        struct Failing;
        impl EventHandler for Failing {
            fn handle(&mut self, _: SimEvent, _: &mut ComponentCtx<'_>) -> Result<(), SimError> {
                Err(SimError::EventLimitExceeded { limit: 1 })
            }
        }
        let mut kernel = Kernel::new();
        kernel.reset(1, None);
        kernel.schedule(release_at(0.0, 0));
        kernel.schedule(release_at(1.0, 0));
        let mut failing = Failing;
        let mut handlers: [&mut dyn EventHandler; 1] = [&mut failing];
        let err = kernel.run(&mut handlers).unwrap_err();
        assert!(matches!(err, SimError::EventLimitExceeded { limit: 1 }));
        // The second event was abandoned with the run.
        assert_eq!(kernel.delivered(), 1);
    }
}
