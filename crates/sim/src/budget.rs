//! Platform-level shared power budget.
//!
//! The scenario the monolithic per-core loop could not express: all cores
//! draw from one power rail with a hard cap on *aggregate active draw*.
//! The [`BudgetLedger`] lives in the kernel's [`crate::SharedState`]; at
//! every dispatch a core engine asks it to grant a speed, and the ledger
//! throttles the request down to whatever the remaining headroom (cap
//! minus the other cores' current draws) can power. Because the kernel
//! delivers events in global time order, the ledger's per-core draws are
//! a time-consistent picture across cores — the coupling partitioned
//! sequential stepping fundamentally could not see.
//!
//! Semantics (kept deliberately simple for the `budget` demonstrator):
//!
//! * Only **active** draw counts against the cap; idle power is rail
//!   baseline and excluded (an idling core reports zero draw).
//! * Throttling never grants below the processor's minimum speed — a
//!   starved core keeps scheduling and its deadline misses are *recorded*
//!   (run under [`crate::MissPolicy::Record`]): the cap knowingly trades
//!   deadlines for power.
//! * Grants are deterministic: fixed summation order over the draw table
//!   and a fixed-iteration bisection on the monotone speed→power curve.

use serde::{Deserialize, Serialize};
use stadvs_power::{Processor, Speed};

use crate::SimError;

/// Iterations of the speed-grant bisection: enough to pin the granted
/// ratio to ~1 ulp over `[min_speed, 1]`, and exactly the same count on
/// every grant (determinism).
const BISECT_STEPS: u32 = 60;

/// The shared power-budget ledger: one draw slot per core, a cap, and
/// the throttle statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetLedger {
    cap: f64,
    draw: Vec<f64>,
    grants: u64,
    throttles: u64,
    peak: f64,
}

impl BudgetLedger {
    /// Creates a ledger capping aggregate active draw at `cap_watts`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if `cap_watts` is not finite
    /// and positive.
    pub fn new(cap_watts: f64, cores: usize) -> Result<BudgetLedger, SimError> {
        if !cap_watts.is_finite() || cap_watts <= 0.0 {
            return Err(SimError::InvalidConfig {
                field: "budget_cap",
                value: cap_watts,
            });
        }
        Ok(BudgetLedger {
            cap: cap_watts,
            draw: vec![0.0; cores],
            grants: 0,
            throttles: 0,
            peak: 0.0,
        })
    }

    /// The configured cap, in watts.
    pub fn cap(&self) -> f64 {
        self.cap
    }

    /// Grants `core` the fastest speed not above `requested` whose active
    /// power fits the remaining headroom, floored at the processor's
    /// minimum speed, and updates the core's draw slot.
    pub(crate) fn grant(&mut self, core: usize, requested: Speed, processor: &Processor) -> Speed {
        let model = processor.power_model();
        let mut others = 0.0;
        for (i, d) in self.draw.iter().enumerate() {
            if i != core {
                others += d;
            }
        }
        self.grants += 1;
        let granted = if others + model.active_power(requested) <= self.cap {
            requested
        } else {
            self.throttles += 1;
            let headroom = (self.cap - others).max(0.0);
            let floor = processor.min_speed();
            let mut lo = floor.ratio().min(requested.ratio());
            let mut hi = requested.ratio().max(lo);
            if model.active_power(Speed::clamped(lo, floor)) >= headroom {
                // Even the floor exceeds the headroom: grant the floor
                // anyway — the core must keep making progress.
                Speed::clamped(lo, floor)
            } else {
                for _ in 0..BISECT_STEPS {
                    let mid = 0.5 * (lo + hi);
                    if model.active_power(Speed::clamped(mid, floor)) <= headroom {
                        lo = mid;
                    } else {
                        hi = mid;
                    }
                }
                Speed::clamped(lo, floor)
            }
        };
        self.draw[core] = model.active_power(granted);
        let total: f64 = self.draw.iter().sum();
        if total > self.peak {
            self.peak = total;
        }
        granted
    }

    /// Marks `core` idle: its active draw leaves the rail.
    pub(crate) fn settle_idle(&mut self, core: usize) {
        self.draw[core] = 0.0;
    }

    /// The run's budget statistics.
    pub fn report(&self) -> BudgetReport {
        BudgetReport {
            cap: self.cap,
            grants: self.grants,
            throttles: self.throttles,
            peak_draw: self.peak,
        }
    }
}

/// Summary of one budgeted run (returned by
/// [`crate::PlatformSim::run_budgeted`]).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct BudgetReport {
    /// The aggregate active-draw cap, in watts.
    pub cap: f64,
    /// Speed-grant decisions taken by the ledger.
    pub grants: u64,
    /// Grants that throttled the requested speed down.
    pub throttles: u64,
    /// Peak aggregate active draw observed at grant instants, in watts.
    pub peak_draw: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cap_must_be_finite_positive() {
        assert!(BudgetLedger::new(0.0, 2).is_err());
        assert!(BudgetLedger::new(-1.0, 2).is_err());
        assert!(BudgetLedger::new(f64::NAN, 2).is_err());
        assert!(BudgetLedger::new(1.0, 2).is_ok());
    }

    #[test]
    fn within_cap_grants_pass_through_bitwise() {
        let cpu = Processor::ideal_continuous();
        let mut ledger = BudgetLedger::new(10.0, 2).unwrap();
        let req = Speed::FULL;
        let granted = ledger.grant(0, req, &cpu);
        assert!(granted.same_point(req));
        assert_eq!(granted.ratio().to_bits(), req.ratio().to_bits());
        let report = ledger.report();
        assert_eq!(report.grants, 1);
        assert_eq!(report.throttles, 0);
        assert!(report.peak_draw > 0.0);
    }

    #[test]
    fn over_cap_requests_are_throttled_to_headroom() {
        // Cubic model: full speed draws 1 W per core. Cap 1.5 W, two
        // cores: core 0 takes 1 W, core 1's full-speed request must be
        // throttled to ~0.5 W → ratio ~0.5^(1/3).
        let cpu = Processor::ideal_continuous();
        let mut ledger = BudgetLedger::new(1.5, 2).unwrap();
        let g0 = ledger.grant(0, Speed::FULL, &cpu);
        assert!(g0.same_point(Speed::FULL));
        let g1 = ledger.grant(1, Speed::FULL, &cpu);
        assert!(g1.ratio() < 1.0);
        let p1 = cpu.power_model().active_power(g1);
        assert!((p1 - 0.5).abs() < 1e-9, "throttled draw {p1}");
        let report = ledger.report();
        assert_eq!(report.throttles, 1);
        assert!(report.peak_draw <= 1.5 + 1e-9);
    }

    #[test]
    fn floor_is_granted_even_without_headroom() {
        let cpu = Processor::ideal_continuous();
        let mut ledger = BudgetLedger::new(0.5, 2).unwrap();
        let g0 = ledger.grant(0, Speed::FULL, &cpu);
        assert!(g0.ratio() < 1.0);
        // Core 0 already holds the whole cap; core 1 still gets the floor.
        let g1 = ledger.grant(1, Speed::FULL, &cpu);
        assert!((g1.ratio() - cpu.min_speed().ratio()).abs() < 1e-12);
    }

    #[test]
    fn settle_idle_returns_headroom() {
        let cpu = Processor::ideal_continuous();
        let mut ledger = BudgetLedger::new(1.0, 2).unwrap();
        let _ = ledger.grant(0, Speed::FULL, &cpu);
        let throttled = ledger.grant(1, Speed::FULL, &cpu);
        assert!(throttled.ratio() < 1.0);
        ledger.settle_idle(0);
        let recovered = ledger.grant(1, Speed::FULL, &cpu);
        assert!(recovered.same_point(Speed::FULL));
    }

    #[test]
    fn grants_are_deterministic() {
        let cpu = Processor::ideal_continuous();
        let run = || {
            let mut ledger = BudgetLedger::new(1.3, 3).unwrap();
            let mut bits = Vec::new();
            for core in 0..3 {
                bits.push(ledger.grant(core, Speed::FULL, &cpu).ratio().to_bits());
            }
            (bits, ledger.report())
        };
        assert_eq!(run(), run());
    }
}
