//! The speed-policy ("governor") plug-in interface and the scheduler state
//! view it receives.

use stadvs_power::{Processor, Speed};

use crate::fault::OverrunPolicy;
use crate::job::{ActiveJob, JobRecord};
use crate::outcome::AnalysisStats;
use crate::task::{TaskId, TaskSet};

/// A read-only snapshot of everything an on-line DVS algorithm may inspect
/// at a scheduling point.
///
/// The view deliberately exposes only *non-clairvoyant* information: ready
/// jobs with their worst-case remaining budgets and consumed wall time,
/// per-task next release instants, and the platform models. Actual remaining
/// demand is hidden — discovering it early is exactly what the algorithms
/// under study cannot do.
#[derive(Debug)]
pub struct SchedulerView<'a> {
    now: f64,
    tasks: &'a TaskSet,
    processor: &'a Processor,
    ready: &'a [ActiveJob],
    next_release: &'a [f64],
    next_arrival: f64,
    current_speed: Speed,
    release_epoch: u64,
}

impl<'a> SchedulerView<'a> {
    // Internal constructor mirroring the struct's fields one-to-one; a
    // builder would only add indirection for the single call site.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        now: f64,
        tasks: &'a TaskSet,
        processor: &'a Processor,
        ready: &'a [ActiveJob],
        next_release: &'a [f64],
        next_arrival: f64,
        current_speed: Speed,
        release_epoch: u64,
    ) -> SchedulerView<'a> {
        SchedulerView {
            now,
            tasks,
            processor,
            ready,
            next_release,
            next_arrival,
            current_speed,
            release_epoch,
        }
    }

    /// Current simulation time, in seconds.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// The scheduled task set.
    pub fn tasks(&self) -> &'a TaskSet {
        self.tasks
    }

    /// The platform (frequency/power/overhead models).
    pub fn processor(&self) -> &'a Processor {
        self.processor
    }

    /// The ready (released, incomplete) jobs, in no particular order.
    pub fn ready_jobs(&self) -> &'a [ActiveJob] {
        self.ready
    }

    /// The ready job EDF would dispatch: earliest absolute deadline, ties
    /// broken by task id then job index (deterministic).
    pub fn edf_job(&self) -> Option<&'a ActiveJob> {
        self.ready.iter().min_by(|a, b| {
            a.deadline
                .total_cmp(&b.deadline)
                .then(a.id.task.cmp(&b.id.task))
                .then(a.id.index.cmp(&b.id.index))
        })
    }

    /// Next release instant of `task` (strictly after `now`, up to event
    /// tolerance).
    ///
    /// # Panics
    ///
    /// Panics if `task` is out of range for the task set.
    pub fn next_release_of(&self, task: TaskId) -> f64 {
        self.next_release[task.0]
    }

    /// The earliest next release instant over all tasks.
    ///
    /// `O(1)`: the simulator maintains this incrementally in its release
    /// queue instead of folding over the per-task instants on every query.
    pub fn next_release_global(&self) -> f64 {
        self.next_arrival
    }

    /// Worst-case utilization of the task set.
    pub fn utilization(&self) -> f64 {
        self.tasks.utilization()
    }

    /// The speed the processor is currently set to.
    pub fn current_speed(&self) -> Speed {
        self.current_speed
    }

    /// A counter the simulator bumps every time any task's next-release
    /// instant advances. Between two views with equal epochs, the whole
    /// per-task release outlook (`next_release_of`) is unchanged —
    /// incremental analyses key release-derived caches on this.
    pub fn release_epoch(&self) -> u64 {
        self.release_epoch
    }
}

/// An on-line DVS speed policy plugged into the simulator.
///
/// The simulator calls the hooks in this order:
///
/// 1. [`on_start`](Governor::on_start) once, before time `0`;
/// 2. [`on_release`](Governor::on_release) whenever a job is released (the
///    view already contains it);
/// 3. [`select_speed`](Governor::select_speed) at every dispatch of the EDF
///    job — after releases, after completions, and after speed transitions;
/// 4. [`on_completion`](Governor::on_completion) when a job finishes (the
///    view no longer contains it; the [`JobRecord`] carries the actual
///    demand and total wall time, which reclaiming algorithms need);
/// 5. [`on_idle`](Governor::on_idle) when the processor goes idle.
///
/// # Contract
///
/// * `select_speed` may be called **more than once at the same instant** for
///   the same job (e.g. after a voltage transition completes, or after a
///   simultaneous release). Implementations must be idempotent at a fixed
///   state — returning the same speed and not double-booking internal slack
///   accounts.
/// * The returned speed is a *request*: the simulator quantizes it **up** to
///   the platform's next available speed. A governor that needs exact
///   knowledge of the granted speed should quantize itself via
///   [`SchedulerView::processor`].
/// * Hard real-time governors must choose speeds such that, assuming every
///   ready and future job consumes its full WCET, EDF still meets all
///   deadlines. The simulator does not police this — the test suite does.
pub trait Governor {
    /// A short stable name used in reports and tables.
    fn name(&self) -> &str;

    /// Called once before the simulation starts.
    fn on_start(&mut self, tasks: &TaskSet, processor: &Processor) {
        let _ = (tasks, processor);
    }

    /// Called after `job` has been released and added to the ready set.
    fn on_release(&mut self, view: &SchedulerView<'_>, job: &ActiveJob) {
        let _ = (view, job);
    }

    /// Selects the execution speed for `job`, the EDF-chosen job, at
    /// `view.now()`.
    fn select_speed(&mut self, view: &SchedulerView<'_>, job: &ActiveJob) -> Speed;

    /// An optional *power-management point*: how long (in seconds from
    /// now) the speed just selected remains valid. The simulator schedules
    /// a re-dispatch at that instant even if no release or completion
    /// occurs, enabling **intra-job** speed changes (task-splitting and
    /// PACE-style schemes need this — without it a job runs at one speed
    /// until the next external event).
    ///
    /// Called immediately after [`select_speed`](Governor::select_speed)
    /// for the same job. Return `None` (the default) to run until the next
    /// natural event. Values are floored at 1 µs to prevent zero-progress
    /// loops.
    fn review_after(&mut self, view: &SchedulerView<'_>, job: &ActiveJob) -> Option<f64> {
        let _ = (view, job);
        None
    }

    /// Called after `record`'s job completed and was removed from the ready
    /// set.
    fn on_completion(&mut self, view: &SchedulerView<'_>, record: &JobRecord) {
        let _ = (view, record);
    }

    /// Called when the processor becomes idle (no ready jobs).
    fn on_idle(&mut self, view: &SchedulerView<'_>) {
        let _ = view;
    }

    /// The degradation mode this governor declares for WCET overruns (see
    /// [`OverrunPolicy`]). Only consulted under fault injection, at the
    /// instant a job's executed work crosses its WCET with demand still
    /// remaining — the moment any slack certificate derived from that WCET
    /// is invalidated. The default is the conservative
    /// [`OverrunPolicy::CompleteAtMax`].
    fn overrun_policy(&self) -> OverrunPolicy {
        OverrunPolicy::CompleteAtMax
    }

    /// Called once per overrun, at the detection instant, before the
    /// resolved policy is applied. `job` is the overrunning job (still in
    /// the view's ready set, [`ActiveJob::in_overrun`] already true).
    /// Governors holding cross-job slack state (banked ledgers, reclaimed
    /// pools) must invalidate anything the overrun job's budget backed.
    fn on_overrun(&mut self, view: &SchedulerView<'_>, job: &ActiveJob) {
        let _ = (view, job);
    }

    /// Demand-analysis effort counters for the finished run, if this
    /// governor performs a per-dispatch slack analysis. The simulator polls
    /// this once, when assembling the [`SimOutcome`](crate::SimOutcome).
    fn analysis_stats(&self) -> Option<AnalysisStats> {
        None
    }
}

impl<G: Governor + ?Sized> Governor for &mut G {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn on_start(&mut self, tasks: &TaskSet, processor: &Processor) {
        (**self).on_start(tasks, processor);
    }
    fn on_release(&mut self, view: &SchedulerView<'_>, job: &ActiveJob) {
        (**self).on_release(view, job);
    }
    fn select_speed(&mut self, view: &SchedulerView<'_>, job: &ActiveJob) -> Speed {
        (**self).select_speed(view, job)
    }
    fn review_after(&mut self, view: &SchedulerView<'_>, job: &ActiveJob) -> Option<f64> {
        (**self).review_after(view, job)
    }
    fn on_completion(&mut self, view: &SchedulerView<'_>, record: &JobRecord) {
        (**self).on_completion(view, record);
    }
    fn on_idle(&mut self, view: &SchedulerView<'_>) {
        (**self).on_idle(view);
    }
    fn overrun_policy(&self) -> OverrunPolicy {
        (**self).overrun_policy()
    }
    fn on_overrun(&mut self, view: &SchedulerView<'_>, job: &ActiveJob) {
        (**self).on_overrun(view, job);
    }
    fn analysis_stats(&self) -> Option<AnalysisStats> {
        (**self).analysis_stats()
    }
}

impl<G: Governor + ?Sized> Governor for Box<G> {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn on_start(&mut self, tasks: &TaskSet, processor: &Processor) {
        (**self).on_start(tasks, processor);
    }
    fn on_release(&mut self, view: &SchedulerView<'_>, job: &ActiveJob) {
        (**self).on_release(view, job);
    }
    fn select_speed(&mut self, view: &SchedulerView<'_>, job: &ActiveJob) -> Speed {
        (**self).select_speed(view, job)
    }
    fn review_after(&mut self, view: &SchedulerView<'_>, job: &ActiveJob) -> Option<f64> {
        (**self).review_after(view, job)
    }
    fn on_completion(&mut self, view: &SchedulerView<'_>, record: &JobRecord) {
        (**self).on_completion(view, record);
    }
    fn on_idle(&mut self, view: &SchedulerView<'_>) {
        (**self).on_idle(view);
    }
    fn overrun_policy(&self) -> OverrunPolicy {
        (**self).overrun_policy()
    }
    fn on_overrun(&mut self, view: &SchedulerView<'_>, job: &ActiveJob) {
        (**self).on_overrun(view, job);
    }
    fn analysis_stats(&self) -> Option<AnalysisStats> {
        (**self).analysis_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobId;
    use crate::task::Task;

    fn view_fixture<'a>(
        tasks: &'a TaskSet,
        processor: &'a Processor,
        ready: &'a [ActiveJob],
        next_release: &'a [f64],
    ) -> SchedulerView<'a> {
        let next_arrival = next_release.iter().copied().fold(f64::INFINITY, f64::min);
        SchedulerView::new(
            1.0,
            tasks,
            processor,
            ready,
            next_release,
            next_arrival,
            Speed::FULL,
            0,
        )
    }

    fn active(task: usize, index: u64, deadline: f64) -> ActiveJob {
        ActiveJob::new(
            JobId {
                task: TaskId(task),
                index,
            },
            0.0,
            deadline,
            1.0,
            0.5,
        )
    }

    #[test]
    fn edf_job_prefers_earliest_deadline_then_ids() {
        let tasks = TaskSet::new(vec![
            Task::new(1.0, 10.0).unwrap(),
            Task::new(1.0, 10.0).unwrap(),
        ])
        .unwrap();
        let cpu = Processor::ideal_continuous();
        let ready = vec![active(1, 0, 5.0), active(0, 0, 5.0), active(0, 1, 9.0)];
        let next = vec![10.0, 10.0];
        let view = view_fixture(&tasks, &cpu, &ready, &next);
        let j = view.edf_job().unwrap();
        // Deadline tie between T1#0 and T0#0 → lower task id wins.
        assert_eq!(j.id.task, TaskId(0));
        assert_eq!(j.id.index, 0);
        assert_eq!(view.next_release_global(), 10.0);
        assert_eq!(view.next_release_of(TaskId(1)), 10.0);
        assert_eq!(view.now(), 1.0);
        assert_eq!(view.current_speed(), Speed::FULL);
        assert_eq!(view.ready_jobs().len(), 3);
    }

    #[test]
    fn edf_job_on_empty_ready_set_is_none() {
        let tasks = TaskSet::new(vec![Task::new(1.0, 10.0).unwrap()]).unwrap();
        let cpu = Processor::ideal_continuous();
        let ready: Vec<ActiveJob> = vec![];
        let next = vec![10.0];
        let view = view_fixture(&tasks, &cpu, &ready, &next);
        assert!(view.edf_job().is_none());
    }

    /// A governor usable through `&mut` and `Box` indirection.
    struct Fixed(Speed);
    impl Governor for Fixed {
        fn name(&self) -> &str {
            "fixed"
        }
        fn select_speed(&mut self, _view: &SchedulerView<'_>, _job: &ActiveJob) -> Speed {
            self.0
        }
    }

    #[test]
    fn governor_blanket_impls() {
        let tasks = TaskSet::new(vec![Task::new(1.0, 10.0).unwrap()]).unwrap();
        let cpu = Processor::ideal_continuous();
        let ready = vec![active(0, 0, 10.0)];
        let next = vec![10.0];
        let view = view_fixture(&tasks, &cpu, &ready, &next);

        let mut g = Fixed(Speed::FULL);
        let by_ref: &mut dyn Governor = &mut g;
        assert_eq!(by_ref.name(), "fixed");
        assert_eq!(by_ref.select_speed(&view, &ready[0]), Speed::FULL);
        assert_eq!(by_ref.overrun_policy(), OverrunPolicy::CompleteAtMax);
        by_ref.on_overrun(&view, &ready[0]); // default no-op delegates

        let mut boxed: Box<dyn Governor> = Box::new(Fixed(Speed::FULL));
        assert_eq!(boxed.name(), "fixed");
        assert_eq!(boxed.select_speed(&view, &ready[0]), Speed::FULL);
        assert_eq!(boxed.overrun_policy(), OverrunPolicy::CompleteAtMax);
        boxed.on_overrun(&view, &ready[0]);
    }
}
