//! Priority structures for the dispatch loop.
//!
//! The simulator's two per-event questions — *which ready job does EDF
//! dispatch?* and *when is the next release?* — were answered by linear
//! scans in the original engine. Both are answered here in `O(log n)` by
//! binary heaps while preserving the engine's observable behaviour
//! bit-for-bit:
//!
//! * [`ReadySet`] keeps the ready jobs in the exact `Vec` discipline the
//!   engine always had (push on release, `swap_remove` on completion), so
//!   the slice governors iterate over is byte-identical to the old one; a
//!   min-heap over `(deadline, task, index)` with **lazy deletion** finds
//!   the EDF job without scanning. Completion leaves the heap entry behind;
//!   it is discarded when it surfaces.
//! * [`ReleaseQueue`] pairs the per-task `next_release` vector with a
//!   min-heap keyed by arrival time, so the next-arrival query is a peek
//!   instead of a fold over all tasks.
//!
//! Both structures are scratch-friendly: `reset` reuses every allocation,
//! which is what lets the experiment runner replay thousands of cases
//! without per-case allocation churn.

use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

use crate::job::{ActiveJob, JobId};
use crate::simulator::TIME_EPS;

/// Heap key ordering EDF dispatch: earliest absolute deadline, ties broken
/// by task id then job index — the exact total order of the original linear
/// scan, under which the minimum is unique.
#[derive(Debug, Clone, Copy)]
struct EdfKey {
    deadline: f64,
    id: JobId,
}

impl PartialEq for EdfKey {
    fn eq(&self, other: &EdfKey) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for EdfKey {}
impl PartialOrd for EdfKey {
    fn partial_cmp(&self, other: &EdfKey) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for EdfKey {
    fn cmp(&self, other: &EdfKey) -> Ordering {
        self.deadline
            .total_cmp(&other.deadline)
            .then(self.id.task.cmp(&other.id.task))
            .then(self.id.index.cmp(&other.id.index))
    }
}

/// The ready (released, incomplete) jobs with `O(log n)` EDF selection.
///
/// Storage is a dense `Vec` with the same push/`swap_remove` discipline the
/// engine used before heaps existed, so [`ReadySet::jobs`] exposes the jobs
/// in the identical order. Job positions are tracked per task (a task has
/// at most a handful of concurrently-ready jobs), so lookups by id are
/// scan-free without hashing.
#[derive(Debug, Clone, Default)]
pub(crate) struct ReadySet {
    jobs: Vec<ActiveJob>,
    /// Per task: `(job index, position in jobs)` of its ready jobs.
    by_task: Vec<Vec<(u64, usize)>>,
    /// EDF order with lazy deletion: entries of completed jobs linger until
    /// they surface at the top.
    heap: BinaryHeap<Reverse<EdfKey>>,
}

impl ReadySet {
    /// Clears all state and resizes the per-task index for `n_tasks`.
    pub(crate) fn reset(&mut self, n_tasks: usize) {
        self.jobs.clear();
        self.heap.clear();
        for slots in &mut self.by_task {
            slots.clear();
        }
        self.by_task.resize_with(n_tasks, Vec::new);
    }

    /// The ready jobs, in the engine's canonical (insertion/`swap_remove`)
    /// order.
    pub(crate) fn jobs(&self) -> &[ActiveJob] {
        &self.jobs
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Mutable access to all ready jobs (overrun contamination marking).
    pub(crate) fn jobs_mut(&mut self) -> &mut [ActiveJob] {
        &mut self.jobs
    }

    /// The most recently released job, if any.
    pub(crate) fn last(&self) -> Option<&ActiveJob> {
        self.jobs.last()
    }

    /// Mutable access by position (as returned by [`ReadySet::edf_index`]).
    pub(crate) fn job_mut(&mut self, i: usize) -> &mut ActiveJob {
        &mut self.jobs[i]
    }

    /// Shared access by position.
    pub(crate) fn job(&self, i: usize) -> &ActiveJob {
        &self.jobs[i]
    }

    /// Adds a freshly released job.
    pub(crate) fn push(&mut self, job: ActiveJob) {
        let id = job.id;
        let pos = self.jobs.len();
        self.heap.push(Reverse(EdfKey {
            deadline: job.deadline,
            id,
        }));
        if let Some(slots) = self.by_task.get_mut(id.task.0) {
            slots.push((id.index, pos));
        }
        self.jobs.push(job);
    }

    /// Mutable access to the ready job with `id`, if it is still ready.
    pub(crate) fn job_mut_by_id(&mut self, id: JobId) -> Option<&mut ActiveJob> {
        let slots = self.by_task.get(id.task.0)?;
        let pos = slots
            .iter()
            .find(|&&(index, _)| index == id.index)
            .map(|&(_, pos)| pos)?;
        self.jobs.get_mut(pos)
    }

    /// Position of the job EDF dispatches: earliest deadline, ties broken by
    /// task id then job index. `None` when no job is ready. Amortized
    /// `O(log n)`: stale heap entries (completed jobs) are discarded as they
    /// surface.
    pub(crate) fn edf_index(&mut self) -> Option<usize> {
        while let Some(&Reverse(key)) = self.heap.peek() {
            if let Some(slots) = self.by_task.get(key.id.task.0) {
                if let Some(&(_, pos)) = slots.iter().find(|&&(index, _)| index == key.id.index) {
                    return Some(pos);
                }
            }
            self.heap.pop();
        }
        None
    }

    /// Removes and returns the job at position `i` (on completion), using
    /// the same `swap_remove` discipline as the original engine so the
    /// remaining order is unchanged. The job's heap entry is deleted lazily.
    pub(crate) fn complete(&mut self, i: usize) -> ActiveJob {
        let id = self.jobs[i].id;
        if let Some(slots) = self.by_task.get_mut(id.task.0) {
            slots.retain(|&(index, _)| index != id.index);
        }
        let job = self.jobs.swap_remove(i);
        if let Some(moved) = self.jobs.get(i) {
            let moved_id = moved.id;
            if let Some(slots) = self.by_task.get_mut(moved_id.task.0) {
                for slot in slots.iter_mut() {
                    if slot.0 == moved_id.index {
                        slot.1 = i;
                    }
                }
            }
        }
        job
    }

    /// Drains the remaining jobs (end of horizon) in storage order.
    pub(crate) fn drain_jobs(&mut self) -> std::vec::Drain<'_, ActiveJob> {
        self.heap.clear();
        for slots in &mut self.by_task {
            slots.clear();
        }
        self.jobs.drain(..)
    }
}

/// Heap key ordering releases: earliest arrival, ties by task id.
#[derive(Debug, Clone, Copy)]
struct RelKey {
    time: f64,
    task: usize,
}

impl PartialEq for RelKey {
    fn eq(&self, other: &RelKey) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for RelKey {}
impl PartialOrd for RelKey {
    fn partial_cmp(&self, other: &RelKey) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for RelKey {
    fn cmp(&self, other: &RelKey) -> Ordering {
        self.time
            .total_cmp(&other.time)
            .then(self.task.cmp(&other.task))
    }
}

/// Per-task next-release instants with an `O(1)` next-arrival query.
///
/// Invariant (outside [`ReleaseQueue::pop_due`] processing): the heap holds
/// exactly one entry per task, keyed by that task's current next release.
/// During release processing the due tasks' entries are temporarily out of
/// the heap; [`ReleaseQueue::min_with_pending`] accounts for them so
/// next-arrival queries stay exact throughout.
#[derive(Debug, Clone, Default)]
pub(crate) struct ReleaseQueue {
    next_release: Vec<f64>,
    heap: BinaryHeap<Reverse<RelKey>>,
}

impl ReleaseQueue {
    /// Resets to the given first-release instants (one per task).
    pub(crate) fn reset(&mut self, phases: impl Iterator<Item = f64>) {
        self.next_release.clear();
        self.next_release.extend(phases);
        self.heap.clear();
        for (task, &time) in self.next_release.iter().enumerate() {
            self.heap.push(Reverse(RelKey { time, task }));
        }
    }

    /// The per-task next-release instants (what [`SchedulerView`] exposes).
    ///
    /// [`SchedulerView`]: crate::governor::SchedulerView
    pub(crate) fn times(&self) -> &[f64] {
        &self.next_release
    }

    /// The next release instant of `task`.
    pub(crate) fn time(&self, task: usize) -> f64 {
        self.next_release[task]
    }

    /// The earliest next release over all tasks whose entry is in the heap.
    /// Exact whenever no due tasks are pending re-queue.
    pub(crate) fn next_arrival(&self) -> f64 {
        self.heap
            .peek()
            .map_or(f64::INFINITY, |&Reverse(key)| key.time)
    }

    /// The earliest next release counting both the heap and the `pending`
    /// due tasks popped by [`ReleaseQueue::pop_due`] but not yet re-queued.
    pub(crate) fn min_with_pending(&self, pending: &[usize]) -> f64 {
        pending
            .iter()
            .fold(self.next_arrival(), |min, &task| min.min(self.time(task)))
    }

    /// Pops every task due at `now` (within event tolerance) with a release
    /// strictly before `horizon` into `due`, sorted by task id — the order
    /// the original engine released simultaneous arrivals in. The caller
    /// must advance each due task ([`ReleaseQueue::set_time`]) and then
    /// re-queue it ([`ReleaseQueue::requeue`]).
    pub(crate) fn pop_due(&mut self, now: f64, horizon: f64, due: &mut Vec<usize>) {
        due.clear();
        while let Some(&Reverse(key)) = self.heap.peek() {
            if key.time <= now + TIME_EPS && key.time < horizon {
                due.push(key.task);
                self.heap.pop();
            } else {
                break;
            }
        }
        due.sort_unstable();
    }

    /// Updates `task`'s next release without touching the heap (used while
    /// the task is pending re-queue).
    pub(crate) fn set_time(&mut self, task: usize, time: f64) {
        self.next_release[task] = time;
    }

    /// Restores `task`'s heap entry at its current next-release instant.
    pub(crate) fn requeue(&mut self, task: usize) {
        self.heap.push(Reverse(RelKey {
            time: self.next_release[task],
            task,
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskId;

    fn job(task: usize, index: u64, deadline: f64) -> ActiveJob {
        ActiveJob::new(
            JobId {
                task: TaskId(task),
                index,
            },
            0.0,
            deadline,
            1.0,
            1.0,
        )
    }

    /// The reference EDF selection the heap must reproduce: the original
    /// linear scan.
    fn linear_edf_index(ready: &[ActiveJob]) -> Option<usize> {
        if ready.is_empty() {
            return None;
        }
        let mut best = 0;
        for (i, j) in ready.iter().enumerate().skip(1) {
            let b = &ready[best];
            let ord = j
                .deadline
                .total_cmp(&b.deadline)
                .then(j.id.task.cmp(&b.id.task))
                .then(j.id.index.cmp(&b.id.index));
            if ord == std::cmp::Ordering::Less {
                best = i;
            }
        }
        Some(best)
    }

    #[test]
    fn edf_selection_matches_linear_scan_with_ties() {
        let mut ready = ReadySet::default();
        ready.reset(3);
        for j in [
            job(2, 0, 8.0),
            job(0, 0, 5.0),
            job(1, 0, 5.0), // deadline tie with T0#0: task id breaks it
            job(0, 1, 9.0),
        ] {
            ready.push(j);
        }
        assert_eq!(ready.edf_index(), linear_edf_index(ready.jobs()));
        let i = ready.edf_index().unwrap();
        assert_eq!(ready.job(i).id.task, TaskId(0));
        assert_eq!(ready.job(i).id.index, 0);
    }

    #[test]
    fn completion_uses_swap_remove_order_and_lazy_deletion() {
        let mut ready = ReadySet::default();
        ready.reset(4);
        for j in [
            job(0, 0, 2.0),
            job(1, 0, 4.0),
            job(2, 0, 6.0),
            job(3, 0, 8.0),
        ] {
            ready.push(j);
        }
        let i = ready.edf_index().unwrap();
        assert_eq!(i, 0);
        let done = ready.complete(i);
        assert_eq!(done.id.task, TaskId(0));
        // swap_remove moved the last job into slot 0.
        assert_eq!(ready.jobs()[0].id.task, TaskId(3));
        // The stale heap entry for T0#0 must be skipped.
        assert_eq!(ready.edf_index(), linear_edf_index(ready.jobs()));
        assert_eq!(ready.jobs().len(), 3);
        // Lookups by id track the moved position.
        assert!(ready
            .job_mut_by_id(JobId {
                task: TaskId(3),
                index: 0
            })
            .is_some());
        assert!(ready
            .job_mut_by_id(JobId {
                task: TaskId(0),
                index: 0
            })
            .is_none());
    }

    #[test]
    fn release_queue_tracks_min_and_due_order() {
        let mut rq = ReleaseQueue::default();
        rq.reset([2.0, 0.5, 1.0].into_iter());
        assert_eq!(rq.next_arrival(), 0.5);
        let mut due = Vec::new();
        rq.pop_due(1.0, 100.0, &mut due);
        assert_eq!(due, vec![1, 2]); // sorted by task id, not pop order
        assert_eq!(rq.min_with_pending(&due), 0.5);
        rq.set_time(1, 10.5);
        rq.requeue(1);
        rq.set_time(2, 11.0);
        rq.requeue(2);
        assert_eq!(rq.next_arrival(), 2.0);
    }

    #[test]
    fn due_releases_respect_horizon() {
        let mut rq = ReleaseQueue::default();
        rq.reset([0.0, 0.0].into_iter());
        let mut due = Vec::new();
        // Releases at/after the horizon are not generated.
        rq.pop_due(0.0, 0.0, &mut due);
        assert!(due.is_empty());
        assert_eq!(rq.next_arrival(), 0.0);
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Property: after any sequence of releases and completions,
            /// the lazy-deletion heap selects exactly the job the original
            /// linear scan would — including deadline ties, which the
            /// small deadline grid makes frequent.
            #[test]
            fn heap_edf_matches_linear_scan(
                ops in proptest::collection::vec(
                    (0usize..5, 0u32..12, 0u32..3),
                    1..80,
                )
            ) {
                let mut ready = ReadySet::default();
                ready.reset(5);
                let mut per_task_index = [0u64; 5];
                for (task, grid, coin) in ops {
                    // Two-in-three pushes keep the set populated so
                    // completions (and lazy deletions) actually happen.
                    if coin < 2 || ready.is_empty() {
                        let deadline = f64::from(grid) * 0.25 + 1.0;
                        ready.push(job(task, per_task_index[task], deadline));
                        per_task_index[task] += 1;
                    } else {
                        let victim = task % ready.jobs().len();
                        ready.complete(victim);
                    }
                    prop_assert_eq!(
                        ready.edf_index(),
                        linear_edf_index(ready.jobs())
                    );
                }
            }
        }
    }

    /// Deterministic LCG-driven stress: random release/complete sequences,
    /// heap selection must equal the linear scan at every step.
    #[test]
    fn random_sequences_match_linear_scan() {
        let mut state: u64 = 0x9E37_79B9_7F4A_7C15;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        let n_tasks = 5;
        for _round in 0..200 {
            let mut ready = ReadySet::default();
            ready.reset(n_tasks);
            let mut per_task_index = [0u64; 5];
            for _op in 0..40 {
                let coin = next() % 3;
                if coin < 2 || ready.is_empty() {
                    let t = (next() as usize) % n_tasks;
                    // Deadlines from a small grid to force plenty of ties.
                    let deadline = ((next() % 8) as f64) * 0.5 + 1.0;
                    ready.push(job(t, per_task_index[t], deadline));
                    per_task_index[t] += 1;
                } else {
                    let victim = (next() as usize) % ready.jobs().len();
                    ready.complete(victim);
                }
                assert_eq!(
                    ready.edf_index(),
                    linear_edf_index(ready.jobs()),
                    "heap and linear scan diverged"
                );
            }
        }
    }
}
