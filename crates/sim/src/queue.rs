//! Priority structures for the dispatch loop.
//!
//! The simulator's two per-event questions — *which ready job does EDF
//! dispatch?* and *when is the next release?* — are answered by dense
//! parallel arrays, not heaps. The ready set and the release set are both
//! tiny (a handful to a few dozen entries), so a branch-light linear scan
//! over contiguous `u64`/`f64` words beats heap sift paths and their
//! pointer-chasing comparisons on every workload we bench, while keeping
//! the engine's observable behaviour bit-for-bit:
//!
//! * [`ReadySet`] keeps the ready jobs in the exact `Vec` discipline the
//!   engine always had (push on release, `swap_remove` on completion), so
//!   the slice governors iterate over is byte-identical to the old one.
//!   Alongside the jobs runs a packed key array — one `[u64; 3]` of
//!   `[deadline.to_bits(), task, index]` per job — whose lexicographic
//!   order equals the engine's EDF total order (`total_cmp` on the
//!   deadline, ties by task id then job index; deadlines are non-negative
//!   finite, so the bit order is the numeric order). EDF selection is a
//!   linear argmin over that key array: contiguous cache lines, no float
//!   compares, no lazy-deletion bookkeeping.
//! * [`ReleaseQueue`] is just the per-task `next_release` vector; the
//!   next-arrival query folds a minimum over it and the due-scan walks it
//!   in task order — which is exactly the (ascending task id) order the
//!   engine releases simultaneous arrivals in, so no sort is needed.
//!
//! Both structures are scratch-friendly: `reset` reuses every allocation,
//! which is what lets the experiment runner replay thousands of cases
//! without per-case allocation churn.

use crate::job::{ActiveJob, JobId};
use crate::simulator::TIME_EPS;

/// Packs a job's EDF ordering key: lexicographic compare of the array is
/// the engine's `(deadline total_cmp, task, index)` total order, valid
/// because deadlines are non-negative finite (`to_bits` is then monotone).
fn edf_key(deadline: f64, id: JobId) -> [u64; 3] {
    debug_assert!(
        deadline.is_finite() && deadline >= 0.0,
        "deadline must be non-negative finite, got {deadline}"
    );
    [deadline.to_bits(), id.task.0 as u64, id.index]
}

/// The ready (released, incomplete) jobs with cache-linear EDF selection.
///
/// Storage is a dense `Vec` with the same push/`swap_remove` discipline the
/// engine used before any indexing existed, so [`ReadySet::jobs`] exposes
/// the jobs in the identical order. The parallel `keys` array mirrors the
/// jobs position-for-position; it is the only thing the EDF argmin reads.
#[derive(Debug, Clone, Default)]
pub(crate) struct ReadySet {
    jobs: Vec<ActiveJob>,
    /// `[deadline_bits, task, index]` per job, parallel to `jobs`.
    keys: Vec<[u64; 3]>,
}

impl ReadySet {
    /// Clears all state; `n_tasks` sizes the expected concurrency.
    pub(crate) fn reset(&mut self, n_tasks: usize) {
        self.jobs.clear();
        self.keys.clear();
        if self.jobs.capacity() < n_tasks {
            self.jobs.reserve(n_tasks - self.jobs.capacity());
            self.keys.reserve(n_tasks - self.keys.capacity());
        }
    }

    /// The ready jobs, in the engine's canonical (insertion/`swap_remove`)
    /// order.
    pub(crate) fn jobs(&self) -> &[ActiveJob] {
        &self.jobs
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Mutable access to all ready jobs (overrun contamination marking).
    pub(crate) fn jobs_mut(&mut self) -> &mut [ActiveJob] {
        &mut self.jobs
    }

    /// The most recently released job, if any.
    pub(crate) fn last(&self) -> Option<&ActiveJob> {
        self.jobs.last()
    }

    /// Mutable access by position (as returned by [`ReadySet::edf_index`]).
    ///
    /// Callers mutate execution-progress fields only; a job's deadline is
    /// fixed at release, so the parallel key array stays in sync.
    pub(crate) fn job_mut(&mut self, i: usize) -> &mut ActiveJob {
        &mut self.jobs[i]
    }

    /// Shared access by position.
    pub(crate) fn job(&self, i: usize) -> &ActiveJob {
        &self.jobs[i]
    }

    /// Adds a freshly released job.
    pub(crate) fn push(&mut self, job: ActiveJob) {
        self.keys.push(edf_key(job.deadline, job.id));
        self.jobs.push(job);
    }

    /// Mutable access to the ready job with `id`, if it is still ready.
    pub(crate) fn job_mut_by_id(&mut self, id: JobId) -> Option<&mut ActiveJob> {
        let pos = self
            .keys
            .iter()
            .position(|key| key[1] == id.task.0 as u64 && key[2] == id.index)?;
        self.jobs.get_mut(pos)
    }

    /// Position of the job EDF dispatches: earliest absolute deadline, ties
    /// broken by task id then job index — the argmin of the packed key
    /// array, whose lexicographic order is that exact total order (under
    /// which the minimum is unique). `None` when no job is ready.
    pub(crate) fn edf_index(&self) -> Option<usize> {
        let mut keys = self.keys.iter().enumerate();
        let (_, first) = keys.next()?;
        let mut best = 0;
        let mut best_key = *first;
        for (i, key) in keys {
            if *key < best_key {
                best = i;
                best_key = *key;
            }
        }
        Some(best)
    }

    /// Removes and returns the job at position `i` (on completion), using
    /// the same `swap_remove` discipline as the original engine so the
    /// remaining order is unchanged. The key array moves in lock-step.
    pub(crate) fn complete(&mut self, i: usize) -> ActiveJob {
        self.keys.swap_remove(i);
        self.jobs.swap_remove(i)
    }

    /// Drains the remaining jobs (end of horizon) in storage order.
    pub(crate) fn drain_jobs(&mut self) -> std::vec::Drain<'_, ActiveJob> {
        self.keys.clear();
        self.jobs.drain(..)
    }
}

/// Per-task next-release instants.
///
/// The dense `f64` vector is the single source of truth: the next-arrival
/// query is a fold-min over it (bit-exact equal to any indexed minimum over
/// the same values) and the due-scan walks it in ascending task id — the
/// order the engine releases simultaneous arrivals in. At release-set sizes
/// (tens of tasks) the scans are cheaper than maintaining a heap, and they
/// stay exact mid-batch: a due task's slot already holds its advanced time
/// the moment [`ReleaseQueue::set_time`] runs, with no re-queue step.
#[derive(Debug, Clone, Default)]
pub(crate) struct ReleaseQueue {
    next_release: Vec<f64>,
}

impl ReleaseQueue {
    /// Resets to the given first-release instants (one per task).
    pub(crate) fn reset(&mut self, phases: impl Iterator<Item = f64>) {
        self.next_release.clear();
        self.next_release.extend(phases);
    }

    /// The per-task next-release instants (what [`SchedulerView`] exposes).
    ///
    /// [`SchedulerView`]: crate::governor::SchedulerView
    pub(crate) fn times(&self) -> &[f64] {
        &self.next_release
    }

    /// The next release instant of `task`.
    pub(crate) fn time(&self, task: usize) -> f64 {
        self.next_release[task]
    }

    /// The earliest next release over all tasks (infinite when empty).
    /// Always exact, including mid-batch: advanced times are visible the
    /// moment they are set.
    pub(crate) fn next_arrival(&self) -> f64 {
        self.next_release
            .iter()
            .fold(f64::INFINITY, |min, &time| min.min(time))
    }

    /// Collects every task due at `now` (within event tolerance) with a
    /// release strictly before `horizon` into `due`, in ascending task id —
    /// the order the original engine released simultaneous arrivals in.
    /// The caller advances each due task via [`ReleaseQueue::set_time`].
    pub(crate) fn pop_due(&self, now: f64, horizon: f64, due: &mut Vec<usize>) {
        due.clear();
        for (task, &time) in self.next_release.iter().enumerate() {
            if time <= now + TIME_EPS && time < horizon {
                due.push(task);
            }
        }
    }

    /// Updates `task`'s next release.
    pub(crate) fn set_time(&mut self, task: usize, time: f64) {
        self.next_release[task] = time;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskId;

    fn job(task: usize, index: u64, deadline: f64) -> ActiveJob {
        ActiveJob::new(
            JobId {
                task: TaskId(task),
                index,
            },
            0.0,
            deadline,
            1.0,
            1.0,
        )
    }

    /// The reference EDF selection the key argmin must reproduce: the
    /// original linear scan over the job structs.
    fn linear_edf_index(ready: &[ActiveJob]) -> Option<usize> {
        if ready.is_empty() {
            return None;
        }
        let mut best = 0;
        for (i, j) in ready.iter().enumerate().skip(1) {
            let b = &ready[best];
            let ord = j
                .deadline
                .total_cmp(&b.deadline)
                .then(j.id.task.cmp(&b.id.task))
                .then(j.id.index.cmp(&b.id.index));
            if ord == std::cmp::Ordering::Less {
                best = i;
            }
        }
        Some(best)
    }

    #[test]
    fn edf_selection_matches_linear_scan_with_ties() {
        let mut ready = ReadySet::default();
        ready.reset(3);
        for j in [
            job(2, 0, 8.0),
            job(0, 0, 5.0),
            job(1, 0, 5.0), // deadline tie with T0#0: task id breaks it
            job(0, 1, 9.0),
        ] {
            ready.push(j);
        }
        assert_eq!(ready.edf_index(), linear_edf_index(ready.jobs()));
        let i = ready.edf_index().unwrap();
        assert_eq!(ready.job(i).id.task, TaskId(0));
        assert_eq!(ready.job(i).id.index, 0);
    }

    #[test]
    fn completion_uses_swap_remove_order_and_key_sync() {
        let mut ready = ReadySet::default();
        ready.reset(4);
        for j in [
            job(0, 0, 2.0),
            job(1, 0, 4.0),
            job(2, 0, 6.0),
            job(3, 0, 8.0),
        ] {
            ready.push(j);
        }
        let i = ready.edf_index().unwrap();
        assert_eq!(i, 0);
        let done = ready.complete(i);
        assert_eq!(done.id.task, TaskId(0));
        // swap_remove moved the last job into slot 0.
        assert_eq!(ready.jobs()[0].id.task, TaskId(3));
        // The key array must have moved in lock-step.
        assert_eq!(ready.edf_index(), linear_edf_index(ready.jobs()));
        assert_eq!(ready.jobs().len(), 3);
        // Lookups by id track the moved position.
        assert!(ready
            .job_mut_by_id(JobId {
                task: TaskId(3),
                index: 0
            })
            .is_some());
        assert!(ready
            .job_mut_by_id(JobId {
                task: TaskId(0),
                index: 0
            })
            .is_none());
    }

    #[test]
    fn release_queue_tracks_min_and_due_order() {
        let mut rq = ReleaseQueue::default();
        rq.reset([2.0, 0.5, 1.0].into_iter());
        assert_eq!(rq.next_arrival(), 0.5);
        let mut due = Vec::new();
        rq.pop_due(1.0, 100.0, &mut due);
        assert_eq!(due, vec![1, 2]); // ascending task id
        // Mid-batch the due tasks still hold their old times...
        assert_eq!(rq.next_arrival(), 0.5);
        rq.set_time(1, 10.5);
        rq.set_time(2, 11.0);
        // ...and advanced times are visible with no re-queue step.
        assert_eq!(rq.next_arrival(), 2.0);
    }

    #[test]
    fn due_releases_respect_horizon() {
        let mut rq = ReleaseQueue::default();
        rq.reset([0.0, 0.0].into_iter());
        let mut due = Vec::new();
        // Releases at/after the horizon are not generated.
        rq.pop_due(0.0, 0.0, &mut due);
        assert!(due.is_empty());
        assert_eq!(rq.next_arrival(), 0.0);
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Property: after any sequence of releases and completions,
            /// the packed-key argmin selects exactly the job the original
            /// linear scan would — including deadline ties, which the
            /// small deadline grid makes frequent.
            #[test]
            fn key_argmin_matches_linear_scan(
                ops in proptest::collection::vec(
                    (0usize..5, 0u32..12, 0u32..3),
                    1..80,
                )
            ) {
                let mut ready = ReadySet::default();
                ready.reset(5);
                let mut per_task_index = [0u64; 5];
                for (task, grid, coin) in ops {
                    // Two-in-three pushes keep the set populated so
                    // completions (and key swaps) actually happen.
                    if coin < 2 || ready.is_empty() {
                        let deadline = f64::from(grid) * 0.25 + 1.0;
                        ready.push(job(task, per_task_index[task], deadline));
                        per_task_index[task] += 1;
                    } else {
                        let victim = task % ready.jobs().len();
                        ready.complete(victim);
                    }
                    prop_assert_eq!(
                        ready.edf_index(),
                        linear_edf_index(ready.jobs())
                    );
                }
            }
        }
    }

    /// Deterministic LCG-driven stress: random release/complete sequences,
    /// key-argmin selection must equal the linear scan at every step.
    #[test]
    fn random_sequences_match_linear_scan() {
        let mut state: u64 = 0x9E37_79B9_7F4A_7C15;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        let n_tasks = 5;
        for _round in 0..200 {
            let mut ready = ReadySet::default();
            ready.reset(n_tasks);
            let mut per_task_index = [0u64; 5];
            for _op in 0..40 {
                let coin = next() % 3;
                if coin < 2 || ready.is_empty() {
                    let t = (next() as usize) % n_tasks;
                    // Deadlines from a small grid to force plenty of ties.
                    let deadline = ((next() % 8) as f64) * 0.5 + 1.0;
                    ready.push(job(t, per_task_index[t], deadline));
                    per_task_index[t] += 1;
                } else {
                    let victim = (next() as usize) % ready.jobs().len();
                    ready.complete(victim);
                }
                assert_eq!(
                    ready.edf_index(),
                    linear_edf_index(ready.jobs()),
                    "key argmin and linear scan diverged"
                );
            }
        }
    }
}
