//! Terminal rendering of execution traces (Gantt chart + speed profile).

use crate::task::TaskSet;
use crate::trace::{SegmentKind, Trace};

/// Renders `trace` as an ASCII chart: one Gantt row per task (`█` where the
/// task executes), an `idle` row, and a speed-profile row mapping the
/// current speed to digits `0`–`9` (e.g. `4` ≈ 40–49 % speed).
///
/// `width` is the number of character columns the time axis is quantized
/// into; each column shows the dominant activity of its time slice.
///
/// ```
/// use stadvs_power::{Processor, Speed};
/// use stadvs_sim::{render_gantt, ActiveJob, Governor, SchedulerView,
///                  SimConfig, Simulator, Task, TaskSet, WorstCase};
///
/// struct Half;
/// impl Governor for Half {
///     fn name(&self) -> &str { "half" }
///     fn select_speed(&mut self, _: &SchedulerView<'_>, _: &ActiveJob) -> Speed {
///         Speed::new(0.5).expect("valid")
///     }
/// }
///
/// # fn main() -> Result<(), stadvs_sim::SimError> {
/// let tasks = TaskSet::new(vec![Task::new(1.0, 4.0)?])?;
/// let sim = Simulator::new(tasks.clone(), Processor::ideal_continuous(),
///                          SimConfig::new(8.0)?.with_trace(true))?;
/// let out = sim.run(&mut Half, &WorstCase)?;
/// let chart = render_gantt(out.trace.as_ref().expect("trace on"), &tasks, 32);
/// assert!(chart.contains("T0"));
/// # Ok(())
/// # }
/// ```
///
/// # Panics
///
/// Panics if `width` is zero.
pub fn render_gantt(trace: &Trace, tasks: &TaskSet, width: usize) -> String {
    assert!(width > 0, "chart width must be positive");
    let end = trace.end();
    if end <= 0.0 {
        return String::from("(empty trace)\n");
    }
    let slice = end / width as f64;
    let n = tasks.len();

    // Dominant activity per (row, column): time accumulated.
    let mut exec_time = vec![vec![0.0_f64; width]; n];
    let mut idle_time = vec![0.0_f64; width];
    let mut speed_weight = vec![0.0_f64; width]; // Σ speed·duration (exec only)

    for seg in trace.segments() {
        let first = ((seg.start / slice).floor() as usize).min(width - 1);
        let last = (((seg.end - 1e-12) / slice).floor() as usize).min(width - 1);
        for col in first..=last {
            let col_start = col as f64 * slice;
            let col_end = col_start + slice;
            let overlap = (seg.end.min(col_end) - seg.start.max(col_start)).max(0.0);
            if overlap <= 0.0 {
                continue;
            }
            match seg.kind {
                SegmentKind::Execute { job } => {
                    if let Some(row) = exec_time.get_mut(job.task.0) {
                        row[col] += overlap;
                    }
                    speed_weight[col] += seg.speed.ratio() * overlap;
                }
                SegmentKind::Idle | SegmentKind::Transition => idle_time[col] += overlap,
            }
        }
    }

    let mut out = String::new();
    for (i, (id, task)) in tasks.iter().enumerate() {
        let label = task
            .name()
            .map(str::to_string)
            // xtask:allow(hot-path-alloc): once-per-task rendering, not the dispatch loop
            .unwrap_or_else(|| id.to_string());
        // xtask:allow(hot-path-alloc): once-per-task rendering, not the dispatch loop
        out.push_str(&format!("{label:>12} │"));
        for &mine in exec_time[i].iter().take(width) {
            let c = if mine <= 0.0 {
                ' '
            } else if mine >= 0.5 * slice {
                '█'
            } else {
                '▒'
            };
            out.push(c);
        }
        out.push('\n');
    }
    out.push_str(&format!("{:>12} │", "idle"));
    for &idle in idle_time.iter().take(width) {
        out.push(if idle >= 0.5 * slice { '.' } else { ' ' });
    }
    out.push('\n');
    out.push_str(&format!("{:>12} │", "speed"));
    for col in 0..width {
        let busy: f64 = (0..n).map(|i| exec_time[i][col]).sum();
        if busy <= 0.0 {
            out.push(' ');
        } else {
            let mean_speed = speed_weight[col] / busy;
            let digit = ((mean_speed * 10.0).floor() as u32).min(9);
            out.push(char::from_digit(digit, 10).unwrap_or('9'));
        }
    }
    out.push('\n');
    out.push_str(&format!(
        "{:>12} └{}\n{:>12}  0{:>width$.3}\n",
        "",
        "─".repeat(width),
        "t (s)",
        end,
        width = width - 1
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobId;
    use crate::task::{Task, TaskId};
    use crate::trace::Segment;
    use stadvs_power::Speed;

    fn trace_fixture() -> (Trace, TaskSet) {
        let tasks = TaskSet::new(vec![
            Task::new(1.0, 4.0).unwrap().named("audio"),
            Task::new(1.0, 4.0).unwrap(),
        ])
        .unwrap();
        let mut trace = Trace::new();
        let seg = |start: f64, end: f64, speed: f64, kind| Segment {
            start,
            end,
            speed: Speed::new(speed).unwrap(),
            kind,
        };
        let job = |task: usize| JobId {
            task: TaskId(task),
            index: 0,
        };
        trace.push(seg(0.0, 2.0, 1.0, SegmentKind::Execute { job: job(0) }));
        trace.push(seg(2.0, 3.0, 0.5, SegmentKind::Execute { job: job(1) }));
        trace.push(seg(3.0, 4.0, 0.5, SegmentKind::Idle));
        (trace, tasks)
    }

    #[test]
    fn renders_rows_and_speed_digits() {
        let (trace, tasks) = trace_fixture();
        let chart = render_gantt(&trace, &tasks, 8);
        let lines: Vec<&str> = chart.lines().collect();
        // Task rows: audio executes in the first half.
        assert!(lines[0].contains("audio"));
        assert!(lines[0].contains('█'));
        assert!(lines[1].contains("T1"));
        // Idle row has dots at the end.
        assert!(lines[2].trim_start().starts_with("idle"));
        assert!(lines[2].ends_with(". ") || lines[2].ends_with(".."));
        // Speed row: first columns at full speed (digit 9), later at 5.
        let speed_row = lines[3];
        assert!(speed_row.contains('9'));
        assert!(speed_row.contains('5'));
    }

    #[test]
    fn empty_trace_is_handled() {
        let tasks = TaskSet::new(vec![Task::new(1.0, 4.0).unwrap()]).unwrap();
        assert_eq!(render_gantt(&Trace::new(), &tasks, 10), "(empty trace)\n");
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn zero_width_panics() {
        let (trace, tasks) = trace_fixture();
        let _ = render_gantt(&trace, &tasks, 0);
    }
}
