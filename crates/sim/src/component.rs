//! Kernel components: the handler trait, the per-delivery context, the
//! event-absorbing sink, and the per-core EDF-DVS engine.
//!
//! [`CoreEngine`] is the heart of the refactor: the legacy monolithic
//! simulator loop, relocated *instruction-for-instruction* into a
//! component. One handled kernel event executes exactly one iteration of
//! the legacy loop body, after which the engine schedules its own next
//! wake at its own post-iteration clock. All floating-point arithmetic
//! happens inside the engine on its own clock — the kernel clock is
//! ordering-only — so the same float operations run in the same order as
//! the pre-kernel loop and the results are bit-identical by construction
//! (pinned by the golden corpus and `kernel_differential`).
//!
//! Besides its wake events, the engine emits *note* events (completion,
//! fault, skip, frame-boundary, budget) to observer components. Notes
//! carry no float state and exist purely for the per-component counters
//! surfaced in [`crate::SimOutcome::kernel`] — unbudgeted runs take no
//! shared-state branch and are unperturbed by them.

use stadvs_power::{EnergyAccumulator, Processor, Speed};

use crate::event::{ComponentId, EventKind, EventQueue, SimEvent, EVENT_KINDS};
use crate::exec::ExecutionSource;
use crate::fault::{FaultEvent, FaultKind, FaultPlan, FaultReport, OverrunPolicy};
use crate::governor::{Governor, SchedulerView};
use crate::job::{ActiveJob, JobId, JobRecord};
use crate::kernel::{KernelStats, SharedState};
use crate::model::{mk_skip_allowed, ModelReport, SkipPolicy};
use crate::outcome::SimOutcome;
use crate::queue::{ReadySet, ReleaseQueue};
use crate::simulator::{MissPolicy, SimConfig, TIME_EPS, WORK_EPS};
use crate::task::{TaskId, TaskKind, TaskSet};
use crate::trace::{Segment, SegmentKind, Trace};
use crate::SimError;

/// A simulation component driven by the [`crate::Kernel`].
///
/// The handler's slot in the kernel's handler table is its
/// [`ComponentId`]; events targeted at that id are delivered here, in
/// deterministic `(time, seq, source)` order.
pub trait EventHandler {
    /// Handles one delivered event. Future events are emitted through
    /// `ctx`; an `Err` aborts the kernel run.
    ///
    /// # Errors
    ///
    /// Component-specific; a core engine surfaces its simulation errors
    /// ([`SimError::DeadlineMiss`], [`SimError::EventLimitExceeded`], …).
    fn handle(&mut self, event: SimEvent, ctx: &mut ComponentCtx<'_>) -> Result<(), SimError>;
}

/// The per-delivery view of the kernel a component acts through: read
/// the clock, emit future events (stamped with the component's own
/// sequence counter), and reach the run-scoped [`SharedState`].
pub struct ComponentCtx<'k> {
    pub(crate) queue: &'k mut EventQueue,
    pub(crate) seqs: &'k mut [u64],
    pub(crate) emitted: &'k mut [[u64; EVENT_KINDS]],
    pub(crate) now: f64,
    pub(crate) delivered: u64,
    pub(crate) shared: &'k mut SharedState,
    pub(crate) self_id: ComponentId,
}

impl ComponentCtx<'_> {
    /// The kernel clock (the delivered event's time).
    pub fn now(&self) -> f64 {
        self.now
    }

    /// The handling component's id.
    pub fn self_id(&self) -> ComponentId {
        self.self_id
    }

    /// The global delivery ordinal of the event being handled (1-based).
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// The run-scoped shared state (budget ledger, when present).
    pub fn shared(&mut self) -> &mut SharedState {
        self.shared
    }

    /// Emits an event at `time ≥ now` from this component to `target`.
    pub fn emit(&mut self, time: f64, kind: EventKind, target: ComponentId) {
        debug_assert!(
            time + TIME_EPS >= self.now,
            "component {} emitted into the past: {} < {}",
            self.self_id.0,
            time,
            self.now
        );
        let s = self.self_id.0;
        let seq = self.seqs[s];
        self.seqs[s] += 1;
        self.emitted[s][kind.index()] += 1;
        self.queue.push(
            SimEvent {
                // Clamp within tolerance: queue times must be monotone.
                time: time.max(self.now),
                kind,
                source: self.self_id,
                target,
            },
            seq,
        );
    }
}

/// An event-absorbing observer: the trace sink that note events
/// (completions, faults, skips, frame boundaries, budget throttles) are
/// addressed to. All accounting happens in the kernel's per-component
/// counters, so the component itself is a no-op — it also backs the
/// handler-table slots of idle platform cores.
#[derive(Debug, Clone, Copy, Default)]
pub struct TraceSink;

impl EventHandler for TraceSink {
    fn handle(&mut self, _event: SimEvent, _ctx: &mut ComponentCtx<'_>) -> Result<(), SimError> {
        Ok(())
    }
}

/// Emits a note event when running under a kernel; a no-op on the
/// direct (kernel-less) drive path, where only wake scheduling differs.
fn note(ctx: Option<&mut ComponentCtx<'_>>, time: f64, kind: EventKind, target: ComponentId) {
    if let Some(ctx) = ctx {
        ctx.emit(time, kind, target);
    }
}

/// What one engine step decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Step {
    /// The loop body ran to a continuation point; schedule the next wake.
    Continue,
    /// The horizon was reached; no further wakes.
    Done,
}

/// Structure-of-arrays copy of the per-task hot parameters, filled once
/// per run from the [`TaskSet`] so the release scan reads contiguous
/// `f64` lanes instead of pointer-hopping `Task` structs (which also
/// carry a name `String` and model payloads the hot path never needs).
/// The values are verbatim copies — every formula computed from them
/// (e.g. `phase + index * period`) is the exact expression the `Task`
/// methods evaluate, so the arithmetic is bit-identical.
#[derive(Debug, Clone, Default)]
pub(crate) struct TaskHot {
    pub(crate) wcet: Vec<f64>,
    /// Relative deadline.
    pub(crate) deadline: Vec<f64>,
    pub(crate) period: Vec<f64>,
    pub(crate) phase: Vec<f64>,
    pub(crate) kind: Vec<TaskKind>,
}

impl TaskHot {
    /// Refills the arrays from `tasks` (allocation-free once warm).
    fn fill(&mut self, tasks: &TaskSet) {
        self.wcet.clear();
        self.deadline.clear();
        self.period.clear();
        self.phase.clear();
        self.kind.clear();
        for (_, t) in tasks.iter() {
            self.wcet.push(t.wcet());
            self.deadline.push(t.deadline());
            self.period.push(t.period());
            self.phase.push(t.phase());
            self.kind.push(t.kind());
        }
    }

    /// Nominal release instant of job `index` of `task` — the same
    /// expression as [`crate::task::Task::release_of`].
    fn release_of(&self, task: usize, index: u64) -> f64 {
        self.phase[task] + index as f64 * self.period[task]
    }
}

/// The per-task scheduling buffers of one core, reused across runs (the
/// guts of the legacy `SimScratch`, shared by the uniprocessor and the
/// platform paths).
#[derive(Debug, Clone, Default)]
pub(crate) struct CoreScratch {
    pub(crate) ready: ReadySet,
    pub(crate) releases: ReleaseQueue,
    pub(crate) hot: TaskHot,
    pub(crate) next_index: Vec<u64>,
    pub(crate) due: Vec<usize>,
    /// Per-task flag set by [`OverrunPolicy::SkipNext`]: the task's next
    /// release is suppressed. Fully reset at the start of each run — a
    /// stale flag would silently shed a job of the *next* workload.
    pub(crate) skip_next: Vec<bool>,
    /// Per-task (m,k) outcome rings for weakly-hard tasks: bit `index % 64`
    /// is set iff that job completed on time. Since `k ≤ 64`, the trailing
    /// `k − 1` outcomes a skip decision inspects are always collision-free.
    /// Fully reset per run.
    pub(crate) mk_met: Vec<u64>,
    /// Per-task frame-recovery flag: set while a frame task is past a
    /// missed frame and not yet back on time (its dispatches are boosted).
    pub(crate) frame_boost: Vec<bool>,
    /// Per-task current run of consecutive late frames.
    pub(crate) frame_streak: Vec<u64>,
}

/// The per-core EDF-DVS engine: the legacy simulator loop as a kernel
/// component. Construction runs the legacy pre-loop setup (scratch
/// resets, `Governor::on_start`); each [`CoreEngine::step`] is one legacy
/// loop iteration; [`CoreEngine::finish`] is the legacy post-loop
/// (horizon drain, sorting, outcome assembly).
pub(crate) struct CoreEngine<'s, G, E: ?Sized> {
    // Static run inputs.
    tasks: &'s TaskSet,
    processor: &'s Processor,
    exec: &'s E,
    plan: &'s FaultPlan,
    governor: G,
    scratch: &'s mut CoreScratch,
    horizon: f64,
    miss_policy: MissPolicy,
    max_events: u64,
    skip_policy: SkipPolicy,
    self_id: ComponentId,
    sink: ComponentId,
    budget: Option<ComponentId>,
    core_index: usize,
    faults_on: bool,
    jittered: bool,
    models_on: bool,
    // Run state (the legacy loop's locals).
    now: f64,
    events: u64,
    records: Vec<JobRecord>,
    acc: EnergyAccumulator,
    trace: Option<Trace>,
    current_speed: Speed,
    last_running: Option<JobId>,
    /// Set after a speed transition: the job the speed was committed
    /// for. If it is still the EDF choice afterwards, the commitment
    /// holds and the governor is not re-consulted — re-consulting would
    /// let the latency-shrunk slack demand a marginally different speed
    /// and chain transitions forever (real platforms commit too).
    committed_for: Option<JobId>,
    switch_ordinal: u64,
    /// Bumped whenever any task's next-release instant advances, so
    /// governors can key release-derived caches on the epoch (see
    /// [`SchedulerView::release_epoch`]).
    release_epoch: u64,
    /// Histogram of same-instant release batch sizes (see
    /// [`crate::SimOutcome::release_batches`] for the bucket geometry).
    release_batches: [u64; 8],
    model_report: ModelReport,
    skipped_ids: Vec<JobId>,
    report: FaultReport,
    contaminated_ids: Vec<JobId>,
    contamination_active: bool,
    recovery_start: Option<f64>,
    // Runtime invariant audit (debug builds only): the clock must never
    // move backwards, and idle + transition + execution time must tile
    // `[0, now]` — a gap or overlap means the trace and the energy
    // accounting have diverged from wall-clock time.
    audit_prev_now: f64,
    audit_accounted: f64,
    done: bool,
}

impl<'s, G, E> CoreEngine<'s, G, E>
where
    G: Governor,
    E: ExecutionSource + ?Sized,
{
    /// Creates the engine and runs the legacy pre-loop setup.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        tasks: &'s TaskSet,
        processor: &'s Processor,
        config: &SimConfig,
        mut governor: G,
        exec: &'s E,
        plan: &'s FaultPlan,
        scratch: &'s mut CoreScratch,
        self_id: ComponentId,
        sink: ComponentId,
        budget: Option<ComponentId>,
        core_index: usize,
    ) -> CoreEngine<'s, G, E> {
        let horizon = config.horizon();
        let n = tasks.len();

        // Fault-injection state. `faults_on` is checked once per gate so the
        // no-fault path stays branch-predictable; `jittered` additionally
        // gates the sporadic release recurrence, which is float-identical to
        // the periodic one only in the absence of delays.
        let faults_on = !plan.is_none();
        let jittered = faults_on && plan.has_jitter();
        // Task-model state. `models_on` plays the same role for the model
        // bookkeeping that `faults_on` plays for the fault channels: checked
        // once per run, so all-hard task sets simulate bit-identically to
        // the pre-model engine.
        let models_on = !tasks.all_hard();

        scratch.ready.reset(n);
        scratch.hot.fill(tasks);
        if jittered {
            scratch.releases.reset(
                tasks
                    .iter()
                    .map(|(id, t)| t.phase() + plan.release_delay(id, 0, t.period())),
            );
        } else {
            scratch.releases.reset(tasks.iter().map(|(_, t)| t.phase()));
        }
        scratch.next_index.clear();
        scratch.next_index.resize(n, 0);
        scratch.due.clear();
        scratch.skip_next.clear();
        scratch.skip_next.resize(n, false);
        scratch.mk_met.clear();
        scratch.mk_met.resize(n, 0);
        scratch.frame_boost.clear();
        scratch.frame_boost.resize(n, false);
        scratch.frame_streak.clear();
        scratch.frame_streak.resize(n, 0);
        // Pre-size for the jobs this horizon generates (capped: the records
        // move into the outcome, so a hostile horizon must not pre-book
        // unbounded memory).
        let expected_jobs: usize = tasks
            .iter()
            .map(|(_, t)| {
                if t.phase() >= horizon {
                    0
                } else {
                    ((horizon - t.phase()) / t.period()).ceil() as usize + 1
                }
            })
            .sum();
        let records: Vec<JobRecord> = Vec::with_capacity(expected_jobs.min(1 << 20));
        let acc = processor.energy_accumulator();
        let trace = config.records_trace().then(Trace::new);

        governor.on_start(tasks, processor);

        CoreEngine {
            tasks,
            processor,
            exec,
            plan,
            governor,
            scratch,
            horizon,
            miss_policy: config.miss_policy(),
            max_events: config.max_events(),
            skip_policy: config.skip_policy(),
            self_id,
            sink,
            budget,
            core_index,
            faults_on,
            jittered,
            models_on,
            now: 0.0,
            events: 0,
            records,
            acc,
            trace,
            current_speed: Speed::FULL,
            last_running: None,
            committed_for: None,
            switch_ordinal: 0,
            release_epoch: 0,
            release_batches: [0; 8],
            model_report: ModelReport::default(),
            skipped_ids: Vec::new(),
            report: FaultReport::default(),
            contaminated_ids: Vec::new(),
            contamination_active: false,
            recovery_start: None,
            audit_prev_now: 0.0,
            audit_accounted: 0.0,
            done: false,
        }
    }

    /// Whether the ready set is empty (the next wake is a release wait).
    fn waiting_for_release(&self) -> bool {
        self.scratch.ready.is_empty()
    }

    /// One iteration of the legacy simulator loop. `ctx` is `Some` when
    /// driven by the kernel (note events and budget grants are live) and
    /// `None` on the direct oracle path — the note branches reduce to
    /// no-ops there, and no other instruction differs.
    ///
    /// # Errors
    ///
    /// * [`SimError::DeadlineMiss`] under [`MissPolicy::Fail`];
    /// * [`SimError::EventLimitExceeded`] if the runaway guard trips.
    pub(crate) fn step(&mut self, ctx: &mut Option<&mut ComponentCtx<'_>>) -> Result<Step, SimError> {
        self.events += 1;
        if self.events > self.max_events {
            return Err(SimError::EventLimitExceeded {
                limit: self.max_events,
            });
        }
        debug_assert!(
            self.now >= self.audit_prev_now,
            "clock moved backwards: {} -> {}",
            self.audit_prev_now,
            self.now
        );
        debug_assert!(
            (self.audit_accounted - self.now).abs() <= TIME_EPS * self.events as f64,
            "timeline not tiled: accounted {}, clock {}",
            self.audit_accounted,
            self.now
        );
        self.audit_prev_now = self.now;
        let horizon = self.horizon;
        let now = self.now;

        // 1. Release every job due at (or within tolerance of) `now`, in
        //    ascending task order, draining the whole same-instant batch
        //    in one pass (the due scan collects the batch; each task may
        //    owe several jobs if its period is tiny). Per-task parameters
        //    come from the SoA copy in scratch; the `Task` struct is only
        //    touched on the lazy paths (demand sampling, sporadic gaps).
        let mut batch_size: u64 = 0;
        self.scratch
            .releases
            .pop_due(now, horizon, &mut self.scratch.due);
        let mut d = 0;
        while d < self.scratch.due.len() {
            let i = self.scratch.due[d];
            while self.scratch.releases.time(i) <= now + TIME_EPS
                && self.scratch.releases.time(i) < horizon
            {
                batch_size += 1;
                let kind = self.scratch.hot.kind[i];
                let id = JobId {
                    task: TaskId(i),
                    index: self.scratch.next_index[i],
                };
                let release = self.scratch.releases.time(i);
                let fault_shed = self.faults_on && self.scratch.skip_next[i];
                if self.models_on {
                    match kind {
                        TaskKind::Hard => {}
                        TaskKind::WeaklyHard { .. } => {
                            self.model_report.weakly_hard_jobs += 1;
                            // The ring slot wraps to this job: its
                            // outcome starts as "lost" and is only set
                            // on an on-time completion. Position
                            // `index % 64` is outside every trailing
                            // window a skip decision inspects (k ≤ 64),
                            // so clearing before deciding is safe.
                            self.scratch.mk_met[i] &= !(1u64 << (id.index % 64));
                        }
                        TaskKind::Sporadic { .. } => self.model_report.sporadic_jobs += 1,
                        TaskKind::Frame { .. } => {
                            self.model_report.frame_jobs += 1;
                            note(
                                ctx.as_deref_mut(),
                                now,
                                EventKind::FrameBoundary,
                                self.sink,
                            );
                        }
                    }
                }
                // A fault-shed (OverrunPolicy::SkipNext) takes priority
                // over a model skip; the latter only applies to
                // weakly-hard jobs whose (m,k) contract stays
                // satisfiable AND which the run's SkipPolicy elects.
                let mut shed_record: Option<JobRecord> = None;
                if fault_shed {
                    // OverrunPolicy::SkipNext sheds this release: the
                    // job is recorded as never run and fault-attributed.
                    self.scratch.skip_next[i] = false;
                    self.report.skipped_releases += 1;
                    self.report.events.push(FaultEvent {
                        job: id,
                        at: release,
                        kind: FaultKind::SkippedRelease,
                    });
                    note(ctx.as_deref_mut(), now, EventKind::Fault, self.sink);
                    self.contaminated_ids.push(id);
                    self.records.push(JobRecord {
                        id,
                        release,
                        deadline: release + self.scratch.hot.deadline[i],
                        wcet: self.scratch.hot.wcet[i],
                        actual: 0.0,
                        completion: None,
                        wall_time: 0.0,
                        preemptions: 0,
                    });
                } else {
                    let mut model_skip = false;
                    if self.models_on {
                        if let TaskKind::WeaklyHard { m, k } = kind {
                            model_skip = mk_skip_allowed(self.scratch.mk_met[i], id.index, m, k)
                                && self.skip_policy.wants_skip(id);
                        }
                    }
                    if model_skip {
                        // Energy-aware skip: shed the job at release as
                        // an instant zero-work completion. The governor
                        // sees the completion (not the release), so
                        // reclaiming governors bank the entire WCET as
                        // slack. The met bit stays cleared: a skipped
                        // job is a loss in the (m,k) window.
                        self.model_report.skips += 1;
                        self.skipped_ids.push(id);
                        note(ctx.as_deref_mut(), now, EventKind::Skip, self.sink);
                        shed_record = Some(JobRecord {
                            id,
                            release,
                            deadline: release + self.scratch.hot.deadline[i],
                            wcet: self.scratch.hot.wcet[i],
                            actual: 0.0,
                            completion: Some(release),
                            wall_time: 0.0,
                            preemptions: 0,
                        });
                    } else {
                        let task = self.tasks.task(TaskId(i));
                        let actual = self.exec.actual_work(id.task, task, id.index);
                        let mut job = ActiveJob::new(
                            id,
                            release,
                            release + self.scratch.hot.deadline[i],
                            self.scratch.hot.wcet[i],
                            actual,
                        );
                        job.kind = kind;
                        if self.faults_on {
                            // Multiplying by exactly 1.0 (the
                            // not-selected case) is a bit-exact no-op,
                            // so no branch.
                            job.actual *= self.plan.overrun_factor(id.task, id.index);
                            let nominal = self.scratch.hot.release_of(i, id.index);
                            if self.jittered && release > nominal + TIME_EPS {
                                self.report.jittered_releases += 1;
                                self.report.events.push(FaultEvent {
                                    job: id,
                                    at: release,
                                    kind: FaultKind::JitteredRelease {
                                        delay: release - nominal,
                                    },
                                });
                                note(ctx.as_deref_mut(), now, EventKind::Fault, self.sink);
                            }
                            if self.contamination_active {
                                job.contaminated = true;
                            }
                        }
                        self.scratch.ready.push(job);
                    }
                }
                self.scratch.next_index[i] += 1;
                if self.models_on && matches!(kind, TaskKind::Sporadic { .. }) {
                    // Sporadic recurrence: the next arrival trails this
                    // one by the seeded gap (≥ the period, so arrivals
                    // never precede the periodic lattice — the same
                    // safety class as delay-only jitter). Under a jitter
                    // channel the injected delay adds on top.
                    let gap = self
                        .tasks
                        .task(TaskId(i))
                        .arrival_gap(self.scratch.next_index[i]);
                    let next = if self.jittered {
                        release
                            + gap
                            + self.plan.release_delay(
                                id.task,
                                self.scratch.next_index[i],
                                self.scratch.hot.period[i],
                            )
                    } else {
                        release + gap
                    };
                    self.scratch.releases.set_time(i, next);
                } else if self.jittered {
                    // Jittered periodic recurrence: delay the nominal
                    // release but never compress inter-arrival times
                    // below the period — compression could overload even
                    // a full-speed EDF schedule, which would make the
                    // injected jitter indistinguishable from an
                    // algorithm bug.
                    let nominal = self.scratch.hot.release_of(i, self.scratch.next_index[i]);
                    let delay = self.plan.release_delay(
                        id.task,
                        self.scratch.next_index[i],
                        self.scratch.hot.period[i],
                    );
                    self.scratch
                        .releases
                        .set_time(i, (nominal + delay).max(release + self.scratch.hot.period[i]));
                } else {
                    self.scratch
                        .releases
                        .set_time(i, self.scratch.hot.release_of(i, self.scratch.next_index[i]));
                }
                self.release_epoch += 1;
                if !fault_shed {
                    // The dense release array already holds this task's
                    // advanced instant (set_time above) and the not-yet-
                    // processed due tasks' current ones, so the plain
                    // fold-min is exact mid-batch — no staging to fold
                    // back in.
                    let next_arrival = self.scratch.releases.next_arrival();
                    let view = SchedulerView::new(
                        now,
                        self.tasks,
                        self.processor,
                        self.scratch.ready.jobs(),
                        self.scratch.releases.times(),
                        next_arrival,
                        self.current_speed,
                        self.release_epoch,
                    );
                    if let Some(record) = shed_record {
                        // The skipped job never enters the ready set:
                        // the governor observes an instant zero-work
                        // completion at the release instant.
                        self.governor.on_completion(&view, &record);
                        self.records.push(record);
                    } else if let Some(released) = self.scratch.ready.last() {
                        self.governor.on_release(&view, released);
                    }
                }
            }
            d += 1;
        }
        if batch_size > 0 {
            // Exponential buckets: 1, 2, 3, 4, 5–8, 9–16, 17–32, 33+.
            let bucket = match batch_size {
                1..=4 => batch_size as usize - 1,
                5..=8 => 4,
                9..=16 => 5,
                17..=32 => 6,
                _ => 7,
            };
            self.release_batches[bucket] += 1;
        }

        if now >= horizon - TIME_EPS {
            self.done = true;
            return Ok(Step::Done);
        }

        let next_arrival = self.scratch.releases.next_arrival();

        // 2. Idle until the next arrival (or the horizon) if nothing is
        //    ready. An empty ready set also ends any overrun recovery
        //    episode: backlog contamination cannot cross an idle
        //    instant.
        if self.scratch.ready.is_empty() {
            if self.faults_on && self.contamination_active {
                self.contamination_active = false;
                if let Some(start) = self.recovery_start.take() {
                    let recovery = now - start;
                    self.report.recovery_episodes += 1;
                    self.report.recovery_time += recovery;
                    if recovery > self.report.max_recovery_latency {
                        self.report.max_recovery_latency = recovery;
                    }
                }
            }
            {
                let view = SchedulerView::new(
                    now,
                    self.tasks,
                    self.processor,
                    self.scratch.ready.jobs(),
                    self.scratch.releases.times(),
                    next_arrival,
                    self.current_speed,
                    self.release_epoch,
                );
                self.governor.on_idle(&view);
            }
            // An idle core draws no active power from the shared rail.
            if let Some(c) = ctx.as_deref_mut() {
                if let Some(ledger) = c.shared.budget.as_mut() {
                    ledger.settle_idle(self.core_index);
                }
            }
            let wake = next_arrival.min(horizon).max(now);
            if wake > now {
                self.acc.add_idle(wake - now);
                if let Some(tr) = self.trace.as_mut() {
                    tr.push(Segment {
                        start: now,
                        end: wake,
                        speed: self.current_speed,
                        kind: SegmentKind::Idle,
                    });
                }
                self.audit_accounted += wake - now;
                self.now = wake;
            }
            return Ok(Step::Continue);
        }

        // 3. Dispatch the EDF job (argmin over the packed key array; the
        //    selection order is identical to a linear scan of the jobs).
        let Some(ji) = self.scratch.ready.edf_index() else {
            // Unreachable: the ready set was checked non-empty above.
            self.done = true;
            return Ok(Step::Done);
        };
        let cur_id = self.scratch.ready.job(ji).id;
        if let Some(prev) = self.last_running {
            if prev != cur_id {
                if let Some(p) = self.scratch.ready.job_mut_by_id(prev) {
                    p.preemptions += 1;
                }
            }
        }
        self.last_running = Some(cur_id);

        // 4. Select (and if needed transition to) the execution speed,
        //    and ask for an optional intra-job review point. A job
        //    forced to full speed by an overrun policy bypasses the
        //    governor entirely — its certificate is already invalid.
        let committed = self.committed_for.take() == Some(cur_id);
        let forced = self.faults_on && self.scratch.ready.job(ji).forced_max;
        let mut review: Option<f64> = None;
        let requested = if forced {
            Speed::FULL
        } else if committed {
            self.current_speed
        } else {
            let view = SchedulerView::new(
                now,
                self.tasks,
                self.processor,
                self.scratch.ready.jobs(),
                self.scratch.releases.times(),
                next_arrival,
                self.current_speed,
                self.release_epoch,
            );
            let speed = self
                .governor
                .select_speed(&view, self.scratch.ready.job(ji));
            review = self.governor.review_after(&view, self.scratch.ready.job(ji));
            speed
        };
        let mut speed = self.processor.quantize_up(requested);
        if self.models_on && !forced {
            // Frame-recovery boost: after a missed frame, the task's
            // dispatches are floored at its boost ratio until it
            // completes on time again. A speed floor (like the level
            // clamp below) only ever raises speeds, so other tasks'
            // deadlines are never endangered.
            if let TaskKind::Frame { boost, .. } = self.scratch.ready.job(ji).kind {
                if self.scratch.frame_boost[cur_id.task.0] && speed.ratio() < boost {
                    speed = self
                        .processor
                        .quantize_up(Speed::clamped(boost, self.processor.min_speed()));
                    self.model_report.boosted_dispatches += 1;
                }
            }
        }
        if self.faults_on && !forced {
            // Level-floor clamp: the platform's lowest operating points
            // are unavailable, so every selection is raised to the
            // floor (deadline-safe: speeds only ever increase).
            if let Some(floor) = self.plan.level_floor() {
                if speed.ratio() < floor {
                    speed = self
                        .processor
                        .quantize_up(Speed::clamped(floor, self.processor.min_speed()));
                    self.report.clamped_selections += 1;
                }
            }
            // Switch-drop channel: each candidate *downward* switch may
            // be dropped (the DVS command was lost; the processor keeps
            // its previous, faster speed). Upward switches always go
            // through — dropping those could cause unattributed misses.
            if speed.ratio() < self.current_speed.ratio() && !speed.same_point(self.current_speed) {
                let ordinal = self.switch_ordinal;
                self.switch_ordinal += 1;
                if self.plan.drops_switch(ordinal) {
                    self.report.dropped_switches += 1;
                    self.report.events.push(FaultEvent {
                        job: cur_id,
                        at: now,
                        kind: FaultKind::DroppedSwitch,
                    });
                    note(ctx.as_deref_mut(), now, EventKind::Fault, self.sink);
                    speed = self.current_speed;
                }
            }
        }
        // Shared power budget (kernel-backed budgeted runs only): the
        // ledger throttles the grant to the rail's remaining headroom.
        // Placed after every legacy adjustment so unbudgeted runs take no
        // branch here; overrun-forced full speed overrides the cap (the
        // certificate is already void — recovery wins over the rail).
        if !forced {
            if let Some(c) = ctx.as_deref_mut() {
                if let (Some(ledger), Some(budget_id)) = (c.shared.budget.as_mut(), self.budget) {
                    let granted = ledger.grant(self.core_index, speed, self.processor);
                    if !granted.same_point(speed) {
                        c.emit(now, EventKind::Budget, budget_id);
                        speed = granted;
                    }
                }
            }
        }
        if !speed.same_point(self.current_speed) {
            self.acc.add_transition(self.current_speed, speed);
            self.current_speed = speed;
            let latency = self.processor.overhead().latency();
            if latency > 0.0 {
                let end = (now + latency).min(horizon);
                if let Some(tr) = self.trace.as_mut() {
                    tr.push(Segment {
                        start: now,
                        end,
                        speed,
                        kind: SegmentKind::Transition,
                    });
                }
                self.audit_accounted += end - now;
                self.now = end;
                // Re-enter the loop: releases that occurred during the
                // transition are processed; if this job is still the
                // EDF choice it executes at the committed speed.
                self.committed_for = Some(cur_id);
                return Ok(Step::Continue);
            }
        }

        // 5. Execute until completion, next arrival, or the horizon —
        //    whichever comes first.
        let job = self.scratch.ready.job_mut(ji);
        let dt_complete = job.remaining_actual() / speed.ratio();
        let dt_arrival = (next_arrival - now).max(0.0);
        let dt_horizon = horizon - now;
        // Governor-requested power-management point (floored to keep
        // progress even against a misbehaving governor).
        let dt_review = review.map_or(f64::INFINITY, |r| r.max(1.0e-6));
        // Budget bound: a job whose injected demand exceeds its WCET
        // must stop *at* the WCET crossing so the overrun is detected
        // at the exact instant the certificate becomes invalid.
        let dt_budget = if self.faults_on && !job.overrun && job.actual > job.wcet + WORK_EPS {
            (job.wcet - job.executed).max(0.0) / speed.ratio()
        } else {
            f64::INFINITY
        };
        let dt = dt_complete
            .min(dt_arrival)
            .min(dt_horizon)
            .min(dt_review)
            .min(dt_budget)
            .max(0.0);
        if dt > 0.0 {
            debug_assert!(dt.is_finite(), "non-finite execution step at {now}");
            job.executed += speed.ratio() * dt;
            job.wall_used += dt;
            debug_assert!(
                job.remaining_actual() >= -WORK_EPS,
                "job {:?} executed past its actual demand by {}",
                cur_id,
                -job.remaining_actual()
            );
            self.acc.add_execution(speed, dt);
            self.audit_accounted += dt;
            if let Some(tr) = self.trace.as_mut() {
                tr.push(Segment {
                    start: now,
                    end: now + dt,
                    speed,
                    kind: SegmentKind::Execute { job: cur_id },
                });
            }
            self.now = now + dt;
        }
        let now = self.now;

        // 5b. Overrun detection: the instant executed work crosses the
        //     WCET with demand still remaining, the governor's budget
        //     certificate is invalid. Everything currently ready (and
        //     everything released until the backlog drains) is
        //     contaminated: its misses are fault-attributed.
        if self.faults_on {
            let j = self.scratch.ready.job(ji);
            let detected = !j.overrun
                && j.actual > j.wcet + WORK_EPS
                && j.executed >= j.wcet - WORK_EPS
                && j.remaining_actual() > WORK_EPS;
            let factor = j.actual / j.wcet;
            if detected {
                self.report.overruns += 1;
                self.report.events.push(FaultEvent {
                    job: cur_id,
                    at: now,
                    kind: FaultKind::WcetOverrun { factor },
                });
                note(ctx.as_deref_mut(), now, EventKind::Fault, self.sink);
                self.contamination_active = true;
                if self.recovery_start.is_none() {
                    self.recovery_start = Some(now);
                }
                for ready_job in self.scratch.ready.jobs_mut() {
                    ready_job.contaminated = true;
                }
                self.scratch.ready.job_mut(ji).overrun = true;
                {
                    let view = SchedulerView::new(
                        now,
                        self.tasks,
                        self.processor,
                        self.scratch.ready.jobs(),
                        self.scratch.releases.times(),
                        next_arrival,
                        self.current_speed,
                        self.release_epoch,
                    );
                    self.governor.on_overrun(&view, self.scratch.ready.job(ji));
                }
                // Exhaustive on purpose (no `_` arm): a new policy
                // variant must force a decision at this exact point
                // (enforced by the `fault-policy-exhaustive` lint).
                match self.plan.resolve_policy(self.governor.overrun_policy()) {
                    OverrunPolicy::Abort => {
                        let job = self.scratch.ready.complete(ji);
                        self.report.aborted += 1;
                        self.report.events.push(FaultEvent {
                            job: job.id,
                            at: now,
                            kind: FaultKind::Aborted,
                        });
                        note(ctx.as_deref_mut(), now, EventKind::Fault, self.sink);
                        self.contaminated_ids.push(job.id);
                        self.last_running = None;
                        self.records.push(JobRecord {
                            id: job.id,
                            release: job.release,
                            deadline: job.deadline,
                            wcet: job.wcet,
                            actual: job.actual,
                            completion: None,
                            wall_time: job.wall_used,
                            preemptions: job.preemptions,
                        });
                    }
                    OverrunPolicy::CompleteAtMax => {
                        self.scratch.ready.job_mut(ji).forced_max = true;
                        self.report.forced_full_speed += 1;
                        self.report.events.push(FaultEvent {
                            job: cur_id,
                            at: now,
                            kind: FaultKind::ForcedFullSpeed,
                        });
                        note(ctx.as_deref_mut(), now, EventKind::Fault, self.sink);
                    }
                    OverrunPolicy::SkipNext => {
                        self.scratch.ready.job_mut(ji).forced_max = true;
                        self.report.forced_full_speed += 1;
                        self.report.events.push(FaultEvent {
                            job: cur_id,
                            at: now,
                            kind: FaultKind::ForcedFullSpeed,
                        });
                        note(ctx.as_deref_mut(), now, EventKind::Fault, self.sink);
                        self.scratch.skip_next[cur_id.task.0] = true;
                    }
                }
                return Ok(Step::Continue);
            }
        }

        // 6. Completion handling.
        if self.scratch.ready.job(ji).remaining_actual() <= WORK_EPS {
            let job = self.scratch.ready.complete(ji);
            let fault_attributed = self.faults_on && job.contaminated;
            if fault_attributed {
                self.contaminated_ids.push(job.id);
            }
            let record = JobRecord {
                id: job.id,
                release: job.release,
                deadline: job.deadline,
                wcet: job.wcet,
                actual: job.actual,
                completion: Some(now),
                wall_time: job.wall_used,
                preemptions: job.preemptions,
            };
            if self.miss_policy == MissPolicy::Fail
                && now > record.deadline + TIME_EPS
                && !fault_attributed
            {
                return Err(SimError::DeadlineMiss {
                    job: record.id,
                    deadline: record.deadline,
                    completed: now,
                });
            }
            self.last_running = None;
            if self.models_on {
                let on_time = !record.missed(self.horizon);
                match job.kind {
                    TaskKind::Hard | TaskKind::Sporadic { .. } => {}
                    TaskKind::WeaklyHard { .. } => {
                        if on_time {
                            self.scratch.mk_met[record.id.task.0] |=
                                1u64 << (record.id.index % 64);
                        }
                    }
                    TaskKind::Frame { .. } => {
                        let ti = record.id.task.0;
                        if on_time {
                            self.scratch.frame_boost[ti] = false;
                            self.scratch.frame_streak[ti] = 0;
                        } else {
                            self.scratch.frame_boost[ti] = true;
                            self.scratch.frame_streak[ti] += 1;
                            self.model_report.frame_misses += 1;
                            if self.scratch.frame_streak[ti]
                                > self.model_report.max_frame_miss_streak
                            {
                                self.model_report.max_frame_miss_streak =
                                    self.scratch.frame_streak[ti];
                            }
                        }
                    }
                }
            }
            let view = SchedulerView::new(
                now,
                self.tasks,
                self.processor,
                self.scratch.ready.jobs(),
                self.scratch.releases.times(),
                next_arrival,
                self.current_speed,
                self.release_epoch,
            );
            self.governor.on_completion(&view, &record);
            note(ctx.as_deref_mut(), now, EventKind::Completion, self.sink);
            self.records.push(record);
        }
        Ok(Step::Continue)
    }

    /// The legacy post-loop: drains incomplete jobs, sorts and
    /// deduplicates the attribution lists, and assembles the outcome.
    /// `kernel` is the engine component's event accounting (zeroed on
    /// the direct drive path).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::DeadlineMiss`] under [`MissPolicy::Fail`] if
    /// an uncontaminated job already past its deadline never completed.
    pub(crate) fn finish(mut self, kernel: KernelStats) -> Result<SimOutcome, SimError> {
        let horizon = self.horizon;
        // Jobs still incomplete when the horizon ended.
        for job in self.scratch.ready.drain_jobs() {
            let fault_attributed = self.faults_on && job.contaminated;
            if fault_attributed {
                self.contaminated_ids.push(job.id);
            }
            let record = JobRecord {
                id: job.id,
                release: job.release,
                deadline: job.deadline,
                wcet: job.wcet,
                actual: job.actual,
                completion: None,
                wall_time: job.wall_used,
                preemptions: job.preemptions,
            };
            if self.miss_policy == MissPolicy::Fail && record.missed(horizon) && !fault_attributed {
                return Err(SimError::DeadlineMiss {
                    job: record.id,
                    deadline: record.deadline,
                    completed: horizon,
                });
            }
            self.records.push(record);
        }
        // Unstable sort is safe: `(task, index)` job ids are unique, so
        // there are no equal keys whose relative order could differ.
        self.records
            .sort_unstable_by_key(|r| (r.id.task, r.id.index));

        // A recovery episode still open at the horizon is closed there: the
        // latency lower-bounds what a longer horizon would have measured.
        if let Some(start) = self.recovery_start.take() {
            let recovery = self.now - start;
            self.report.recovery_episodes += 1;
            self.report.recovery_time += recovery;
            if recovery > self.report.max_recovery_latency {
                self.report.max_recovery_latency = recovery;
            }
        }
        if self.faults_on {
            self.contaminated_ids.sort_unstable();
            self.contaminated_ids.dedup();
            self.report.contaminated = self.contaminated_ids;
        }
        if self.models_on {
            self.skipped_ids.sort_unstable();
            self.skipped_ids.dedup();
            self.model_report.skipped = self.skipped_ids;
        }

        let (busy, idle, transition) = match self.trace.as_ref() {
            Some(tr) => (tr.busy_time(), tr.idle_time(), tr.transition_time()),
            None => {
                let busy: f64 = self.records.iter().map(|r| r.wall_time).sum();
                (busy, 0.0, 0.0) // idle/transition splits need a trace
            }
        };

        Ok(SimOutcome {
            governor: self.governor.name().to_string(),
            horizon,
            energy: self.acc.breakdown(),
            switches: self.acc.switch_count(),
            jobs: self.records,
            events: self.events,
            busy_time: busy,
            idle_time: idle,
            transition_time: transition,
            faults: self.report,
            models: self.model_report,
            release_batches: self.release_batches,
            analysis: self.governor.analysis_stats().unwrap_or_default(),
            kernel,
            trace: self.trace,
        })
    }
}

impl<G, E> EventHandler for CoreEngine<'_, G, E>
where
    G: Governor,
    E: ExecutionSource + ?Sized,
{
    fn handle(&mut self, _event: SimEvent, ctx: &mut ComponentCtx<'_>) -> Result<(), SimError> {
        if self.done {
            // Horizon already reached; a stray wake is absorbed.
            return Ok(());
        }
        let mut live = Some(ctx);
        match self.step(&mut live)? {
            Step::Continue => {
                // Self-schedule the next legacy-loop iteration at the
                // engine's own post-iteration clock. The kind is a label:
                // waiting-for-release wakes read as releases, all others
                // as dispatch continuations.
                let kind = if self.waiting_for_release() {
                    EventKind::Release
                } else {
                    EventKind::Dispatch
                };
                if let Some(ctx) = live {
                    ctx.emit(self.now, kind, self.self_id);
                }
            }
            Step::Done => {}
        }
        Ok(())
    }
}
