//! Fault-aware post-hoc audit of simulation outcomes.
//!
//! The analysis crate's `validate_outcome` referees *fault-free* runs: it
//! insists on zero misses and an exactly periodic release pattern, both of
//! which injected faults legitimately break. [`audit_outcome`] is the
//! referee for runs produced by [`Simulator::run_faulted`]
//! (crate::Simulator::run_faulted): it knows which degradations the
//! [`FaultPlan`] licenses and flags everything else —
//!
//! * a deadline miss by a job the fault report does **not** mark as
//!   contaminated is an algorithm bug, never an excusable fault;
//! * release instants must follow the plan's pattern: exactly periodic
//!   without jitter, delay-only with sporadic separation (`r_{k+1} ≥ r_k +
//!   T`) with it;
//! * every deadline must stay anchored to its (possibly jittered) release;
//! * demand above WCET is only legal when the plan has an overrun channel,
//!   and every such job must be contaminated;
//! * per-task job indices must be contiguous from zero — the engine may
//!   shed a release under `SkipNext`, but it must still *record* it.
//!
//! With [`FaultPlan::none`] the audit degenerates to the strict hard
//! real-time check (any miss at all is an issue), so the same checker backs
//! both the fault differential tests and the classic guarantee proptests.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::fault::FaultPlan;
use crate::job::JobId;
use crate::outcome::SimOutcome;
use crate::simulator::TIME_EPS;
use crate::task::TaskSet;

const TOL: f64 = 1.0e-6;

/// One problem found while auditing a (possibly fault-injected) outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AuditIssue {
    /// A job missed its deadline without being contaminated by an injected
    /// fault — an algorithm bug, not an excusable degradation.
    UnattributedMiss {
        /// The offending job.
        job: JobId,
        /// Completion time (the horizon if it never completed).
        completed: f64,
        /// The job's absolute deadline.
        deadline: f64,
    },
    /// A release instant does not follow the plan's release pattern
    /// (early release, or a drifted instant without a jitter channel).
    ReleasePatternViolation {
        /// The offending job.
        job: JobId,
        /// The nominal (unjittered) release instant.
        nominal: f64,
        /// The recorded release instant.
        found: f64,
    },
    /// Two consecutive releases of one task are closer than the period —
    /// jitter may only *delay*, never compress.
    SeparationViolation {
        /// The offending (later) job.
        job: JobId,
        /// The observed inter-release gap.
        gap: f64,
        /// The task's period.
        period: f64,
    },
    /// A job's deadline is not anchored at `release + D`.
    DeadlineAnchorViolation {
        /// The offending job.
        job: JobId,
        /// `release + D` for the recorded release.
        expected: f64,
        /// The recorded absolute deadline.
        found: f64,
    },
    /// Per-task job indices are not contiguous from zero.
    IndexGap {
        /// The task whose record stream has the gap.
        task: usize,
        /// The first missing index.
        missing: u64,
    },
    /// A job's demand exceeds its WCET although the plan's own overrun
    /// draw for that job does not license one.
    IllegalOverrun {
        /// The offending job.
        job: JobId,
        /// The recorded actual demand.
        actual: f64,
        /// The job's WCET.
        wcet: f64,
    },
    /// The fault report's counters disagree with its event list.
    InconsistentReport {
        /// Which counter disagrees.
        counter: &'static str,
        /// The counter's value.
        counted: u64,
        /// The value recomputed from the event list.
        recomputed: u64,
    },
}

impl fmt::Display for AuditIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditIssue::UnattributedMiss {
                job,
                completed,
                deadline,
            } => write!(
                f,
                "job {job} missed deadline {deadline} (done {completed}) without fault attribution"
            ),
            AuditIssue::ReleasePatternViolation {
                job,
                nominal,
                found,
            } => write!(
                f,
                "job {job} released at {found}, violating the plan's pattern (nominal {nominal})"
            ),
            AuditIssue::SeparationViolation { job, gap, period } => {
                write!(
                    f,
                    "job {job} released {gap} after its predecessor (< period {period})"
                )
            }
            AuditIssue::DeadlineAnchorViolation {
                job,
                expected,
                found,
            } => write!(
                f,
                "job {job} deadline {found} not anchored at release + D = {expected}"
            ),
            AuditIssue::IndexGap { task, missing } => {
                write!(f, "task T{task} record stream skips index {missing}")
            }
            AuditIssue::IllegalOverrun { job, actual, wcet } => {
                write!(
                    f,
                    "job {job} demand {actual} > WCET {wcet} without a licensed overrun"
                )
            }
            AuditIssue::InconsistentReport {
                counter,
                counted,
                recomputed,
            } => write!(
                f,
                "fault counter {counter} = {counted} but the event list says {recomputed}"
            ),
        }
    }
}

/// The result of auditing one outcome against its fault plan.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct AuditReport {
    /// All problems found (empty for a clean run).
    pub issues: Vec<AuditIssue>,
    /// Number of job records audited.
    pub jobs_checked: usize,
    /// Number of fault-attributed (excused) deadline misses observed.
    pub attributed_misses: usize,
}

impl AuditReport {
    /// Whether the outcome passed every check. Fault-attributed misses do
    /// **not** make a run unclean — that is the point of attribution.
    pub fn is_clean(&self) -> bool {
        self.issues.is_empty()
    }
}

impl fmt::Display for AuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            write!(
                f,
                "clean ({} jobs audited, {} fault-attributed misses)",
                self.jobs_checked, self.attributed_misses
            )
        } else {
            writeln!(
                f,
                "{} issue(s) over {} jobs ({} attributed misses):",
                self.issues.len(),
                self.jobs_checked,
                self.attributed_misses
            )?;
            for i in &self.issues {
                writeln!(f, "  - {i}")?;
            }
            Ok(())
        }
    }
}

/// Audits `outcome` against the task set and the fault plan that produced
/// it. See the module docs for the exact checks.
pub fn audit_outcome(outcome: &SimOutcome, tasks: &TaskSet, plan: &FaultPlan) -> AuditReport {
    let mut report = AuditReport {
        issues: Vec::new(),
        jobs_checked: outcome.jobs.len(),
        attributed_misses: 0,
    };
    let horizon = outcome.horizon;
    let jittered = plan.has_jitter();

    // 1. Miss attribution: every miss must be contaminated (with the
    //    no-fault plan the contaminated set is empty, so this degenerates
    //    to "no miss at all").
    for r in &outcome.jobs {
        if r.missed(horizon) {
            if outcome.faults.is_contaminated(r.id) {
                report.attributed_misses += 1;
            } else {
                report.issues.push(AuditIssue::UnattributedMiss {
                    job: r.id,
                    completed: r.completion.unwrap_or(horizon),
                    deadline: r.deadline,
                });
            }
        }
    }

    // 2. Per-task release pattern, deadlines, index contiguity, and
    //    overrun licensing. Records are sorted by (task, index).
    for (tid, task) in tasks.iter() {
        let mut expected_index = 0u64;
        let mut prev_release: Option<f64> = None;
        for r in outcome.jobs.iter().filter(|r| r.id.task == tid) {
            if r.id.index != expected_index {
                report.issues.push(AuditIssue::IndexGap {
                    task: tid.0,
                    missing: expected_index,
                });
                expected_index = r.id.index;
            }
            let nominal = task.release_of(r.id.index);
            let tol = TOL.max(TIME_EPS * (r.id.index + 1) as f64);
            if jittered {
                // Jitter is delay-only: never early.
                if r.release < nominal - tol {
                    report.issues.push(AuditIssue::ReleasePatternViolation {
                        job: r.id,
                        nominal,
                        found: r.release,
                    });
                }
                if let Some(prev) = prev_release {
                    let gap = r.release - prev;
                    if gap < task.period() - tol {
                        report.issues.push(AuditIssue::SeparationViolation {
                            job: r.id,
                            gap,
                            period: task.period(),
                        });
                    }
                }
            } else if (r.release - nominal).abs() > tol {
                report.issues.push(AuditIssue::ReleasePatternViolation {
                    job: r.id,
                    nominal,
                    found: r.release,
                });
            }
            let anchored = r.release + task.deadline();
            if (r.deadline - anchored).abs() > tol {
                report.issues.push(AuditIssue::DeadlineAnchorViolation {
                    job: r.id,
                    expected: anchored,
                    found: r.deadline,
                });
            }
            // A demand above WCET is licensed by *recomputing the plan's
            // own draw* — not by the run's contamination marks, which only
            // appear once the job executes past its budget (a job drained
            // at the horizon may carry an injected overrun it never
            // reached).
            if r.actual > r.wcet + TOL && plan.overrun_factor(r.id.task, r.id.index) <= 1.0 {
                report.issues.push(AuditIssue::IllegalOverrun {
                    job: r.id,
                    actual: r.actual,
                    wcet: r.wcet,
                });
            }
            prev_release = Some(r.release);
            expected_index += 1;
        }
    }

    // 3. Internal consistency of the fault report: counters must match the
    //    event list they summarize.
    for (counter, counted, recomputed) in [
        (
            "overruns",
            outcome.faults.overruns,
            count_events(outcome, |k| {
                matches!(k, crate::fault::FaultKind::WcetOverrun { .. })
            }),
        ),
        (
            "aborted",
            outcome.faults.aborted,
            count_events(outcome, |k| matches!(k, crate::fault::FaultKind::Aborted)),
        ),
        (
            "skipped_releases",
            outcome.faults.skipped_releases,
            count_events(outcome, |k| {
                matches!(k, crate::fault::FaultKind::SkippedRelease)
            }),
        ),
        (
            "forced_full_speed",
            outcome.faults.forced_full_speed,
            count_events(outcome, |k| {
                matches!(k, crate::fault::FaultKind::ForcedFullSpeed)
            }),
        ),
        (
            "dropped_switches",
            outcome.faults.dropped_switches,
            count_events(outcome, |k| {
                matches!(k, crate::fault::FaultKind::DroppedSwitch)
            }),
        ),
        (
            "jittered_releases",
            outcome.faults.jittered_releases,
            count_events(outcome, |k| {
                matches!(k, crate::fault::FaultKind::JitteredRelease { .. })
            }),
        ),
    ] {
        if counted != recomputed {
            report.issues.push(AuditIssue::InconsistentReport {
                counter,
                counted,
                recomputed,
            });
        }
    }

    report
}

fn count_events(outcome: &SimOutcome, pred: impl Fn(&crate::fault::FaultKind) -> bool) -> u64 {
    outcome
        .faults
        .events
        .iter()
        .filter(|e| pred(&e.kind))
        .count() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{ConstantRatio, WorstCase};
    use crate::fault::OverrunPolicy;
    use crate::governor::{Governor, SchedulerView};
    use crate::job::ActiveJob;
    use crate::simulator::{SimConfig, Simulator};
    use crate::task::Task;
    use stadvs_power::{Processor, Speed};

    struct FullSpeed;
    impl Governor for FullSpeed {
        fn name(&self) -> &str {
            "full"
        }
        fn select_speed(&mut self, _: &SchedulerView<'_>, _: &ActiveJob) -> Speed {
            Speed::FULL
        }
    }

    fn tasks() -> TaskSet {
        TaskSet::new(vec![
            Task::new(1.0, 4.0).unwrap(),
            Task::new(2.0, 8.0).unwrap(),
        ])
        .unwrap()
    }

    fn sim(horizon: f64) -> Simulator {
        Simulator::new(
            tasks(),
            Processor::ideal_continuous(),
            SimConfig::new(horizon).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn clean_no_fault_run_audits_clean() {
        let out = sim(32.0)
            .run(&mut FullSpeed, &ConstantRatio::new(0.6))
            .unwrap();
        let report = audit_outcome(&out, &tasks(), &FaultPlan::NONE);
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.jobs_checked, 12);
        assert_eq!(report.attributed_misses, 0);
        assert!(report.to_string().contains("clean"));
    }

    #[test]
    fn unattributed_miss_is_flagged() {
        // Force a miss by hand: no fault plan, so no contamination.
        let mut out = sim(32.0).run(&mut FullSpeed, &WorstCase).unwrap();
        out.jobs[0].completion = Some(out.jobs[0].deadline + 1.0);
        let report = audit_outcome(&out, &tasks(), &FaultPlan::NONE);
        assert!(report
            .issues
            .iter()
            .any(|i| matches!(i, AuditIssue::UnattributedMiss { .. })));
    }

    #[test]
    fn overrun_run_audits_clean_and_attributes() {
        let plan = FaultPlan::new(11)
            .with_overrun(0.5, 3.0)
            .unwrap()
            .with_policy_override(OverrunPolicy::CompleteAtMax);
        let out = sim(64.0)
            .run_faulted(&mut FullSpeed, &WorstCase, &plan)
            .unwrap();
        assert!(out.faults.overruns > 0, "seed must inject at least once");
        let report = audit_outcome(&out, &tasks(), &plan);
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.attributed_misses, out.fault_attributed_misses());
        assert_eq!(out.unattributed_misses(), 0);
    }

    #[test]
    fn jittered_run_audits_clean() {
        let plan = FaultPlan::new(5).with_release_jitter(0.6, 0.4).unwrap();
        let out = sim(64.0)
            .run_faulted(&mut FullSpeed, &WorstCase, &plan)
            .unwrap();
        assert!(out.faults.jittered_releases > 0, "seed must jitter");
        let report = audit_outcome(&out, &tasks(), &plan);
        assert!(report.is_clean(), "{report}");
        // Jitter alone must never cause a miss under a full-speed governor.
        assert!(out.all_deadlines_met());
    }

    #[test]
    fn early_release_is_flagged_under_jitter() {
        let plan = FaultPlan::new(5).with_release_jitter(0.6, 0.4).unwrap();
        let mut out = sim(64.0)
            .run_faulted(&mut FullSpeed, &WorstCase, &plan)
            .unwrap();
        out.jobs[1].release -= 1.0; // earlier than nominal: illegal
        let report = audit_outcome(&out, &tasks(), &plan);
        assert!(!report.is_clean());
    }

    #[test]
    fn drifted_release_is_flagged_without_jitter() {
        let mut out = sim(32.0).run(&mut FullSpeed, &WorstCase).unwrap();
        out.jobs[1].release += 0.5;
        let report = audit_outcome(&out, &tasks(), &FaultPlan::NONE);
        assert!(report
            .issues
            .iter()
            .any(|i| matches!(i, AuditIssue::ReleasePatternViolation { .. })));
    }

    #[test]
    fn unlicensed_overrun_is_flagged() {
        let mut out = sim(32.0).run(&mut FullSpeed, &WorstCase).unwrap();
        out.jobs[0].actual = out.jobs[0].wcet * 2.0;
        let report = audit_outcome(&out, &tasks(), &FaultPlan::NONE);
        assert!(report
            .issues
            .iter()
            .any(|i| matches!(i, AuditIssue::IllegalOverrun { .. })));
    }

    #[test]
    fn index_gap_is_flagged() {
        let mut out = sim(32.0).run(&mut FullSpeed, &WorstCase).unwrap();
        out.jobs.remove(1); // drop T0#1: indices 0, 2, 3, ...
        let report = audit_outcome(&out, &tasks(), &FaultPlan::NONE);
        assert!(report
            .issues
            .iter()
            .any(|i| matches!(i, AuditIssue::IndexGap { .. })));
    }

    #[test]
    fn inconsistent_counters_are_flagged() {
        let plan = FaultPlan::new(11).with_overrun(0.5, 3.0).unwrap();
        let mut out = sim(64.0)
            .run_faulted(&mut FullSpeed, &WorstCase, &plan)
            .unwrap();
        out.faults.overruns += 1;
        let report = audit_outcome(&out, &tasks(), &plan);
        assert!(report
            .issues
            .iter()
            .any(|i| matches!(i, AuditIssue::InconsistentReport { .. })));
    }

    #[test]
    fn issue_display_nonempty() {
        let issues = [
            AuditIssue::IndexGap {
                task: 0,
                missing: 2,
            },
            AuditIssue::SeparationViolation {
                job: JobId {
                    task: crate::task::TaskId(0),
                    index: 1,
                },
                gap: 1.0,
                period: 4.0,
            },
        ];
        for i in issues {
            assert!(!i.to_string().is_empty());
        }
    }
}
