//! Fault-aware post-hoc audit of simulation outcomes.
//!
//! The analysis crate's `validate_outcome` referees *fault-free* runs: it
//! insists on zero misses and an exactly periodic release pattern, both of
//! which injected faults legitimately break. [`audit_outcome`] is the
//! referee for runs produced by [`Simulator::run_faulted`]
//! (crate::Simulator::run_faulted): it knows which degradations the
//! [`FaultPlan`] licenses and flags everything else —
//!
//! * a deadline miss by a hard or sporadic job the fault report does
//!   **not** mark as contaminated is an algorithm bug, never an excusable
//!   fault (weakly-hard jobs are judged by their (m,k) window instead, and
//!   frame misses feed the miss-streak statistics — see the task-model
//!   referee below);
//! * release instants must follow the plan's pattern: exactly periodic
//!   without jitter, delay-only with sporadic separation (`r_{k+1} ≥ r_k +
//!   T`) with it;
//! * every deadline must stay anchored to its (possibly jittered) release;
//! * demand above WCET is only legal when the plan has an overrun channel,
//!   and every such job must be contaminated;
//! * per-task job indices must be contiguous from zero — the engine may
//!   shed a release under `SkipNext`, but it must still *record* it.
//!
//! With [`FaultPlan::none`] the audit degenerates to the strict hard
//! real-time check (any miss at all is an issue), so the same checker backs
//! both the fault differential tests and the classic guarantee proptests.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::fault::FaultPlan;
use crate::job::JobId;
use crate::model::mk_skip_allowed;
use crate::outcome::SimOutcome;
use crate::simulator::TIME_EPS;
use crate::task::{TaskKind, TaskSet};
use crate::SimError;

const TOL: f64 = 1.0e-6;

/// Incremental sliding-window (m,k)-firm contract checker.
///
/// Feed job outcomes in index order with [`MkWindow::record`]; after each
/// outcome, [`MkWindow::violated`] reports whether the window of the last
/// `k` jobs has fewer than `m` deadlines met. [`MkWindow::skip_allowed`]
/// implements the simulator's skip-admissibility rule for the *next* job:
/// a skip is licensed iff at least `m` of the trailing `k − 1` outcomes met
/// (outcomes before job 0 count as met) — sufficient to keep every
/// `k`-window at `≥ m` met as long as non-skipped jobs meet their
/// deadlines. This is the standalone checker the audit replays and the
/// model differential harnesses pin.
///
/// ```
/// use stadvs_sim::MkWindow;
///
/// # fn main() -> Result<(), stadvs_sim::SimError> {
/// let mut w = MkWindow::new(1, 2)?; // at least 1 of every 2 jobs
/// assert!(w.skip_allowed()); // virtual mets before job 0
/// w.record(false); // skip job 0
/// assert!(!w.skip_allowed()); // skipping job 1 too would violate
/// w.record(true);
/// assert!(!w.violated());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MkWindow {
    m: u32,
    k: u32,
    /// Outcome ring: bit `index % 64` is set iff that job met its deadline.
    /// `k ≤ 64` keeps every window access collision-free.
    bits: u64,
    /// Outcomes recorded so far (= the index of the next job).
    count: u64,
}

impl MkWindow {
    /// Creates a checker for an (m,k) contract.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] unless `1 ≤ m ≤ k ≤ 64` (the
    /// same bounds [`Task::weakly_hard`](crate::Task::weakly_hard)
    /// enforces).
    pub fn new(m: u32, k: u32) -> Result<MkWindow, SimError> {
        if m == 0 || m > k {
            return Err(SimError::InvalidConfig {
                field: "weakly_hard_m",
                value: f64::from(m),
            });
        }
        if k > 64 {
            return Err(SimError::InvalidConfig {
                field: "weakly_hard_k",
                value: f64::from(k),
            });
        }
        Ok(MkWindow {
            m,
            k,
            bits: 0,
            count: 0,
        })
    }

    /// The contract's minimum deadlines met per window.
    pub fn m(&self) -> u32 {
        self.m
    }

    /// The contract's window length.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Outcomes recorded so far (= the index of the next job).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether shedding the *next* job (index [`MkWindow::count`]) keeps
    /// the contract satisfiable: at least `m` of the trailing `k − 1`
    /// outcomes met their deadline (outcomes before job 0 count as met).
    pub fn skip_allowed(&self) -> bool {
        mk_skip_allowed(self.bits, self.count, self.m, self.k)
    }

    /// Records the next job's outcome (`met` = completed by its deadline;
    /// skipped and shed jobs count as losses).
    pub fn record(&mut self, met: bool) {
        let bit = 1u64 << (self.count % 64);
        if met {
            self.bits |= bit;
        } else {
            self.bits &= !bit;
        }
        self.count += 1;
    }

    /// Deadlines met in the most recent *full* window of `k` outcomes, or
    /// `None` while fewer than `k` outcomes have been recorded.
    pub fn window_met(&self) -> Option<u32> {
        if self.count < u64::from(self.k) {
            return None;
        }
        let mut met = 0u32;
        for j in (self.count - u64::from(self.k))..self.count {
            // xtask:allow(as-cast): not in crates/core, single-bit value
            met += ((self.bits >> (j % 64)) & 1) as u32;
        }
        Some(met)
    }

    /// Whether the most recent full window violates the contract
    /// (`window_met < m`). Always `false` before `k` outcomes exist.
    pub fn violated(&self) -> bool {
        self.window_met().is_some_and(|met| met < self.m)
    }

    /// Ring-position mask (bit `index % 64`) of the *losses* among the most
    /// recent `min(k, count)` outcomes. The audit intersects this with its
    /// contamination ring to decide whether a violation is fault-excused.
    pub fn window_loss_mask(&self) -> u64 {
        let span = u64::from(self.k).min(self.count);
        let mut mask = 0u64;
        for j in (self.count - span)..self.count {
            let bit = 1u64 << (j % 64);
            if self.bits & bit == 0 {
                mask |= bit;
            }
        }
        mask
    }
}

/// One problem found while auditing a (possibly fault-injected) outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AuditIssue {
    /// A job missed its deadline without being contaminated by an injected
    /// fault — an algorithm bug, not an excusable degradation.
    UnattributedMiss {
        /// The offending job.
        job: JobId,
        /// Completion time (the horizon if it never completed).
        completed: f64,
        /// The job's absolute deadline.
        deadline: f64,
    },
    /// A release instant does not follow the plan's release pattern
    /// (early release, or a drifted instant without a jitter channel).
    ReleasePatternViolation {
        /// The offending job.
        job: JobId,
        /// The nominal (unjittered) release instant.
        nominal: f64,
        /// The recorded release instant.
        found: f64,
    },
    /// Two consecutive releases of one task are closer than the period —
    /// jitter may only *delay*, never compress.
    SeparationViolation {
        /// The offending (later) job.
        job: JobId,
        /// The observed inter-release gap.
        gap: f64,
        /// The task's period.
        period: f64,
    },
    /// A job's deadline is not anchored at `release + D`.
    DeadlineAnchorViolation {
        /// The offending job.
        job: JobId,
        /// `release + D` for the recorded release.
        expected: f64,
        /// The recorded absolute deadline.
        found: f64,
    },
    /// Per-task job indices are not contiguous from zero.
    IndexGap {
        /// The task whose record stream has the gap.
        task: usize,
        /// The first missing index.
        missing: u64,
    },
    /// A job's demand exceeds its WCET although the plan's own overrun
    /// draw for that job does not license one.
    IllegalOverrun {
        /// The offending job.
        job: JobId,
        /// The recorded actual demand.
        actual: f64,
        /// The job's WCET.
        wcet: f64,
    },
    /// A weakly-hard task's (m,k) contract was violated — a full window of
    /// `k` consecutive jobs with fewer than `m` deadlines met — and no loss
    /// in the window is fault-contaminated.
    MkViolation {
        /// The offending task.
        task: usize,
        /// Index of the job ending the violating window.
        end_index: u64,
        /// Deadlines met in that window.
        met: u32,
        /// The contract's required minimum.
        m: u32,
        /// The contract's window length.
        k: u32,
    },
    /// A weakly-hard job was skipped although the skip-admissibility rule
    /// did not license it (the window could no longer absorb the loss).
    IllegalSkip {
        /// The skipped job.
        job: JobId,
    },
    /// The fault report's counters disagree with its event list.
    InconsistentReport {
        /// Which counter disagrees.
        counter: &'static str,
        /// The counter's value.
        counted: u64,
        /// The value recomputed from the event list.
        recomputed: u64,
    },
}

impl fmt::Display for AuditIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditIssue::UnattributedMiss {
                job,
                completed,
                deadline,
            } => write!(
                f,
                "job {job} missed deadline {deadline} (done {completed}) without fault attribution"
            ),
            AuditIssue::ReleasePatternViolation {
                job,
                nominal,
                found,
            } => write!(
                f,
                "job {job} released at {found}, violating the plan's pattern (nominal {nominal})"
            ),
            AuditIssue::SeparationViolation { job, gap, period } => {
                write!(
                    f,
                    "job {job} released {gap} after its predecessor (< period {period})"
                )
            }
            AuditIssue::DeadlineAnchorViolation {
                job,
                expected,
                found,
            } => write!(
                f,
                "job {job} deadline {found} not anchored at release + D = {expected}"
            ),
            AuditIssue::IndexGap { task, missing } => {
                write!(f, "task T{task} record stream skips index {missing}")
            }
            AuditIssue::IllegalOverrun { job, actual, wcet } => {
                write!(
                    f,
                    "job {job} demand {actual} > WCET {wcet} without a licensed overrun"
                )
            }
            AuditIssue::MkViolation {
                task,
                end_index,
                met,
                m,
                k,
            } => write!(
                f,
                "task T{task} violated its ({m},{k}) contract: window ending at #{end_index} met only {met}"
            ),
            AuditIssue::IllegalSkip { job } => {
                write!(f, "job {job} was skipped without (m,k) license")
            }
            AuditIssue::InconsistentReport {
                counter,
                counted,
                recomputed,
            } => write!(
                f,
                "fault counter {counter} = {counted} but the event list says {recomputed}"
            ),
        }
    }
}

/// The result of auditing one outcome against its fault plan.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct AuditReport {
    /// All problems found (empty for a clean run).
    pub issues: Vec<AuditIssue>,
    /// Number of job records audited.
    pub jobs_checked: usize,
    /// Number of fault-attributed (excused) deadline misses observed.
    pub attributed_misses: usize,
}

impl AuditReport {
    /// Whether the outcome passed every check. Fault-attributed misses do
    /// **not** make a run unclean — that is the point of attribution.
    pub fn is_clean(&self) -> bool {
        self.issues.is_empty()
    }
}

impl fmt::Display for AuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            write!(
                f,
                "clean ({} jobs audited, {} fault-attributed misses)",
                self.jobs_checked, self.attributed_misses
            )
        } else {
            writeln!(
                f,
                "{} issue(s) over {} jobs ({} attributed misses):",
                self.issues.len(),
                self.jobs_checked,
                self.attributed_misses
            )?;
            for i in &self.issues {
                writeln!(f, "  - {i}")?;
            }
            Ok(())
        }
    }
}

/// Audits `outcome` against the task set and the fault plan that produced
/// it. See the module docs for the exact checks.
pub fn audit_outcome(outcome: &SimOutcome, tasks: &TaskSet, plan: &FaultPlan) -> AuditReport {
    let mut report = AuditReport {
        issues: Vec::new(),
        jobs_checked: outcome.jobs.len(),
        attributed_misses: 0,
    };
    let horizon = outcome.horizon;
    let jittered = plan.has_jitter();

    // 1. Miss attribution, per task model: a hard or sporadic job's miss
    //    must be fault-contaminated (with the no-fault plan the
    //    contaminated set is empty, so this degenerates to "no miss at
    //    all"). Weakly-hard misses are judged by their (m,k) window in
    //    step 3 instead, and frame misses are tolerated by the model (they
    //    feed the miss-streak statistics, also checked in step 3).
    for r in &outcome.jobs {
        if r.missed(horizon) {
            if outcome.faults.is_contaminated(r.id) {
                report.attributed_misses += 1;
            } else if matches!(
                tasks.task(r.id.task).kind(),
                TaskKind::Hard | TaskKind::Sporadic { .. }
            ) {
                report.issues.push(AuditIssue::UnattributedMiss {
                    job: r.id,
                    completed: r.completion.unwrap_or(horizon),
                    deadline: r.deadline,
                });
            }
        }
    }

    // 2. Per-task release pattern, deadlines, index contiguity, and
    //    overrun licensing. Records are sorted by (task, index).
    for (tid, task) in tasks.iter() {
        let sporadic = matches!(task.kind(), TaskKind::Sporadic { .. });
        let mut expected_index = 0u64;
        let mut prev_release: Option<f64> = None;
        for r in outcome.jobs.iter().filter(|r| r.id.task == tid) {
            if r.id.index != expected_index {
                report.issues.push(AuditIssue::IndexGap {
                    task: tid.0,
                    missing: expected_index,
                });
                expected_index = r.id.index;
            }
            let nominal = task.release_of(r.id.index);
            let tol = TOL.max(TIME_EPS * (r.id.index + 1) as f64);
            if sporadic {
                // Sporadic recurrence: each release trails its predecessor
                // by the task's seeded gap — exactly (the engine accumulates
                // the same sum) without jitter, by at least the gap with it.
                // Arrivals also never precede the periodic lattice.
                if r.release < nominal - tol {
                    report.issues.push(AuditIssue::ReleasePatternViolation {
                        job: r.id,
                        nominal,
                        found: r.release,
                    });
                }
                match prev_release {
                    None => {
                        let anchored = !jittered && (r.release - task.phase()).abs() > tol;
                        let delayed = jittered && r.release < task.phase() - tol;
                        if r.id.index == 0 && (anchored || delayed) {
                            report.issues.push(AuditIssue::ReleasePatternViolation {
                                job: r.id,
                                nominal: task.phase(),
                                found: r.release,
                            });
                        }
                    }
                    Some(prev) => {
                        let gap_min = task.arrival_gap(r.id.index);
                        let gap = r.release - prev;
                        let drifted = !jittered && (gap - gap_min).abs() > tol;
                        let compressed = jittered && gap < gap_min - tol;
                        if drifted || compressed {
                            report.issues.push(AuditIssue::SeparationViolation {
                                job: r.id,
                                gap,
                                period: gap_min,
                            });
                        }
                    }
                }
            } else if jittered {
                // Jitter is delay-only: never early.
                if r.release < nominal - tol {
                    report.issues.push(AuditIssue::ReleasePatternViolation {
                        job: r.id,
                        nominal,
                        found: r.release,
                    });
                }
                if let Some(prev) = prev_release {
                    let gap = r.release - prev;
                    if gap < task.period() - tol {
                        report.issues.push(AuditIssue::SeparationViolation {
                            job: r.id,
                            gap,
                            period: task.period(),
                        });
                    }
                }
            } else if (r.release - nominal).abs() > tol {
                report.issues.push(AuditIssue::ReleasePatternViolation {
                    job: r.id,
                    nominal,
                    found: r.release,
                });
            }
            let anchored = r.release + task.deadline();
            if (r.deadline - anchored).abs() > tol {
                report.issues.push(AuditIssue::DeadlineAnchorViolation {
                    job: r.id,
                    expected: anchored,
                    found: r.deadline,
                });
            }
            // A demand above WCET is licensed by *recomputing the plan's
            // own draw* — not by the run's contamination marks, which only
            // appear once the job executes past its budget (a job drained
            // at the horizon may carry an injected overrun it never
            // reached).
            if r.actual > r.wcet + TOL && plan.overrun_factor(r.id.task, r.id.index) <= 1.0 {
                report.issues.push(AuditIssue::IllegalOverrun {
                    job: r.id,
                    actual: r.actual,
                    wcet: r.wcet,
                });
            }
            prev_release = Some(r.release);
            expected_index += 1;
        }
    }

    // 3. Task-model referee: replay every weakly-hard task's (m,k) window
    //    (skipped and shed jobs count as losses), license every recorded
    //    skip against the admissibility rule, and recompute the frame
    //    miss-streak statistics. A window violation is excused only when a
    //    loss inside the window is fault-contaminated.
    let mut wh_jobs = 0u64;
    let mut sp_jobs = 0u64;
    let mut fr_jobs = 0u64;
    let mut frame_misses = 0u64;
    let mut max_streak = 0u64;
    for (tid, task) in tasks.iter() {
        match task.kind() {
            TaskKind::Hard => {}
            TaskKind::Sporadic { .. } => {
                sp_jobs += outcome.jobs.iter().filter(|r| r.id.task == tid).count() as u64;
            }
            TaskKind::Frame { .. } => {
                let mut streak = 0u64;
                for r in outcome.jobs.iter().filter(|r| r.id.task == tid) {
                    fr_jobs += 1;
                    // Streaks advance only at completions, mirroring the
                    // engine (a job drained at the horizon updates nothing).
                    if r.completion.is_some() {
                        if r.missed(horizon) {
                            streak += 1;
                            frame_misses += 1;
                            max_streak = max_streak.max(streak);
                        } else {
                            streak = 0;
                        }
                    }
                }
            }
            TaskKind::WeaklyHard { m, k } => {
                // The task was admitted with these bounds, so the checker
                // construction cannot fail; fall back to a degenerate
                // always-satisfied contract rather than panicking.
                let mut window = MkWindow::new(m, k).unwrap_or(MkWindow {
                    m: 0,
                    k: 1,
                    bits: 0,
                    count: 0,
                });
                let mut contam_bits = 0u64;
                for r in outcome.jobs.iter().filter(|r| r.id.task == tid) {
                    wh_jobs += 1;
                    let skipped = outcome.models.is_skipped(r.id);
                    if skipped && !window.skip_allowed() {
                        report.issues.push(AuditIssue::IllegalSkip { job: r.id });
                    }
                    let met = !skipped && !r.missed(horizon);
                    let bit = 1u64 << (r.id.index % 64);
                    if outcome.faults.is_contaminated(r.id) {
                        contam_bits |= bit;
                    } else {
                        contam_bits &= !bit;
                    }
                    window.record(met);
                    // xtask:allow(float-eq): u64 bit-mask intersection test, not a float compare
                    if window.violated() && window.window_loss_mask() & contam_bits == 0 {
                        report.issues.push(AuditIssue::MkViolation {
                            task: tid.0,
                            end_index: r.id.index,
                            met: window.window_met().unwrap_or(0),
                            m,
                            k,
                        });
                    }
                }
            }
        }
    }
    for (counter, counted, recomputed) in [
        (
            "model_skips",
            outcome.models.skips,
            outcome.models.skipped.len() as u64,
        ),
        ("weakly_hard_jobs", outcome.models.weakly_hard_jobs, wh_jobs),
        ("sporadic_jobs", outcome.models.sporadic_jobs, sp_jobs),
        ("frame_jobs", outcome.models.frame_jobs, fr_jobs),
        ("frame_misses", outcome.models.frame_misses, frame_misses),
        (
            "max_frame_miss_streak",
            outcome.models.max_frame_miss_streak,
            max_streak,
        ),
    ] {
        if counted != recomputed {
            report.issues.push(AuditIssue::InconsistentReport {
                counter,
                counted,
                recomputed,
            });
        }
    }

    // 4. Internal consistency of the fault report: counters must match the
    //    event list they summarize.
    for (counter, counted, recomputed) in [
        (
            "overruns",
            outcome.faults.overruns,
            count_events(outcome, |k| {
                matches!(k, crate::fault::FaultKind::WcetOverrun { .. })
            }),
        ),
        (
            "aborted",
            outcome.faults.aborted,
            count_events(outcome, |k| matches!(k, crate::fault::FaultKind::Aborted)),
        ),
        (
            "skipped_releases",
            outcome.faults.skipped_releases,
            count_events(outcome, |k| {
                matches!(k, crate::fault::FaultKind::SkippedRelease)
            }),
        ),
        (
            "forced_full_speed",
            outcome.faults.forced_full_speed,
            count_events(outcome, |k| {
                matches!(k, crate::fault::FaultKind::ForcedFullSpeed)
            }),
        ),
        (
            "dropped_switches",
            outcome.faults.dropped_switches,
            count_events(outcome, |k| {
                matches!(k, crate::fault::FaultKind::DroppedSwitch)
            }),
        ),
        (
            "jittered_releases",
            outcome.faults.jittered_releases,
            count_events(outcome, |k| {
                matches!(k, crate::fault::FaultKind::JitteredRelease { .. })
            }),
        ),
    ] {
        if counted != recomputed {
            report.issues.push(AuditIssue::InconsistentReport {
                counter,
                counted,
                recomputed,
            });
        }
    }

    report
}

fn count_events(outcome: &SimOutcome, pred: impl Fn(&crate::fault::FaultKind) -> bool) -> u64 {
    outcome
        .faults
        .events
        .iter()
        .filter(|e| pred(&e.kind))
        .count() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{ConstantRatio, WorstCase};
    use crate::fault::OverrunPolicy;
    use crate::governor::{Governor, SchedulerView};
    use crate::job::ActiveJob;
    use crate::simulator::{SimConfig, Simulator};
    use crate::task::Task;
    use stadvs_power::{Processor, Speed};

    struct FullSpeed;
    impl Governor for FullSpeed {
        fn name(&self) -> &str {
            "full"
        }
        fn select_speed(&mut self, _: &SchedulerView<'_>, _: &ActiveJob) -> Speed {
            Speed::FULL
        }
    }

    fn tasks() -> TaskSet {
        TaskSet::new(vec![
            Task::new(1.0, 4.0).unwrap(),
            Task::new(2.0, 8.0).unwrap(),
        ])
        .unwrap()
    }

    fn sim(horizon: f64) -> Simulator {
        Simulator::new(
            tasks(),
            Processor::ideal_continuous(),
            SimConfig::new(horizon).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn clean_no_fault_run_audits_clean() {
        let out = sim(32.0)
            .run(&mut FullSpeed, &ConstantRatio::new(0.6))
            .unwrap();
        let report = audit_outcome(&out, &tasks(), &FaultPlan::NONE);
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.jobs_checked, 12);
        assert_eq!(report.attributed_misses, 0);
        assert!(report.to_string().contains("clean"));
    }

    #[test]
    fn unattributed_miss_is_flagged() {
        // Force a miss by hand: no fault plan, so no contamination.
        let mut out = sim(32.0).run(&mut FullSpeed, &WorstCase).unwrap();
        out.jobs[0].completion = Some(out.jobs[0].deadline + 1.0);
        let report = audit_outcome(&out, &tasks(), &FaultPlan::NONE);
        assert!(report
            .issues
            .iter()
            .any(|i| matches!(i, AuditIssue::UnattributedMiss { .. })));
    }

    #[test]
    fn overrun_run_audits_clean_and_attributes() {
        let plan = FaultPlan::new(11)
            .with_overrun(0.5, 3.0)
            .unwrap()
            .with_policy_override(OverrunPolicy::CompleteAtMax);
        let out = sim(64.0)
            .run_faulted(&mut FullSpeed, &WorstCase, &plan)
            .unwrap();
        assert!(out.faults.overruns > 0, "seed must inject at least once");
        let report = audit_outcome(&out, &tasks(), &plan);
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.attributed_misses, out.fault_attributed_misses());
        assert_eq!(out.unattributed_misses(), 0);
    }

    #[test]
    fn jittered_run_audits_clean() {
        let plan = FaultPlan::new(5).with_release_jitter(0.6, 0.4).unwrap();
        let out = sim(64.0)
            .run_faulted(&mut FullSpeed, &WorstCase, &plan)
            .unwrap();
        assert!(out.faults.jittered_releases > 0, "seed must jitter");
        let report = audit_outcome(&out, &tasks(), &plan);
        assert!(report.is_clean(), "{report}");
        // Jitter alone must never cause a miss under a full-speed governor.
        assert!(out.all_deadlines_met());
    }

    #[test]
    fn early_release_is_flagged_under_jitter() {
        let plan = FaultPlan::new(5).with_release_jitter(0.6, 0.4).unwrap();
        let mut out = sim(64.0)
            .run_faulted(&mut FullSpeed, &WorstCase, &plan)
            .unwrap();
        out.jobs[1].release -= 1.0; // earlier than nominal: illegal
        let report = audit_outcome(&out, &tasks(), &plan);
        assert!(!report.is_clean());
    }

    #[test]
    fn drifted_release_is_flagged_without_jitter() {
        let mut out = sim(32.0).run(&mut FullSpeed, &WorstCase).unwrap();
        out.jobs[1].release += 0.5;
        let report = audit_outcome(&out, &tasks(), &FaultPlan::NONE);
        assert!(report
            .issues
            .iter()
            .any(|i| matches!(i, AuditIssue::ReleasePatternViolation { .. })));
    }

    #[test]
    fn unlicensed_overrun_is_flagged() {
        let mut out = sim(32.0).run(&mut FullSpeed, &WorstCase).unwrap();
        out.jobs[0].actual = out.jobs[0].wcet * 2.0;
        let report = audit_outcome(&out, &tasks(), &FaultPlan::NONE);
        assert!(report
            .issues
            .iter()
            .any(|i| matches!(i, AuditIssue::IllegalOverrun { .. })));
    }

    #[test]
    fn index_gap_is_flagged() {
        let mut out = sim(32.0).run(&mut FullSpeed, &WorstCase).unwrap();
        out.jobs.remove(1); // drop T0#1: indices 0, 2, 3, ...
        let report = audit_outcome(&out, &tasks(), &FaultPlan::NONE);
        assert!(report
            .issues
            .iter()
            .any(|i| matches!(i, AuditIssue::IndexGap { .. })));
    }

    #[test]
    fn inconsistent_counters_are_flagged() {
        let plan = FaultPlan::new(11).with_overrun(0.5, 3.0).unwrap();
        let mut out = sim(64.0)
            .run_faulted(&mut FullSpeed, &WorstCase, &plan)
            .unwrap();
        out.faults.overruns += 1;
        let report = audit_outcome(&out, &tasks(), &plan);
        assert!(report
            .issues
            .iter()
            .any(|i| matches!(i, AuditIssue::InconsistentReport { .. })));
    }

    /// Naive (m,k) reference: replay `history` and report whether any full
    /// window of `k` consecutive outcomes has fewer than `m` met.
    fn naive_violated(history: &[bool], m: u32, k: u32) -> bool {
        let k = k as usize;
        history.len() >= k
            && history
                .windows(k)
                .any(|w| (w.iter().filter(|&&met| met).count() as u32) < m)
    }

    /// Naive skip-admissibility reference: at least `m` of the trailing
    /// `k − 1` outcomes met, with virtual mets before job 0.
    fn naive_skip_allowed(history: &[bool], m: u32, k: u32) -> bool {
        let lookback = (k - 1) as usize;
        let real = lookback.min(history.len());
        let virtual_met = (lookback - real) as u32;
        let met: u32 = history[history.len() - real..]
            .iter()
            .filter(|&&met| met)
            .count() as u32;
        virtual_met + met >= m
    }

    #[test]
    fn mk_window_matches_naive_exhaustively() {
        // Every (m, k) with k ≤ 4 against every outcome sequence of length
        // 8: violated() and skip_allowed() must agree with the naive
        // reference at every prefix.
        for k in 1u32..=4 {
            for m in 1..=k {
                for seq in 0u32..(1 << 8) {
                    let mut w = MkWindow::new(m, k).unwrap();
                    let mut history: Vec<bool> = Vec::new();
                    for j in 0..8 {
                        assert_eq!(
                            w.skip_allowed(),
                            naive_skip_allowed(&history, m, k),
                            "skip mismatch m={m} k={k} seq={seq:08b} at {j}"
                        );
                        let met = seq & (1 << j) != 0;
                        w.record(met);
                        history.push(met);
                        // `violated` sees only the latest window; the naive
                        // check over just that window must agree.
                        let tail = &history[history.len().saturating_sub(k as usize)..];
                        assert_eq!(
                            w.violated(),
                            naive_violated(tail, m, k),
                            "violation mismatch m={m} k={k} seq={seq:08b} at {j}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn mk_window_ring_wraps_past_64() {
        // The ring reuses bit positions mod 64; feed 200 outcomes to a
        // (3,5) contract and check every step against the naive reference.
        let mut w = MkWindow::new(3, 5).unwrap();
        let mut history: Vec<bool> = Vec::new();
        for j in 0u64..200 {
            assert_eq!(w.skip_allowed(), naive_skip_allowed(&history, 3, 5));
            let met = (j * 7 + 3) % 5 != 0; // aperiodic vs the window length
            w.record(met);
            history.push(met);
            let tail = &history[history.len().saturating_sub(5)..];
            assert_eq!(w.violated(), naive_violated(tail, 3, 5), "at {j}");
        }
        assert_eq!(w.count(), 200);
    }

    #[test]
    fn mk_window_boundary_cases() {
        // Window-boundary off-by-ones: the k-th outcome completes the first
        // full window; the (k+1)-th slides it by exactly one.
        let mut w = MkWindow::new(2, 3).unwrap();
        w.record(false);
        w.record(true);
        assert_eq!(w.window_met(), None, "no full window before k outcomes");
        assert!(!w.violated());
        w.record(true);
        assert_eq!(w.window_met(), Some(2), "first full window at count = k");
        assert!(!w.violated());
        w.record(false);
        // Window is now {true, true, false}: the leading loss slid out.
        assert_eq!(w.window_met(), Some(2));
        assert!(!w.violated());
        w.record(false);
        assert_eq!(w.window_met(), Some(1));
        assert!(w.violated());

        // (k,k) tolerates no loss at all once a full window exists.
        let mut strict = MkWindow::new(2, 2).unwrap();
        assert!(!strict.skip_allowed(), "skip would lose 1 of the next 2");
        strict.record(true);
        strict.record(false);
        assert!(strict.violated());

        // (1,1): every job must meet — skips are never licensed, and any
        // loss violates immediately.
        let mut one = MkWindow::new(1, 1).unwrap();
        assert!(!one.skip_allowed());
        one.record(false);
        assert!(one.violated());

        // Startup virtual mets: with (2,4) the first two jobs may both be
        // skipped (losses), the third may not.
        let mut startup = MkWindow::new(2, 4).unwrap();
        assert!(startup.skip_allowed());
        startup.record(false);
        assert!(startup.skip_allowed());
        startup.record(false);
        assert!(!startup.skip_allowed());
    }

    #[test]
    fn mk_window_validates_bounds() {
        assert!(MkWindow::new(0, 4).is_err());
        assert!(MkWindow::new(5, 4).is_err());
        assert!(MkWindow::new(1, 65).is_err());
        assert!(MkWindow::new(64, 64).is_ok());
        let w = MkWindow::new(2, 6).unwrap();
        assert_eq!((w.m(), w.k(), w.count()), (2, 6, 0));
    }

    #[test]
    fn mk_window_loss_mask_tracks_losses() {
        let mut w = MkWindow::new(1, 3).unwrap();
        w.record(false); // index 0: loss
        w.record(true); // index 1
        w.record(false); // index 2: loss
        assert_eq!(w.window_loss_mask(), 0b101);
        w.record(true); // index 3; window = {1, 2, 3}
        assert_eq!(w.window_loss_mask(), 0b100);
    }

    fn mixed_tasks() -> TaskSet {
        TaskSet::new(vec![
            Task::new(1.0, 4.0).unwrap(),
            Task::new(1.0, 4.0).unwrap().weakly_hard(1, 2).unwrap(),
        ])
        .unwrap()
    }

    fn mixed_run(horizon: f64) -> SimOutcome {
        Simulator::new(
            mixed_tasks(),
            Processor::ideal_continuous(),
            SimConfig::new(horizon).unwrap(),
        )
        .unwrap()
        .run(&mut FullSpeed, &WorstCase)
        .unwrap()
    }

    #[test]
    fn mixed_model_run_audits_clean() {
        let out = mixed_run(32.0);
        // Greedy (1,2) skipping alternates: even indices licensed and shed.
        assert_eq!(out.models.skips, 4, "{:?}", out.models);
        assert_eq!(out.models.weakly_hard_jobs, 8);
        let report = audit_outcome(&out, &mixed_tasks(), &FaultPlan::NONE);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn illegal_skip_is_flagged() {
        let mut out = mixed_run(32.0);
        // Pretend the engine also shed job T1#1 — right after the licensed
        // skip of T1#0, which the (1,2) window cannot absorb.
        let illegal = JobId {
            task: crate::task::TaskId(1),
            index: 1,
        };
        assert!(!out.models.is_skipped(illegal));
        out.models.skipped.push(illegal);
        out.models.skipped.sort_unstable();
        out.models.skips = out.models.skipped.len() as u64;
        let report = audit_outcome(&out, &mixed_tasks(), &FaultPlan::NONE);
        assert!(report
            .issues
            .iter()
            .any(|i| matches!(i, AuditIssue::IllegalSkip { job } if *job == illegal)));
    }

    #[test]
    fn mk_violation_is_flagged_for_uncontaminated_miss() {
        let mut out = mixed_run(32.0);
        // Make the executed job T1#1 late: the (1,2) window {skip, miss}
        // drops below m = 1 with no fault to excuse it.
        let r = out
            .jobs
            .iter_mut()
            .find(|r| r.id.task == crate::task::TaskId(1) && r.id.index == 1)
            .unwrap();
        r.completion = Some(r.deadline + 1.0);
        let report = audit_outcome(&out, &mixed_tasks(), &FaultPlan::NONE);
        assert!(report.issues.iter().any(|i| matches!(
            i,
            AuditIssue::MkViolation {
                task: 1,
                end_index: 1,
                met: 0,
                m: 1,
                k: 2,
            }
        )));
    }

    #[test]
    fn tampered_model_counters_are_flagged() {
        let mut out = mixed_run(32.0);
        out.models.weakly_hard_jobs += 1;
        let report = audit_outcome(&out, &mixed_tasks(), &FaultPlan::NONE);
        assert!(report.issues.iter().any(|i| matches!(
            i,
            AuditIssue::InconsistentReport {
                counter: "weakly_hard_jobs",
                ..
            }
        )));
    }

    #[test]
    fn issue_display_nonempty() {
        let issues = [
            AuditIssue::IndexGap {
                task: 0,
                missing: 2,
            },
            AuditIssue::SeparationViolation {
                job: JobId {
                    task: crate::task::TaskId(0),
                    index: 1,
                },
                gap: 1.0,
                period: 4.0,
            },
        ];
        for i in issues {
            assert!(!i.to_string().is_empty());
        }
    }
}
