//! Simulation results.

use serde::{Deserialize, Serialize};
use stadvs_power::EnergyBreakdown;

use crate::fault::FaultReport;
use crate::job::JobRecord;
use crate::kernel::KernelStats;
use crate::model::ModelReport;
use crate::trace::Trace;

/// Demand-analysis effort counters reported by governors that run a
/// per-dispatch slack analysis (zero for everything else).
///
/// `events_swept / analyses` is the average number of checkpoint events the
/// incremental analyzer actually visited per dispatch — the pruning-efficacy
/// observable the bench gate and the differential tests track.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct AnalysisStats {
    /// Number of demand analyses performed over the run.
    pub analyses: u64,
    /// Total checkpoint events visited across all analyses.
    pub events_swept: u64,
}

/// Everything a finished simulation run produced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimOutcome {
    /// Name of the governor that produced this run.
    pub governor: String,
    /// The simulated horizon, in seconds.
    pub horizon: f64,
    /// Energy totals by component.
    pub energy: EnergyBreakdown,
    /// Number of speed switches performed.
    pub switches: u64,
    /// One record per released job, sorted by (task, index).
    pub jobs: Vec<JobRecord>,
    /// Number of scheduler events processed.
    pub events: u64,
    /// Total time spent executing jobs.
    pub busy_time: f64,
    /// Total time spent idle.
    pub idle_time: f64,
    /// Total time spent in speed transitions.
    pub transition_time: f64,
    /// Injected faults and the resulting degradation (quiet for runs
    /// without fault injection).
    #[serde(default)]
    pub faults: FaultReport,
    /// Task-model activity — (m,k) skips, sporadic/frame job counts, frame
    /// miss streaks (quiet for all-hard task sets).
    #[serde(default)]
    pub models: ModelReport,
    /// Histogram of same-instant release batch sizes, one increment per
    /// engine step that released at least one job. Buckets: 1, 2, 3, 4,
    /// 5–8, 9–16, 17–32, 33+ releases drained in that step's single
    /// release pass. Diagnostic only (how batched the hyperperiod
    /// lattice actually is); identical on the facade and direct drive
    /// paths because both run the same step body.
    #[serde(default)]
    pub release_batches: [u64; 8],
    /// Demand-analysis effort counters (quiet for governors without a
    /// per-dispatch slack analysis).
    #[serde(default)]
    pub analysis: AnalysisStats,
    /// The core engine's per-kind event accounting from the simulation
    /// kernel (`emitted` = wakes and notes this core's engine scheduled,
    /// `handled` = events delivered to it). Zeroed for idle cores and on
    /// the kernel-less oracle drive path.
    #[serde(default)]
    pub kernel: KernelStats,
    /// The full execution trace, if recording was enabled.
    pub trace: Option<Trace>,
}

impl SimOutcome {
    /// Total energy in joules.
    pub fn total_energy(&self) -> f64 {
        self.energy.total()
    }

    /// Number of jobs that missed their deadline (late completion, or
    /// incomplete at the horizon although due).
    pub fn miss_count(&self) -> usize {
        self.jobs.iter().filter(|j| j.missed(self.horizon)).count()
    }

    /// Whether every due job met its deadline.
    pub fn all_deadlines_met(&self) -> bool {
        self.miss_count() == 0
    }

    /// Number of completed jobs.
    pub fn completed_jobs(&self) -> usize {
        self.jobs.iter().filter(|j| j.completion.is_some()).count()
    }

    /// Total preemptions across all jobs.
    pub fn preemption_count(&self) -> u64 {
        self.jobs.iter().map(|j| u64::from(j.preemptions)).sum()
    }

    /// Speed switches per completed job (`NaN` when no job completed).
    pub fn switches_per_job(&self) -> f64 {
        self.switches as f64 / self.completed_jobs() as f64
    }

    /// The worst (smallest) completion margin `deadline − completion` over
    /// completed jobs, or `None` if nothing completed. Negative values mean
    /// a deadline miss.
    pub fn min_margin(&self) -> Option<f64> {
        self.jobs
            .iter()
            .filter_map(|j| j.completion.map(|c| j.deadline - c))
            .min_by(f64::total_cmp)
    }

    /// Number of deadline misses attributable to injected faults (the
    /// missing job was contaminated by an overrun, aborted, or shed).
    pub fn fault_attributed_misses(&self) -> usize {
        self.jobs
            .iter()
            .filter(|j| j.missed(self.horizon) && self.faults.is_contaminated(j.id))
            .count()
    }

    /// Number of deadline misses **not** attributable to injected faults.
    /// Under fault injection, a non-zero count is an algorithm bug: the
    /// governor lost a deadline no injected fault can excuse.
    pub fn unattributed_misses(&self) -> usize {
        self.jobs
            .iter()
            .filter(|j| j.missed(self.horizon) && !self.faults.is_contaminated(j.id))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobId;
    use crate::task::TaskId;

    fn record(task: usize, completion: Option<f64>, deadline: f64) -> JobRecord {
        JobRecord {
            id: JobId {
                task: TaskId(task),
                index: 0,
            },
            release: 0.0,
            deadline,
            wcet: 1.0,
            actual: 0.5,
            completion,
            wall_time: 1.0,
            preemptions: 2,
        }
    }

    fn outcome(jobs: Vec<JobRecord>) -> SimOutcome {
        SimOutcome {
            governor: "test".to_string(),
            horizon: 100.0,
            energy: EnergyBreakdown {
                active: 1.0,
                idle: 0.5,
                transition: 0.25,
            },
            switches: 4,
            jobs,
            events: 10,
            busy_time: 1.0,
            idle_time: 99.0,
            transition_time: 0.0,
            faults: FaultReport::default(),
            models: ModelReport::default(),
            release_batches: [0; 8],
            analysis: AnalysisStats::default(),
            kernel: KernelStats::default(),
            trace: None,
        }
    }

    #[test]
    fn miss_and_margin_accounting() {
        let o = outcome(vec![
            record(0, Some(5.0), 10.0),
            record(1, Some(12.0), 10.0), // late
            record(2, None, 50.0),       // due but unfinished
            record(3, None, 1000.0),     // not yet due at horizon
        ]);
        assert_eq!(o.miss_count(), 2);
        assert!(!o.all_deadlines_met());
        assert_eq!(o.completed_jobs(), 2);
        assert_eq!(o.preemption_count(), 8);
        assert!((o.total_energy() - 1.75).abs() < 1e-12);
        assert_eq!(o.min_margin(), Some(-2.0));
        assert!((o.switches_per_job() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn clean_run_reports_no_misses() {
        let o = outcome(vec![record(0, Some(5.0), 10.0)]);
        assert!(o.all_deadlines_met());
        assert_eq!(o.min_margin(), Some(5.0));
    }
}
