//! Simulator error type.

use std::error::Error;
use std::fmt;

use crate::job::JobId;

/// Errors produced by task-set construction and simulation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// A task violated `0 < wcet <= deadline <= period` (all finite).
    InvalidTask {
        /// Offending worst-case execution time.
        wcet: f64,
        /// Offending period.
        period: f64,
        /// Offending relative deadline.
        deadline: f64,
    },
    /// A task set must contain at least one task.
    EmptyTaskSet,
    /// The task set is not feasible at full speed (worst-case density > 1),
    /// so no speed assignment can guarantee deadlines.
    Infeasible {
        /// The worst-case density `Σ wcet_i / deadline_i`.
        density: f64,
    },
    /// A configuration field is invalid.
    InvalidConfig {
        /// Name of the offending field.
        field: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A job missed its deadline and the configured policy is
    /// [`MissPolicy::Fail`](crate::MissPolicy::Fail).
    DeadlineMiss {
        /// The missing job.
        job: JobId,
        /// The job's absolute deadline.
        deadline: f64,
        /// When the job actually completed (or the simulation horizon, if
        /// it never did).
        completed: f64,
    },
    /// The simulation exceeded its event budget (runaway guard).
    EventLimitExceeded {
        /// The configured event limit.
        limit: u64,
    },
    /// A platform-level input (task assignment, demand sources, …) does not
    /// have one entry per core.
    PlatformMismatch {
        /// Number of cores in the platform.
        cores: usize,
        /// Number of per-core entries actually provided.
        provided: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidTask {
                wcet,
                period,
                deadline,
            } => write!(
                f,
                "task violates 0 < wcet <= deadline <= period (wcet {wcet}, period {period}, deadline {deadline})"
            ),
            SimError::EmptyTaskSet => write!(f, "task set must contain at least one task"),
            SimError::Infeasible { density } => write!(
                f,
                "task set has worst-case density {density} > 1 and cannot be scheduled at any speed"
            ),
            SimError::InvalidConfig { field, value } => {
                write!(f, "configuration field `{field}` has invalid value {value}")
            }
            SimError::DeadlineMiss {
                job,
                deadline,
                completed,
            } => write!(
                f,
                "job {job} missed its deadline {deadline} (completed at {completed})"
            ),
            SimError::EventLimitExceeded { limit } => {
                write!(f, "simulation exceeded the event limit of {limit}")
            }
            SimError::PlatformMismatch { cores, provided } => write!(
                f,
                "platform has {cores} cores but {provided} per-core entries were provided"
            ),
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskId;

    #[test]
    fn display_is_informative() {
        let e = SimError::DeadlineMiss {
            job: JobId {
                task: TaskId(2),
                index: 7,
            },
            deadline: 1.5,
            completed: 1.6,
        };
        let msg = e.to_string();
        assert!(msg.contains("T2"));
        assert!(msg.contains("1.5"));
        assert!(SimError::EmptyTaskSet.to_string().contains("at least one"));
    }

    #[test]
    fn error_is_std_error_send_sync() {
        fn assert_traits<T: Error + Send + Sync + 'static>() {}
        assert_traits::<SimError>();
    }
}
