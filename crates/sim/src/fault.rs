//! Deterministic fault injection: WCET overruns, release jitter, dropped
//! frequency switches, clamped speed levels — and the overrun policies
//! governors declare against them.
//!
//! A [`FaultPlan`] is a seeded recipe the simulator consults at well-defined
//! points of its event loop. Every query is a pure hash of
//! `(seed, stream, task, job index)`, so a plan is replayable: the same
//! workload under the same plan produces the same faults for every governor,
//! which is what lets the differential harness compare governors under
//! identical adversity.
//!
//! Fault semantics are chosen so that a plan whose overrun factor stays at
//! or below `1.0` is *guarantee-preserving* for every correctly implemented
//! hard-real-time governor:
//!
//! * **Release jitter** only delays releases, and consecutive releases of a
//!   task stay at least one period apart (the simulator enforces the
//!   sporadic separation `r_{k+1} ≥ r_k + T`). Deadlines anchor at the
//!   jittered release. Arrivals never come earlier than a governor may
//!   assume, so slack certificates stay valid.
//! * **Dropped switches** suppress *downward* speed changes only: the
//!   processor keeps running at least as fast as requested. Energy degrades
//!   observably; deadlines cannot.
//! * **Level clamping** raises every selected speed to a floor — a platform
//!   refusing its lowest operating points. Again only ever faster.
//! * **WCET overruns** (factor > 1) are the genuinely destructive fault:
//!   a job's actual demand exceeds the budget every analysis certified
//!   against. The simulator detects the overrun the instant the job's
//!   executed work crosses its WCET and applies the governor's declared
//!   [`OverrunPolicy`].

use serde::{Deserialize, Serialize};

use crate::job::JobId;
use crate::task::TaskId;
use crate::SimError;

/// How a governor degrades when a job overruns its declared WCET — the
/// moment its slack certificate is invalidated.
///
/// Every governor declares one via
/// [`Governor::overrun_policy`](crate::Governor::overrun_policy); a
/// [`FaultPlan`] may override the declaration for differential experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum OverrunPolicy {
    /// Kill the overrunning job at the detection instant. Its remaining
    /// demand is discarded and the job is recorded as incomplete (a
    /// fault-attributed miss if its deadline was due), protecting the rest
    /// of the task set from the rogue demand.
    Abort,
    /// Escalate the overrunning job to full speed until it completes (the
    /// default). The backlog drains at the maximum rate the platform has;
    /// other jobs may still miss, but every miss is fault-attributed.
    #[default]
    CompleteAtMax,
    /// Like [`OverrunPolicy::CompleteAtMax`], and additionally suppress the
    /// task's next release — the skip model of weakly-hard scheduling: shed
    /// one future instance to recover the budget the overrun consumed.
    SkipNext,
}

/// One injected fault (or its consequence), attributed to a job.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The job's actual demand exceeded its WCET by `factor`.
    WcetOverrun {
        /// Ratio `actual / wcet` (> 1).
        factor: f64,
    },
    /// The job was killed by [`OverrunPolicy::Abort`].
    Aborted,
    /// The job's release was suppressed by [`OverrunPolicy::SkipNext`].
    SkippedRelease,
    /// The job was escalated to full speed after an overrun.
    ForcedFullSpeed,
    /// A requested downward speed switch was dropped while this job was
    /// dispatched; the processor kept its previous (faster) speed.
    DroppedSwitch,
    /// The job's release was delayed by `delay` seconds.
    JitteredRelease {
        /// The injected delay, in seconds.
        delay: f64,
    },
}

/// One fault occurrence: what happened, to which job, when.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// The affected job.
    pub job: JobId,
    /// Simulation time of the occurrence, in seconds.
    pub at: f64,
    /// What happened.
    pub kind: FaultKind,
}

/// Structured degradation report of one simulation run.
///
/// Always present on a [`SimOutcome`](crate::SimOutcome);
/// [`FaultReport::is_quiet`] on runs without injected faults.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultReport {
    /// Jobs whose actual demand exceeded their WCET.
    pub overruns: u64,
    /// Jobs killed by [`OverrunPolicy::Abort`].
    pub aborted: u64,
    /// Releases suppressed by [`OverrunPolicy::SkipNext`].
    pub skipped_releases: u64,
    /// Jobs escalated to full speed after an overrun.
    pub forced_full_speed: u64,
    /// Downward speed switches dropped by the plan.
    pub dropped_switches: u64,
    /// Releases delayed by injected jitter.
    pub jittered_releases: u64,
    /// Speed selections raised to the plan's level floor.
    pub clamped_selections: u64,
    /// Completed overrun-recovery episodes (overrun detection → the
    /// processor's ready set draining empty).
    pub recovery_episodes: u64,
    /// Total wall-clock time spent in recovery episodes, in seconds.
    pub recovery_time: f64,
    /// The longest single recovery episode, in seconds.
    pub max_recovery_latency: f64,
    /// Jobs whose outcome an overrun may have affected (the contamination
    /// closure: the overrunning job itself plus every job that shared a
    /// busy interval with the backlog it caused). Sorted, deduplicated.
    /// A deadline miss of a job *not* in this list is an algorithm bug.
    pub contaminated: Vec<JobId>,
    /// The individual fault occurrences, in event order.
    pub events: Vec<FaultEvent>,
}

impl FaultReport {
    /// Whether the run saw no fault activity at all.
    pub fn is_quiet(&self) -> bool {
        self.overruns == 0
            && self.aborted == 0
            && self.skipped_releases == 0
            // xtask:allow(float-eq): integer fault counter, not a speed value
            && self.forced_full_speed == 0
            && self.dropped_switches == 0
            && self.jittered_releases == 0
            && self.clamped_selections == 0
            && self.contaminated.is_empty()
            && self.events.is_empty()
    }

    /// Mean recovery latency over completed episodes (0 when none).
    pub fn mean_recovery_latency(&self) -> f64 {
        if self.recovery_episodes == 0 {
            0.0
        } else {
            // xtask:allow(as-cast): not in crates/core, counter to mean
            self.recovery_time / self.recovery_episodes as f64
        }
    }

    /// Whether `job`'s outcome may have been affected by an injected
    /// overrun (see [`FaultReport::contaminated`]).
    pub fn is_contaminated(&self, job: JobId) -> bool {
        self.contaminated.binary_search(&job).is_ok()
    }
}

/// WCET-overrun injection: each job independently overruns with
/// `probability`, multiplying its actual demand by `factor`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct OverrunFaults {
    probability: f64,
    factor: f64,
}

/// Release-jitter injection: each release is independently delayed with
/// `probability` by a deterministic draw from `[0, max_fraction · period]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct JitterFaults {
    probability: f64,
    max_fraction: f64,
}

/// Switch-drop injection: each candidate *downward* speed switch is
/// independently dropped with `probability`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct SwitchDropFaults {
    probability: f64,
}

/// A deterministic, seed-driven fault-injection recipe.
///
/// Construct with [`FaultPlan::none`] or [`FaultPlan::new`], then layer
/// fault channels with the `with_*` builders. The plan is `Copy` and cheap
/// to thread through experiment configuration.
///
/// ```
/// use stadvs_sim::{FaultPlan, OverrunPolicy};
///
/// # fn main() -> Result<(), stadvs_sim::SimError> {
/// let plan = FaultPlan::new(7)
///     .with_overrun(0.1, 1.5)?
///     .with_release_jitter(0.2, 0.3)?
///     .with_policy_override(OverrunPolicy::CompleteAtMax);
/// assert!(!plan.is_none());
/// assert!(FaultPlan::none().is_none());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    seed: u64,
    overrun: Option<OverrunFaults>,
    jitter: Option<JitterFaults>,
    switch_drops: Option<SwitchDropFaults>,
    level_floor: Option<f64>,
    policy_override: Option<OverrunPolicy>,
}

/// Per-channel hash stream separators (arbitrary odd constants).
const STREAM_OVERRUN: u64 = 0x0F4A_11A5_0001;
const STREAM_JITTER_GATE: u64 = 0x0F4A_11A5_0003;
const STREAM_JITTER_MAG: u64 = 0x0F4A_11A5_0005;
const STREAM_SWITCH: u64 = 0x0F4A_11A5_0007;

impl FaultPlan {
    /// The no-fault plan: every query is a constant-time no-op answer. The
    /// simulator's fast path checks [`FaultPlan::is_none`] once per run and
    /// skips all fault bookkeeping.
    pub const NONE: FaultPlan = FaultPlan {
        seed: 0,
        overrun: None,
        jitter: None,
        switch_drops: None,
        level_floor: None,
        policy_override: None,
    };

    /// The no-fault plan (same as [`FaultPlan::NONE`]).
    pub fn none() -> FaultPlan {
        FaultPlan::NONE
    }

    /// An empty plan carrying `seed`; layer faults with the `with_*`
    /// builders.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            ..FaultPlan::NONE
        }
    }

    /// Adds WCET overruns: each job independently overruns with
    /// `probability`, multiplying its actual demand by `factor`.
    ///
    /// A `factor ≤ 1` never pushes demand past the WCET (a benign scaling,
    /// useful as the control arm of differential tests); a `factor > 1` is
    /// a genuine budget violation.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] unless `probability ∈ [0, 1]`
    /// and `factor` is finite and positive.
    pub fn with_overrun(mut self, probability: f64, factor: f64) -> Result<FaultPlan, SimError> {
        check_probability("overrun_probability", probability)?;
        if !factor.is_finite() || factor <= 0.0 {
            return Err(SimError::InvalidConfig {
                field: "overrun_factor",
                value: factor,
            });
        }
        self.overrun = Some(OverrunFaults {
            probability,
            factor,
        });
        Ok(self)
    }

    /// Adds release jitter: each release is independently delayed with
    /// `probability` by a deterministic draw from
    /// `[0, max_fraction · period]`. The simulator additionally enforces
    /// the sporadic separation `r_{k+1} ≥ r_k + T`, so jitter never
    /// compresses inter-arrival times.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] unless `probability ∈ [0, 1]`
    /// and `max_fraction` is finite and non-negative.
    pub fn with_release_jitter(
        mut self,
        probability: f64,
        max_fraction: f64,
    ) -> Result<FaultPlan, SimError> {
        check_probability("jitter_probability", probability)?;
        if !max_fraction.is_finite() || max_fraction < 0.0 {
            return Err(SimError::InvalidConfig {
                field: "jitter_max_fraction",
                value: max_fraction,
            });
        }
        self.jitter = Some(JitterFaults {
            probability,
            max_fraction,
        });
        Ok(self)
    }

    /// Adds switch drops: each candidate *downward* speed switch is
    /// independently dropped with `probability` (the processor keeps its
    /// previous, faster speed). Upward switches always go through —
    /// dropping them could cause misses the model does not attribute.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] unless `probability ∈ [0, 1]`.
    pub fn with_switch_drops(mut self, probability: f64) -> Result<FaultPlan, SimError> {
        check_probability("switch_drop_probability", probability)?;
        self.switch_drops = Some(SwitchDropFaults { probability });
        Ok(self)
    }

    /// Clamps every selected speed up to `floor` — a platform whose lowest
    /// operating points are unavailable (a coarsened discrete level set).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] unless `floor ∈ (0, 1]`.
    pub fn with_level_floor(mut self, floor: f64) -> Result<FaultPlan, SimError> {
        if !floor.is_finite() || floor <= 0.0 || floor > 1.0 {
            return Err(SimError::InvalidConfig {
                field: "level_floor",
                value: floor,
            });
        }
        self.level_floor = Some(floor);
        Ok(self)
    }

    /// Overrides every governor's declared [`OverrunPolicy`] with `policy`
    /// (differential tests force a uniform policy so release/completion
    /// sets stay comparable across governors).
    pub fn with_policy_override(mut self, policy: OverrunPolicy) -> FaultPlan {
        self.policy_override = Some(policy);
        self
    }

    /// Whether this plan injects nothing (the simulator's fast path).
    pub fn is_none(&self) -> bool {
        self.overrun.is_none()
            && self.jitter.is_none()
            && self.switch_drops.is_none()
            && self.level_floor.is_none()
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The forced policy, if any.
    pub fn policy_override(&self) -> Option<OverrunPolicy> {
        self.policy_override
    }

    /// The policy to apply for an overrun, given the governor's declared
    /// one.
    pub fn resolve_policy(&self, declared: OverrunPolicy) -> OverrunPolicy {
        self.policy_override.unwrap_or(declared)
    }

    /// The demand multiplier of job `(task, index)` (1.0 when the job is
    /// not selected for overrun).
    pub fn overrun_factor(&self, task: TaskId, index: u64) -> f64 {
        match self.overrun {
            Some(o) if self.chance(STREAM_OVERRUN, task.0 as u64, index) < o.probability => {
                o.factor
            }
            _ => 1.0,
        }
    }

    /// The release delay of job `(task, index)` in seconds (0.0 when the
    /// release is not selected for jitter). `period` scales the magnitude.
    pub fn release_delay(&self, task: TaskId, index: u64, period: f64) -> f64 {
        match self.jitter {
            Some(j) if self.chance(STREAM_JITTER_GATE, task.0 as u64, index) < j.probability => {
                self.chance(STREAM_JITTER_MAG, task.0 as u64, index) * j.max_fraction * period
            }
            _ => 0.0,
        }
    }

    /// Whether the `ordinal`-th candidate downward switch of the run is
    /// dropped.
    pub fn drops_switch(&self, ordinal: u64) -> bool {
        match self.switch_drops {
            Some(s) => self.chance(STREAM_SWITCH, 0, ordinal) < s.probability,
            None => false,
        }
    }

    /// The speed floor (level clamp), if any.
    pub fn level_floor(&self) -> Option<f64> {
        self.level_floor
    }

    /// Whether the release-jitter channel is present. The simulator only
    /// switches to the jittered sporadic release recurrence when it is, so
    /// plans without jitter keep bit-exact periodic release instants.
    pub fn has_jitter(&self) -> bool {
        self.jitter.is_some()
    }

    /// A deterministic uniform draw in `[0, 1)` keyed on
    /// `(seed, stream, a, b)`.
    fn chance(&self, stream: u64, a: u64, b: u64) -> f64 {
        let h = splitmix64(self.seed ^ splitmix64(stream) ^ splitmix64(a ^ splitmix64(b)));
        // 53 high bits → exactly representable uniform grid in [0, 1).
        // xtask:allow(as-cast): not in crates/core, exact 53-bit conversion
        (h >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0)
    }
}

fn check_probability(field: &'static str, p: f64) -> Result<(), SimError> {
    if !p.is_finite() || !(0.0..=1.0).contains(&p) {
        return Err(SimError::InvalidConfig { field, value: p });
    }
    Ok(())
}

/// The same avalanche mixer the workload crate uses for per-job demand
/// draws — decorrelated from it by the stream constants above. Shared with
/// the task-model draws (sporadic gaps, seeded skips), which use their own
/// stream constants from the same family.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_plan_is_inert() {
        let p = FaultPlan::none();
        assert!(p.is_none());
        assert_eq!(p.overrun_factor(TaskId(0), 0), 1.0);
        assert_eq!(p.release_delay(TaskId(0), 0, 1.0), 0.0);
        assert!(!p.drops_switch(0));
        assert_eq!(p.level_floor(), None);
        assert_eq!(p.resolve_policy(OverrunPolicy::Abort), OverrunPolicy::Abort);
    }

    #[test]
    fn builders_validate() {
        assert!(FaultPlan::new(1).with_overrun(1.5, 2.0).is_err());
        assert!(FaultPlan::new(1).with_overrun(0.5, 0.0).is_err());
        assert!(FaultPlan::new(1).with_overrun(0.5, f64::NAN).is_err());
        assert!(FaultPlan::new(1).with_release_jitter(-0.1, 0.5).is_err());
        assert!(FaultPlan::new(1).with_release_jitter(0.5, -1.0).is_err());
        assert!(FaultPlan::new(1).with_switch_drops(2.0).is_err());
        assert!(FaultPlan::new(1).with_level_floor(0.0).is_err());
        assert!(FaultPlan::new(1).with_level_floor(1.5).is_err());
        let ok = FaultPlan::new(1)
            .with_overrun(0.2, 1.5)
            .unwrap()
            .with_release_jitter(0.1, 0.25)
            .unwrap()
            .with_switch_drops(0.3)
            .unwrap()
            .with_level_floor(0.4)
            .unwrap();
        assert!(!ok.is_none());
        assert_eq!(ok.seed(), 1);
    }

    #[test]
    fn queries_are_deterministic_and_seed_sensitive() {
        let a = FaultPlan::new(11).with_overrun(0.5, 2.0).unwrap();
        let b = FaultPlan::new(12).with_overrun(0.5, 2.0).unwrap();
        let fa: Vec<f64> = (0..64).map(|i| a.overrun_factor(TaskId(1), i)).collect();
        let fa2: Vec<f64> = (0..64).map(|i| a.overrun_factor(TaskId(1), i)).collect();
        let fb: Vec<f64> = (0..64).map(|i| b.overrun_factor(TaskId(1), i)).collect();
        assert_eq!(fa, fa2);
        assert_ne!(fa, fb);
        // Probability 0.5 must select some but not all of 64 jobs.
        let hits = fa.iter().filter(|&&f| f > 1.0).count();
        assert!(hits > 8 && hits < 56, "hits {hits}");
    }

    #[test]
    fn probabilities_are_respected_at_the_extremes() {
        let always = FaultPlan::new(3).with_overrun(1.0, 1.5).unwrap();
        let never = FaultPlan::new(3).with_overrun(0.0, 1.5).unwrap();
        for i in 0..32 {
            assert_eq!(always.overrun_factor(TaskId(0), i), 1.5);
            assert_eq!(never.overrun_factor(TaskId(0), i), 1.0);
        }
        let drops = FaultPlan::new(3).with_switch_drops(1.0).unwrap();
        assert!((0..32).all(|o| drops.drops_switch(o)));
    }

    #[test]
    fn jitter_magnitude_is_bounded() {
        let p = FaultPlan::new(5).with_release_jitter(1.0, 0.5).unwrap();
        for i in 0..128 {
            let d = p.release_delay(TaskId(2), i, 4.0);
            assert!((0.0..2.0).contains(&d), "delay {d} out of [0, 2)");
        }
        // Some delay is actually injected.
        assert!((0..128).any(|i| p.release_delay(TaskId(2), i, 4.0) > 0.0));
    }

    #[test]
    fn policy_override_wins() {
        let p = FaultPlan::new(1).with_policy_override(OverrunPolicy::SkipNext);
        assert_eq!(
            p.resolve_policy(OverrunPolicy::Abort),
            OverrunPolicy::SkipNext
        );
        assert_eq!(p.policy_override(), Some(OverrunPolicy::SkipNext));
    }

    #[test]
    fn report_accessors() {
        let mut r = FaultReport::default();
        assert!(r.is_quiet());
        assert_eq!(r.mean_recovery_latency(), 0.0);
        r.overruns = 2;
        r.recovery_episodes = 2;
        r.recovery_time = 3.0;
        r.contaminated = vec![
            JobId {
                task: TaskId(0),
                index: 1,
            },
            JobId {
                task: TaskId(1),
                index: 0,
            },
        ];
        assert!(!r.is_quiet());
        assert!((r.mean_recovery_latency() - 1.5).abs() < 1e-12);
        assert!(r.is_contaminated(JobId {
            task: TaskId(1),
            index: 0
        }));
        assert!(!r.is_contaminated(JobId {
            task: TaskId(1),
            index: 5
        }));
    }

    #[test]
    fn plans_compare_structurally() {
        let a = FaultPlan::new(9).with_overrun(0.25, 1.75).unwrap();
        let b = FaultPlan::new(9).with_overrun(0.25, 1.75).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, FaultPlan::none());
        assert_ne!(a, a.with_policy_override(OverrunPolicy::Abort));
    }
}
