//! # stadvs-sim — event-driven preemptive EDF scheduler and DVS simulator
//!
//! The simulation substrate of the `stadvs` reproduction of the DATE 2002
//! paper *"A Dynamic Voltage Scaling Algorithm for Dynamic-Priority Hard
//! Real-Time Systems Using Slack Time Analysis"*.
//!
//! * [`Task`] / [`TaskSet`] — periodic hard real-time tasks (WCET, period,
//!   constrained deadline, phase),
//! * [`ExecutionSource`] — deterministic per-job *actual* execution demand,
//! * [`Governor`] — the plug-in interface every DVS algorithm implements;
//!   it sees a non-clairvoyant [`SchedulerView`] at each scheduling point,
//! * [`Kernel`] — the discrete-event core: a deterministic queue of typed
//!   [`SimEvent`]s with a stable `(time, seq, component)` total order,
//!   delivered to pre-registered [`EventHandler`] components,
//! * [`Simulator`] — the preemptive EDF engine (a thin facade over one
//!   kernel-driven core component): releases, dispatches, preempts,
//!   applies speed changes (with optional transition latency and energy),
//!   integrates energy, and records [`JobRecord`]s and an optional
//!   [`Trace`],
//! * [`SimOutcome`] — energy breakdown, deadline audit, switch counts,
//!   per-component event accounting ([`KernelStats`]),
//! * [`PlatformSim`] — N per-core engines under partitioned multiprocessor
//!   EDF composed on one shared kernel (fresh governor, scratch, and
//!   energy account per core; no migration), aggregated into a
//!   [`PlatformOutcome`] — optionally under a shared power cap
//!   ([`BudgetLedger`]).
//!
//! ```
//! use stadvs_power::{Processor, Speed};
//! use stadvs_sim::{ActiveJob, ConstantRatio, Governor, SchedulerView,
//!                  SimConfig, Simulator, Task, TaskSet};
//!
//! /// The classic static-EDF policy: run at the utilization.
//! struct Static;
//! impl Governor for Static {
//!     fn name(&self) -> &str { "static" }
//!     fn select_speed(&mut self, view: &SchedulerView<'_>, _: &ActiveJob) -> Speed {
//!         Speed::clamped(view.utilization(), view.processor().min_speed())
//!     }
//! }
//!
//! # fn main() -> Result<(), stadvs_sim::SimError> {
//! let tasks = TaskSet::new(vec![Task::new(1.0e-3, 4.0e-3)?, Task::new(1.0e-3, 8.0e-3)?])?;
//! let sim = Simulator::new(tasks, Processor::ideal_continuous(), SimConfig::new(1.0)?)?;
//! let out = sim.run(&mut Static, &ConstantRatio::new(0.6))?;
//! assert!(out.all_deadlines_met());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod audit;
mod budget;
mod component;
mod error;
mod event;
mod exec;
mod fault;
mod governor;
mod job;
mod kernel;
mod model;
mod outcome;
mod platform_sim;
mod queue;
mod render;
mod simulator;
mod task;
mod trace;

pub use audit::{audit_outcome, AuditIssue, AuditReport, MkWindow};
pub use budget::{BudgetLedger, BudgetReport};
pub use component::{ComponentCtx, EventHandler, TraceSink};
pub use error::SimError;
pub use event::{ComponentId, EventKind, QueueStats, SimEvent, EVENT_KINDS};
pub use exec::{ConstantRatio, ExecutionSource, WorstCase};
pub use fault::{FaultEvent, FaultKind, FaultPlan, FaultReport, OverrunPolicy};
pub use governor::{Governor, SchedulerView};
pub use job::{ActiveJob, JobId, JobRecord};
pub use kernel::{Kernel, KernelStats, SharedState};
pub use model::{ModelReport, SkipPolicy};
pub use outcome::{AnalysisStats, SimOutcome};
pub use platform_sim::{PlatformOutcome, PlatformScratch, PlatformSim};
pub use render::render_gantt;
pub use simulator::{MissPolicy, SimConfig, SimScratch, Simulator, TIME_EPS, WORK_EPS};
pub use task::{Task, TaskId, TaskKind, TaskSet};
pub use trace::{Segment, SegmentKind, Trace};
