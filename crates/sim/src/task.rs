//! Periodic task model and the criticality kinds layered on top of it.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::fault::splitmix64;
use crate::SimError;

/// Hash-stream separator for sporadic inter-arrival draws (same family as
/// the fault-plan stream constants, decorrelated by value).
const STREAM_SPORADIC: u64 = 0x0F4A_11A5_0009;

/// The scheduling model ("criticality kind") of a task.
///
/// The default is [`TaskKind::Hard`]: the classic hard-periodic model every
/// analysis in this workspace was built for. The other kinds extend the
/// scenario matrix beyond hard-periodic:
///
/// * [`TaskKind::WeaklyHard`] — an (m,k)-firm contract: at least `m`
///   deadlines must be met in **every** window of `k` consecutive jobs.
///   The simulator may *skip* jobs of such a task (shed them at release,
///   reclaiming the whole WCET) as long as the contract stays satisfiable —
///   see [`SkipPolicy`](crate::SkipPolicy).
/// * [`TaskKind::Sporadic`] — releases are separated by **at least**
///   `min_interarrival` (which must equal the task's period); the actual
///   gap is `min_interarrival · (1 + burst · u)` with a deterministic
///   per-job draw `u ∈ [0, 1)` keyed on `seed`. Arrivals are therefore
///   never earlier than the periodic lattice, so demand analyses anchored
///   on the lattice stay conservative (the same safety argument as
///   delay-only release jitter).
/// * [`TaskKind::Frame`] — a frame-driven (interactive) task with a
///   constrained deadline `frame_deadline` (which must equal the task's
///   relative deadline). After a missed frame, every dispatch of the task
///   is boosted to at least the `boost` speed ratio until it completes a
///   frame on time again — miss-driven recovery modeled on frame-aware EDF
///   schedulers, expressed as a speed floor so deadlines of other tasks
///   are never endangered.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum TaskKind {
    /// Hard-periodic (the default): every deadline must be met.
    #[default]
    Hard,
    /// (m,k)-firm weakly-hard: at least `m` of every `k` consecutive jobs
    /// must meet their deadline. Requires `1 ≤ m ≤ k ≤ 64`.
    WeaklyHard {
        /// Minimum number of deadlines met per window.
        m: u32,
        /// Window length in consecutive jobs.
        k: u32,
    },
    /// Sporadic: inter-arrival times are at least `min_interarrival`
    /// (= the task's period), stretched by seeded burst draws.
    Sporadic {
        /// Minimum inter-arrival separation (must equal the period).
        min_interarrival: f64,
        /// Maximum fractional stretch of a gap beyond the minimum
        /// (`0` degenerates to a sporadic task that happens to arrive
        /// periodically).
        burst: f64,
        /// Seed of the per-job gap draws (governor-invariant).
        seed: u64,
    },
    /// Frame-driven: constrained deadline `frame_deadline` (= the task's
    /// relative deadline) with a miss-driven speed-boost floor.
    Frame {
        /// The frame deadline (must equal the task's relative deadline).
        frame_deadline: f64,
        /// Speed-ratio floor applied to the task's dispatches after a
        /// missed frame, until the next on-time completion. In `(0, 1]`.
        boost: f64,
    },
}

impl TaskKind {
    /// Whether this is the hard-periodic default.
    pub fn is_hard(&self) -> bool {
        matches!(self, TaskKind::Hard)
    }
}

/// Identifier of a task within a [`TaskSet`] (its index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TaskId(pub usize);

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// A periodic hard real-time task.
///
/// All times are in seconds. `wcet` is the worst-case execution time **at
/// full speed** (so it doubles as the job's worst-case *work*); `period` is
/// the inter-release separation; `deadline` is relative to release and must
/// satisfy `wcet <= deadline <= period` (implicit deadlines use
/// `deadline == period`); `phase` is the first release instant.
///
/// ```
/// use stadvs_sim::Task;
///
/// # fn main() -> Result<(), stadvs_sim::SimError> {
/// let t = Task::new(2.0e-3, 10.0e-3)?; // 2 ms WCET every 10 ms
/// assert_eq!(t.utilization(), 0.2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Task {
    wcet: f64,
    period: f64,
    deadline: f64,
    phase: f64,
    name: Option<String>,
    /// Scheduling model; defaults to hard-periodic so pre-existing
    /// serialized task sets (golden traces) keep loading unchanged.
    #[serde(default)]
    kind: TaskKind,
}

impl Task {
    /// Creates an implicit-deadline task (`deadline == period`, zero phase).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidTask`] if `wcet` or `period` is not finite
    /// and positive, or `wcet > period`.
    pub fn new(wcet: f64, period: f64) -> Result<Task, SimError> {
        Task::with_deadline(wcet, period, period)
    }

    /// Creates a constrained-deadline task (`wcet <= deadline <= period`).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidTask`] on any violated constraint.
    pub fn with_deadline(wcet: f64, period: f64, deadline: f64) -> Result<Task, SimError> {
        let ok = wcet.is_finite()
            && period.is_finite()
            && deadline.is_finite()
            && wcet > 0.0
            && period > 0.0
            && deadline >= wcet
            && deadline <= period;
        if !ok {
            return Err(SimError::InvalidTask {
                wcet,
                period,
                deadline,
            });
        }
        Ok(Task {
            wcet,
            period,
            deadline,
            phase: 0.0,
            name: None,
            kind: TaskKind::Hard,
        })
    }

    /// Attaches a scheduling model, validating it against the task's
    /// timing parameters — the admission check for non-hard task models.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if
    ///
    /// * a weakly-hard contract violates `1 ≤ m ≤ k ≤ 64`,
    /// * a sporadic `min_interarrival` differs from the period, or `burst`
    ///   is negative or not finite,
    /// * a frame `frame_deadline` differs from the relative deadline, or
    ///   `boost` is outside `(0, 1]`.
    pub fn with_kind(mut self, kind: TaskKind) -> Result<Task, SimError> {
        match kind {
            TaskKind::Hard => {}
            TaskKind::WeaklyHard { m, k } => {
                if m == 0 || m > k {
                    return Err(SimError::InvalidConfig {
                        field: "weakly_hard_m",
                        value: f64::from(m),
                    });
                }
                if k > 64 {
                    return Err(SimError::InvalidConfig {
                        field: "weakly_hard_k",
                        value: f64::from(k),
                    });
                }
            }
            TaskKind::Sporadic {
                min_interarrival,
                burst,
                ..
            } => {
                // The period doubles as the minimum separation everywhere
                // (utilization, demand analyses), so the two must agree.
                // xtask:allow(float-eq): exact-equality admission check, not arithmetic
                if min_interarrival != self.period {
                    return Err(SimError::InvalidConfig {
                        field: "min_interarrival",
                        value: min_interarrival,
                    });
                }
                if !burst.is_finite() || burst < 0.0 {
                    return Err(SimError::InvalidConfig {
                        field: "sporadic_burst",
                        value: burst,
                    });
                }
            }
            TaskKind::Frame {
                frame_deadline,
                boost,
            } => {
                // xtask:allow(float-eq): exact-equality admission check, not arithmetic
                if frame_deadline != self.deadline {
                    return Err(SimError::InvalidConfig {
                        field: "frame_deadline",
                        value: frame_deadline,
                    });
                }
                if !boost.is_finite() || boost <= 0.0 || boost > 1.0 {
                    return Err(SimError::InvalidConfig {
                        field: "frame_boost",
                        value: boost,
                    });
                }
            }
        }
        self.kind = kind;
        Ok(self)
    }

    /// Attaches an (m,k)-firm weakly-hard contract (see
    /// [`TaskKind::WeaklyHard`]).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] unless `1 ≤ m ≤ k ≤ 64`.
    pub fn weakly_hard(self, m: u32, k: u32) -> Result<Task, SimError> {
        self.with_kind(TaskKind::WeaklyHard { m, k })
    }

    /// Makes the task sporadic with `min_interarrival` equal to its period
    /// (see [`TaskKind::Sporadic`]).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if `burst` is negative or not
    /// finite.
    pub fn sporadic(self, burst: f64, seed: u64) -> Result<Task, SimError> {
        let min_interarrival = self.period;
        self.with_kind(TaskKind::Sporadic {
            min_interarrival,
            burst,
            seed,
        })
    }

    /// Makes the task frame-driven with `frame_deadline` equal to its
    /// relative deadline (see [`TaskKind::Frame`]).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] unless `boost ∈ (0, 1]`.
    pub fn frame(self, boost: f64) -> Result<Task, SimError> {
        let frame_deadline = self.deadline;
        self.with_kind(TaskKind::Frame {
            frame_deadline,
            boost,
        })
    }

    /// Sets the first release instant (default `0.0`).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidTask`] if `phase` is negative or not
    /// finite.
    pub fn with_phase(mut self, phase: f64) -> Result<Task, SimError> {
        if !phase.is_finite() || phase < 0.0 {
            return Err(SimError::InvalidTask {
                wcet: self.wcet,
                period: self.period,
                deadline: self.deadline,
            });
        }
        self.phase = phase;
        Ok(self)
    }

    /// Attaches a human-readable name (used in traces and reports).
    pub fn named(mut self, name: impl Into<String>) -> Task {
        self.name = Some(name.into());
        self
    }

    /// Worst-case execution time at full speed, in seconds.
    pub fn wcet(&self) -> f64 {
        self.wcet
    }

    /// Period, in seconds.
    pub fn period(&self) -> f64 {
        self.period
    }

    /// Relative deadline, in seconds.
    pub fn deadline(&self) -> f64 {
        self.deadline
    }

    /// First release instant, in seconds.
    pub fn phase(&self) -> f64 {
        self.phase
    }

    /// The task's name, if one was set.
    pub fn name(&self) -> Option<&str> {
        self.name.as_deref()
    }

    /// The task's scheduling model ([`TaskKind::Hard`] unless set).
    pub fn kind(&self) -> TaskKind {
        self.kind
    }

    /// Whether the task follows the hard-periodic default model.
    pub fn is_hard(&self) -> bool {
        self.kind.is_hard()
    }

    /// The inter-arrival gap *preceding* job `index` (`index ≥ 1`): the
    /// period for every kind except [`TaskKind::Sporadic`], whose gaps are
    /// stretched by a deterministic per-job draw. Always at least the
    /// period, so sporadic arrivals never precede the periodic lattice.
    pub fn arrival_gap(&self, index: u64) -> f64 {
        match self.kind {
            TaskKind::Sporadic {
                min_interarrival,
                burst,
                seed,
            } if burst > 0.0 => {
                let h = splitmix64(seed ^ splitmix64(index ^ STREAM_SPORADIC));
                // 53 high bits → exactly representable uniform grid in [0, 1).
                // xtask:allow(as-cast): not in crates/core, exact 53-bit conversion
                let u = (h >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0);
                min_interarrival * (1.0 + burst * u)
            }
            _ => self.period,
        }
    }

    /// Worst-case utilization `wcet / period`.
    pub fn utilization(&self) -> f64 {
        self.wcet / self.period
    }

    /// Worst-case density `wcet / deadline`.
    pub fn density(&self) -> f64 {
        self.wcet / self.deadline
    }

    /// Release instant of the `index`-th job (0-based).
    pub fn release_of(&self, index: u64) -> f64 {
        self.phase + index as f64 * self.period
    }

    /// Absolute deadline of the `index`-th job.
    pub fn deadline_of(&self, index: u64) -> f64 {
        self.release_of(index) + self.deadline
    }
}

/// An immutable collection of periodic tasks scheduled together.
///
/// A task set is feasible under EDF at full speed iff its worst-case
/// utilization is at most 1 (for implicit deadlines); [`TaskSet::new`]
/// enforces only structural validity — schedulability tests live in
/// `stadvs-analysis`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskSet {
    tasks: Vec<Task>,
}

impl TaskSet {
    /// Creates a task set.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EmptyTaskSet`] if `tasks` is empty.
    pub fn new(tasks: Vec<Task>) -> Result<TaskSet, SimError> {
        if tasks.is_empty() {
            return Err(SimError::EmptyTaskSet);
        }
        Ok(TaskSet { tasks })
    }

    /// The tasks, indexable by [`TaskId`].
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// The task with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this task set.
    pub fn task(&self, id: TaskId) -> &Task {
        &self.tasks[id.0]
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the set is empty (never true for a constructed set).
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Iterates over `(TaskId, &Task)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (TaskId, &Task)> {
        self.tasks.iter().enumerate().map(|(i, t)| (TaskId(i), t))
    }

    /// Total worst-case utilization `Σ wcet_i / period_i`.
    pub fn utilization(&self) -> f64 {
        self.tasks.iter().map(Task::utilization).sum()
    }

    /// Total worst-case density `Σ wcet_i / deadline_i`.
    pub fn density(&self) -> f64 {
        self.tasks.iter().map(Task::density).sum()
    }

    /// Whether every task follows the hard-periodic default model. The
    /// simulator's model-aware paths are gated on this, so all-hard sets
    /// simulate bit-identically to the pre-model engine.
    pub fn all_hard(&self) -> bool {
        self.tasks.iter().all(Task::is_hard)
    }

    /// The largest period.
    pub fn max_period(&self) -> f64 {
        self.tasks
            .iter()
            .map(Task::period)
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// The hyperperiod (least common multiple of periods), if all periods
    /// are integer multiples of one microsecond. Returns `None` when
    /// periods are not commensurable at that resolution or the LCM
    /// overflows.
    pub fn hyperperiod(&self) -> Option<f64> {
        const RES: f64 = 1.0e6; // microsecond grid
        let mut lcm: u128 = 1;
        for t in &self.tasks {
            let scaled = t.period() * RES;
            let rounded = scaled.round();
            if (scaled - rounded).abs() > 1e-6 || rounded <= 0.0 {
                return None;
            }
            let p = rounded as u128;
            lcm = lcm.checked_mul(p / gcd(lcm, p))?;
            if lcm > (1u128 << 80) {
                return None;
            }
        }
        Some(lcm as f64 / RES)
    }
}

impl FromIterator<Task> for TaskSet {
    /// Collects tasks into a set.
    ///
    /// # Panics
    ///
    /// Panics if the iterator is empty; use [`TaskSet::new`] for fallible
    /// construction.
    fn from_iter<I: IntoIterator<Item = Task>>(iter: I) -> TaskSet {
        // xtask:allow(no-panic): documented `# Panics` contract of FromIterator
        TaskSet::new(iter.into_iter().collect()).expect("FromIterator requires at least one task")
    }
}

fn gcd(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        let r = a % b;
        a = b;
        b = r;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(wcet: f64, period: f64) -> Task {
        Task::new(wcet, period).unwrap()
    }

    #[test]
    fn task_validation() {
        assert!(Task::new(1.0, 10.0).is_ok());
        assert!(Task::new(0.0, 10.0).is_err());
        assert!(Task::new(-1.0, 10.0).is_err());
        assert!(Task::new(11.0, 10.0).is_err());
        assert!(Task::new(1.0, f64::NAN).is_err());
        assert!(Task::with_deadline(1.0, 10.0, 0.5).is_err()); // deadline < wcet
        assert!(Task::with_deadline(1.0, 10.0, 12.0).is_err()); // deadline > period
        assert!(Task::with_deadline(1.0, 10.0, 5.0).is_ok());
        assert!(task(1.0, 10.0).with_phase(-1.0).is_err());
    }

    #[test]
    fn job_release_and_deadline_arithmetic() {
        let t = Task::with_deadline(1.0, 10.0, 8.0)
            .unwrap()
            .with_phase(2.0)
            .unwrap();
        assert_eq!(t.release_of(0), 2.0);
        assert_eq!(t.release_of(3), 32.0);
        assert_eq!(t.deadline_of(0), 10.0);
        assert_eq!(t.deadline_of(3), 40.0);
    }

    #[test]
    fn utilization_and_density() {
        let t = Task::with_deadline(2.0, 10.0, 5.0).unwrap();
        assert_eq!(t.utilization(), 0.2);
        assert_eq!(t.density(), 0.4);
        let ts = TaskSet::new(vec![task(1.0, 10.0), task(2.0, 5.0)]).unwrap();
        assert!((ts.utilization() - 0.5).abs() < 1e-12);
        assert_eq!(ts.len(), 2);
        assert!(!ts.is_empty());
        assert_eq!(ts.max_period(), 10.0);
    }

    #[test]
    fn empty_task_set_rejected() {
        assert!(matches!(TaskSet::new(vec![]), Err(SimError::EmptyTaskSet)));
    }

    #[test]
    fn hyperperiod_of_commensurable_periods() {
        let ts = TaskSet::new(vec![task(1.0e-3, 4.0e-3), task(1.0e-3, 6.0e-3)]).unwrap();
        assert!((ts.hyperperiod().unwrap() - 12.0e-3).abs() < 1e-9);
        let ts2 = TaskSet::new(vec![
            task(1.0e-3, 5.0e-3),
            task(1.0e-3, std::f64::consts::PI * 1.0e-3),
        ])
        .unwrap();
        assert_eq!(ts2.hyperperiod(), None);
    }

    #[test]
    fn kind_validation() {
        // Weakly-hard bounds: 1 ≤ m ≤ k ≤ 64.
        assert!(task(1.0, 10.0).weakly_hard(1, 1).is_ok());
        assert!(task(1.0, 10.0).weakly_hard(3, 5).is_ok());
        assert!(task(1.0, 10.0).weakly_hard(64, 64).is_ok());
        assert!(task(1.0, 10.0).weakly_hard(0, 5).is_err());
        assert!(task(1.0, 10.0).weakly_hard(6, 5).is_err());
        assert!(task(1.0, 10.0).weakly_hard(1, 65).is_err());
        // Sporadic: min_interarrival pinned to the period; burst ≥ 0 finite.
        assert!(task(1.0, 10.0).sporadic(0.0, 7).is_ok());
        assert!(task(1.0, 10.0).sporadic(0.5, 7).is_ok());
        assert!(task(1.0, 10.0).sporadic(-0.1, 7).is_err());
        assert!(task(1.0, 10.0).sporadic(f64::NAN, 7).is_err());
        assert!(task(1.0, 10.0)
            .with_kind(TaskKind::Sporadic {
                min_interarrival: 9.0,
                burst: 0.0,
                seed: 7,
            })
            .is_err());
        // Frame: frame_deadline pinned to the relative deadline; boost ∈ (0, 1].
        assert!(task(1.0, 10.0).frame(1.0).is_ok());
        assert!(task(1.0, 10.0).frame(0.4).is_ok());
        assert!(task(1.0, 10.0).frame(0.0).is_err());
        assert!(task(1.0, 10.0).frame(1.5).is_err());
        let constrained = Task::with_deadline(1.0, 10.0, 6.0).unwrap();
        match constrained.clone().frame(0.8).unwrap().kind() {
            TaskKind::Frame { frame_deadline, .. } => assert_eq!(frame_deadline, 6.0),
            other => panic!("expected frame kind, got {other:?}"),
        }
        assert!(constrained
            .with_kind(TaskKind::Frame {
                frame_deadline: 10.0,
                boost: 0.8,
            })
            .is_err());
    }

    #[test]
    fn all_hard_gate() {
        let hard: TaskSet = vec![task(1.0, 10.0), task(2.0, 20.0)].into_iter().collect();
        assert!(hard.all_hard());
        let mixed: TaskSet = vec![task(1.0, 10.0), task(2.0, 20.0).weakly_hard(2, 4).unwrap()]
            .into_iter()
            .collect();
        assert!(!mixed.all_hard());
        assert!(mixed.task(TaskId(0)).is_hard());
        assert!(!mixed.task(TaskId(1)).is_hard());
    }

    #[test]
    fn arrival_gap_bounds_and_determinism() {
        let t = task(1.0, 10.0).sporadic(0.5, 42).unwrap();
        for index in 1..200u64 {
            let gap = t.arrival_gap(index);
            assert!(gap >= 10.0, "gap {gap} below min_interarrival at {index}");
            assert!(gap < 15.0, "gap {gap} above (1+burst)·period at {index}");
            // Deterministic: identical draw on replay.
            assert_eq!(gap.to_bits(), t.arrival_gap(index).to_bits());
        }
        // burst = 0 degenerates to exactly the period.
        let calm = task(1.0, 10.0).sporadic(0.0, 42).unwrap();
        assert_eq!(calm.arrival_gap(3), 10.0);
        // Hard tasks always report the period.
        assert_eq!(task(1.0, 10.0).arrival_gap(3), 10.0);
        // Seed-sensitivity: different seeds give different gap sequences.
        let other = task(1.0, 10.0).sporadic(0.5, 43).unwrap();
        assert!((1..50u64).any(|i| t.arrival_gap(i).to_bits() != other.arrival_gap(i).to_bits()));
    }

    #[test]
    fn kind_defaults_to_hard() {
        // `#[serde(default)]` on the field means pre-model serialized tasks
        // (no `kind` key) load as this default — pin it to Hard.
        assert_eq!(TaskKind::default(), TaskKind::Hard);
        assert!(task(1.0, 10.0).is_hard());
        assert_eq!(task(1.0, 10.0).kind(), TaskKind::Hard);
    }

    #[test]
    fn names_and_iter() {
        let ts: TaskSet = vec![task(1.0, 10.0).named("audio"), task(2.0, 20.0)]
            .into_iter()
            .collect();
        assert_eq!(ts.task(TaskId(0)).name(), Some("audio"));
        assert_eq!(ts.task(TaskId(1)).name(), None);
        let ids: Vec<usize> = ts.iter().map(|(id, _)| id.0).collect();
        assert_eq!(ids, vec![0, 1]);
        assert_eq!(TaskId(3).to_string(), "T3");
    }
}
