//! Periodic task model.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::SimError;

/// Identifier of a task within a [`TaskSet`] (its index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TaskId(pub usize);

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// A periodic hard real-time task.
///
/// All times are in seconds. `wcet` is the worst-case execution time **at
/// full speed** (so it doubles as the job's worst-case *work*); `period` is
/// the inter-release separation; `deadline` is relative to release and must
/// satisfy `wcet <= deadline <= period` (implicit deadlines use
/// `deadline == period`); `phase` is the first release instant.
///
/// ```
/// use stadvs_sim::Task;
///
/// # fn main() -> Result<(), stadvs_sim::SimError> {
/// let t = Task::new(2.0e-3, 10.0e-3)?; // 2 ms WCET every 10 ms
/// assert_eq!(t.utilization(), 0.2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Task {
    wcet: f64,
    period: f64,
    deadline: f64,
    phase: f64,
    name: Option<String>,
}

impl Task {
    /// Creates an implicit-deadline task (`deadline == period`, zero phase).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidTask`] if `wcet` or `period` is not finite
    /// and positive, or `wcet > period`.
    pub fn new(wcet: f64, period: f64) -> Result<Task, SimError> {
        Task::with_deadline(wcet, period, period)
    }

    /// Creates a constrained-deadline task (`wcet <= deadline <= period`).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidTask`] on any violated constraint.
    pub fn with_deadline(wcet: f64, period: f64, deadline: f64) -> Result<Task, SimError> {
        let ok = wcet.is_finite()
            && period.is_finite()
            && deadline.is_finite()
            && wcet > 0.0
            && period > 0.0
            && deadline >= wcet
            && deadline <= period;
        if !ok {
            return Err(SimError::InvalidTask {
                wcet,
                period,
                deadline,
            });
        }
        Ok(Task {
            wcet,
            period,
            deadline,
            phase: 0.0,
            name: None,
        })
    }

    /// Sets the first release instant (default `0.0`).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidTask`] if `phase` is negative or not
    /// finite.
    pub fn with_phase(mut self, phase: f64) -> Result<Task, SimError> {
        if !phase.is_finite() || phase < 0.0 {
            return Err(SimError::InvalidTask {
                wcet: self.wcet,
                period: self.period,
                deadline: self.deadline,
            });
        }
        self.phase = phase;
        Ok(self)
    }

    /// Attaches a human-readable name (used in traces and reports).
    pub fn named(mut self, name: impl Into<String>) -> Task {
        self.name = Some(name.into());
        self
    }

    /// Worst-case execution time at full speed, in seconds.
    pub fn wcet(&self) -> f64 {
        self.wcet
    }

    /// Period, in seconds.
    pub fn period(&self) -> f64 {
        self.period
    }

    /// Relative deadline, in seconds.
    pub fn deadline(&self) -> f64 {
        self.deadline
    }

    /// First release instant, in seconds.
    pub fn phase(&self) -> f64 {
        self.phase
    }

    /// The task's name, if one was set.
    pub fn name(&self) -> Option<&str> {
        self.name.as_deref()
    }

    /// Worst-case utilization `wcet / period`.
    pub fn utilization(&self) -> f64 {
        self.wcet / self.period
    }

    /// Worst-case density `wcet / deadline`.
    pub fn density(&self) -> f64 {
        self.wcet / self.deadline
    }

    /// Release instant of the `index`-th job (0-based).
    pub fn release_of(&self, index: u64) -> f64 {
        self.phase + index as f64 * self.period
    }

    /// Absolute deadline of the `index`-th job.
    pub fn deadline_of(&self, index: u64) -> f64 {
        self.release_of(index) + self.deadline
    }
}

/// An immutable collection of periodic tasks scheduled together.
///
/// A task set is feasible under EDF at full speed iff its worst-case
/// utilization is at most 1 (for implicit deadlines); [`TaskSet::new`]
/// enforces only structural validity — schedulability tests live in
/// `stadvs-analysis`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskSet {
    tasks: Vec<Task>,
}

impl TaskSet {
    /// Creates a task set.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EmptyTaskSet`] if `tasks` is empty.
    pub fn new(tasks: Vec<Task>) -> Result<TaskSet, SimError> {
        if tasks.is_empty() {
            return Err(SimError::EmptyTaskSet);
        }
        Ok(TaskSet { tasks })
    }

    /// The tasks, indexable by [`TaskId`].
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// The task with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this task set.
    pub fn task(&self, id: TaskId) -> &Task {
        &self.tasks[id.0]
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the set is empty (never true for a constructed set).
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Iterates over `(TaskId, &Task)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (TaskId, &Task)> {
        self.tasks.iter().enumerate().map(|(i, t)| (TaskId(i), t))
    }

    /// Total worst-case utilization `Σ wcet_i / period_i`.
    pub fn utilization(&self) -> f64 {
        self.tasks.iter().map(Task::utilization).sum()
    }

    /// Total worst-case density `Σ wcet_i / deadline_i`.
    pub fn density(&self) -> f64 {
        self.tasks.iter().map(Task::density).sum()
    }

    /// The largest period.
    pub fn max_period(&self) -> f64 {
        self.tasks
            .iter()
            .map(Task::period)
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// The hyperperiod (least common multiple of periods), if all periods
    /// are integer multiples of one microsecond. Returns `None` when
    /// periods are not commensurable at that resolution or the LCM
    /// overflows.
    pub fn hyperperiod(&self) -> Option<f64> {
        const RES: f64 = 1.0e6; // microsecond grid
        let mut lcm: u128 = 1;
        for t in &self.tasks {
            let scaled = t.period() * RES;
            let rounded = scaled.round();
            if (scaled - rounded).abs() > 1e-6 || rounded <= 0.0 {
                return None;
            }
            let p = rounded as u128;
            lcm = lcm.checked_mul(p / gcd(lcm, p))?;
            if lcm > (1u128 << 80) {
                return None;
            }
        }
        Some(lcm as f64 / RES)
    }
}

impl FromIterator<Task> for TaskSet {
    /// Collects tasks into a set.
    ///
    /// # Panics
    ///
    /// Panics if the iterator is empty; use [`TaskSet::new`] for fallible
    /// construction.
    fn from_iter<I: IntoIterator<Item = Task>>(iter: I) -> TaskSet {
        // xtask:allow(no-panic): documented `# Panics` contract of FromIterator
        TaskSet::new(iter.into_iter().collect()).expect("FromIterator requires at least one task")
    }
}

fn gcd(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        let r = a % b;
        a = b;
        b = r;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(wcet: f64, period: f64) -> Task {
        Task::new(wcet, period).unwrap()
    }

    #[test]
    fn task_validation() {
        assert!(Task::new(1.0, 10.0).is_ok());
        assert!(Task::new(0.0, 10.0).is_err());
        assert!(Task::new(-1.0, 10.0).is_err());
        assert!(Task::new(11.0, 10.0).is_err());
        assert!(Task::new(1.0, f64::NAN).is_err());
        assert!(Task::with_deadline(1.0, 10.0, 0.5).is_err()); // deadline < wcet
        assert!(Task::with_deadline(1.0, 10.0, 12.0).is_err()); // deadline > period
        assert!(Task::with_deadline(1.0, 10.0, 5.0).is_ok());
        assert!(task(1.0, 10.0).with_phase(-1.0).is_err());
    }

    #[test]
    fn job_release_and_deadline_arithmetic() {
        let t = Task::with_deadline(1.0, 10.0, 8.0)
            .unwrap()
            .with_phase(2.0)
            .unwrap();
        assert_eq!(t.release_of(0), 2.0);
        assert_eq!(t.release_of(3), 32.0);
        assert_eq!(t.deadline_of(0), 10.0);
        assert_eq!(t.deadline_of(3), 40.0);
    }

    #[test]
    fn utilization_and_density() {
        let t = Task::with_deadline(2.0, 10.0, 5.0).unwrap();
        assert_eq!(t.utilization(), 0.2);
        assert_eq!(t.density(), 0.4);
        let ts = TaskSet::new(vec![task(1.0, 10.0), task(2.0, 5.0)]).unwrap();
        assert!((ts.utilization() - 0.5).abs() < 1e-12);
        assert_eq!(ts.len(), 2);
        assert!(!ts.is_empty());
        assert_eq!(ts.max_period(), 10.0);
    }

    #[test]
    fn empty_task_set_rejected() {
        assert!(matches!(TaskSet::new(vec![]), Err(SimError::EmptyTaskSet)));
    }

    #[test]
    fn hyperperiod_of_commensurable_periods() {
        let ts = TaskSet::new(vec![task(1.0e-3, 4.0e-3), task(1.0e-3, 6.0e-3)]).unwrap();
        assert!((ts.hyperperiod().unwrap() - 12.0e-3).abs() < 1e-9);
        let ts2 = TaskSet::new(vec![
            task(1.0e-3, 5.0e-3),
            task(1.0e-3, std::f64::consts::PI * 1.0e-3),
        ])
        .unwrap();
        assert_eq!(ts2.hyperperiod(), None);
    }

    #[test]
    fn names_and_iter() {
        let ts: TaskSet = vec![task(1.0, 10.0).named("audio"), task(2.0, 20.0)]
            .into_iter()
            .collect();
        assert_eq!(ts.task(TaskId(0)).name(), Some("audio"));
        assert_eq!(ts.task(TaskId(1)).name(), None);
        let ids: Vec<usize> = ts.iter().map(|(id, _)| id.0).collect();
        assert_eq!(ids, vec![0, 1]);
        assert_eq!(TaskId(3).to_string(), "T3");
    }
}
