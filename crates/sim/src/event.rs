//! Typed simulation events and the deterministic event queue.
//!
//! The kernel's vocabulary is a small closed set of [`EventKind`]s; every
//! scheduled occurrence is a [`SimEvent`] — plain `Copy` data, no boxed
//! payloads — so the steady-state path moves events by value and never
//! allocates per event.
//!
//! Determinism (DESIGN.md §15): the queue is a hand-rolled binary min-heap
//! ordered by the total key `(time, seq, source)`, where `seq` is the
//! *per-source* emission counter. Event times are non-negative finite
//! floats, so comparing `f64::to_bits` is order-preserving and bit-exact —
//! no `partial_cmp` edge cases on the hot path. Because `(source, seq)`
//! pairs are unique, the key is a total order: pop order depends only on
//! what each component emitted, never on heap insertion order — which is
//! exactly the registration-order invariance the kernel differential
//! harness pins with a property test.

use serde::{Deserialize, Serialize};

/// Index of a component registered with the [`crate::Kernel`].
///
/// Ids are caller-assigned, stable slot indices (e.g. core `k` of a
/// platform is component `k`), not registration handles — two runs that
/// wire the same components to the same slots order events identically.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ComponentId(pub usize);

/// Number of distinct [`EventKind`]s (the per-kind counter array width).
pub const EVENT_KINDS: usize = 7;

/// The closed event taxonomy of the simulation kernel.
///
/// `Release` and `Dispatch` are *wake* events: they drive a core engine's
/// next step. The remaining kinds are *notes* — semantic observations
/// (a completion, an injected fault, an (m,k) skip, a frame boundary, a
/// budget throttle) addressed to observer components. Notes carry no
/// float state, so they feed the per-component counters without touching
/// simulation arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EventKind {
    /// A job release instant (also the engine wake used while idle).
    Release,
    /// A job completed (executed to its actual demand).
    Completion,
    /// A dispatch-path engine wake (speed/review/execution continuation).
    Dispatch,
    /// An injected-fault observation (overrun, jitter, drop, shed, abort,
    /// forced full speed).
    Fault,
    /// A model-layer (m,k) skip of a weakly-hard job.
    Skip,
    /// A frame-task release boundary.
    FrameBoundary,
    /// A shared-power-budget throttle decision.
    Budget,
}

impl EventKind {
    /// Every kind, in counter-array order.
    pub const ALL: [EventKind; EVENT_KINDS] = [
        EventKind::Release,
        EventKind::Completion,
        EventKind::Dispatch,
        EventKind::Fault,
        EventKind::Skip,
        EventKind::FrameBoundary,
        EventKind::Budget,
    ];

    /// The kind's slot in per-kind counter arrays.
    pub fn index(self) -> usize {
        match self {
            EventKind::Release => 0,
            EventKind::Completion => 1,
            EventKind::Dispatch => 2,
            EventKind::Fault => 3,
            EventKind::Skip => 4,
            EventKind::FrameBoundary => 5,
            EventKind::Budget => 6,
        }
    }

    /// A short stable label (used in reports and logs).
    pub fn label(self) -> &'static str {
        match self {
            EventKind::Release => "release",
            EventKind::Completion => "completion",
            EventKind::Dispatch => "dispatch",
            EventKind::Fault => "fault",
            EventKind::Skip => "skip",
            EventKind::FrameBoundary => "frame-boundary",
            EventKind::Budget => "budget",
        }
    }
}

/// One scheduled occurrence: plain `Copy` data, no payload allocation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimEvent {
    /// Simulated time of the occurrence, in seconds (non-negative finite).
    pub time: f64,
    /// What happened.
    pub kind: EventKind,
    /// The emitting component.
    pub source: ComponentId,
    /// The component the kernel delivers the event to.
    pub target: ComponentId,
}

/// A queued event plus its per-source emission ordinal (the tiebreaker).
#[derive(Debug, Clone, Copy)]
pub(crate) struct QueuedEvent {
    pub(crate) event: SimEvent,
    pub(crate) seq: u64,
}

impl QueuedEvent {
    /// The total ordering key `(time, seq, source)`. Times are
    /// non-negative finite, so the IEEE-754 bit pattern orders exactly
    /// like the float value.
    fn key(&self) -> (u64, u64, usize) {
        (self.event.time.to_bits(), self.seq, self.event.source.0)
    }
}

/// A binary min-heap over [`QueuedEvent::key`], backed by one reusable
/// `Vec` — cleared (not freed) between runs, so the steady-state path
/// never allocates once the buffer has grown to the run's high-water
/// mark of simultaneously pending events.
#[derive(Debug, Clone, Default)]
pub(crate) struct EventQueue {
    heap: Vec<QueuedEvent>,
}

impl EventQueue {
    /// Drops all pending events, keeping the buffer.
    pub(crate) fn clear(&mut self) {
        self.heap.clear();
    }

    /// Number of pending events.
    pub(crate) fn len(&self) -> usize {
        self.heap.len()
    }

    /// Schedules an event under the given per-source sequence number.
    pub(crate) fn push(&mut self, event: SimEvent, seq: u64) {
        debug_assert!(
            event.time.is_finite() && event.time >= 0.0,
            "event time must be non-negative finite, got {}",
            event.time
        );
        self.heap.push(QueuedEvent { event, seq });
        self.sift_up(self.heap.len() - 1);
    }

    /// Removes and returns the minimum-key event.
    pub(crate) fn pop(&mut self) -> Option<QueuedEvent> {
        let last = self.heap.len().checked_sub(1)?;
        self.heap.swap(0, last);
        let min = self.heap.pop();
        if !self.heap.is_empty() {
            self.sift_down(0);
        }
        min
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.heap[i].key() < self.heap[parent].key() {
                self.heap.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.heap.len();
        loop {
            let left = 2 * i + 1;
            if left >= n {
                break;
            }
            let right = left + 1;
            let mut child = left;
            if right < n && self.heap[right].key() < self.heap[left].key() {
                child = right;
            }
            if self.heap[child].key() < self.heap[i].key() {
                self.heap.swap(i, child);
                i = child;
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(time: f64, source: usize) -> SimEvent {
        SimEvent {
            time,
            kind: EventKind::Dispatch,
            source: ComponentId(source),
            target: ComponentId(source),
        }
    }

    #[test]
    fn pops_in_time_then_seq_then_source_order() {
        let mut q = EventQueue::default();
        q.push(ev(2.0, 0), 0);
        q.push(ev(1.0, 1), 5);
        q.push(ev(1.0, 0), 3);
        q.push(ev(1.0, 2), 3);
        let order: Vec<(f64, u64, usize)> = std::iter::from_fn(|| q.pop())
            .map(|q| (q.event.time, q.seq, q.event.source.0))
            .collect();
        assert_eq!(
            order,
            vec![(1.0, 3, 0), (1.0, 3, 2), (1.0, 5, 1), (2.0, 0, 0)]
        );
    }

    #[test]
    fn pop_order_is_insertion_order_invariant() {
        let events: Vec<(SimEvent, u64)> = vec![
            (ev(0.0, 0), 0),
            (ev(0.0, 1), 0),
            (ev(0.5, 0), 1),
            (ev(0.5, 2), 0),
            (ev(1.0, 1), 1),
        ];
        let forward = {
            let mut q = EventQueue::default();
            for &(e, s) in &events {
                q.push(e, s);
            }
            std::iter::from_fn(|| q.pop())
                .map(|q| (q.event.time, q.seq, q.event.source.0))
                .collect::<Vec<_>>()
        };
        let reverse = {
            let mut q = EventQueue::default();
            for &(e, s) in events.iter().rev() {
                q.push(e, s);
            }
            std::iter::from_fn(|| q.pop())
                .map(|q| (q.event.time, q.seq, q.event.source.0))
                .collect::<Vec<_>>()
        };
        assert_eq!(forward, reverse);
    }

    #[test]
    fn kind_indices_are_a_bijection() {
        for (i, kind) in EventKind::ALL.iter().enumerate() {
            assert_eq!(kind.index(), i);
            assert!(!kind.label().is_empty());
        }
    }

    #[test]
    fn clear_keeps_buffer_empties_queue() {
        let mut q = EventQueue::default();
        q.push(ev(1.0, 0), 0);
        assert_eq!(q.len(), 1);
        q.clear();
        assert_eq!(q.len(), 0);
        assert!(q.pop().is_none());
    }
}
